// Order-Entry on the simulated cluster: sweep every replication strategy
// for one workload and print a compact decision report — the kind of
// capacity-planning run a user of this library would actually do.
//
//   build/examples/order_entry_cluster [--db-mb 50] [--txns 40000]
#include <cstdio>

#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace vrep;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto db_mb = static_cast<std::size_t>(args.get_int("db-mb", 50));
  const auto txns = static_cast<std::uint64_t>(args.get_int("txns", 40'000));

  struct Row {
    const char* name;
    harness::Mode mode;
    core::VersionKind version;
  };
  const Row rows[] = {
      {"standalone V3 (no replica!)", harness::Mode::kStandalone,
       core::VersionKind::kV3InlineLog},
      {"passive V0 (straightforward)", harness::Mode::kPassive, core::VersionKind::kV0Vista},
      {"passive V1 (mirror by copy)", harness::Mode::kPassive,
       core::VersionKind::kV1MirrorCopy},
      {"passive V2 (mirror by diff)", harness::Mode::kPassive,
       core::VersionKind::kV2MirrorDiff},
      {"passive V3 (inline log)", harness::Mode::kPassive, core::VersionKind::kV3InlineLog},
      {"active (redo shipping)", harness::Mode::kActive, core::VersionKind::kV3InlineLog},
  };

  std::printf("Order-Entry, %zu MB database, %llu transactions per configuration\n\n",
              db_mb, static_cast<unsigned long long>(txns));
  Table table("Replication strategy comparison");
  table.set_header(
      {"strategy", "TPS", "slowdown vs standalone", "bytes/txn to backup", "avg packet"});

  double standalone_tps = 0;
  for (const Row& row : rows) {
    harness::ExperimentConfig config;
    config.mode = row.mode;
    config.version = row.version;
    config.workload = wl::WorkloadKind::kOrderEntry;
    config.db_size = db_mb << 20;
    config.txns_per_stream = txns;
    const auto r = run_experiment(config);
    if (row.mode == harness::Mode::kStandalone) standalone_tps = r.tps;
    char slowdown[32];
    std::snprintf(slowdown, sizeof slowdown, "%.2fx", standalone_tps / r.tps);
    table.add_row({row.name, Table::num(static_cast<std::uint64_t>(r.tps)), slowdown,
                   Table::num(r.committed == 0 ? 0 : r.traffic.total() / r.committed),
                   Table::num(r.avg_packet_bytes, 1) + "B"});
  }
  table.print();
  std::puts(
      "\nReading the report: the active scheme pays the least for availability because\n"
      "it ships only committed redo data as full-size Memory Channel packets; the\n"
      "mirror schemes ship less data than passive logging but lose on packet size;\n"
      "the straightforward port (V0) drowns in write-through meta-data.");
  return 0;
}
