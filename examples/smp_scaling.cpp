// SMP primary scaling demo (the paper's Section 8 experiment, interactive):
// run N independent Debit-Credit streams on one node and watch the shared
// SAN become the bottleneck for every scheme except active logging.
//
//   build/examples/smp_scaling [--cpus 4] [--scheme active|passive3|passive1]
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace vrep;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int max_cpus = static_cast<int>(args.get_int("cpus", 4));
  const std::string scheme = args.get_string("scheme", "all");

  struct Named {
    const char* name;
    const char* key;
    harness::Mode mode;
    core::VersionKind version;
  };
  const Named all[] = {
      {"Active", "active", harness::Mode::kActive, core::VersionKind::kV3InlineLog},
      {"Passive V3", "passive3", harness::Mode::kPassive, core::VersionKind::kV3InlineLog},
      {"Passive V1", "passive1", harness::Mode::kPassive, core::VersionKind::kV1MirrorCopy},
  };

  Table table("Aggregate Debit-Credit throughput vs primary CPUs (10 MB per stream)");
  table.set_header({"scheme", "cpus", "aggregate TPS", "per-CPU TPS", "link utilization",
                    "CPU stall/txn"});
  AsciiChart chart("SMP primary scaling", "CPUs", "aggregate TPS");
  std::vector<double> xs;
  for (int c = 1; c <= max_cpus; ++c) xs.push_back(c);
  chart.set_x(xs);

  for (const Named& n : all) {
    if (scheme != "all" && scheme != n.key) continue;
    std::vector<double> series;
    for (int cpus = 1; cpus <= max_cpus; ++cpus) {
      harness::ExperimentConfig config;
      config.mode = n.mode;
      config.version = n.version;
      config.workload = wl::WorkloadKind::kDebitCredit;
      config.db_size = 10 << 20;
      config.streams = cpus;
      config.txns_per_stream = 25'000;
      const auto r = run_experiment(config);
      series.push_back(r.tps);
      char util[16], stall[24];
      std::snprintf(util, sizeof util, "%.0f%%", r.link_utilization * 100);
      std::snprintf(stall, sizeof stall, "%.2f us",
                    r.mc_stall_seconds * 1e6 / static_cast<double>(r.committed));
      table.add_row({n.name, std::to_string(cpus),
                     Table::num(static_cast<std::uint64_t>(r.tps)),
                     Table::num(static_cast<std::uint64_t>(r.tps / cpus)), util, stall});
    }
    chart.add_series(n.name, series);
  }
  table.print();
  chart.print();
  return 0;
}
