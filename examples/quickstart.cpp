// Quickstart: the transaction API on persistent memory in ~60 lines.
//
//   build/examples/quickstart [--db my.db]
//
// Maps a file-backed recoverable arena, runs transactions through the
// Version 3 store, deliberately leaves one transaction in flight, then
// "reboots" (re-attaches to the same bytes) and shows recovery rolling the
// in-flight transaction back while every committed one survives.
#include <cstdio>
#include <cstring>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"
#include "util/cli.hpp"

using namespace vrep;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string path = args.get_string("db", "/tmp/vrep_quickstart.db");
  std::remove(path.c_str());

  core::StoreConfig config;
  config.db_size = 1 << 20;

  sim::MemBus bus;  // pass-through bus: plain wall-clock deployment
  {
    rio::Arena arena = rio::Arena::map_file(
        path, core::required_arena_size(core::VersionKind::kV3InlineLog, config));
    auto store =
        core::make_store(core::VersionKind::kV3InlineLog, bus, arena, config, /*format=*/true);

    // The database is a flat region mapped into our address space. Declare
    // each range before writing it; writes go through the store's bus.
    auto* counters = reinterpret_cast<std::int64_t*>(store->db());
    for (int i = 0; i < 5; ++i) {
      core::Transaction txn(*store);
      txn.set_range(&counters[i], sizeof counters[i]);
      const std::int64_t value = (i + 1) * 100;
      bus.write(&counters[i], &value, sizeof value, sim::TrafficClass::kModified);
      txn.commit();
    }
    std::printf("committed 5 transactions (seq=%llu)\n",
                static_cast<unsigned long long>(store->committed_seq()));

    // Crash mid-transaction: scribble over counter 0 and never commit.
    store->begin_transaction();
    store->set_range(&counters[0], sizeof counters[0]);
    const std::int64_t scribble = -9999;
    bus.write(&counters[0], &scribble, sizeof scribble, sim::TrafficClass::kModified);
    std::printf("in-flight transaction wrote %lld over counter[0]... and the process dies\n",
                static_cast<long long>(scribble));
    arena.sync();
    // Arena goes out of scope with the transaction still open = the crash.
  }

  // "Reboot": re-attach to the surviving bytes and recover.
  rio::Arena arena = rio::Arena::map_file(
      path, core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  auto store =
      core::make_store(core::VersionKind::kV3InlineLog, bus, arena, config, /*format=*/false);
  const int rolled_back = store->recover();
  const auto* counters = reinterpret_cast<const std::int64_t*>(store->db());
  std::printf("after reboot: recover() rolled back %d transaction(s)\n", rolled_back);
  for (int i = 0; i < 5; ++i) {
    std::printf("  counter[%d] = %lld%s\n", i, static_cast<long long>(counters[i]),
                counters[i] == (i + 1) * 100 ? "" : "  <-- WRONG");
  }
  std::printf("committed seq=%llu, store %s\n",
              static_cast<unsigned long long>(store->committed_seq()),
              store->validate() ? "valid" : "INVALID");
  return counters[0] == 100 && rolled_back == 1 ? 0 : 1;
}
