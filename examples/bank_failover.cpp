// Two-process failover demo over the TCP transport.
//
//   build/examples/bank_failover            # forks primary + backup, kills
//                                           # the primary mid-stream, shows
//                                           # the backup taking over
//   build/examples/bank_failover --chaos --seed 7   # same, with a seeded
//                                           # fault-injecting transport
//   build/examples/bank_failover --role backup --port 7007
//   build/examples/bank_failover --role primary --port 7007
//
// The primary runs Debit-Credit banking transactions on a Version 3 store
// and ships each commit's redo data to the backup (active replication,
// 1-safe). Both sides carry a membership epoch in every frame, so a stale
// primary would be fenced rather than believed. The backup applies the
// stream to its file-backed replica, debouncing silence through the
// heartbeat detector and riding out connection losses (reconnect + rejoin);
// only sustained silence makes it declare the primary dead, take over the
// membership epoch, promote its replica to a full store, and prove the
// bank's books still balance. With --chaos the primary's frames pass
// through a seeded fault injector (drops, delays, duplicates, bit-flips),
// exercising the in-band resync machinery on a live run.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"
#include "net/fault_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

using namespace vrep;

namespace {

constexpr std::size_t kDbSize = 4 << 20;

core::StoreConfig bank_config() {
  core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  return config;
}

int run_primary(std::uint16_t port, int txns_before_death, bool chaos,
                std::uint64_t chaos_seed) {
  net::TcpTransport tcp;
  if (!tcp.connect_to("127.0.0.1", port)) {
    std::fprintf(stderr, "[primary] cannot reach backup\n");
    return 1;
  }
  net::FaultPlan plan;
  plan.seed = chaos_seed;
  if (chaos) {
    plan.drop = 0.02;
    plan.delay = 0.02;
    plan.duplicate = 0.02;
    plan.bitflip = 0.01;
    plan.start_after_frames = 32;  // let the initial image sync through
  }
  net::FaultInjectingTransport transport(tcp, plan);

  const core::StoreConfig config = bank_config();
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  cluster::Membership membership(0, cluster::Role::kPrimary);
  net::WirePrimary store(arena, config, &transport, /*format=*/true, &membership);

  wl::DebitCredit bank(kDbSize);
  bank.initialize(store);
  store.flush_initial_state();
  // The backup introduces itself with a rejoin request (from sequence 0,
  // which yields the full image sync for a fresh replica).
  if (!store.handle_rejoin(/*timeout_ms=*/5'000)) {
    std::fprintf(stderr, "[primary] backup never asked to join\n");
    return 1;
  }
  std::printf("[primary] synced backup (epoch %llu), running transactions...\n",
              static_cast<unsigned long long>(store.epoch()));

  Backoff backoff({/*base_ms=*/10, /*max_ms=*/500, /*multiplier=*/2.0, /*jitter=*/0.5},
                  chaos_seed);
  Rng rng(2026);
  for (int i = 0; i < txns_before_death || txns_before_death < 0; ++i) {
    if (store.fenced()) {
      // A newer epoch exists: someone took over while we were presumed
      // dead. A real deployment would demote_to_backup() and rejoin; the
      // demo just refuses to keep writing (that is the split-brain fix).
      std::printf("[primary] fenced by epoch %llu: stepping down\n",
                  static_cast<unsigned long long>(store.fenced_by_epoch()));
      return 3;
    }
    if (!store.connection_alive()) {
      // Reconnect with bounded exponential backoff + jitter, then serve the
      // backup's rejoin request (delta from its last applied sequence, or a
      // full image if the gap outgrew the redo history).
      const auto delay = backoff.next_delay_ms();
      if (!delay.has_value()) break;
      usleep(static_cast<useconds_t>(*delay * 1000));
      if (tcp.connect_to("127.0.0.1", port, /*timeout_ms=*/500)) {
        store.attach_transport(&transport);
        if (store.handle_rejoin(/*timeout_ms=*/1'000)) backoff.reset();
      }
    }
    bank.run_txn(store, rng);
    if (i % 64 == 0) store.send_heartbeat();
  }
  if (chaos) {
    const auto& s = transport.stats();
    std::printf("[primary] chaos stats: %llu frames, %llu drops, %llu dups, "
                "%llu delays, %llu bitflips\n",
                static_cast<unsigned long long>(s.frames),
                static_cast<unsigned long long>(s.drops),
                static_cast<unsigned long long>(s.duplicates),
                static_cast<unsigned long long>(s.delays),
                static_cast<unsigned long long>(s.bitflips));
  }
  std::printf("[primary] committed %llu transactions; dying WITHOUT warning now\n",
              static_cast<unsigned long long>(store.committed_seq()));
  std::fflush(stdout);
  _exit(42);  // simulate a hard crash: no destructors, no goodbye message
}

int run_backup(std::uint16_t port) {
  net::TcpTransport transport;
  if (!transport.listen(port)) return 1;
  std::printf("[backup] listening on port %u\n", transport.bound_port());
  std::fflush(stdout);
  if (!transport.accept_peer()) return 1;

  cluster::Membership membership(1, cluster::Role::kBackup);
  rio::Arena replica = rio::Arena::map_file("/tmp/vrep_bank_replica.db", kDbSize);
  net::WireBackup backup(replica, &membership, /*node_id=*/1);
  if (!backup.request_rejoin(transport)) return 1;

  // Debounce silence through the heartbeat detector: a single late frame
  // (chaos delay fault, scheduler hiccup) must not trigger a takeover.
  cluster::HeartbeatDetector detector(/*timeout_ms=*/500, /*suspicion_threshold=*/3);
  net::WireBackup::ServeOptions options;
  options.idle_timeout_ms = 250;
  options.detector = &detector;

  // Serve until the primary is *failed* — a lost connection alone only means
  // the socket died: re-accept and let the primary rejoin us.
  while (true) {
    const auto result = backup.serve(transport, options);
    if (result == net::WireBackup::ServeResult::kConnectionLost) {
      std::printf("[backup] connection lost at seq %llu; awaiting reconnect\n",
                  static_cast<unsigned long long>(backup.applied_seq()));
      if (transport.accept_peer(/*timeout_ms=*/2'000)) {
        backup.request_rejoin(transport);
        continue;
      }
    }
    if (result == net::WireBackup::ServeResult::kCorrupt) {
      std::fprintf(stderr, "[backup] stream irrecoverably corrupt?!\n");
      return 1;
    }
    break;  // kPrimaryFailed, or no reconnect: the primary is gone
  }
  std::printf("[backup] primary went silent: taking over (epoch %llu -> %llu)\n",
              static_cast<unsigned long long>(membership.view().epoch),
              static_cast<unsigned long long>(membership.view().epoch + 1));
  membership.take_over();

  const auto& stats = backup.stats();
  std::printf("[backup] stream stats: %llu applied, %llu dups ignored, %llu gaps, "
              "%llu corrupt skipped, %llu resyncs, %llu stale fenced\n",
              static_cast<unsigned long long>(stats.batches_applied),
              static_cast<unsigned long long>(stats.duplicates_ignored),
              static_cast<unsigned long long>(stats.gaps_detected),
              static_cast<unsigned long long>(stats.corrupt_skipped),
              static_cast<unsigned long long>(stats.resyncs),
              static_cast<unsigned long long>(stats.stale_fenced));

  const core::StoreConfig config = bank_config();
  sim::MemBus bus;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  auto store = backup.promote(bus, arena, config);

  wl::DebitCredit bank(kDbSize);
  const std::string violation = bank.check_consistency(*store);
  std::printf("[backup] promoted at applied seq %llu; books %s\n",
              static_cast<unsigned long long>(backup.applied_seq()),
              violation.empty() ? "BALANCE (accounts == tellers == branches)"
                                : violation.c_str());

  // Serve a few transactions as the new primary to prove we are live.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) bank.run_txn(*store, rng);
  const std::string after = bank.check_consistency(*store);
  std::printf("[backup] served 1000 transactions as new primary; books %s\n",
              after.empty() ? "still balance" : after.c_str());
  std::remove("/tmp/vrep_bank_replica.db");
  std::fflush(stdout);  // the demo parent spawns us via fork + _exit
  return violation.empty() && after.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string role = args.get_string("role", "demo");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const int kill_after = static_cast<int>(args.get_int("kill-after", 20'000));
  const bool chaos = args.get_int("chaos", 0) != 0;  // --chaos parses as 1
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  if (role == "primary") return run_primary(port, kill_after, chaos, seed);
  if (role == "backup") return run_backup(port);

  // Demo mode: orchestrate both processes ourselves.
  net::TcpTransport probe;
  if (!probe.listen(0)) return 1;
  const std::uint16_t demo_port = probe.bound_port();
  // Free the port again for the child (small race, fine for a demo).
  probe.~TcpTransport();
  new (&probe) net::TcpTransport();

  const pid_t backup_pid = fork();
  if (backup_pid == 0) {
    _exit(run_backup(demo_port));
  }
  usleep(200'000);
  const pid_t primary_pid = fork();
  if (primary_pid == 0) {
    _exit(run_primary(demo_port, kill_after, chaos, seed));
  }

  int status = 0;
  waitpid(primary_pid, &status, 0);
  std::printf("[demo] primary exited with status %d (simulated crash)\n",
              WEXITSTATUS(status));
  waitpid(backup_pid, &status, 0);
  std::printf("[demo] backup exited with status %d\n", WEXITSTATUS(status));
  return WEXITSTATUS(status);
}
