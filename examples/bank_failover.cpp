// Two-process failover demo over the TCP transport.
//
//   build/examples/bank_failover            # forks primary + backup, kills
//                                           # the primary mid-stream, shows
//                                           # the backup taking over
//   build/examples/bank_failover --role backup --port 7007
//   build/examples/bank_failover --role primary --port 7007
//
// The primary runs Debit-Credit banking transactions on a Version 3 store
// and ships each commit's redo data to the backup (active replication,
// 1-safe). The backup applies the stream to its file-backed replica; when
// heartbeats stop, it declares the primary dead (cluster/failure_detector),
// takes over the membership epoch, promotes its replica to a full store,
// and proves the bank's books still balance.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

using namespace vrep;

namespace {

constexpr std::size_t kDbSize = 4 << 20;

core::StoreConfig bank_config() {
  core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  return config;
}

int run_primary(std::uint16_t port, int txns_before_death) {
  net::TcpTransport transport;
  if (!transport.connect_to("127.0.0.1", port)) {
    std::fprintf(stderr, "[primary] cannot reach backup\n");
    return 1;
  }
  const core::StoreConfig config = bank_config();
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  net::WirePrimary store(arena, config, &transport, /*format=*/true);

  wl::DebitCredit bank(kDbSize);
  bank.initialize(store);
  store.flush_initial_state();
  if (!store.sync_backup()) return 1;
  std::printf("[primary] synced backup, running transactions...\n");

  Rng rng(2026);
  for (int i = 0; i < txns_before_death || txns_before_death < 0; ++i) {
    bank.run_txn(store, rng);
    if (i % 64 == 0) store.send_heartbeat();
  }
  std::printf("[primary] committed %llu transactions; dying WITHOUT warning now\n",
              static_cast<unsigned long long>(store.committed_seq()));
  std::fflush(stdout);
  _exit(42);  // simulate a hard crash: no destructors, no goodbye message
}

int run_backup(std::uint16_t port) {
  net::TcpTransport transport;
  if (!transport.listen(port)) return 1;
  std::printf("[backup] listening on port %u\n", transport.bound_port());
  std::fflush(stdout);
  if (!transport.accept_peer()) return 1;

  cluster::Membership membership(1, cluster::Role::kBackup);
  rio::Arena replica = rio::Arena::map_file("/tmp/vrep_bank_replica.db", kDbSize);
  net::WireBackup backup(replica);

  // serve() returns when the primary has been silent past the timeout — the
  // transport-level equivalent of the heartbeat detector tripping.
  const auto result = backup.serve(transport, /*timeout_ms=*/500);
  if (result != net::WireBackup::ServeResult::kPrimaryFailed) {
    std::fprintf(stderr, "[backup] stream corrupt?!\n");
    return 1;
  }
  std::printf("[backup] primary went silent: taking over (epoch %llu -> %llu)\n",
              static_cast<unsigned long long>(membership.view().epoch),
              static_cast<unsigned long long>(membership.view().epoch + 1));
  membership.take_over();

  const core::StoreConfig config = bank_config();
  sim::MemBus bus;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  auto store = backup.promote(bus, arena, config);

  wl::DebitCredit bank(kDbSize);
  const std::string violation = bank.check_consistency(*store);
  std::printf("[backup] promoted at applied seq %llu; books %s\n",
              static_cast<unsigned long long>(backup.applied_seq()),
              violation.empty() ? "BALANCE (accounts == tellers == branches)"
                                : violation.c_str());

  // Serve a few transactions as the new primary to prove we are live.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) bank.run_txn(*store, rng);
  const std::string after = bank.check_consistency(*store);
  std::printf("[backup] served 1000 transactions as new primary; books %s\n",
              after.empty() ? "still balance" : after.c_str());
  std::remove("/tmp/vrep_bank_replica.db");
  std::fflush(stdout);  // the demo parent spawns us via fork + _exit
  return violation.empty() && after.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string role = args.get_string("role", "demo");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const int kill_after = static_cast<int>(args.get_int("kill-after", 20'000));

  if (role == "primary") return run_primary(port, kill_after);
  if (role == "backup") return run_backup(port);

  // Demo mode: orchestrate both processes ourselves.
  net::TcpTransport probe;
  if (!probe.listen(0)) return 1;
  const std::uint16_t demo_port = probe.bound_port();
  // Free the port again for the child (small race, fine for a demo).
  probe.~TcpTransport();
  new (&probe) net::TcpTransport();

  const pid_t backup_pid = fork();
  if (backup_pid == 0) {
    _exit(run_backup(demo_port));
  }
  usleep(200'000);
  const pid_t primary_pid = fork();
  if (primary_pid == 0) {
    _exit(run_primary(demo_port, kill_after));
  }

  int status = 0;
  waitpid(primary_pid, &status, 0);
  std::printf("[demo] primary exited with status %d (simulated crash)\n",
              WEXITSTATUS(status));
  waitpid(backup_pid, &status, 0);
  std::printf("[demo] backup exited with status %d\n", WEXITSTATUS(status));
  return WEXITSTATUS(status);
}
