file(REMOVE_RECURSE
  "CMakeFiles/active_repl_test.dir/active_repl_test.cpp.o"
  "CMakeFiles/active_repl_test.dir/active_repl_test.cpp.o.d"
  "active_repl_test"
  "active_repl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_repl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
