# Empty dependencies file for active_repl_test.
# This may be replaced when dependencies are built.
