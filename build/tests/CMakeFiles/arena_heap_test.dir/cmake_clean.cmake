file(REMOVE_RECURSE
  "CMakeFiles/arena_heap_test.dir/arena_heap_test.cpp.o"
  "CMakeFiles/arena_heap_test.dir/arena_heap_test.cpp.o.d"
  "arena_heap_test"
  "arena_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arena_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
