# Empty dependencies file for arena_heap_test.
# This may be replaced when dependencies are built.
