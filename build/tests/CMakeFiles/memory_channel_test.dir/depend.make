# Empty dependencies file for memory_channel_test.
# This may be replaced when dependencies are built.
