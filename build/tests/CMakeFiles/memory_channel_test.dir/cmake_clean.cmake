file(REMOVE_RECURSE
  "CMakeFiles/memory_channel_test.dir/memory_channel_test.cpp.o"
  "CMakeFiles/memory_channel_test.dir/memory_channel_test.cpp.o.d"
  "memory_channel_test"
  "memory_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
