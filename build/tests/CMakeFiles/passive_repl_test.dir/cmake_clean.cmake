file(REMOVE_RECURSE
  "CMakeFiles/passive_repl_test.dir/passive_repl_test.cpp.o"
  "CMakeFiles/passive_repl_test.dir/passive_repl_test.cpp.o.d"
  "passive_repl_test"
  "passive_repl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_repl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
