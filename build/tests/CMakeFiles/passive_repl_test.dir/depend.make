# Empty dependencies file for passive_repl_test.
# This may be replaced when dependencies are built.
