file(REMOVE_RECURSE
  "CMakeFiles/write_buffer_test.dir/write_buffer_test.cpp.o"
  "CMakeFiles/write_buffer_test.dir/write_buffer_test.cpp.o.d"
  "write_buffer_test"
  "write_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
