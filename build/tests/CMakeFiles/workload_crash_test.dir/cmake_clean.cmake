file(REMOVE_RECURSE
  "CMakeFiles/workload_crash_test.dir/workload_crash_test.cpp.o"
  "CMakeFiles/workload_crash_test.dir/workload_crash_test.cpp.o.d"
  "workload_crash_test"
  "workload_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
