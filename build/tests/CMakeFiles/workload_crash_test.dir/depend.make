# Empty dependencies file for workload_crash_test.
# This may be replaced when dependencies are built.
