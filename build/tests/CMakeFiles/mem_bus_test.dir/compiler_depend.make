# Empty compiler generated dependencies file for mem_bus_test.
# This may be replaced when dependencies are built.
