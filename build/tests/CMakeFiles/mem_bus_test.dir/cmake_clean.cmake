file(REMOVE_RECURSE
  "CMakeFiles/mem_bus_test.dir/mem_bus_test.cpp.o"
  "CMakeFiles/mem_bus_test.dir/mem_bus_test.cpp.o.d"
  "mem_bus_test"
  "mem_bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
