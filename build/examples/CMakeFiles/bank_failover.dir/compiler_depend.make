# Empty compiler generated dependencies file for bank_failover.
# This may be replaced when dependencies are built.
