# Empty dependencies file for smp_scaling.
# This may be replaced when dependencies are built.
