file(REMOVE_RECURSE
  "CMakeFiles/smp_scaling.dir/smp_scaling.cpp.o"
  "CMakeFiles/smp_scaling.dir/smp_scaling.cpp.o.d"
  "smp_scaling"
  "smp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
