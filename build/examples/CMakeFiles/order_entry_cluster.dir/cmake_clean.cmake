file(REMOVE_RECURSE
  "CMakeFiles/order_entry_cluster.dir/order_entry_cluster.cpp.o"
  "CMakeFiles/order_entry_cluster.dir/order_entry_cluster.cpp.o.d"
  "order_entry_cluster"
  "order_entry_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_entry_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
