# Empty dependencies file for order_entry_cluster.
# This may be replaced when dependencies are built.
