file(REMOVE_RECURSE
  "CMakeFiles/vrep_harness.dir/experiment.cpp.o"
  "CMakeFiles/vrep_harness.dir/experiment.cpp.o.d"
  "libvrep_harness.a"
  "libvrep_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
