file(REMOVE_RECURSE
  "libvrep_harness.a"
)
