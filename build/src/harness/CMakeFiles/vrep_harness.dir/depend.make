# Empty dependencies file for vrep_harness.
# This may be replaced when dependencies are built.
