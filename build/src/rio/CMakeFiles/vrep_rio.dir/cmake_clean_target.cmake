file(REMOVE_RECURSE
  "libvrep_rio.a"
)
