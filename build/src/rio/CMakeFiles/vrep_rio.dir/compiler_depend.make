# Empty compiler generated dependencies file for vrep_rio.
# This may be replaced when dependencies are built.
