file(REMOVE_RECURSE
  "CMakeFiles/vrep_rio.dir/arena.cpp.o"
  "CMakeFiles/vrep_rio.dir/arena.cpp.o.d"
  "CMakeFiles/vrep_rio.dir/heap.cpp.o"
  "CMakeFiles/vrep_rio.dir/heap.cpp.o.d"
  "libvrep_rio.a"
  "libvrep_rio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_rio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
