
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rio/arena.cpp" "src/rio/CMakeFiles/vrep_rio.dir/arena.cpp.o" "gcc" "src/rio/CMakeFiles/vrep_rio.dir/arena.cpp.o.d"
  "/root/repo/src/rio/heap.cpp" "src/rio/CMakeFiles/vrep_rio.dir/heap.cpp.o" "gcc" "src/rio/CMakeFiles/vrep_rio.dir/heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vrep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
