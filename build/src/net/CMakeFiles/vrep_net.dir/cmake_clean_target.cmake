file(REMOVE_RECURSE
  "libvrep_net.a"
)
