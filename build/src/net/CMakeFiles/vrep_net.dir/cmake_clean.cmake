file(REMOVE_RECURSE
  "CMakeFiles/vrep_net.dir/transport.cpp.o"
  "CMakeFiles/vrep_net.dir/transport.cpp.o.d"
  "CMakeFiles/vrep_net.dir/wire_repl.cpp.o"
  "CMakeFiles/vrep_net.dir/wire_repl.cpp.o.d"
  "libvrep_net.a"
  "libvrep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
