# Empty compiler generated dependencies file for vrep_net.
# This may be replaced when dependencies are built.
