# Empty dependencies file for vrep_util.
# This may be replaced when dependencies are built.
