file(REMOVE_RECURSE
  "libvrep_util.a"
)
