file(REMOVE_RECURSE
  "CMakeFiles/vrep_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/vrep_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/vrep_util.dir/cli.cpp.o"
  "CMakeFiles/vrep_util.dir/cli.cpp.o.d"
  "CMakeFiles/vrep_util.dir/crc32.cpp.o"
  "CMakeFiles/vrep_util.dir/crc32.cpp.o.d"
  "CMakeFiles/vrep_util.dir/histogram.cpp.o"
  "CMakeFiles/vrep_util.dir/histogram.cpp.o.d"
  "CMakeFiles/vrep_util.dir/table.cpp.o"
  "CMakeFiles/vrep_util.dir/table.cpp.o.d"
  "libvrep_util.a"
  "libvrep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
