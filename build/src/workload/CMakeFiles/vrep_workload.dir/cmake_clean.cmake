file(REMOVE_RECURSE
  "CMakeFiles/vrep_workload.dir/debit_credit.cpp.o"
  "CMakeFiles/vrep_workload.dir/debit_credit.cpp.o.d"
  "CMakeFiles/vrep_workload.dir/order_entry.cpp.o"
  "CMakeFiles/vrep_workload.dir/order_entry.cpp.o.d"
  "CMakeFiles/vrep_workload.dir/workload.cpp.o"
  "CMakeFiles/vrep_workload.dir/workload.cpp.o.d"
  "libvrep_workload.a"
  "libvrep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
