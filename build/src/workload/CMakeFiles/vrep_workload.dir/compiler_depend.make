# Empty compiler generated dependencies file for vrep_workload.
# This may be replaced when dependencies are built.
