file(REMOVE_RECURSE
  "libvrep_workload.a"
)
