file(REMOVE_RECURSE
  "CMakeFiles/vrep_core.dir/api.cpp.o"
  "CMakeFiles/vrep_core.dir/api.cpp.o.d"
  "CMakeFiles/vrep_core.dir/mirror_store.cpp.o"
  "CMakeFiles/vrep_core.dir/mirror_store.cpp.o.d"
  "CMakeFiles/vrep_core.dir/v0_vista.cpp.o"
  "CMakeFiles/vrep_core.dir/v0_vista.cpp.o.d"
  "CMakeFiles/vrep_core.dir/v3_inline_log.cpp.o"
  "CMakeFiles/vrep_core.dir/v3_inline_log.cpp.o.d"
  "libvrep_core.a"
  "libvrep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
