file(REMOVE_RECURSE
  "libvrep_core.a"
)
