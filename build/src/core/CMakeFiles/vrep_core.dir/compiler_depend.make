# Empty compiler generated dependencies file for vrep_core.
# This may be replaced when dependencies are built.
