
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/vrep_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/vrep_core.dir/api.cpp.o.d"
  "/root/repo/src/core/mirror_store.cpp" "src/core/CMakeFiles/vrep_core.dir/mirror_store.cpp.o" "gcc" "src/core/CMakeFiles/vrep_core.dir/mirror_store.cpp.o.d"
  "/root/repo/src/core/v0_vista.cpp" "src/core/CMakeFiles/vrep_core.dir/v0_vista.cpp.o" "gcc" "src/core/CMakeFiles/vrep_core.dir/v0_vista.cpp.o.d"
  "/root/repo/src/core/v3_inline_log.cpp" "src/core/CMakeFiles/vrep_core.dir/v3_inline_log.cpp.o" "gcc" "src/core/CMakeFiles/vrep_core.dir/v3_inline_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rio/CMakeFiles/vrep_rio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vrep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
