file(REMOVE_RECURSE
  "libvrep_sim.a"
)
