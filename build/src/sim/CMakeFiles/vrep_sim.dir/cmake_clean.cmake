file(REMOVE_RECURSE
  "CMakeFiles/vrep_sim.dir/cache_model.cpp.o"
  "CMakeFiles/vrep_sim.dir/cache_model.cpp.o.d"
  "CMakeFiles/vrep_sim.dir/mem_bus.cpp.o"
  "CMakeFiles/vrep_sim.dir/mem_bus.cpp.o.d"
  "CMakeFiles/vrep_sim.dir/memory_channel.cpp.o"
  "CMakeFiles/vrep_sim.dir/memory_channel.cpp.o.d"
  "CMakeFiles/vrep_sim.dir/write_buffer.cpp.o"
  "CMakeFiles/vrep_sim.dir/write_buffer.cpp.o.d"
  "libvrep_sim.a"
  "libvrep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
