# Empty compiler generated dependencies file for vrep_sim.
# This may be replaced when dependencies are built.
