
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cpp" "src/sim/CMakeFiles/vrep_sim.dir/cache_model.cpp.o" "gcc" "src/sim/CMakeFiles/vrep_sim.dir/cache_model.cpp.o.d"
  "/root/repo/src/sim/mem_bus.cpp" "src/sim/CMakeFiles/vrep_sim.dir/mem_bus.cpp.o" "gcc" "src/sim/CMakeFiles/vrep_sim.dir/mem_bus.cpp.o.d"
  "/root/repo/src/sim/memory_channel.cpp" "src/sim/CMakeFiles/vrep_sim.dir/memory_channel.cpp.o" "gcc" "src/sim/CMakeFiles/vrep_sim.dir/memory_channel.cpp.o.d"
  "/root/repo/src/sim/write_buffer.cpp" "src/sim/CMakeFiles/vrep_sim.dir/write_buffer.cpp.o" "gcc" "src/sim/CMakeFiles/vrep_sim.dir/write_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vrep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
