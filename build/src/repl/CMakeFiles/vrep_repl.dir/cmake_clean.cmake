file(REMOVE_RECURSE
  "CMakeFiles/vrep_repl.dir/active.cpp.o"
  "CMakeFiles/vrep_repl.dir/active.cpp.o.d"
  "CMakeFiles/vrep_repl.dir/passive.cpp.o"
  "CMakeFiles/vrep_repl.dir/passive.cpp.o.d"
  "libvrep_repl.a"
  "libvrep_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrep_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
