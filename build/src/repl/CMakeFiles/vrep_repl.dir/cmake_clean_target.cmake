file(REMOVE_RECURSE
  "libvrep_repl.a"
)
