# Empty dependencies file for vrep_repl.
# This may be replaced when dependencies are built.
