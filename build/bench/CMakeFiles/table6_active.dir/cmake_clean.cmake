file(REMOVE_RECURSE
  "CMakeFiles/table6_active.dir/table6_active.cpp.o"
  "CMakeFiles/table6_active.dir/table6_active.cpp.o.d"
  "table6_active"
  "table6_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
