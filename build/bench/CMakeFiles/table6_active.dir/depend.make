# Empty dependencies file for table6_active.
# This may be replaced when dependencies are built.
