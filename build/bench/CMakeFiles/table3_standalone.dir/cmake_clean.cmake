file(REMOVE_RECURSE
  "CMakeFiles/table3_standalone.dir/table3_standalone.cpp.o"
  "CMakeFiles/table3_standalone.dir/table3_standalone.cpp.o.d"
  "table3_standalone"
  "table3_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
