# Empty dependencies file for table3_standalone.
# This may be replaced when dependencies are built.
