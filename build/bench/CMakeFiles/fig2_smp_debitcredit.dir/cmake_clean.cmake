file(REMOVE_RECURSE
  "CMakeFiles/fig2_smp_debitcredit.dir/fig2_smp_debitcredit.cpp.o"
  "CMakeFiles/fig2_smp_debitcredit.dir/fig2_smp_debitcredit.cpp.o.d"
  "fig2_smp_debitcredit"
  "fig2_smp_debitcredit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_smp_debitcredit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
