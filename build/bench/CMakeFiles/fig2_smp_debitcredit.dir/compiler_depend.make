# Empty compiler generated dependencies file for fig2_smp_debitcredit.
# This may be replaced when dependencies are built.
