
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_smp_debitcredit.cpp" "bench/CMakeFiles/fig2_smp_debitcredit.dir/fig2_smp_debitcredit.cpp.o" "gcc" "bench/CMakeFiles/fig2_smp_debitcredit.dir/fig2_smp_debitcredit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/vrep_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/vrep_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vrep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vrep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rio/CMakeFiles/vrep_rio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vrep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vrep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
