# Empty dependencies file for table4_passive.
# This may be replaced when dependencies are built.
