file(REMOVE_RECURSE
  "CMakeFiles/table4_passive.dir/table4_passive.cpp.o"
  "CMakeFiles/table4_passive.dir/table4_passive.cpp.o.d"
  "table4_passive"
  "table4_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
