file(REMOVE_RECURSE
  "CMakeFiles/ablation_undo_shipping.dir/ablation_undo_shipping.cpp.o"
  "CMakeFiles/ablation_undo_shipping.dir/ablation_undo_shipping.cpp.o.d"
  "ablation_undo_shipping"
  "ablation_undo_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_undo_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
