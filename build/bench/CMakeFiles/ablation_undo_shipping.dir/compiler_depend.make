# Empty compiler generated dependencies file for ablation_undo_shipping.
# This may be replaced when dependencies are built.
