file(REMOVE_RECURSE
  "CMakeFiles/fig3_smp_orderentry.dir/fig3_smp_orderentry.cpp.o"
  "CMakeFiles/fig3_smp_orderentry.dir/fig3_smp_orderentry.cpp.o.d"
  "fig3_smp_orderentry"
  "fig3_smp_orderentry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_smp_orderentry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
