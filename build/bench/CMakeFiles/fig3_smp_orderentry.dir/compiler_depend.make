# Empty compiler generated dependencies file for fig3_smp_orderentry.
# This may be replaced when dependencies are built.
