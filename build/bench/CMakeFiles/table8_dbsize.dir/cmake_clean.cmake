file(REMOVE_RECURSE
  "CMakeFiles/table8_dbsize.dir/table8_dbsize.cpp.o"
  "CMakeFiles/table8_dbsize.dir/table8_dbsize.cpp.o.d"
  "table8_dbsize"
  "table8_dbsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_dbsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
