# Empty dependencies file for table8_dbsize.
# This may be replaced when dependencies are built.
