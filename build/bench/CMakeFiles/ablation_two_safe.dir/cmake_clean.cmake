file(REMOVE_RECURSE
  "CMakeFiles/ablation_two_safe.dir/ablation_two_safe.cpp.o"
  "CMakeFiles/ablation_two_safe.dir/ablation_two_safe.cpp.o.d"
  "ablation_two_safe"
  "ablation_two_safe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_safe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
