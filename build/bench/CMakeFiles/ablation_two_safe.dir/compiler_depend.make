# Empty compiler generated dependencies file for ablation_two_safe.
# This may be replaced when dependencies are built.
