# Empty dependencies file for table1_straightforward.
# This may be replaced when dependencies are built.
