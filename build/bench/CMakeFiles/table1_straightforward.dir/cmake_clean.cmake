file(REMOVE_RECURSE
  "CMakeFiles/table1_straightforward.dir/table1_straightforward.cpp.o"
  "CMakeFiles/table1_straightforward.dir/table1_straightforward.cpp.o.d"
  "table1_straightforward"
  "table1_straightforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_straightforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
