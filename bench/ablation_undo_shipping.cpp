// Ablation: the Section 5.1 optimisation.
//
// The paper's mirror versions deliberately do NOT write the range array
// through to the backup, accepting a whole-database copy at takeover in
// exchange for less failure-free traffic. This bench quantifies that trade
// by running the mirror versions both ways.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 60'000;

  Table table("Ablation: shipping the mirror versions' range array (Debit-Credit, TPS)");
  table.set_header({"version", "range array local (paper)", "range array shipped",
                    "meta bytes/txn local", "meta bytes/txn shipped"});
  bench::JsonReport report(args, "ablation_undo_shipping");
  for (const auto version :
       {core::VersionKind::kV1MirrorCopy, core::VersionKind::kV2MirrorDiff}) {
    ExperimentConfig config;
    config.mode = Mode::kPassive;
    config.version = version;
    config.workload = wl::WorkloadKind::kDebitCredit;
    config.txns_per_stream = txns;
    const auto local = run_experiment(config);
    report.add(std::string(core::version_name(version)) + "/range-array-local", config, local);
    config.ship_everything_passive = true;
    const auto shipped = run_experiment(config);
    report.add(std::string(core::version_name(version)) + "/range-array-shipped", config,
               shipped);
    table.add_row(
        {core::version_name(version), bench::tps_cell(local.tps),
         bench::tps_cell(shipped.tps),
         Table::num(local.traffic.meta() / local.committed),
         Table::num(shipped.traffic.meta() / shipped.committed)});
  }
  table.print();
  return report.write() ? 0 : 1;
}
