// Wall-clock rebalance cost: what an online range migration does to live
// traffic, swept over the size of the moving range. A driver thread pushes
// pre-drawn Debit-Credit plans (stamped with the pre-split map version)
// through ShardedCluster::execute() while the main thread runs the
// Rebalancer begin-split -> step -> cutover loop; the bench reports the
// per-transaction latency p99 before and during the migration, the bytes
// and chunks the migration shipped, and the fenced-cutover stall.
//
// Wall-clock numbers are machine-dependent: the JSON root is marked
// "wallclock": true and check_drift.py compares only the deterministic
// fields exactly — config identity, committed/cross counts (plans come from
// fixed seeds, and a stale-stamped plan re-routes rather than aborts, so
// counts never depend on where the cutover lands), the moving-set size
// (a pure function of the two maps and the record population), and the
// consistency verdict — while sanity-checking the timing fields.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "shard/rebalancer.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/check.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace vrep::bench {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int run_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  JsonReport report(args, "rebalance_cost");
  report.set_root("wallclock", Json(true));
  report.set_root("hw_threads", Json(std::thread::hardware_concurrency()));

  std::uint64_t txns = 24'000;
  std::uint64_t warmup = 4'000;
  if (args.has("quick")) {
    txns = 4'000;
    warmup = 1'000;
  }
  txns = static_cast<std::uint64_t>(args.get_int("txns", static_cast<std::int64_t>(txns)));

  Table table("Rebalance cost (wall clock, 2 shards + 1 backup each, 2-safe)");
  table.set_header({"moved", "moving recs", "bytes", "chunks", "cutover us",
                    "p99 before us", "p99 during us", "retried 2PC", "seconds", "tps"});

  // Moved slice of shard 0's range: 1/8, 1/4, 1/2.
  for (const unsigned denom : {8u, 4u, 2u}) {
    shard::ShardedConfig config;
    config.shards = 2;
    config.backups_per_shard = 1;
    config.two_safe = true;
    shard::ShardedCluster cluster(config);

    // Populate balances off the measured path so the migration has real
    // bytes to move, then pre-draw every measured plan against the v1 map.
    VREP_CHECK(cluster.run(/*seed=*/7, warmup, /*remote_fraction=*/0.2).committed == warmup);
    const shard::Router router(cluster.map());
    Rng rng(0xbeefcafe + denom);
    std::vector<shard::TxnDecision> plans;
    plans.reserve(txns);
    std::uint64_t cross_planned = 0;
    for (std::uint64_t n = 0; n < txns; ++n) {
      plans.push_back(shard::plan_txn(router, cluster.workload(), cluster.num_shards(),
                                      rng, 0.2));
      cross_planned += plans.back().cross ? 1 : 0;
    }

    // The upper `1/denom` slice of shard 0's range migrates to a new shard.
    const std::uint64_t upper0 = cluster.map().upper_bound(0);
    const std::uint64_t at_hash = upper0 - upper0 / denom;
    const std::size_t moving = shard::Rebalancer::moving_records(
        cluster.map(), shard::ShardMap(cluster.map()).split(at_hash), cluster.workload());

    Histogram before_ns, during_ns;
    const std::uint64_t half = txns / 2;
    const auto start = std::chrono::steady_clock::now();
    // Phase A: plain traffic, no migration anywhere.
    for (std::uint64_t n = 0; n < half; ++n) {
      const std::uint64_t t0 = now_ns();
      VREP_CHECK(cluster.execute(plans[n]));
      before_ns.add(now_ns() - t0);
    }
    // Phase B: same traffic racing the migration; the driver keeps going
    // after the cutover (stale-stamped plans re-route, counted below).
    std::thread driver([&] {
      for (std::uint64_t n = half; n < txns; ++n) {
        const std::uint64_t t0 = now_ns();
        VREP_CHECK(cluster.execute(plans[n]));
        during_ns.add(now_ns() - t0);
      }
    });
    shard::Rebalancer rebalancer(cluster, shard::Rebalancer::Config{64});
    rebalancer.begin_split(0, at_hash);
    while (true) {
      if (!rebalancer.step() && rebalancer.cutover()) break;
    }
    driver.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    // The bench doubles as the acceptance gate: zero committed loss (every
    // execute above CHECKed), zero resolution conflicts, replicas converged,
    // global invariant intact.
    bool consistent = cluster.check_global_consistency().empty() &&
                      cluster.resolution_conflicts() == 0;
    for (shard::ShardId id = 0; id < cluster.num_shards(); ++id) {
      consistent = consistent && cluster.check_replicas(id).empty() &&
                   cluster.in_doubt(id) == 0;
    }
    VREP_CHECK(consistent);
    const shard::ShardedCluster::RebalanceCounters c = cluster.rebalance_counters();
    VREP_CHECK(c.cutovers == 1);
    const double tps = seconds > 0 ? static_cast<double>(txns) / seconds : 0.0;

    Json cell = Json::object();
    cell.set("name", "moved_1_" + std::to_string(denom));
    cell.set("workload", "debit_credit");
    cell.set("shards", Json(config.shards));
    cell.set("split_denom", Json(denom));
    cell.set("txns", Json(txns));
    cell.set("committed", Json(txns));
    cell.set("cross_committed", Json(cross_planned));
    cell.set("moving_records", Json(static_cast<std::uint64_t>(moving)));
    cell.set("consistent", Json(consistent));
    cell.set("seconds", Json(seconds));
    cell.set("tps", Json(tps));
    cell.set("bytes_moved", Json(c.bytes_moved));
    cell.set("chunks", Json(c.chunks));
    cell.set("cutover_stall_ns", Json(c.cutover_stall_ns));
    cell.set("retried_2pc", Json(c.retried_2pc));
    cell.set("stall_p99_before_ns", Json(before_ns.percentile(0.99)));
    cell.set("stall_p99_during_ns", Json(during_ns.percentile(0.99)));
    report.add_cell(std::move(cell));

    const auto us = [](std::uint64_t ns) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(ns) / 1e3);
      return std::string(buf);
    };
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.3f", seconds);
    table.add_row({"1/" + std::to_string(denom), Table::num(moving),
                   Table::num(c.bytes_moved), Table::num(c.chunks),
                   us(c.cutover_stall_ns), us(before_ns.percentile(0.99)),
                   us(during_ns.percentile(0.99)), Table::num(c.retried_2pc), secs,
                   tps_cell(tps)});
  }
  table.print();
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vrep::bench

int main(int argc, char** argv) { return vrep::bench::run_main(argc, argv); }
