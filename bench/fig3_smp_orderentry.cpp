// Figure 3: transaction throughput using an SMP as the primary,
// Order-Entry benchmark (Section 8).
#include "fig_smp_common.hpp"

using namespace vrep;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 10'000 : 30'000;

  // Paper Figure 3 series, eyeballed from the plot.
  const double paper[4][4] = {
      {74'000, 148'000, 220'000, 290'000},  // Active
      {56'000, 90'000, 98'000, 100'000},    // Pass. Ver. 3
      {51'000, 60'000, 62'000, 63'000},     // Pass. Ver. 2
      {49'000, 58'000, 60'000, 61'000},     // Pass. Ver. 1
  };
  bench::JsonReport report(args, "fig3_smp_orderentry");
  bench::run_smp_figure("Figure 3: SMP primary, Order-Entry",
                        wl::WorkloadKind::kOrderEntry, paper, txns, report);
  return report.write() ? 0 : 1;
}
