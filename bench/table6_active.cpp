// Tables 6 and 7: the active backup vs the best passive scheme (Section 6).
// Table 6: throughput. Table 7: shipped bytes — the active scheme sends no
// undo data at all, only modified data plus (more) meta-data.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto scale = bench::Scale::from_args(args);

  const double paper_tps[2][2] = {{275512, 314861}, {56248, 73940}};  // passive, active
  const double paper_data[2][2][3] = {
      {{140.8, 323.2, 141.4}, {140.8, 0, 141.4}},  // DC: passive V3, active
      {{38.9, 199.8, 14.5}, {38.9, 0, 24.7}},      // OE
  };
  const wl::WorkloadKind workloads[] = {wl::WorkloadKind::kDebitCredit,
                                        wl::WorkloadKind::kOrderEntry};

  Table t6("Table 6: Passive (best, Version 3) vs Active backup throughput (TPS)");
  t6.set_header({"benchmark", "config", "paper", "ours", "ratio"});
  Table t7("Table 7: Data transferred, active vs best passive (MB, normalised)");
  t7.set_header({"benchmark", "config", "modified p/o", "undo p/o", "meta p/o", "total p/o"});

  bench::JsonReport report(args, "table6_active");
  for (int w = 0; w < 2; ++w) {
    ExperimentConfig config;
    config.workload = workloads[w];
    config.txns_per_stream = scale.txns(workloads[w]);
    config.version = core::VersionKind::kV3InlineLog;

    config.mode = Mode::kPassive;
    const auto passive = run_experiment(config);
    report.add(std::string("passive-v3/") + wl::workload_name(workloads[w]), config, passive,
               paper_tps[w][0]);
    config.mode = Mode::kActive;
    const auto active = run_experiment(config);
    report.add(std::string("active/") + wl::workload_name(workloads[w]), config, active,
               paper_tps[w][1]);

    const char* name = wl::workload_name(workloads[w]);
    t6.add_row({name, "Best Passive (Version 3)", Table::num(paper_tps[w][0], 0),
                bench::tps_cell(passive.tps), bench::ratio_cell(passive.tps, paper_tps[w][0])});
    t6.add_row({name, "Active", Table::num(paper_tps[w][1], 0), bench::tps_cell(active.tps),
                bench::ratio_cell(active.tps, paper_tps[w][1])});

    const std::uint64_t pn = bench::paper_txns(workloads[w]);
    const harness::ExperimentResult* rs[2] = {&passive, &active};
    const char* labels[2] = {"Best Passive (Version 3)", "Active"};
    for (int c = 0; c < 2; ++c) {
      const auto& r = *rs[c];
      const double total_paper =
          paper_data[w][c][0] + paper_data[w][c][1] + paper_data[w][c][2];
      t7.add_row({name, labels[c],
                  Table::num(paper_data[w][c][0], 1) + " / " +
                      bench::mb_cell(r.traffic.modified(), r.committed, pn),
                  Table::num(paper_data[w][c][1], 1) + " / " +
                      bench::mb_cell(r.traffic.undo(), r.committed, pn),
                  Table::num(paper_data[w][c][2], 1) + " / " +
                      bench::mb_cell(r.traffic.meta(), r.committed, pn),
                  Table::num(total_paper, 1) + " / " +
                      bench::mb_cell(r.traffic.total(), r.committed, pn)});
    }
  }
  t6.print();
  std::puts("");
  t7.print();
  return report.write() ? 0 : 1;
}
