// Tables 4 and 5: primary-backup with a passive backup (Section 5).
// Table 4: throughput of Versions 0-3 under write-through replication.
// Table 5: the shipped bytes broken down into modified / undo / meta.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto scale = bench::Scale::from_args(args);

  const double paper_tps[2][4] = {
      {38735, 119494, 131574, 275512},  // Debit-Credit
      {27035, 49072, 51219, 56248},     // Order-Entry
  };
  // Table 5 (MB): modified, undo, meta, per version.
  const double paper_data[2][4][3] = {
      {{140.8, 323.2, 6708.4}, {140.8, 323.2, 40.4}, {140.8, 140.8, 40.4},
       {140.8, 323.2, 141.4}},
      {{38.9, 199.8, 433.6}, {38.9, 199.8, 3.7}, {38.9, 38.9, 3.7}, {38.9, 199.8, 14.5}},
  };
  const core::VersionKind versions[] = {
      core::VersionKind::kV0Vista,
      core::VersionKind::kV1MirrorCopy,
      core::VersionKind::kV2MirrorDiff,
      core::VersionKind::kV3InlineLog,
  };
  const wl::WorkloadKind workloads[] = {wl::WorkloadKind::kDebitCredit,
                                        wl::WorkloadKind::kOrderEntry};

  Table t4("Table 4: Primary-backup throughput, passive backup (TPS)");
  t4.set_header({"version", "DC paper", "DC ours", "ratio", "OE paper", "OE ours", "ratio"});
  Table t5("Table 5: Data transferred to the passive backup (MB, normalised to the paper's"
           " transaction counts)");
  t5.set_header({"benchmark", "version", "modified p/o", "undo p/o", "meta p/o", "total p/o"});

  bench::JsonReport report(args, "table4_passive");
  harness::ExperimentResult results[2][4];
  for (int w = 0; w < 2; ++w) {
    for (int v = 0; v < 4; ++v) {
      ExperimentConfig config;
      config.version = versions[v];
      config.mode = Mode::kPassive;
      config.workload = workloads[w];
      config.txns_per_stream = scale.txns(workloads[w]);
      results[w][v] = run_experiment(config);
      report.add(std::string(core::version_name(versions[v])) + "/" +
                     wl::workload_name(workloads[w]),
                 config, results[w][v], paper_tps[w][v]);
    }
  }

  for (int v = 0; v < 4; ++v) {
    t4.add_row({core::version_name(versions[v]), Table::num(paper_tps[0][v], 0),
                bench::tps_cell(results[0][v].tps),
                bench::ratio_cell(results[0][v].tps, paper_tps[0][v]),
                Table::num(paper_tps[1][v], 0), bench::tps_cell(results[1][v].tps),
                bench::ratio_cell(results[1][v].tps, paper_tps[1][v])});
  }
  for (int w = 0; w < 2; ++w) {
    for (int v = 0; v < 4; ++v) {
      const auto& r = results[w][v];
      const std::uint64_t n = r.committed;
      const std::uint64_t pn = bench::paper_txns(workloads[w]);
      const double total_paper =
          paper_data[w][v][0] + paper_data[w][v][1] + paper_data[w][v][2];
      t5.add_row({wl::workload_name(workloads[w]), core::version_name(versions[v]),
                  Table::num(paper_data[w][v][0], 1) + " / " +
                      bench::mb_cell(r.traffic.modified(), n, pn),
                  Table::num(paper_data[w][v][1], 1) + " / " +
                      bench::mb_cell(r.traffic.undo(), n, pn),
                  Table::num(paper_data[w][v][2], 1) + " / " +
                      bench::mb_cell(r.traffic.meta(), n, pn),
                  Table::num(total_paper, 1) + " / " +
                      bench::mb_cell(r.traffic.total(), n, pn)});
    }
  }
  t4.print();
  std::puts("");
  t5.print();
  return report.write() ? 0 : 1;
}
