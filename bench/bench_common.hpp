// Shared plumbing for the table/figure reproduction binaries. Each binary
// reruns one experiment from the paper's evaluation and prints our measured
// numbers next to the paper's, plus the ratio — the *shape* (ordering,
// rough factors, crossovers) is what the reproduction claims; see
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace vrep::bench {

// Standard per-cell transaction counts; --quick on any bench shrinks them.
struct Scale {
  std::uint64_t dc_txns = 100'000;
  std::uint64_t oe_txns = 60'000;

  static Scale from_args(const CliArgs& args) {
    Scale s;
    if (args.has("quick")) {
      s.dc_txns = 20'000;
      s.oe_txns = 12'000;
    }
    s.dc_txns = static_cast<std::uint64_t>(args.get_int("txns", static_cast<long>(s.dc_txns)));
    s.oe_txns = static_cast<std::uint64_t>(
        args.get_int("txns", static_cast<long>(s.oe_txns)));
    return s;
  }

  std::uint64_t txns(wl::WorkloadKind w) const {
    return w == wl::WorkloadKind::kDebitCredit ? dc_txns : oe_txns;
  }
};

inline std::string tps_cell(double measured) {
  return Table::num(static_cast<std::uint64_t>(measured + 0.5));
}

inline std::string ratio_cell(double measured, double paper) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", paper == 0 ? 0.0 : measured / paper);
  return buf;
}

inline std::string mb_cell(std::uint64_t bytes, std::uint64_t txns, std::uint64_t paper_txns) {
  // The paper reports absolute MB for its (much longer) runs; normalise our
  // per-transaction volumes to the paper's transaction count so the columns
  // are directly comparable.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(bytes) / static_cast<double>(txns) *
                    static_cast<double>(paper_txns) / 1e6);
  return buf;
}

// The paper's runs executed this many transactions (derived from its
// reported throughput x execution time); used to normalise data volumes.
constexpr std::uint64_t kPaperTxnsDebitCredit = 4'984'000;
constexpr std::uint64_t kPaperTxnsOrderEntry = 457'000;

inline std::uint64_t paper_txns(wl::WorkloadKind w) {
  return w == wl::WorkloadKind::kDebitCredit ? kPaperTxnsDebitCredit : kPaperTxnsOrderEntry;
}

// Machine-readable twin of the printed tables. Every bench binary owns one;
// when the user passed `--json <path>` the per-cell measurements plus a
// snapshot of the global metrics registry are written there on write().
// Deliberately timestamp-free so regenerated files diff cleanly against the
// committed BENCH_*.json baselines.
class JsonReport {
 public:
  JsonReport(const CliArgs& args, std::string bench_name)
      : path_(args.get_string("json", "")), root_(Json::object()) {
    root_.set("bench", std::move(bench_name));
  }

  bool enabled() const { return !path_.empty(); }

  // Root-level annotation next to "bench" (e.g. the wallclock flag and
  // hw_threads count that switch check_drift.py into shape mode).
  void set_root(const std::string& key, Json value) { root_.set(key, std::move(value)); }

  static Json histogram_json(const Histogram& h) {
    Json j = Json::object();
    j.set("count", Json(h.total_count()));
    j.set("mean", Json(h.mean()));
    j.set("p50", Json(h.percentile(0.50)));
    j.set("p90", Json(h.percentile(0.90)));
    j.set("p99", Json(h.percentile(0.99)));
    j.set("max", Json(h.max_seen()));
    return j;
  }

  // One experiment cell: config identity + the full ExperimentResult,
  // including the per-class traffic breakdown and commit-latency percentiles.
  void add(const std::string& name, const harness::ExperimentConfig& config,
           const harness::ExperimentResult& r, double paper_tps = 0) {
    Json cell = Json::object();
    cell.set("name", name);
    cell.set("version", core::version_name(config.version));
    cell.set("mode", harness::mode_name(config.mode));
    cell.set("workload", wl::workload_name(config.workload));
    cell.set("streams", Json(config.streams));
    cell.set("txns_per_stream", Json(config.txns_per_stream));
    cell.set("committed", Json(r.committed));
    cell.set("seconds", Json(r.seconds));
    cell.set("tps", Json(r.tps));
    if (paper_tps > 0) {
      cell.set("paper_tps", Json(paper_tps));
      cell.set("tps_ratio", Json(r.tps / paper_tps));
    }
    Json traffic = Json::object();
    traffic.set("modified_bytes", Json(r.traffic.modified()));
    traffic.set("undo_bytes", Json(r.traffic.undo()));
    traffic.set("meta_bytes", Json(r.traffic.meta()));
    traffic.set("total_bytes", Json(r.traffic.total()));
    cell.set("traffic", std::move(traffic));
    cell.set("packets", Json(r.packets));
    cell.set("avg_packet_bytes", Json(r.avg_packet_bytes));
    cell.set("link_utilization", Json(r.link_utilization));
    cell.set("mc_stall_seconds", Json(r.mc_stall_seconds));
    cell.set("flow_stall_seconds", Json(r.flow_stall_seconds));
    cell.set("commit_latency_ns", histogram_json(r.commit_latency_ns));
    add_cell(std::move(cell));
  }

  // Custom cells for benches that don't go through run_experiment (Figure 1
  // bandwidth sweeps, recovery-time probes, ...).
  void add_cell(Json cell) { cells_.push(std::move(cell)); }

  // Attach the registry snapshot and write the file. No-op without --json.
  bool write() {
    if (!enabled()) return true;
    root_.set("cells", std::move(cells_));
    root_.set("metrics", metrics::Registry::global().snapshot().to_json());
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      return false;
    }
    const std::string text = root_.dump(2);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (ok) std::fprintf(stderr, "wrote %s\n", path_.c_str());
    return ok;
  }

 private:
  std::string path_;
  Json root_;
  Json cells_ = Json::array();
};

}  // namespace vrep::bench
