// Shared plumbing for the table/figure reproduction binaries. Each binary
// reruns one experiment from the paper's evaluation and prints our measured
// numbers next to the paper's, plus the ratio — the *shape* (ordering,
// rough factors, crossovers) is what the reproduction claims; see
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace vrep::bench {

// Standard per-cell transaction counts; --quick on any bench shrinks them.
struct Scale {
  std::uint64_t dc_txns = 100'000;
  std::uint64_t oe_txns = 60'000;

  static Scale from_args(const CliArgs& args) {
    Scale s;
    if (args.has("quick")) {
      s.dc_txns = 20'000;
      s.oe_txns = 12'000;
    }
    s.dc_txns = static_cast<std::uint64_t>(args.get_int("txns", static_cast<long>(s.dc_txns)));
    s.oe_txns = static_cast<std::uint64_t>(
        args.get_int("txns", static_cast<long>(s.oe_txns)));
    return s;
  }

  std::uint64_t txns(wl::WorkloadKind w) const {
    return w == wl::WorkloadKind::kDebitCredit ? dc_txns : oe_txns;
  }
};

inline std::string tps_cell(double measured) {
  return Table::num(static_cast<std::uint64_t>(measured + 0.5));
}

inline std::string ratio_cell(double measured, double paper) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", paper == 0 ? 0.0 : measured / paper);
  return buf;
}

inline std::string mb_cell(std::uint64_t bytes, std::uint64_t txns, std::uint64_t paper_txns) {
  // The paper reports absolute MB for its (much longer) runs; normalise our
  // per-transaction volumes to the paper's transaction count so the columns
  // are directly comparable.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(bytes) / static_cast<double>(txns) *
                    static_cast<double>(paper_txns) / 1e6);
  return buf;
}

// The paper's runs executed this many transactions (derived from its
// reported throughput x execution time); used to normalise data volumes.
constexpr std::uint64_t kPaperTxnsDebitCredit = 4'984'000;
constexpr std::uint64_t kPaperTxnsOrderEntry = 457'000;

inline std::uint64_t paper_txns(wl::WorkloadKind w) {
  return w == wl::WorkloadKind::kDebitCredit ? kPaperTxnsDebitCredit : kPaperTxnsOrderEntry;
}

}  // namespace vrep::bench
