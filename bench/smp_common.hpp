// Shared driver for the wall-clock SMP benches (smp_debitcredit,
// smp_orderentry). Unlike the fig2/fig3 binaries — which *simulate* an SMP
// primary by running independent streams against the cost model — these
// spawn real OS threads through exec::SmpExecutor and measure elapsed time,
// sweeping the worker count (--threads 1,2,4) against a live in-process
// backup (2-safe, group commit W=8/G=4, matching the paper's replicated
// configuration).
//
// Wall-clock numbers are machine-dependent, so the emitted JSON marks the
// root with "wallclock": true plus the host's "hw_threads"; check_drift.py
// switches to shape mode for these files: deterministic fields (committed
// counts, config identity, crc_match) are compared exactly, while
// seconds/tps are only sanity- and shape-checked (monotone scaling when the
// host actually has the cores). See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exec/smp_executor.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport_link.hpp"
#include "net/wire_repl.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace vrep::bench {

// "--threads 1,2,4" -> {1,2,4}; any non-digit separates; empty -> default.
inline std::vector<unsigned> parse_threads_list(const std::string& spec) {
  std::vector<unsigned> out;
  unsigned cur = 0;
  bool have = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<unsigned>(c - '0');
      have = true;
    } else {
      if (have && cur > 0) out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have && cur > 0) out.push_back(cur);
  if (out.empty()) out = {1, 2, 4};
  return out;
}

inline int run_smp_bench_main(int argc, char** argv, wl::WorkloadKind kind,
                              const char* bench_name, const char* title) {
  const CliArgs args(argc, argv);
  JsonReport report(args, bench_name);
  const unsigned hw = std::thread::hardware_concurrency();
  report.set_root("wallclock", Json(true));
  report.set_root("hw_threads", Json(hw));

  std::uint64_t txns = kind == wl::WorkloadKind::kDebitCredit ? 30'000 : 15'000;
  if (args.has("quick")) txns = 5'000;
  txns = static_cast<std::uint64_t>(args.get_int("txns", static_cast<std::int64_t>(txns)));
  const std::vector<unsigned> sweep = parse_threads_list(args.get_string("threads", "1,2,4"));

  Table table(std::string(title) + " (wall clock, 2-safe W=8 G=4, hw_threads=" +
              std::to_string(hw) + ")");
  table.set_header({"workers", "partitions", "committed", "seconds", "tps",
                    "latch waits", "queue waits"});

  for (const unsigned workers : sweep) {
    exec::SmpConfig config;
    config.workload = kind;
    config.workers = workers;
    config.txns_per_worker = txns;
    config.two_safe = true;
    config.commit_window = 8;
    config.group_size = 4;
    if (kind == wl::WorkloadKind::kOrderEntry) config.partition_db_size = 4u << 20;

    net::InprocTransport primary_end, backup_end;
    net::InprocTransport::pair(primary_end, backup_end);
    net::TransportLink link{&primary_end};
    exec::SmpExecutor executor(config, &link);
    rio::Arena arena = rio::Arena::create(executor.image_size());
    net::WireBackup backup(arena);
    std::thread serve([&] {
      net::WireBackup::ServeOptions options;
      options.idle_timeout_ms = 200;
      while (backup.serve(backup_end, options) ==
             net::WireBackup::ServeResult::kPrimaryFailed) {
      }
    });
    VREP_CHECK(executor.sync_backup());
    const auto result = executor.run();
    primary_end.close_peer();
    serve.join();

    // The bench doubles as a correctness gate: every committed transaction
    // must have reached the backup and the images must be byte-identical.
    VREP_CHECK(backup.applied_seq() == result.committed);
    const bool crc_match = Crc32::of(executor.image(), executor.image_size()) ==
                           Crc32::of(backup.db(), executor.image_size());
    VREP_CHECK(crc_match);

    Json cell = Json::object();
    cell.set("name", std::to_string(workers) + "w");
    cell.set("workload", wl::workload_name(kind));
    cell.set("workers", Json(workers));
    cell.set("partitions", Json(executor.partition_count()));
    cell.set("txns_per_worker", Json(txns));
    cell.set("committed", Json(result.committed));
    cell.set("window", Json(config.commit_window));
    cell.set("group", Json(config.group_size));
    cell.set("two_safe", Json(config.two_safe));
    cell.set("backup_applied", Json(backup.applied_seq()));
    cell.set("crc_match", Json(crc_match));
    cell.set("seconds", Json(result.seconds));
    cell.set("tps", Json(result.tps));
    cell.set("latch_contended", Json(result.latch_contended));
    cell.set("queue_full_waits", Json(result.queue_full_waits));
    report.add_cell(std::move(cell));

    char secs[32];
    std::snprintf(secs, sizeof secs, "%.3f", result.seconds);
    table.add_row({std::to_string(workers), std::to_string(executor.partition_count()),
                   Table::num(result.committed), secs, tps_cell(result.tps),
                   Table::num(result.latch_contended),
                   Table::num(result.queue_full_waits)});
  }
  table.print();
  return report.write() ? 0 : 1;
}

}  // namespace vrep::bench
