// Ablation: Memory Channel adapter FIFO depth.
//
// The FIFO is the only overlap between transaction processing and the SAN:
// deeper FIFOs hide more link time from the CPU. The paper's measured
// behaviour (communication time adding almost linearly to execution time)
// corresponds to a shallow FIFO; this sweep shows how sensitive the passive
// results are to that assumption.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 60'000;

  Table table("Ablation: adapter FIFO depth (Debit-Credit, passive backup, TPS)");
  table.set_header({"fifo depth", "V1 mirror-copy", "V3 inline-log", "V3 stall us/txn"});
  bench::JsonReport report(args, "ablation_fifo_depth");
  for (const int depth : {1, 2, 3, 8, 32, 128}) {
    ExperimentConfig config;
    config.mode = Mode::kPassive;
    config.workload = wl::WorkloadKind::kDebitCredit;
    config.txns_per_stream = txns;
    config.cost.fifo_depth = depth;
    config.version = core::VersionKind::kV1MirrorCopy;
    const auto v1 = run_experiment(config);
    report.add("V1/depth-" + std::to_string(depth), config, v1);
    config.version = core::VersionKind::kV3InlineLog;
    const auto v3 = run_experiment(config);
    report.add("V3/depth-" + std::to_string(depth), config, v3);
    char stall[32];
    std::snprintf(stall, sizeof stall, "%.2f",
                  v3.mc_stall_seconds * 1e6 / static_cast<double>(v3.committed));
    table.add_row({std::to_string(depth), bench::tps_cell(v1.tps), bench::tps_cell(v3.tps),
                   stall});
  }
  table.print();
  return report.write() ? 0 : 1;
}
