// Ablation: write-buffer coalescing on vs off.
//
// The paper's central mechanism is that contiguous stores merge into
// 32-byte Memory Channel packets. Disabling the merge in the model (every
// store becomes its own packet) should collapse the logging schemes'
// advantage — isolating how much of Version 3's and Active's win is the
// Figure 1 effect rather than anything else.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 60'000;

  struct Scheme {
    const char* name;
    Mode mode;
    core::VersionKind version;
  };
  const Scheme schemes[] = {
      {"Pass. Ver. 1 (mirror copy)", Mode::kPassive, core::VersionKind::kV1MirrorCopy},
      {"Pass. Ver. 3 (inline log)", Mode::kPassive, core::VersionKind::kV3InlineLog},
      {"Active", Mode::kActive, core::VersionKind::kV3InlineLog},
  };

  Table table("Ablation: write-buffer coalescing (Debit-Credit, passive/active, TPS)");
  table.set_header({"scheme", "coalescing ON", "avg pkt", "coalescing OFF", "avg pkt",
                    "speedup from coalescing"});
  bench::JsonReport report(args, "ablation_coalescing");
  for (const Scheme& s : schemes) {
    ExperimentConfig config;
    config.mode = s.mode;
    config.version = s.version;
    config.workload = wl::WorkloadKind::kDebitCredit;
    config.txns_per_stream = txns;
    const auto on = run_experiment(config);
    report.add(std::string(s.name) + "/coalescing-on", config, on);
    config.cost.write_buffer_coalescing = false;
    const auto off = run_experiment(config);
    report.add(std::string(s.name) + "/coalescing-off", config, off);
    table.add_row({s.name, bench::tps_cell(on.tps), Table::num(on.avg_packet_bytes, 1) + "B",
                   bench::tps_cell(off.tps), Table::num(off.avg_packet_bytes, 1) + "B",
                   bench::ratio_cell(on.tps, off.tps) + "x"});
  }
  table.print();
  std::puts("Logging schemes owe their edge to coalescing; once every store is its own\n"
            "packet, they pay per-packet costs on every word just like mirroring does.");
  return report.write() ? 0 : 1;
}
