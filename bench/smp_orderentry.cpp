// Wall-clock SMP Order-Entry: real worker threads through exec::SmpExecutor
// against a live in-process backup. The measured counterpart to the
// simulated Figure 3 sweep (fig3_smp_orderentry).
#include "smp_common.hpp"

int main(int argc, char** argv) {
  return vrep::bench::run_smp_bench_main(argc, argv, vrep::wl::WorkloadKind::kOrderEntry,
                                         "smp_orderentry", "SMP Order-Entry");
}
