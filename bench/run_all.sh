#!/usr/bin/env sh
# Regenerate the committed BENCH_*.json perf-trajectory baselines.
#
# Usage:  bench/run_all.sh [build-dir] [extra bench args...]
#   bench/run_all.sh                 # full-scale run from ./build into repo root
#   bench/run_all.sh build --quick   # fast smoke (CI uses this)
#
# Each file is the bench binary's --json output: per-cell tps, traffic
# breakdown by TrafficClass, packet counts, commit-latency percentiles, plus
# a snapshot of the process-wide metrics registry. The files are
# timestamp-free, so `git diff` against the committed baselines shows real
# measurement drift only. See EXPERIMENTS.md ("Regenerating the BENCH
# baselines").
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
[ $# -gt 0 ] && shift

for pair in \
    "table3_standalone BENCH_table3.json" \
    "table4_passive BENCH_table4.json" \
    "table6_active BENCH_table6.json" \
    "fig1_bandwidth BENCH_fig1.json" \
    "availability_failover BENCH_availability.json" \
    "ablation_two_safe BENCH_ablation_two_safe.json" \
    "recovery_time BENCH_recovery.json" \
    "smp_debitcredit BENCH_smp_debitcredit.json" \
    "smp_orderentry BENCH_smp_orderentry.json" \
    "shard_scaling BENCH_shards.json" \
    "rebalance_cost BENCH_rebalance.json" \
    "read_scaling BENCH_read_scaling.json"; do
  bin="${pair% *}"
  out="${pair#* }"
  echo "== $bin -> $out"
  "$BUILD/bench/$bin" --json "$out" "$@"
done
echo "done; diff with: git diff -- 'BENCH_*.json'"
