// Wall-clock read scaling through the epoll front end: N TCP client
// connections multiplexed by one net::AsyncServer onto two replicated
// shards (WirePrimary -> WireBackup over in-process transports, 2-safe with
// an open commit window, so every write is an asynchronous ticket resolved
// by poll_acks). Each client runs a think-time loop: commit an 8-byte value
// (ticket S), then read it back from the shard's BACKUP with min_seq = S —
// the read-your-writes path — pausing a drawn think time between ops so the
// server juggles many idle connections, not N busy pollers.
//
// Reported per connection-count cell: total op throughput plus p99/p999
// client-observed commit and read latency. The bench doubles as a
// correctness gate: every commit must resolve kDurable, every read must
// eventually be served kOk at at_seq >= its ticket with the bytes the
// client wrote ("watermark_consistent").
//
// Wall-clock numbers are machine-dependent: the JSON root carries
// "wallclock": true and check_drift.py compares only the deterministic
// fields (connections, ops_per_conn, read/write op counts, the consistency
// verdict) exactly, sanity-checking seconds/tps and the latency
// percentiles.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/async_server.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "rio/arena.hpp"
#include "sim/traffic.hpp"
#include "util/check.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace vrep::bench {
namespace {

constexpr std::size_t kDbSize = 1u << 20;
constexpr unsigned kShards = 2;
constexpr std::uint64_t kValueOff = 4096;  // client slots start past page 0

core::StoreConfig shard_config() {
  core::StoreConfig config;
  config.db_size = kDbSize;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

// One replicated shard behind the server: the same composition the
// async_server tests use, sized for an open-loop client crowd.
struct Shard {
  Shard()
      : arena(rio::Arena::create(
            core::required_arena_size(core::VersionKind::kV3InlineLog, shard_config()))),
        replica(rio::Arena::create(kDbSize)) {
    net::InprocTransport::pair(primary_end, backup_end);
    primary = std::make_unique<net::WirePrimary>(arena, shard_config(), &primary_end,
                                                 /*format=*/true);
    primary->set_two_safe(true);
    primary->set_commit_window(32);
    backup = std::make_unique<net::WireBackup>(replica);
    backup_thread = std::thread([this] { backup->serve(backup_end, 10'000); });
    VREP_CHECK(primary->sync_backup());
  }

  ~Shard() {
    primary_end.close_peer();
    backup_end.close_peer();
    backup_thread.join();
  }

  std::uint64_t submit(const std::uint8_t* op, std::size_t len) {
    if (len < 16) return 0;
    std::uint64_t off, value;
    std::memcpy(&off, op, 8);
    std::memcpy(&value, op + 8, 8);
    if (off + 8 > kDbSize) return 0;
    std::uint8_t* db = primary->db();
    primary->begin_transaction();
    primary->set_range(db + off, 8);
    primary->bus().write(db + off, &value, 8, sim::TrafficClass::kModified);
    primary->commit_transaction();
    return primary->committed_seq();
  }

  net::AsyncServer::ShardEndpoint endpoint() {
    net::AsyncServer::ShardEndpoint ep;
    ep.submit = [this](std::uint64_t, const std::uint8_t* op, std::size_t len) {
      return submit(op, len);
    };
    ep.ticket_state = [this](std::uint64_t seq) {
      return primary->pipeline().ticket_state(repl::RedoPipeline::CommitTicket{seq});
    };
    ep.poll = [this] { primary->pipeline().poll_acks(); };
    ep.replicas.push_back(net::AsyncServer::Replica{
        [this](std::uint64_t off, std::uint32_t len, std::uint64_t min_seq,
               std::uint8_t* out) { return backup->read(off, len, min_seq, out); },
        [this] { return primary->peer_acked_seq(0); }});
    return ep;
  }

  rio::Arena arena;
  rio::Arena replica;
  net::InprocTransport primary_end, backup_end;
  std::unique_ptr<net::WirePrimary> primary;
  std::unique_ptr<net::WireBackup> backup;
  std::thread backup_thread;
};

// ---- client side ------------------------------------------------------------

struct ClientResult {
  Histogram commit_ns;
  Histogram read_ns;
  std::uint64_t read_bounces = 0;
  bool consistent = true;
};

// One connection's think-time loop. Offsets are per-connection, so the
// read-back value check is exact even with every client in flight at once.
void run_client(std::uint16_t port, unsigned conn, std::uint64_t ops, unsigned think_max_us,
                ClientResult* result) {
  net::TcpTransport client;
  if (!client.connect_to("127.0.0.1", port, 10'000)) {
    result->consistent = false;
    return;
  }
  Rng rng(0xbeadc0de + conn);
  const std::uint64_t key = conn;  // routes to shard conn % kShards
  const std::uint64_t off = kValueOff + (conn / kShards) * 8;
  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::uint64_t value = (std::uint64_t{conn} << 32) | (op + 1);
    std::uint8_t payload[36];
    const std::uint64_t op_id = op * 2 + 1;

    auto t0 = std::chrono::steady_clock::now();
    std::memcpy(payload, &op_id, 8);
    std::memcpy(payload + 8, &key, 8);
    std::memcpy(payload + 16, &off, 8);
    std::memcpy(payload + 24, &value, 8);
    if (!client.send(net::MsgType::kClientCommit, 1, payload, 32)) {
      result->consistent = false;
      return;
    }
    std::optional<net::Message> reply = client.recv(10'000);
    if (!reply.has_value() || reply->type != net::MsgType::kCommitReply ||
        reply->payload.size() != 17) {
      result->consistent = false;
      return;
    }
    std::uint64_t ticket;
    std::memcpy(&ticket, reply->payload.data() + 8, 8);
    const std::uint8_t outcome = reply->payload[16];
    result->commit_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count()));
    if (outcome != static_cast<std::uint8_t>(repl::RedoPipeline::TicketState::kDurable) ||
        ticket == 0) {
      result->consistent = false;
      return;
    }

    // Read-your-write from the backup at min_seq = the commit's ticket;
    // a kLagging bounce (watermark patience exhausted) is retried.
    t0 = std::chrono::steady_clock::now();
    bool served = false;
    for (int attempt = 0; attempt < 1000 && !served; ++attempt) {
      const std::uint64_t read_id = op * 2 + 2;
      const std::uint32_t len = 8;
      std::memcpy(payload, &read_id, 8);
      std::memcpy(payload + 8, &key, 8);
      std::memcpy(payload + 16, &off, 8);
      std::memcpy(payload + 24, &len, 4);
      std::memcpy(payload + 28, &ticket, 8);
      if (!client.send(net::MsgType::kReadRequest, 1, payload, 36)) break;
      reply = client.recv(10'000);
      if (!reply.has_value() || reply->type != net::MsgType::kReadReply ||
          reply->payload.size() < 17) {
        break;
      }
      const std::uint8_t status = reply->payload[16];
      if (status == static_cast<std::uint8_t>(repl::RedoApplier::ReadStatus::kLagging)) {
        result->read_bounces += 1;
        continue;
      }
      std::uint64_t at_seq, got = 0;
      std::memcpy(&at_seq, reply->payload.data() + 8, 8);
      served = status == static_cast<std::uint8_t>(repl::RedoApplier::ReadStatus::kOk) &&
               reply->payload.size() == 25 && at_seq >= ticket;
      if (served) {
        std::memcpy(&got, reply->payload.data() + 17, 8);
        served = got == value;
      }
      break;
    }
    result->read_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count()));
    if (!served) {
      result->consistent = false;
      return;
    }
    usleep(static_cast<useconds_t>(rng.below(think_max_us + 1)));
  }
}

// "--conns 8,64" -> {8,64}; any non-digit separates.
std::vector<unsigned> parse_list(const std::string& spec, std::vector<unsigned> fallback) {
  std::vector<unsigned> out;
  unsigned cur = 0;
  bool have = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<unsigned>(c - '0');
      have = true;
    } else {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have) out.push_back(cur);
  if (out.empty()) out = std::move(fallback);
  return out;
}

int run_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  JsonReport report(args, "read_scaling");
  const unsigned hw = std::thread::hardware_concurrency();
  report.set_root("wallclock", Json(true));
  report.set_root("hw_threads", Json(hw));

  std::vector<unsigned> conn_sweep = parse_list(args.get_string("conns", ""), {8, 64, 256});
  std::uint64_t ops_per_conn = 64;
  unsigned think_max_us = 200;
  if (args.has("quick")) {
    conn_sweep = parse_list(args.get_string("conns", ""), {4, 16});
    ops_per_conn = 16;
  }
  ops_per_conn = static_cast<std::uint64_t>(
      args.get_int("ops", static_cast<std::int64_t>(ops_per_conn)));

  Table table("Read scaling (wall clock, epoll front end, " + std::to_string(kShards) +
              " shards 2-safe, hw_threads=" + std::to_string(hw) + ")");
  table.set_header({"conns", "ops/conn", "consistent", "seconds", "tps", "commit p99 us",
                    "p999 us", "read p99 us", "p999 us", "bounces"});

  for (const unsigned conns : conn_sweep) {
    std::vector<std::unique_ptr<Shard>> shards;
    net::AsyncServer server;
    for (unsigned s = 0; s < kShards; ++s) {
      shards.push_back(std::make_unique<Shard>());
      server.add_shard(shards.back()->endpoint());
    }
    server.set_router([](std::uint64_t key) { return static_cast<std::uint32_t>(key % kShards); });
    VREP_CHECK(server.listen(0));
    VREP_CHECK(server.start());

    std::vector<ClientResult> results(conns);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (unsigned c = 0; c < conns; ++c) {
      clients.emplace_back(run_client, server.bound_port(), c, ops_per_conn, think_max_us,
                           &results[c]);
    }
    for (std::thread& t : clients) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    server.stop();

    Histogram commit_ns, read_ns;
    std::uint64_t bounces = 0;
    bool consistent = true;
    for (const ClientResult& r : results) {
      commit_ns.merge(r.commit_ns);
      read_ns.merge(r.read_ns);
      bounces += r.read_bounces;
      consistent = consistent && r.consistent;
    }
    VREP_CHECK(consistent);
    const std::uint64_t write_ops = static_cast<std::uint64_t>(conns) * ops_per_conn;
    const std::uint64_t read_ops = write_ops;  // one RYW read per commit
    const double tps =
        seconds > 0 ? static_cast<double>(write_ops + read_ops) / seconds : 0.0;

    Json cell = Json::object();
    cell.set("name", "c" + std::to_string(conns));
    cell.set("workload", "ryw_kv");
    cell.set("connections", Json(conns));
    cell.set("ops_per_conn", Json(ops_per_conn));
    cell.set("write_ops", Json(write_ops));
    cell.set("read_ops", Json(read_ops));
    cell.set("watermark_consistent", Json(consistent));
    cell.set("seconds", Json(seconds));
    cell.set("tps", Json(tps));
    cell.set("commit_p99_ns", Json(commit_ns.percentile(0.99)));
    cell.set("commit_p999_ns", Json(commit_ns.percentile(0.999)));
    cell.set("read_p99_ns", Json(read_ns.percentile(0.99)));
    cell.set("read_p999_ns", Json(read_ns.percentile(0.999)));
    cell.set("read_bounces", Json(bounces));
    cell.set("commit_latency_ns", JsonReport::histogram_json(commit_ns));
    cell.set("read_latency_ns", JsonReport::histogram_json(read_ns));
    report.add_cell(std::move(cell));

    char secs[32];
    std::snprintf(secs, sizeof secs, "%.3f", seconds);
    auto us = [](std::uint64_t ns) { return Table::num((ns + 500) / 1000); };
    table.add_row({std::to_string(conns), std::to_string(ops_per_conn),
                   consistent ? "yes" : "NO", secs, tps_cell(tps),
                   us(commit_ns.percentile(0.99)), us(commit_ns.percentile(0.999)),
                   us(read_ns.percentile(0.99)), us(read_ns.percentile(0.999)),
                   Table::num(bounces)});
  }
  table.print();
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vrep::bench

int main(int argc, char** argv) { return vrep::bench::run_main(argc, argv); }
