// Tables 1 and 2: the straightforward cluster implementation (Section 3).
//
// Version 0 (Vista) with everything — database, undo log, heap — write
// doubled onto the backup. Table 1 shows the throughput collapse relative
// to the standalone server; Table 2 breaks the shipped bytes down and shows
// that almost all of it is meta-data.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto scale = bench::Scale::from_args(args);

  struct PaperRow {
    wl::WorkloadKind workload;
    double single_paper, pb_paper;
    double modified_paper, undo_paper, meta_paper, total_paper;  // MB, Table 2
  };
  const PaperRow rows[] = {
      {wl::WorkloadKind::kDebitCredit, 218627, 38735, 140.8, 323.2, 6708.4, 7172.4},
      {wl::WorkloadKind::kOrderEntry, 73748, 27035, 38.9, 433.6 - 0, 433.6, 672.3},
  };

  Table t1("Table 1: Transaction throughput for the straightforward implementation (TPS)");
  t1.set_header({"benchmark", "config", "paper", "ours", "ratio"});
  Table t2("Table 2: Data communicated to the backup, straightforward implementation (MB,"
           " normalised to the paper's transaction counts)");
  t2.set_header({"benchmark", "class", "paper", "ours", "ratio"});

  bench::JsonReport report(args, "table1_straightforward");
  for (const PaperRow& row : rows) {
    ExperimentConfig config;
    config.version = core::VersionKind::kV0Vista;
    config.workload = row.workload;
    config.txns_per_stream = scale.txns(row.workload);

    config.mode = Mode::kStandalone;
    const auto standalone = run_experiment(config);
    report.add(std::string("standalone/") + wl::workload_name(row.workload), config, standalone,
               row.single_paper);
    config.mode = Mode::kPassive;
    const auto pb = run_experiment(config);
    report.add(std::string("primary-backup/") + wl::workload_name(row.workload), config, pb,
               row.pb_paper);

    const char* name = wl::workload_name(row.workload);
    t1.add_row({name, "single machine", Table::num(row.single_paper, 0),
                bench::tps_cell(standalone.tps),
                bench::ratio_cell(standalone.tps, row.single_paper)});
    t1.add_row({name, "primary-backup", Table::num(row.pb_paper, 0), bench::tps_cell(pb.tps),
                bench::ratio_cell(pb.tps, row.pb_paper)});

    const std::uint64_t n = pb.committed;
    const std::uint64_t pn = bench::paper_txns(row.workload);
    const double undo_paper =
        row.workload == wl::WorkloadKind::kDebitCredit ? 323.2 : 199.8;
    const double meta_paper =
        row.workload == wl::WorkloadKind::kDebitCredit ? 6708.4 : 433.6;
    t2.add_row({name, "modified data", Table::num(row.modified_paper, 1),
                bench::mb_cell(pb.traffic.modified(), n, pn),
                bench::ratio_cell(static_cast<double>(pb.traffic.modified()) / n * pn / 1e6,
                                  row.modified_paper)});
    t2.add_row({name, "undo log", Table::num(undo_paper, 1),
                bench::mb_cell(pb.traffic.undo(), n, pn),
                bench::ratio_cell(static_cast<double>(pb.traffic.undo()) / n * pn / 1e6,
                                  undo_paper)});
    t2.add_row({name, "meta-data", Table::num(meta_paper, 1),
                bench::mb_cell(pb.traffic.meta(), n, pn),
                bench::ratio_cell(static_cast<double>(pb.traffic.meta()) / n * pn / 1e6,
                                  meta_paper)});
    t2.add_row({name, "total", Table::num(row.total_paper, 1),
                bench::mb_cell(pb.traffic.total(), n, pn),
                bench::ratio_cell(static_cast<double>(pb.traffic.total()) / n * pn / 1e6,
                                  row.total_paper)});
  }
  t1.print();
  std::puts("");
  t2.print();
  return report.write() ? 0 : 1;
}
