// Google-benchmark microbenchmarks of the hot primitives, on *wall-clock*
// time (unlike the table benches, which run on the virtual clock). Useful
// for regression-tracking the implementation itself.
#include <benchmark/benchmark.h>

#include <cstring>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "rio/heap.hpp"
#include "sim/mem_bus.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace vrep;

void BM_TxnCommit(benchmark::State& state, core::VersionKind kind) {
  core::StoreConfig config;
  config.db_size = 4ull << 20;
  sim::MemBus bus;
  rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
  auto store = core::make_store(kind, bus, arena, config, true);
  Rng rng(1);
  std::uint8_t* db = store->db();
  for (auto _ : state) {
    store->begin_transaction();
    for (int r = 0; r < 4; ++r) {
      const std::size_t off = rng.below(config.db_size - 64);
      store->set_range(db + off, 16);
      const std::uint32_t v = rng.next_u32();
      bus.write(db + off, &v, 4, sim::TrafficClass::kModified);
    }
    store->commit_transaction();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_TxnCommit, v0_vista, core::VersionKind::kV0Vista);
BENCHMARK_CAPTURE(BM_TxnCommit, v1_mirror_copy, core::VersionKind::kV1MirrorCopy);
BENCHMARK_CAPTURE(BM_TxnCommit, v2_mirror_diff, core::VersionKind::kV2MirrorDiff);
BENCHMARK_CAPTURE(BM_TxnCommit, v3_inline_log, core::VersionKind::kV3InlineLog);

void BM_TxnAbort(benchmark::State& state) {
  core::StoreConfig config;
  config.db_size = 1ull << 20;
  sim::MemBus bus;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  auto store = core::make_store(core::VersionKind::kV3InlineLog, bus, arena, config, true);
  Rng rng(1);
  std::uint8_t* db = store->db();
  for (auto _ : state) {
    store->begin_transaction();
    const std::size_t off = rng.below(config.db_size - 64);
    store->set_range(db + off, 32);
    const std::uint64_t v = rng.next_u64();
    bus.write(db + off, &v, 8, sim::TrafficClass::kModified);
    store->abort_transaction();
  }
}
BENCHMARK(BM_TxnAbort);

void BM_HeapAllocFree(benchmark::State& state) {
  sim::MemBus bus;
  rio::Arena arena = rio::Arena::create(4ull << 20);
  rio::PersistentHeap heap(&bus, arena.data(), arena.size(), true);
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const std::uint64_t off = heap.alloc(size);
    benchmark::DoNotOptimize(off);
    heap.free(off);
  }
}
BENCHMARK(BM_HeapAllocFree)->Arg(32)->Arg(256)->Arg(2048);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32::of(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096);

void BM_DiffCopy(benchmark::State& state) {
  sim::MemBus bus;
  std::vector<std::uint8_t> a(4096, 0), b(4096, 0);
  Rng rng(2);
  for (int i = 0; i < 64; ++i) b[rng.below(b.size())] = 0xFF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bus.diff_copy(a.data(), b.data(), b.size(), sim::TrafficClass::kUndo));
    std::memset(a.data(), 0, a.size());
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DiffCopy);

}  // namespace

BENCHMARK_MAIN();
