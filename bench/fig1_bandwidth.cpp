// Figure 1: effective Memory Channel bandwidth vs packet size.
//
// The paper measures process-to-process bandwidth by writing large regions
// with varying strides (stride 1 -> 32-byte packets, stride 2 -> 16-byte
// packets, ...). We reproduce the experiment against the simulated fabric:
// the strided store stream goes through the write-buffer model, becomes
// packets, and the achieved bandwidth is bytes delivered / virtual time.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sim/memory_channel.hpp"
#include "util/ascii_chart.hpp"

using namespace vrep;

namespace {

// Write `total` bytes as `chunk`-byte packets (stride pattern of the paper).
double measure_bandwidth_mbs(std::size_t chunk, std::size_t total) {
  sim::AlphaCostModel cost;
  cost.io_store_base_ns = 0;  // the ping-pong test measures the wire, not the app
  cost.io_store_byte_ns = 0;
  cost.io_small_packet_penalty_ns = 0;
  sim::McFabric fabric(cost.link);
  sim::VirtualClock clk;
  std::vector<std::uint8_t> remote(1 << 20);
  const std::uint64_t io = fabric.map_segment(remote.data(), remote.size());
  sim::McInterface mc(&fabric, &clk, cost.fifo_depth, cost.io_store_base_ns,
                      cost.io_store_byte_ns, cost.io_small_packet_penalty_ns);

  std::uint8_t payload[32] = {1, 2, 3, 4};
  std::uint64_t sent = 0;
  std::uint64_t offset = 0;
  while (sent < total) {
    // Stride through 32-byte blocks: write `chunk` bytes per block so the
    // write buffers emit `chunk`-byte packets.
    mc.io_write(io + offset % remote.size(), payload, chunk, sim::TrafficClass::kModified);
    offset += 32;
    sent += chunk;
  }
  mc.flush();
  const double seconds = sim::to_seconds(fabric.link().free_at);
  return static_cast<double>(sent) / seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::size_t total = args.has("quick") ? (8u << 20) : (32u << 20);

  // Paper Figure 1 readings (MB/s), eyeballed from the plot except the two
  // endpoints which the text states exactly.
  const double paper[4] = {14, 27, 48, 80};

  Table table("Figure 1: Effective Memory Channel bandwidth vs packet size");
  table.set_header({"packet", "paper MB/s", "ours MB/s", "ratio"});
  bench::JsonReport report(args, "fig1_bandwidth");
  std::vector<double> xs, ours;
  int i = 0;
  for (std::size_t chunk : {4, 8, 16, 32}) {
    const double bw = measure_bandwidth_mbs(chunk, total);
    xs.push_back(static_cast<double>(chunk));
    ours.push_back(bw);
    Json cell = Json::object();
    cell.set("name", std::to_string(chunk) + "B");
    cell.set("packet_bytes", Json(static_cast<std::uint64_t>(chunk)));
    cell.set("total_bytes", Json(static_cast<std::uint64_t>(total)));
    cell.set("bandwidth_mbs", Json(bw));
    cell.set("paper_mbs", Json(paper[i]));
    cell.set("ratio", Json(bw / paper[i]));
    report.add_cell(std::move(cell));
    table.add_row({std::to_string(chunk) + "B", Table::num(paper[i], 0), Table::num(bw, 1),
                   bench::ratio_cell(bw, paper[i])});
    ++i;
  }
  table.print();

  AsciiChart chart("Effective bandwidth vs Memory Channel packet size", "packet bytes", "MB/s");
  chart.set_x(xs);
  chart.add_series("ours", ours);
  chart.add_series("paper", {14, 27, 48, 80});
  chart.print();
  return report.write() ? 0 : 1;
}
