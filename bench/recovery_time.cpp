// Extension bench: backup takeover latency per scheme.
//
// Section 5.1's optimisation trades failure-free throughput for recovery
// time: because the mirror versions never ship their range array, the
// backup must copy the *entire database* from the mirror at takeover, while
// the logging versions repair only the in-flight transaction. This bench
// measures that takeover latency (virtual time on the backup's CPU) as a
// function of database size.
#include "bench_common.hpp"
#include "repl/passive.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

using namespace vrep;

namespace {

double takeover_seconds(core::VersionKind kind, std::size_t db_size) {
  sim::AlphaCostModel cost;
  sim::McFabric fabric(cost.link);
  sim::Node primary_node(cost, 1, &fabric);
  sim::Node backup_node(cost, 1, nullptr);

  core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, db_size);
  const std::size_t bytes = core::required_arena_size(kind, config);
  rio::Arena primary_arena = rio::Arena::create(bytes);
  rio::Arena backup_arena = rio::Arena::create(bytes);
  auto store = core::make_store(kind, primary_node.cpu().bus(), primary_arena, config, true);
  repl::setup_passive_replication(*store, primary_arena, backup_arena);
  std::memcpy(backup_arena.data(), primary_arena.data(), bytes);

  // A little committed work plus one in-flight transaction, then a quiesced
  // crash (worst case for the mirror versions: state == kActive).
  auto workload = wl::make_workload(wl::WorkloadKind::kDebitCredit, db_size);
  workload->initialize(*store);
  store->flush_initial_state();
  std::memcpy(backup_arena.data(), primary_arena.data(), bytes);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) workload->run_txn(*store, rng);
  store->begin_transaction();
  store->set_range(store->db() + 64, 32);
  const std::uint64_t junk = ~0ull;
  store->bus().write(store->db() + 64, &junk, 8, sim::TrafficClass::kModified);
  primary_node.cpu().mc()->flush();
  fabric.deliver_all();

  sim::Cpu& backup_cpu = backup_node.cpu();
  const sim::SimTime before = backup_cpu.clock().now();
  auto promoted = core::make_store(kind, backup_cpu.bus(), backup_arena, config, false);
  promoted->takeover();
  return sim::to_seconds(backup_cpu.clock().now() - before);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.has("quick");

  Table table("Extension: passive takeover latency (virtual time on the backup CPU)");
  table.set_header({"db size", "V1 mirror (full copy)", "V2 mirror (full copy)",
                    "V3 inline log", "V0 Vista"});
  bench::JsonReport report(args, "recovery_time");
  for (const std::size_t mb : {10, 50, quick ? 50 : 200}) {
    const std::size_t db = mb << 20;
    const core::VersionKind kinds[] = {
        core::VersionKind::kV1MirrorCopy, core::VersionKind::kV2MirrorDiff,
        core::VersionKind::kV3InlineLog, core::VersionKind::kV0Vista};
    double ms[4];
    for (int k = 0; k < 4; ++k) {
      ms[k] = takeover_seconds(kinds[k], db) * 1e3;
      Json cell = Json::object();
      cell.set("name", std::string(core::version_name(kinds[k])) + "/" + std::to_string(mb) +
                           "MB");
      cell.set("version", core::version_name(kinds[k]));
      cell.set("db_mb", Json(static_cast<std::uint64_t>(mb)));
      cell.set("takeover_ms", Json(ms[k]));
      report.add_cell(std::move(cell));
    }
    char v1[32], v2[32], v3[32], v0[32];
    std::snprintf(v1, sizeof v1, "%.1f ms", ms[0]);
    std::snprintf(v2, sizeof v2, "%.1f ms", ms[1]);
    std::snprintf(v3, sizeof v3, "%.3f ms", ms[2]);
    std::snprintf(v0, sizeof v0, "%.3f ms", ms[3]);
    table.add_row({std::to_string(mb) + " MB", v1, v2, v3, v0});
  }
  table.print();
  std::puts("The mirror versions pay a whole-database copy at takeover (the price of the\n"
            "Section 5.1 optimisation); the logging versions repair in microseconds\n"
            "regardless of database size.");
  return report.write() ? 0 : 1;
}
