// Extension bench: backup takeover latency per scheme.
//
// Section 5.1's optimisation trades failure-free throughput for recovery
// time: because the mirror versions never ship their range array, the
// backup must copy the *entire database* from the mirror at takeover, while
// the logging versions repair only the in-flight transaction. This bench
// measures that takeover latency (virtual time on the backup's CPU) as a
// function of database size.
// The active-scheme companion sweep measures *rejoin* cost: the bytes a
// laggard backup must receive to catch up. Without checkpoints that cost
// cliffs to the full database image once the bounded redo history evicts
// the gap (and, with an unbounded history, grows linearly with the gap
// itself). With fuzzy checkpoints + history truncation it is O(delta):
// the pages dirtied since the laggard's sequence plus the short replay tail
// above the watermark — flat in both database size and history length.
// Byte counts over the replication link are exact and deterministic, so
// these cells are drift-gated like every other baseline.
#include <cstring>
#include <deque>
#include <optional>

#include "bench_common.hpp"
#include "repl/passive.hpp"
#include "repl/pipeline.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

using namespace vrep;

namespace {

double takeover_seconds(core::VersionKind kind, std::size_t db_size) {
  sim::AlphaCostModel cost;
  sim::McFabric fabric(cost.link);
  sim::Node primary_node(cost, 1, &fabric);
  sim::Node backup_node(cost, 1, nullptr);

  core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, db_size);
  const std::size_t bytes = core::required_arena_size(kind, config);
  rio::Arena primary_arena = rio::Arena::create(bytes);
  rio::Arena backup_arena = rio::Arena::create(bytes);
  auto store = core::make_store(kind, primary_node.cpu().bus(), primary_arena, config, true);
  repl::setup_passive_replication(*store, primary_arena, backup_arena);
  std::memcpy(backup_arena.data(), primary_arena.data(), bytes);

  // A little committed work plus one in-flight transaction, then a quiesced
  // crash (worst case for the mirror versions: state == kActive).
  auto workload = wl::make_workload(wl::WorkloadKind::kDebitCredit, db_size);
  workload->initialize(*store);
  store->flush_initial_state();
  std::memcpy(backup_arena.data(), primary_arena.data(), bytes);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) workload->run_txn(*store, rng);
  store->begin_transaction();
  store->set_range(store->db() + 64, 32);
  const std::uint64_t junk = ~0ull;
  store->bus().write(store->db() + 64, &junk, 8, sim::TrafficClass::kModified);
  primary_node.cpu().mc()->flush();
  fabric.deliver_all();

  sim::Cpu& backup_cpu = backup_node.cpu();
  const sim::SimTime before = backup_cpu.clock().now();
  auto promoted = core::make_store(kind, backup_cpu.bus(), backup_arena, config, false);
  promoted->takeover();
  return sim::to_seconds(backup_cpu.clock().now() - before);
}

// ---- active-scheme rejoin cost (checkpointed vs not) -----------------------

// Records outbound frames (to tally exact rejoin bytes); recv serves the
// scripted rejoin request then reports timeout.
class RecordingLink final : public repl::ReplicationLink {
 public:
  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    sent.push_back(repl::Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
    return true;
  }
  std::optional<repl::Frame> recv(int) override {
    if (inbound.empty()) {
      error_ = repl::LinkError::kTimeout;
      return std::nullopt;
    }
    repl::Frame frame = std::move(inbound.front());
    inbound.pop_front();
    error_ = repl::LinkError::kNone;
    return frame;
  }
  repl::LinkError last_error() const override { return error_; }
  bool connected() const override { return true; }

  std::deque<repl::Frame> inbound;
  std::vector<repl::Frame> sent;

 private:
  repl::LinkError error_ = repl::LinkError::kNone;
};

class VecSource final : public repl::RedoPipeline::Source {
 public:
  explicit VecSource(std::size_t size) : db_(size, 0) {}
  const std::uint8_t* db() const override { return db_.data(); }
  std::size_t db_size() const override { return db_.size(); }
  std::uint64_t committed_seq() const override { return committed; }
  std::uint8_t* mutable_db() { return db_.data(); }

  std::uint64_t committed = 0;

 private:
  std::vector<std::uint8_t> db_;
};

struct RejoinCost {
  const char* decision;      // which repair the policy picked
  std::uint64_t frames = 0;  // frames the rejoin serve put on the link
  std::uint64_t bytes = 0;   // payload bytes of those frames
  std::uint64_t checkpoints = 0;
  std::uint64_t truncated_bytes = 0;
};

// Run `txns` commits of a Debit-Credit-flavoured hot set (128-byte writes
// inside a 256 KiB hot region, so the true delta is independent of database
// size), freeze a laggard at txns/4, then serve its rejoin and count the
// exact bytes shipped.
RejoinCost rejoin_cost(std::size_t db_size, std::uint64_t txns, bool checkpointed,
                       std::size_t history_bytes) {
  VecSource source(db_size);
  RecordingLink link;
  repl::RedoPipeline pipe(source, &link, nullptr, {}, history_bytes);
  if (checkpointed) {
    // 64-commit checkpoint cadence; the fuzzy build spreads the image copy
    // across 64 commits regardless of database size.
    pipe.enable_checkpoints(/*interval_txns=*/64, /*copy_bytes_per_commit=*/db_size / 64 + 1);
  }
  const std::uint64_t lag_at = txns / 4;
  const std::size_t hot = std::min<std::size_t>(256 * 1024, db_size);
  Rng rng(7);
  for (std::uint64_t seq = 1; seq <= txns; ++seq) {
    pipe.begin();
    constexpr std::size_t kLen = 128;
    const std::size_t off = rng.below(hot - kLen);
    std::uint8_t bytes[kLen];
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    std::memcpy(source.mutable_db() + off, bytes, kLen);
    pipe.stage(off, bytes, kLen);
    source.committed = seq;
    pipe.commit(seq);
  }

  RejoinCost cost;
  using Decision = repl::RedoPipeline::RejoinDecision;
  switch (pipe.decide_rejoin(lag_at, 1)) {
    case Decision::kDelta: cost.decision = "delta"; break;
    case Decision::kCheckpointDelta: cost.decision = "checkpoint+delta"; break;
    case Decision::kFullImage: cost.decision = "full-image"; break;
  }
  repl::Frame request{repl::FrameKind::kRejoinRequest, 1, std::vector<std::uint8_t>(24)};
  const std::uint64_t node = 1, state_epoch = 1;
  std::memcpy(request.payload.data(), &lag_at, 8);
  std::memcpy(request.payload.data() + 8, &node, 8);
  std::memcpy(request.payload.data() + 16, &state_epoch, 8);
  link.inbound.push_back(std::move(request));
  link.sent.clear();
  if (!pipe.handle_rejoin(/*timeout_ms=*/0)) {
    cost.decision = "serve-failed";
    return cost;
  }
  for (const auto& f : link.sent) {
    cost.frames++;
    cost.bytes += f.payload.size();
  }
  cost.checkpoints = pipe.stats().checkpoints_completed;
  cost.truncated_bytes = pipe.stats().redo_truncated_bytes;
  return cost;
}

std::string mb_str(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.has("quick");

  Table table("Extension: passive takeover latency (virtual time on the backup CPU)");
  table.set_header({"db size", "V1 mirror (full copy)", "V2 mirror (full copy)",
                    "V3 inline log", "V0 Vista"});
  bench::JsonReport report(args, "recovery_time");
  for (const std::size_t mb : {10, 50, quick ? 50 : 200}) {
    const std::size_t db = mb << 20;
    const core::VersionKind kinds[] = {
        core::VersionKind::kV1MirrorCopy, core::VersionKind::kV2MirrorDiff,
        core::VersionKind::kV3InlineLog, core::VersionKind::kV0Vista};
    double ms[4];
    for (int k = 0; k < 4; ++k) {
      ms[k] = takeover_seconds(kinds[k], db) * 1e3;
      Json cell = Json::object();
      cell.set("name", std::string(core::version_name(kinds[k])) + "/" + std::to_string(mb) +
                           "MB");
      cell.set("version", core::version_name(kinds[k]));
      cell.set("db_mb", Json(static_cast<std::uint64_t>(mb)));
      cell.set("takeover_ms", Json(ms[k]));
      report.add_cell(std::move(cell));
    }
    char v1[32], v2[32], v3[32], v0[32];
    std::snprintf(v1, sizeof v1, "%.1f ms", ms[0]);
    std::snprintf(v2, sizeof v2, "%.1f ms", ms[1]);
    std::snprintf(v3, sizeof v3, "%.3f ms", ms[2]);
    std::snprintf(v0, sizeof v0, "%.3f ms", ms[3]);
    table.add_row({std::to_string(mb) + " MB", v1, v2, v3, v0});
  }
  table.print();
  std::puts("The mirror versions pay a whole-database copy at takeover (the price of the\n"
            "Section 5.1 optimisation); the logging versions repair in microseconds\n"
            "regardless of database size.");

  // Sweep 1: rejoin cost vs DATABASE SIZE under a bounded (64 KiB) redo
  // history. The laggard's gap always outgrew the history; without a
  // checkpoint that is the full-image cliff, growing linearly with the
  // database. With checkpoints the cost is the dirty delta — flat.
  {
    Table t2("Active rejoin cost vs database size (1024 txns, laggard at 256, 64 KiB history)");
    t2.set_header({"db size", "uncheckpointed", "(path)", "checkpointed", "(path)"});
    constexpr std::uint64_t kTxns = 1024;
    constexpr std::size_t kHistory = 64 * 1024;
    for (const std::size_t mb : {1, 4, quick ? 4 : 16}) {
      const std::size_t db = mb << 20;
      const RejoinCost plain = rejoin_cost(db, kTxns, /*checkpointed=*/false, kHistory);
      const RejoinCost ckpt = rejoin_cost(db, kTxns, /*checkpointed=*/true, kHistory);
      for (const auto* pair : {&plain, &ckpt}) {
        Json cell = Json::object();
        cell.set("name", std::string("rejoin_dbsize/") + std::to_string(mb) + "MB/" +
                             (pair == &ckpt ? "checkpointed" : "uncheckpointed"));
        cell.set("sweep", "db_size");
        cell.set("db_mb", Json(static_cast<std::uint64_t>(mb)));
        cell.set("txns", Json(kTxns));
        cell.set("checkpointed", Json(pair == &ckpt));
        cell.set("decision", std::string(pair->decision));
        cell.set("rejoin_frames", Json(pair->frames));
        cell.set("rejoin_bytes", Json(pair->bytes));
        cell.set("checkpoints_completed", Json(pair->checkpoints));
        cell.set("redo_truncated_bytes", Json(pair->truncated_bytes));
        report.add_cell(std::move(cell));
      }
      t2.add_row({std::to_string(mb) + " MB", mb_str(static_cast<double>(plain.bytes)),
                  plain.decision, mb_str(static_cast<double>(ckpt.bytes)), ckpt.decision});
    }
    t2.print();
  }

  // Sweep 2: rejoin cost vs HISTORY LENGTH under an effectively unbounded
  // (8 MiB) history. A delta replay grows linearly with the gap; the
  // checkpoint watermark truncates it, so the checkpointed cost stays flat
  // no matter how long the primary ran.
  {
    Table t3("Active rejoin cost vs history length (4 MB db, laggard at txns/4, 8 MiB history)");
    t3.set_header({"txns", "uncheckpointed", "(path)", "checkpointed", "(path)"});
    constexpr std::size_t kDb = 4 << 20;
    constexpr std::size_t kBigHistory = 8 * 1024 * 1024;
    for (const std::uint64_t txns : {std::uint64_t{512}, std::uint64_t{2048},
                                     quick ? std::uint64_t{2048} : std::uint64_t{8192}}) {
      const RejoinCost plain = rejoin_cost(kDb, txns, /*checkpointed=*/false, kBigHistory);
      const RejoinCost ckpt = rejoin_cost(kDb, txns, /*checkpointed=*/true, kBigHistory);
      for (const auto* pair : {&plain, &ckpt}) {
        Json cell = Json::object();
        cell.set("name", std::string("rejoin_history/") + std::to_string(txns) + "txns/" +
                             (pair == &ckpt ? "checkpointed" : "uncheckpointed"));
        cell.set("sweep", "history_length");
        cell.set("db_mb", Json(static_cast<std::uint64_t>(kDb >> 20)));
        cell.set("txns", Json(txns));
        cell.set("checkpointed", Json(pair == &ckpt));
        cell.set("decision", std::string(pair->decision));
        cell.set("rejoin_frames", Json(pair->frames));
        cell.set("rejoin_bytes", Json(pair->bytes));
        cell.set("checkpoints_completed", Json(pair->checkpoints));
        cell.set("redo_truncated_bytes", Json(pair->truncated_bytes));
        report.add_cell(std::move(cell));
      }
      t3.add_row({std::to_string(txns), mb_str(static_cast<double>(plain.bytes)),
                  plain.decision, mb_str(static_cast<double>(ckpt.bytes)), ckpt.decision});
    }
    t3.print();
  }
  std::puts("Rejoin: without checkpoints a laggard pays the full image once the bounded\n"
            "history evicts its gap (cost grows with the database), or an ever-longer\n"
            "delta replay if the history is unbounded (cost grows with the gap). Fuzzy\n"
            "checkpoints + watermark truncation bound it at the dirty delta + one\n"
            "checkpoint interval of replay — flat in both dimensions.");
  return report.write() ? 0 : 1;
}
