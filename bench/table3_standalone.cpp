// Table 3: standalone transaction throughput of the restructured versions
// (Section 4.5). This table is also the calibration anchor of the cost
// model: the constants in sim/alpha_cost_model.hpp were tuned so these
// eight cells land near the paper; every other table/figure is predicted.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto scale = bench::Scale::from_args(args);

  const double paper[2][4] = {
      {218627, 310077, 266922, 372692},  // Debit-Credit V0..V3
      {73748, 81340, 74544, 95809},      // Order-Entry V0..V3
  };
  const core::VersionKind versions[] = {
      core::VersionKind::kV0Vista,
      core::VersionKind::kV1MirrorCopy,
      core::VersionKind::kV2MirrorDiff,
      core::VersionKind::kV3InlineLog,
  };

  Table table("Table 3: Standalone transaction throughput of the restructured versions (TPS)");
  table.set_header({"version", "DC paper", "DC ours", "ratio", "OE paper", "OE ours", "ratio"});
  bench::JsonReport report(args, "table3_standalone");

  for (int v = 0; v < 4; ++v) {
    ExperimentConfig config;
    config.version = versions[v];
    config.mode = Mode::kStandalone;
    config.workload = wl::WorkloadKind::kDebitCredit;
    config.txns_per_stream = scale.dc_txns;
    const auto dc = run_experiment(config);
    report.add(std::string(core::version_name(versions[v])) + "/DebitCredit", config, dc,
               paper[0][v]);
    config.workload = wl::WorkloadKind::kOrderEntry;
    config.txns_per_stream = scale.oe_txns;
    const auto oe = run_experiment(config);
    report.add(std::string(core::version_name(versions[v])) + "/OrderEntry", config, oe,
               paper[1][v]);
    table.add_row({core::version_name(versions[v]), Table::num(paper[0][v], 0),
                   bench::tps_cell(dc.tps), bench::ratio_cell(dc.tps, paper[0][v]),
                   Table::num(paper[1][v], 0), bench::tps_cell(oe.tps),
                   bench::ratio_cell(oe.tps, paper[1][v])});
  }
  table.print();
  return report.write() ? 0 : 1;
}
