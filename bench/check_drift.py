#!/usr/bin/env python3
"""Compare a regenerated BENCH_*.json against its committed baseline.

Usage: check_drift.py BASELINE FRESH [--rtol 1e-6]

The virtual-time co-simulation is deterministic, so a regenerated baseline
must reproduce every numeric cell exactly (up to --rtol for float printing).
Only the 'cells' section is compared: the process-wide metrics registry
snapshot may legitimately gain counters as instrumentation grows, but the
measured numbers — tps, traffic bytes, packet counts, latency percentiles —
may not move without an intentional, reviewed baseline update.

Wall-clock benches (root "wallclock": true — the smp_* family) cannot be
compared exactly: elapsed time depends on the machine. For those the check
switches to shape mode:
  - deterministic fields (config identity, committed counts, backup
    convergence flags) must match the baseline exactly;
  - timing fields (seconds/tps/latch_contended/queue_full_waits) are only
    sanity-checked (present, finite, positive where required);
  - scaling gates use the FRESH run's recorded hw_threads, so a 1-CPU box
    validates structure only: tps must be roughly monotone in workers
    (>= 0.85x the previous sweep point) when the host has at least that many
    hardware threads, and Debit-Credit must reach >= 1.8x tps at 4 workers
    vs 1 when hw_threads >= 6 (4 workers + sequencer + backup each get a
    core).

Exit status: 0 when within tolerance, 1 on drift (each drifting path is
printed), 2 on usage/shape errors.
"""
import argparse
import json
import math
import sys

# Cell fields in wall-clock benches that must still match the committed
# baseline exactly (everything the machine cannot change).
WALLCLOCK_EXACT_FIELDS = (
    "name", "workload", "workers", "partitions", "txns_per_worker",
    "committed", "window", "group", "two_safe", "backup_applied", "crc_match",
    # shard_scaling cells (BENCH_shards.json): deterministic counts drawn
    # from fixed seeds plus the replica/invariant verdict.
    "shards", "remote_pct", "threads", "txns", "cross_committed", "consistent",
    # read_scaling cells (BENCH_read_scaling.json): the sweep identity and
    # the read-your-writes verdict (every read served kOk at >= its ticket).
    "connections", "ops_per_conn", "write_ops", "read_ops", "watermark_consistent",
    # rebalance_cost cells (BENCH_rebalance.json): the split geometry and the
    # moving-set size are pure functions of the maps + record population.
    "split_denom", "moving_records",
)
# Machine-dependent fields: sanity-checked only. True = must be > 0.
WALLCLOCK_TIMING_FIELDS = {
    "seconds": True,
    "tps": True,
    "latch_contended": False,
    "queue_full_waits": False,
    # read_scaling client-observed latency percentiles (ns).
    "commit_p99_ns": True,
    "commit_p999_ns": True,
    "read_p99_ns": True,
    "read_p999_ns": True,
    "read_bounces": False,
    # rebalance_cost migration-path counters: how much shipped and how long
    # traffic stalled depends on where the cutover lands on this machine.
    "bytes_moved": True,
    "chunks": True,
    "cutover_stall_ns": True,
    "retried_2pc": False,
    "stall_p99_before_ns": True,
    "stall_p99_during_ns": True,
}


def walk(path, a, b, rtol, drifts):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                drifts.append(f"{path}.{key}: only in {'baseline' if key in a else 'fresh'}")
                continue
            walk(f"{path}.{key}", a[key], b[key], rtol, drifts)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            drifts.append(f"{path}: length {len(a)} -> {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            walk(f"{path}[{i}]", x, y, rtol, drifts)
    elif isinstance(a, bool) or isinstance(b, bool):
        if a != b:
            drifts.append(f"{path}: {a} -> {b}")
    elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
        scale = max(abs(a), abs(b))
        if scale > 0 and abs(a - b) / scale > rtol:
            drifts.append(f"{path}: {a} -> {b}")
    elif a != b:
        drifts.append(f"{path}: {a!r} -> {b!r}")


def check_wallclock(baseline, fresh, rtol, drifts):
    """Shape mode for wall-clock benches: exact config/convergence fields,
    sanity-only timing fields, hw-aware scaling gates."""
    base_cells = baseline["cells"]
    fresh_cells = fresh["cells"]
    if len(base_cells) != len(fresh_cells):
        drifts.append(f"cells: length {len(base_cells)} -> {len(fresh_cells)}")
        return
    for i, (a, b) in enumerate(zip(base_cells, fresh_cells)):
        for key in WALLCLOCK_EXACT_FIELDS:
            if key in a or key in b:
                walk(f"cells[{i}].{key}", a.get(key), b.get(key), rtol, drifts)
        for key, positive in WALLCLOCK_TIMING_FIELDS.items():
            if key not in a and key not in b:
                continue  # not every wall-clock bench emits every counter
            v = b.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
                drifts.append(f"cells[{i}].{key}: not a finite number ({v!r})")
            elif positive and v <= 0:
                drifts.append(f"cells[{i}].{key}: must be > 0, got {v}")
            elif not positive and v < 0:
                drifts.append(f"cells[{i}].{key}: must be >= 0, got {v}")

    # Scaling gates are judged against the FRESH machine's core count; a
    # laptop or small CI runner only validates structure, not speedup.
    hw = fresh.get("hw_threads", 0)
    hw = hw if isinstance(hw, int) and not isinstance(hw, bool) else 0
    points = [(c.get("workers"), c.get("tps"), c.get("workload")) for c in fresh_cells]
    points = [(w, t, wl) for (w, t, wl) in points
              if isinstance(w, int) and isinstance(t, (int, float)) and t > 0]
    points.sort(key=lambda p: p[0])
    for (w_lo, t_lo, _), (w_hi, t_hi, _) in zip(points, points[1:]):
        if w_hi > w_lo and hw >= w_hi and t_hi < 0.85 * t_lo:
            drifts.append(
                f"scaling: tps dropped {t_lo:.0f} -> {t_hi:.0f} from "
                f"{w_lo} to {w_hi} workers on a {hw}-thread host")
    by_workers = {w: t for (w, t, _) in points}
    is_dc = any(isinstance(wl, str) and "debit" in wl.lower() for (_, _, wl) in points)
    if is_dc and hw >= 6 and 1 in by_workers and 4 in by_workers:
        if by_workers[4] < 1.8 * by_workers[1]:
            drifts.append(
                f"scaling: Debit-Credit 4-worker tps {by_workers[4]:.0f} is below "
                f"1.8x the 1-worker tps {by_workers[1]:.0f} on a {hw}-thread host")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--rtol", type=float, default=1e-6)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)
    if "cells" not in baseline or "cells" not in fresh:
        print("missing 'cells' section", file=sys.stderr)
        return 2

    drifts = []
    if baseline.get("wallclock") is True:
        check_wallclock(baseline, fresh, args.rtol, drifts)
        mode = "wallclock shape"
    else:
        walk("cells", baseline["cells"], fresh["cells"], args.rtol, drifts)
        mode = f"cells exact, rtol={args.rtol}"
    if drifts:
        print(f"{args.baseline}: {len(drifts)} drifting value(s):")
        for d in drifts[:50]:
            print(f"  {d}")
        if len(drifts) > 50:
            print(f"  ... and {len(drifts) - 50} more")
        return 1
    print(f"{args.baseline}: ok ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
