#!/usr/bin/env python3
"""Compare a regenerated BENCH_*.json against its committed baseline.

Usage: check_drift.py BASELINE FRESH [--rtol 1e-6]

The virtual-time co-simulation is deterministic, so a regenerated baseline
must reproduce every numeric cell exactly (up to --rtol for float printing).
Only the 'cells' section is compared: the process-wide metrics registry
snapshot may legitimately gain counters as instrumentation grows, but the
measured numbers — tps, traffic bytes, packet counts, latency percentiles —
may not move without an intentional, reviewed baseline update.

Exit status: 0 when within tolerance, 1 on drift (each drifting path is
printed), 2 on usage/shape errors.
"""
import argparse
import json
import sys


def walk(path, a, b, rtol, drifts):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                drifts.append(f"{path}.{key}: only in {'baseline' if key in a else 'fresh'}")
                continue
            walk(f"{path}.{key}", a[key], b[key], rtol, drifts)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            drifts.append(f"{path}: length {len(a)} -> {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            walk(f"{path}[{i}]", x, y, rtol, drifts)
    elif isinstance(a, bool) or isinstance(b, bool):
        if a != b:
            drifts.append(f"{path}: {a} -> {b}")
    elif isinstance(a, (int, float)) and isinstance(b, (int, float)):
        scale = max(abs(a), abs(b))
        if scale > 0 and abs(a - b) / scale > rtol:
            drifts.append(f"{path}: {a} -> {b}")
    elif a != b:
        drifts.append(f"{path}: {a!r} -> {b!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--rtol", type=float, default=1e-6)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)
    if "cells" not in baseline or "cells" not in fresh:
        print("missing 'cells' section", file=sys.stderr)
        return 2

    drifts = []
    walk("cells", baseline["cells"], fresh["cells"], args.rtol, drifts)
    if drifts:
        print(f"{args.baseline}: {len(drifts)} drifting value(s):")
        for d in drifts[:50]:
            print(f"  {d}")
        if len(drifts) > 50:
            print(f"  ... and {len(drifts) - 50} more")
        return 1
    print(f"{args.baseline}: cells match within rtol={args.rtol}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
