// Table 8: active backup throughput for increasing database sizes
// (Section 7). The active scheme is the only one not limited by mappable
// Memory Channel space; the paper reports graceful degradation (13% and 22%
// at 1 GB) caused by the reduced cache locality of database writes.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto scale = bench::Scale::from_args(args);
  // A 1 GB database is a real allocation; --quick stops at 100 MB.
  const bool full = !args.has("quick");

  const double paper[2][3] = {
      {322102, 301604, 280646},  // Debit-Credit @ 10MB/100MB/1GB
      {76726, 69496, 59989},     // Order-Entry
  };
  const std::size_t sizes[3] = {10ull << 20, 100ull << 20, 1ull << 30};
  const char* size_names[3] = {"10 MB", "100 MB", "1 GB"};
  const wl::WorkloadKind workloads[] = {wl::WorkloadKind::kDebitCredit,
                                        wl::WorkloadKind::kOrderEntry};

  Table table("Table 8: Active backup throughput for increasing database sizes (TPS)");
  table.set_header({"benchmark", "db size", "paper", "ours", "ratio"});
  bench::JsonReport report(args, "table8_dbsize");
  for (int w = 0; w < 2; ++w) {
    for (int s = 0; s < (full ? 3 : 2); ++s) {
      ExperimentConfig config;
      config.mode = Mode::kActive;
      config.workload = workloads[w];
      config.db_size = sizes[s];
      config.txns_per_stream = scale.txns(workloads[w]);
      const auto r = run_experiment(config);
      report.add(std::string(wl::workload_name(workloads[w])) + "/" + size_names[s], config, r,
                 paper[w][s]);
      table.add_row({wl::workload_name(workloads[w]), size_names[s],
                     Table::num(paper[w][s], 0), bench::tps_cell(r.tps),
                     bench::ratio_cell(r.tps, paper[w][s])});
    }
  }
  table.print();
  return report.write() ? 0 : 1;
}
