// Figure 2: transaction throughput using an SMP as the primary,
// Debit-Credit benchmark (Section 8).
#include "fig_smp_common.hpp"

using namespace vrep;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 50'000;

  // Paper Figure 2 series, eyeballed from the plot: Active scales
  // near-linearly; passive logging hits the SAN at 2 CPUs; the mirroring
  // versions see practically no increase.
  const double paper[4][4] = {
      {320'000, 640'000, 950'000, 1'250'000},  // Active
      {280'000, 400'000, 420'000, 430'000},    // Pass. Ver. 3
      {130'000, 150'000, 155'000, 160'000},    // Pass. Ver. 2
      {120'000, 140'000, 145'000, 150'000},    // Pass. Ver. 1
  };
  bench::JsonReport report(args, "fig2_smp_debitcredit");
  bench::run_smp_figure("Figure 2: SMP primary, Debit-Credit",
                        wl::WorkloadKind::kDebitCredit, paper, txns, report);
  return report.write() ? 0 : 1;
}
