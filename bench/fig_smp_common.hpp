// Shared implementation of Figures 2 and 3: aggregate throughput with an
// SMP primary (Section 8). One independent transaction stream per CPU, each
// with its own 10 MB database, all sharing the node's single Memory Channel
// adapter — the experiment that exposes the SAN as the bottleneck for every
// scheme except active logging.
#pragma once

#include <vector>

#include "bench_common.hpp"
#include "util/ascii_chart.hpp"

namespace vrep::bench {

struct SmpScheme {
  const char* name;
  harness::Mode mode;
  core::VersionKind version;
};

inline void run_smp_figure(const char* title, wl::WorkloadKind workload,
                           const double paper[4][4], std::uint64_t txns_per_stream,
                           JsonReport& report) {
  const SmpScheme schemes[] = {
      {"Active", harness::Mode::kActive, core::VersionKind::kV3InlineLog},
      {"Pass. Ver. 3", harness::Mode::kPassive, core::VersionKind::kV3InlineLog},
      {"Pass. Ver. 2", harness::Mode::kPassive, core::VersionKind::kV2MirrorDiff},
      {"Pass. Ver. 1", harness::Mode::kPassive, core::VersionKind::kV1MirrorCopy},
  };

  Table table(std::string(title) + " (aggregate TPS)");
  table.set_header({"scheme", "cpus", "paper", "ours", "ratio", "link util"});
  AsciiChart chart(title, "number of processors", "aggregate TPS");
  chart.set_x({1, 2, 3, 4});

  for (int s = 0; s < 4; ++s) {
    std::vector<double> series;
    for (int cpus = 1; cpus <= 4; ++cpus) {
      harness::ExperimentConfig config;
      config.mode = schemes[s].mode;
      config.version = schemes[s].version;
      config.workload = workload;
      config.db_size = 10ull << 20;  // paper: 10 MB per transaction stream
      config.streams = cpus;
      config.txns_per_stream = txns_per_stream;
      const auto r = run_experiment(config);
      report.add(std::string(schemes[s].name) + "/" + std::to_string(cpus) + "cpu", config, r,
                 paper[s][cpus - 1]);
      series.push_back(r.tps);
      char util[16];
      std::snprintf(util, sizeof util, "%.0f%%", r.link_utilization * 100);
      table.add_row({schemes[s].name, std::to_string(cpus),
                     Table::num(paper[s][cpus - 1], 0), tps_cell(r.tps),
                     ratio_cell(r.tps, paper[s][cpus - 1]), util});
    }
    chart.add_series(schemes[s].name, series);
  }
  table.print();
  chart.print();
}

}  // namespace vrep::bench
