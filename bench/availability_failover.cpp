// Extension bench: availability vs. replication degree and commit safety.
//
// The paper's active scheme ships redo to ONE backup; the generalized
// pipeline fans a commit out to N ordered backups and (in 2-safe mode)
// waits for a quorum K of acknowledgments. This bench quantifies the two
// sides of that trade on the simulated hardware:
//
//   * cost  — virtual-time throughput and the per-commit 2-safe wait as the
//     fan-out and the quorum grow;
//   * availability — at a primary kill right after the last commit: the
//     *proven-durable lag* per survivor (committed sequence minus the
//     highest acknowledgment visibly received — acks ride the cursor
//     write-back one propagation delay behind the apply, and a 1-safe
//     commit never waits for them), the physical loss after the survivors
//     drain their rings, and the promoted survivor's takeover latency.
//
// 2-safe quorum K closes the proven-durable window for the K fastest
// replicas; the unproven tail on the others is what a cascading second
// failure gambles on. All topologies run the identical seeded Debit-Credit
// prefix, so the cells are directly comparable and byte-stable under
// check_drift.py.
#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "repl/active.hpp"
#include "sim/alpha_cost_model.hpp"
#include "sim/node.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

using namespace vrep;

namespace {

struct Topology {
  const char* name;
  int backups;
  bool two_safe;
  unsigned quorum;
};

struct CellResult {
  std::uint64_t committed = 0;
  double seconds = 0;        // virtual time
  double two_safe_wait = 0;  // seconds of commit time spent awaiting acks
  std::uint64_t unacked_best = 0;   // committed - best proven-durable survivor
  std::uint64_t unacked_worst = 0;  // committed - worst proven-durable survivor
  std::uint64_t loss_best = 0;      // committed - most-caught-up survivor (drained)
  std::uint64_t loss_worst = 0;     // committed - least-caught-up survivor (drained)
  double takeover_ms = 0;           // promoted survivor's ring-drain latency
};

CellResult run_cell(const Topology& topo, std::uint64_t txns) {
  constexpr std::size_t kDbSize = 1u << 20;
  const core::StoreConfig config =
      wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  const sim::AlphaCostModel cost;
  const auto layout = repl::ActiveBackupLayout::make(kDbSize);

  sim::McFabric fabric(cost.link);
  sim::Node pnode(cost, 1, &fabric);
  sim::Node bnode(cost, topo.backups, nullptr);

  rio::Arena parena = rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(
      config, layout, static_cast<std::size_t>(topo.backups)));
  std::vector<rio::Arena> barenas;
  std::vector<std::unique_ptr<repl::ActiveBackup>> backups;
  for (int i = 0; i < topo.backups; ++i) {
    barenas.push_back(rio::Arena::create(layout.arena_bytes()));
  }
  for (int i = 0; i < topo.backups; ++i) {
    backups.push_back(std::make_unique<repl::ActiveBackup>(
        bnode.cpu(static_cast<std::size_t>(i)), barenas[static_cast<std::size_t>(i)], layout,
        fabric));
  }
  repl::ActivePrimary primary(pnode.cpu().bus(), parena, barenas[0], config, layout,
                              backups[0].get(), /*format=*/true);
  for (int i = 1; i < topo.backups; ++i) {
    primary.add_backup(barenas[static_cast<std::size_t>(i)], backups[static_cast<std::size_t>(i)].get());
  }
  primary.set_two_safe(topo.two_safe);
  primary.set_quorum(topo.quorum);

  wl::DebitCredit bank(kDbSize);
  bank.initialize(primary);
  primary.flush_initial_state();
  for (auto& b : backups) std::memcpy(b->db(), primary.db(), kDbSize);

  CellResult r;
  Rng rng(20260806);
  const sim::SimTime start = pnode.cpu().clock().now();
  for (std::uint64_t i = 0; i < txns; ++i) bank.run_txn(primary, rng);
  const sim::SimTime end = pnode.cpu().clock().now();
  r.committed = primary.committed_seq();
  r.seconds = static_cast<double>(end - start) / 1e9;
  r.two_safe_wait = static_cast<double>(primary.two_safe_wait_ns()) / 1e9;

  // Kill the primary at its current virtual time. First measure what it can
  // PROVE each replica holds at that instant (visible acknowledgments);
  // then let every backup cut the fabric and drain what physically arrived.
  // Ordered failover promotes the most-caught-up survivor (loss_best);
  // loss_worst is the extra exposure a cascading second failure would add.
  std::vector<std::uint64_t> acked;
  for (auto& b : backups) acked.push_back(b->applied_visible(end));
  r.unacked_best = r.committed - *std::max_element(acked.begin(), acked.end());
  r.unacked_worst = r.committed - *std::min_element(acked.begin(), acked.end());

  std::vector<std::uint64_t> survived;
  for (auto& b : backups) survived.push_back(b->takeover(end));
  const std::uint64_t best = *std::max_element(survived.begin(), survived.end());
  const std::uint64_t worst = *std::min_element(survived.begin(), survived.end());
  r.loss_best = r.committed - best;
  r.loss_worst = r.committed - worst;
  const std::size_t heir = static_cast<std::size_t>(
      std::max_element(survived.begin(), survived.end()) - survived.begin());
  r.takeover_ms =
      static_cast<double>(backups[heir]->cpu().clock().now() - end) / 1e6;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns =
      static_cast<std::uint64_t>(args.get_int("txns", args.has("quick") ? 2'000 : 10'000));

  const Topology topologies[] = {
      {"1-backup/1-safe", 1, false, 1},
      {"1-backup/2-safe", 1, true, 1},
      {"2-backup/2-safe/K=1", 2, true, 1},
      {"2-backup/2-safe/K=2", 2, true, 2},
  };

  Table table("Extension: availability vs. replication degree and quorum");
  table.set_header({"topology", "TPS", "us/txn", "2-safe wait", "unacked@best",
                    "unacked@worst", "takeover"});
  bench::JsonReport report(args, "availability_failover");

  for (const Topology& topo : topologies) {
    const CellResult r = run_cell(topo, txns);
    char per_txn[32], wait[32], takeover[32];
    std::snprintf(per_txn, sizeof per_txn, "%.2f",
                  r.seconds * 1e6 / static_cast<double>(r.committed));
    std::snprintf(wait, sizeof wait, "%.1f%%", 100.0 * r.two_safe_wait / r.seconds);
    std::snprintf(takeover, sizeof takeover, "%.3f ms", r.takeover_ms);
    const double tps = static_cast<double>(r.committed) / r.seconds;
    table.add_row({topo.name, bench::tps_cell(tps), per_txn, wait,
                   Table::num(r.unacked_best) + " txns",
                   Table::num(r.unacked_worst) + " txns", takeover});

    Json cell = Json::object();
    cell.set("name", topo.name);
    cell.set("backups", Json(topo.backups));
    cell.set("two_safe", Json(topo.two_safe));
    cell.set("quorum", Json(static_cast<std::uint64_t>(topo.quorum)));
    cell.set("committed", Json(r.committed));
    cell.set("seconds", Json(r.seconds));
    cell.set("tps", Json(tps));
    cell.set("two_safe_wait_seconds", Json(r.two_safe_wait));
    cell.set("unacked_window_best_txns", Json(r.unacked_best));
    cell.set("unacked_window_worst_txns", Json(r.unacked_worst));
    cell.set("loss_window_best_txns", Json(r.loss_best));
    cell.set("loss_window_worst_txns", Json(r.loss_worst));
    cell.set("takeover_ms", Json(r.takeover_ms));
    report.add_cell(std::move(cell));
  }
  table.print();
  return report.write() ? 0 : 1;
}
