// Wall-clock shard scaling: throughput of the partitioned multi-primary
// cluster (shard/sharded_cluster.hpp) as the shard count grows, crossed with
// the Debit-Credit remote-branch fraction. One driver thread per shard
// executes pre-drawn transaction plans through the thread-safe
// ShardedCluster::execute() path, so local transactions from different
// threads latch disjoint shards while cross-shard ones pay the 2PC
// prepare/decide round through shard::CrossShardCoordinator.
//
// Wall-clock numbers are machine-dependent: the emitted JSON marks the root
// with "wallclock": true and check_drift.py compares only the deterministic
// fields (committed / cross_committed counts, config identity, the
// consistency verdict) exactly, sanity-checking seconds/tps. The transaction
// plans are drawn from fixed per-thread seeds BEFORE timing starts, so the
// deterministic fields never depend on thread interleaving.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrep::bench {
namespace {

// "--shards 1,2,4" -> {1,2,4}; any non-digit separates.
std::vector<unsigned> parse_list(const std::string& spec, std::vector<unsigned> fallback) {
  std::vector<unsigned> out;
  unsigned cur = 0;
  bool have = false;
  for (const char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<unsigned>(c - '0');
      have = true;
    } else {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have) out.push_back(cur);
  if (out.empty()) out = std::move(fallback);
  return out;
}

int run_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  JsonReport report(args, "shard_scaling");
  const unsigned hw = std::thread::hardware_concurrency();
  report.set_root("wallclock", Json(true));
  report.set_root("hw_threads", Json(hw));

  std::uint64_t total_txns = 24'000;
  if (args.has("quick")) total_txns = 4'000;
  total_txns =
      static_cast<std::uint64_t>(args.get_int("txns", static_cast<std::int64_t>(total_txns)));
  const std::vector<unsigned> shard_sweep = parse_list(args.get_string("shards", ""), {1, 2, 4});
  const std::vector<unsigned> remote_sweep = parse_list(args.get_string("remote", ""), {0, 10, 30});

  Table table("Shard scaling (wall clock, 2-safe, 1 backup/shard, hw_threads=" +
              std::to_string(hw) + ")");
  table.set_header({"shards", "remote%", "threads", "committed", "cross", "seconds", "tps"});

  for (const unsigned shards : shard_sweep) {
    for (const unsigned remote_pct : remote_sweep) {
      shard::ShardedConfig config;
      config.shards = shards;
      config.backups_per_shard = 1;
      config.two_safe = true;
      shard::ShardedCluster cluster(config);
      const shard::Router router(cluster.map());
      const double remote_fraction = static_cast<double>(remote_pct) / 100.0;

      // One driver thread per shard; plans drawn up front from fixed
      // per-thread seeds so the cross-shard mix is reproducible.
      const unsigned threads = shards;
      const std::uint64_t per_thread = total_txns / threads;
      std::vector<std::vector<shard::TxnDecision>> plans(threads);
      std::uint64_t cross_planned = 0;
      for (unsigned t = 0; t < threads; ++t) {
        Rng rng(0x5ca1e000 + 977 * shards + 31 * remote_pct + t);
        plans[t].reserve(per_thread);
        for (std::uint64_t n = 0; n < per_thread; ++n) {
          plans[t].push_back(
              shard::plan_txn(router, cluster.workload(), shards, rng, remote_fraction));
          cross_planned += plans[t].back().cross ? 1 : 0;
        }
      }

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> drivers;
      drivers.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) {
        drivers.emplace_back([&cluster, &plans, t] {
          for (const shard::TxnDecision& decision : plans[t]) {
            VREP_CHECK(cluster.execute(decision));
          }
        });
      }
      for (std::thread& d : drivers) d.join();
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

      // The bench doubles as a correctness gate: every replica of every
      // shard byte-identical and the global balance invariant intact.
      std::uint64_t committed = 0;
      bool consistent = cluster.check_global_consistency().empty();
      for (shard::ShardId id = 0; id < shards; ++id) {
        committed += cluster.shard_committed(id);
        consistent = consistent && cluster.check_replicas(id).empty() && cluster.in_doubt(id) == 0;
      }
      VREP_CHECK(consistent);
      // Each cross-shard commit burns a prepare seq on the remote as well.
      VREP_CHECK(committed == per_thread * threads + cross_planned);
      const std::uint64_t txns = per_thread * threads;
      const double tps = seconds > 0 ? static_cast<double>(txns) / seconds : 0.0;

      Json cell = Json::object();
      cell.set("name", "s" + std::to_string(shards) + "_r" + std::to_string(remote_pct));
      cell.set("workload", "debit_credit");
      cell.set("shards", Json(shards));
      cell.set("remote_pct", Json(remote_pct));
      cell.set("threads", Json(threads));
      cell.set("txns", Json(txns));
      cell.set("committed", Json(txns));
      cell.set("cross_committed", Json(cross_planned));
      cell.set("consistent", Json(consistent));
      cell.set("seconds", Json(seconds));
      cell.set("tps", Json(tps));
      report.add_cell(std::move(cell));

      char secs[32];
      std::snprintf(secs, sizeof secs, "%.3f", seconds);
      table.add_row({std::to_string(shards), std::to_string(remote_pct),
                     std::to_string(threads), Table::num(txns), Table::num(cross_planned), secs,
                     tps_cell(tps)});
    }
  }
  table.print();
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vrep::bench

int main(int argc, char** argv) { return vrep::bench::run_main(argc, argv); }
