// Extension bench: 1-safe vs 2-safe active commits, and the group-commit
// window sweep that buys the 2-safe cost back.
//
// The paper's designs are 1-safe (Section 2.1): commit returns as soon as
// it is durable locally, leaving a microseconds-wide window in which a
// failure loses the last committed transaction. The natural hardening is
// 2-safe: commit waits for the backup's acknowledgment. This bench
// quantifies what that costs on the simulated hardware — the round trip is
// ~2x the SAN propagation delay, which at 600 MHz is many thousands of
// instructions per commit.
//
// The second half sweeps the group-commit knobs on the hardest topology
// (2 backups, 2-safe, quorum K=2): G transactions coalesce into one ring
// unit and up to W shipped sequences may await acks before a commit blocks
// (see repl/pipeline.hpp). W=1/G=1 is the classic blocking commit; the
// sweep shows how overlapping the ack round trip with subsequent commits
// recovers most of the 1-safe throughput while every transaction still
// gets a provable durability verdict via wait()/sync().
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "repl/active.hpp"
#include "sim/alpha_cost_model.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

namespace {

struct SweepResult {
  std::uint64_t committed = 0;
  double seconds = 0;        // virtual time (including the final sync)
  double two_safe_wait = 0;  // seconds of commit time spent awaiting acks
};

// 2 backups, 2-safe, quorum K=2 — the topology where every commit's ack
// round trip is fully exposed — with the group-commit knobs applied.
SweepResult run_sweep_cell(unsigned window, unsigned group, std::uint64_t txns) {
  constexpr std::size_t kDbSize = 1u << 20;
  constexpr int kBackups = 2;
  const core::StoreConfig config =
      wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  const sim::AlphaCostModel cost;
  const auto layout = repl::ActiveBackupLayout::make(kDbSize);

  sim::McFabric fabric(cost.link);
  sim::Node pnode(cost, 1, &fabric);
  sim::Node bnode(cost, kBackups, nullptr);

  rio::Arena parena = rio::Arena::create(
      repl::ActivePrimary::primary_arena_bytes(config, layout, kBackups));
  std::vector<rio::Arena> barenas;
  std::vector<std::unique_ptr<repl::ActiveBackup>> backups;
  for (int i = 0; i < kBackups; ++i) {
    barenas.push_back(rio::Arena::create(layout.arena_bytes()));
  }
  for (int i = 0; i < kBackups; ++i) {
    backups.push_back(std::make_unique<repl::ActiveBackup>(
        bnode.cpu(static_cast<std::size_t>(i)), barenas[static_cast<std::size_t>(i)], layout,
        fabric));
  }
  repl::ActivePrimary primary(pnode.cpu().bus(), parena, barenas[0], config, layout,
                              backups[0].get(), /*format=*/true);
  for (int i = 1; i < kBackups; ++i) {
    primary.add_backup(barenas[static_cast<std::size_t>(i)],
                       backups[static_cast<std::size_t>(i)].get());
  }
  primary.set_two_safe(true);
  primary.set_quorum(2);
  primary.set_commit_window(window);
  primary.set_group_size(group);

  wl::DebitCredit bank(kDbSize);
  bank.initialize(primary);
  primary.flush_initial_state();
  for (auto& b : backups) std::memcpy(b->db(), primary.db(), kDbSize);

  SweepResult r;
  Rng rng(20260806);
  const sim::SimTime start = pnode.cpu().clock().now();
  for (std::uint64_t i = 0; i < txns; ++i) bank.run_txn(primary, rng);
  // Resolve the open window: throughput is measured commit-to-durable, not
  // commit-to-staged, so wider windows cannot cheat by leaving a tail.
  primary.sync();
  const sim::SimTime end = pnode.cpu().clock().now();
  r.committed = primary.committed_seq();
  r.seconds = static_cast<double>(end - start) / 1e9;
  r.two_safe_wait = static_cast<double>(primary.two_safe_wait_ns()) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 60'000;

  Table table("Extension: 1-safe vs 2-safe active commits");
  table.set_header({"benchmark", "safety", "TPS", "us/txn", "loss window"});
  bench::JsonReport report(args, "ablation_two_safe");
  for (const auto workload :
       {wl::WorkloadKind::kDebitCredit, wl::WorkloadKind::kOrderEntry}) {
    for (const bool two_safe : {false, true}) {
      ExperimentConfig config;
      config.mode = Mode::kActive;
      config.workload = workload;
      config.txns_per_stream = txns;
      config.two_safe = two_safe;
      const auto r = run_experiment(config);
      report.add(std::string(wl::workload_name(workload)) + "/" +
                     (two_safe ? "2-safe" : "1-safe"),
                 config, r);
      char per_txn[32];
      std::snprintf(per_txn, sizeof per_txn, "%.2f", 1e6 / r.tps);
      table.add_row({wl::workload_name(workload), two_safe ? "2-safe" : "1-safe",
                     bench::tps_cell(r.tps), per_txn,
                     two_safe ? "none" : "last in-flight commits"});
    }
  }
  table.print();

  // Group-commit sweep on the 2-backup / 2-safe / K=2 topology. --window N
  // --group N appends one extra custom point to the fixed grid.
  const std::uint64_t sweep_txns =
      static_cast<std::uint64_t>(args.get_int("txns", args.has("quick") ? 2'000 : 10'000));
  struct Point {
    unsigned window;
    unsigned group;
  };
  std::vector<Point> points = {{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}, {8, 8}};
  if (args.has("window") || args.has("group")) {
    points.push_back(Point{static_cast<unsigned>(args.get_int("window", 1)),
                           static_cast<unsigned>(args.get_int("group", 1))});
  }

  Table sweep("Group-commit sweep (2 backups, 2-safe, quorum K=2, Debit-Credit)");
  sweep.set_header({"window W", "group G", "TPS", "us/txn", "2-safe wait", "vs W=1/G=1"});
  double baseline_tps = 0;
  for (const Point& p : points) {
    const SweepResult r = run_sweep_cell(p.window, p.group, sweep_txns);
    const double tps = static_cast<double>(r.committed) / r.seconds;
    if (p.window == 1 && p.group == 1 && baseline_tps == 0) baseline_tps = tps;
    char per_txn[32], wait[32], speedup[32];
    std::snprintf(per_txn, sizeof per_txn, "%.2f",
                  r.seconds * 1e6 / static_cast<double>(r.committed));
    std::snprintf(wait, sizeof wait, "%.1f%%", 100.0 * r.two_safe_wait / r.seconds);
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  baseline_tps == 0 ? 0 : tps / baseline_tps);
    sweep.add_row({Table::num(static_cast<std::uint64_t>(p.window)), Table::num(static_cast<std::uint64_t>(p.group)), bench::tps_cell(tps),
                   per_txn, wait, speedup});

    Json cell = Json::object();
    cell.set("name", "quorum2/W=" + Table::num(static_cast<std::uint64_t>(p.window)) + "/G=" + Table::num(static_cast<std::uint64_t>(p.group)));
    cell.set("window", Json(static_cast<std::uint64_t>(p.window)));
    cell.set("group", Json(static_cast<std::uint64_t>(p.group)));
    cell.set("committed", Json(r.committed));
    cell.set("seconds", Json(r.seconds));
    cell.set("tps", Json(tps));
    cell.set("two_safe_wait_seconds", Json(r.two_safe_wait));
    cell.set("speedup_vs_blocking", Json(baseline_tps == 0 ? 0 : tps / baseline_tps));
    report.add_cell(std::move(cell));
  }
  sweep.print();
  return report.write() ? 0 : 1;
}
