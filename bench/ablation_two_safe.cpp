// Extension bench: 1-safe vs 2-safe active commits.
//
// The paper's designs are 1-safe (Section 2.1): commit returns as soon as
// it is durable locally, leaving a microseconds-wide window in which a
// failure loses the last committed transaction. The natural hardening is
// 2-safe: commit waits for the backup's acknowledgment. This bench
// quantifies what that costs on the simulated hardware — the round trip is
// ~2x the SAN propagation delay, which at 600 MHz is many thousands of
// instructions per commit.
#include "bench_common.hpp"

using namespace vrep;
using harness::ExperimentConfig;
using harness::Mode;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t txns = args.has("quick") ? 15'000 : 60'000;

  Table table("Extension: 1-safe vs 2-safe active commits");
  table.set_header({"benchmark", "safety", "TPS", "us/txn", "loss window"});
  bench::JsonReport report(args, "ablation_two_safe");
  for (const auto workload :
       {wl::WorkloadKind::kDebitCredit, wl::WorkloadKind::kOrderEntry}) {
    for (const bool two_safe : {false, true}) {
      ExperimentConfig config;
      config.mode = Mode::kActive;
      config.workload = workload;
      config.txns_per_stream = txns;
      config.two_safe = two_safe;
      const auto r = run_experiment(config);
      report.add(std::string(wl::workload_name(workload)) + "/" +
                     (two_safe ? "2-safe" : "1-safe"),
                 config, r);
      char per_txn[32];
      std::snprintf(per_txn, sizeof per_txn, "%.2f", 1e6 / r.tps);
      table.add_row({wl::workload_name(workload), two_safe ? "2-safe" : "1-safe",
                     bench::tps_cell(r.tps), per_txn,
                     two_safe ? "none" : "last in-flight commits"});
    }
  }
  table.print();
  return report.write() ? 0 : 1;
}
