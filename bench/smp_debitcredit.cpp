// Wall-clock SMP Debit-Credit: real worker threads through exec::SmpExecutor
// against a live in-process backup. The measured counterpart to the
// simulated Figure 2 sweep (fig2_smp_debitcredit).
#include "smp_common.hpp"

int main(int argc, char** argv) {
  return vrep::bench::run_smp_bench_main(argc, argv, vrep::wl::WorkloadKind::kDebitCredit,
                                         "smp_debitcredit", "SMP Debit-Credit");
}
