// Randomized cross-version conformance: seeded random histories — commit /
// abort / crash interleavings over variable-size, overlapping ranges — are
// driven through every store version (V0 Vista, V1 mirror-copy, V2
// mirror-diff, V3 inline-log) and checked against a pure in-memory oracle.
//
// The oracle is derived from the seed alone (no store involved): committed
// transactions apply their bytes, aborted ones vanish. A fault-free run must
// leave the store's database bit-identical to the oracle (so all four
// versions agree with each other by transitivity). A crash run reboots and
// recovers the surviving arena; the survivor must then match the oracle
// image at exactly its recovered commit count — all-or-nothing, never torn.
//
// The seed matrix is fixed (kSeeds of them, every kCrashEvery-th armed with
// a random mid-history crash) so CI is deterministic; each check is wrapped
// in a SCOPED_TRACE that prints the seed, so a failure names the exact
// history to replay.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "rio/crash.hpp"
#include "sim/mem_bus.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using core::VersionKind;

constexpr VersionKind kAllVersions[] = {
    VersionKind::kV0Vista,
    VersionKind::kV1MirrorCopy,
    VersionKind::kV2MirrorDiff,
    VersionKind::kV3InlineLog,
};

constexpr std::uint64_t kSeeds = 32;
constexpr std::uint64_t kCrashEvery = 4;  // seeds 0,4,8,... get a crash

StoreConfig random_config() {
  StoreConfig config;
  config.db_size = 32 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  config.v0_meta_pad_bytes = 32;
  return config;
}

// Drive the seed's deterministic history through `store`. When `oracle` is
// non-null, committed writes are mirrored into it and `crc_at` records the
// oracle CRC after every commit (index = committed count; slot 0, the
// initial image, is pushed by the caller). Aborts leave both untouched.
// Throws rio::SimulatedCrash if the bus write hook is armed.
void run_history(core::TransactionStore& store, std::uint64_t seed,
                 std::vector<std::uint8_t>* oracle, std::vector<std::uint32_t>* crc_at) {
  Rng rng(seed * 2654435761u + 1);
  const int txns = 24 + static_cast<int>(rng.below(24));
  std::uint8_t* db = store.db();
  for (int t = 0; t < txns; ++t) {
    const bool abort = rng.below(8) == 0;
    const int ranges = 1 + static_cast<int>(rng.below(5));
    struct Write {
      std::size_t off;
      std::vector<std::uint8_t> bytes;
    };
    std::vector<Write> writes;
    store.begin_transaction();
    for (int r = 0; r < ranges; ++r) {
      // Variable lengths, unaligned offsets, natural overlap across ranges.
      const std::size_t len = 4 + rng.below(60);
      const std::size_t off = rng.below(store.db_size() - len);
      store.set_range(db + off, len);
      Write w{off, std::vector<std::uint8_t>(len)};
      for (auto& b : w.bytes) b = static_cast<std::uint8_t>(rng.next_u32());
      store.bus().write(db + off, w.bytes.data(), len, sim::TrafficClass::kModified);
      writes.push_back(std::move(w));
    }
    if (abort) {
      store.abort_transaction();
      continue;
    }
    store.commit_transaction();
    if (oracle != nullptr) {
      for (const Write& w : writes) {
        std::memcpy(oracle->data() + w.off, w.bytes.data(), w.bytes.size());
      }
      if (crc_at != nullptr) crc_at->push_back(Crc32::of(oracle->data(), oracle->size()));
    }
  }
}

class RandomConformanceTest : public ::testing::TestWithParam<VersionKind> {};

TEST_P(RandomConformanceTest, SeedMatrixMatchesOracle) {
  const VersionKind kind = GetParam();
  const StoreConfig config = random_config();

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const bool crash_seed = seed % kCrashEvery == 0;
    SCOPED_TRACE("seed=" + std::to_string(seed) + (crash_seed ? " (crash)" : "") +
                 " — rerun with this seed to reproduce");

    // Reference pass: build the oracle and its per-commit CRC trajectory,
    // and count the victim run's store writes for the crash sweep.
    std::vector<std::uint8_t> oracle(config.db_size, 0);
    std::vector<std::uint32_t> crc_at;
    std::uint64_t total_writes = 0;
    {
      sim::MemBus bus;
      rio::CrashInjector counter;
      rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      oracle.assign(store->db(), store->db() + config.db_size);
      crc_at.push_back(Crc32::of(oracle.data(), oracle.size()));  // commit count 0
      bus.set_write_hook(&counter);
      run_history(*store, seed, &oracle, &crc_at);
      bus.set_write_hook(nullptr);
      total_writes = counter.writes_seen();

      // Fault-free conformance: final database == oracle, bit for bit. All
      // four versions therefore agree with each other by transitivity.
      ASSERT_TRUE(store->validate());
      EXPECT_EQ(Crc32::of(store->db(), config.db_size),
                Crc32::of(oracle.data(), oracle.size()))
          << "fault-free image diverged from the oracle";
      EXPECT_EQ(store->committed_seq() + 1, crc_at.size());
    }
    if (!crash_seed) continue;

    // Crash pass: arm a crash at a seed-derived write inside the history,
    // reboot over the surviving bytes, and demand the recovered image equal
    // the oracle at exactly the recovered commit count — never a torn mix.
    ASSERT_GT(total_writes, 2u);
    Rng crash_rng(seed + 7777);
    const std::uint64_t crash_at = 1 + crash_rng.below(total_writes - 1);
    sim::MemBus bus;
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    {
      rio::CrashInjector injector;
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      bus.set_write_hook(&injector);
      injector.arm(crash_at);
      try {
        run_history(*store, seed, nullptr, nullptr);
        FAIL() << "crash at write " << crash_at << " of " << total_writes << " never fired";
      } catch (const rio::SimulatedCrash&) {
      }
      bus.set_write_hook(nullptr);
    }
    auto survivor = core::make_store(kind, bus, arena, config, /*format=*/false);
    survivor->recover();
    ASSERT_TRUE(survivor->validate()) << "crash at write " << crash_at;
    const std::uint64_t committed = survivor->committed_seq();
    ASSERT_LT(committed, crc_at.size()) << "recovered past the reference history";
    EXPECT_EQ(Crc32::of(survivor->db(), config.db_size), crc_at[committed])
        << "crash at write " << crash_at << " recovered commit count " << committed
        << " but the image does not match the oracle at that point";
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, RandomConformanceTest, ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionKind::kV0Vista: return "V0Vista";
                             case VersionKind::kV1MirrorCopy: return "V1MirrorCopy";
                             case VersionKind::kV2MirrorDiff: return "V2MirrorDiff";
                             case VersionKind::kV3InlineLog: return "V3InlineLog";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace vrep
