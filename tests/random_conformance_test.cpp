// Randomized cross-version conformance: seeded random histories — commit /
// abort / crash interleavings over variable-size, overlapping ranges — are
// driven through every store version (V0 Vista, V1 mirror-copy, V2
// mirror-diff, V3 inline-log) and checked against a pure in-memory oracle.
//
// The oracle is derived from the seed alone (no store involved): committed
// transactions apply their bytes, aborted ones vanish. A fault-free run must
// leave the store's database bit-identical to the oracle (so all four
// versions agree with each other by transitivity). A crash run reboots and
// recovers the surviving arena; the survivor must then match the oracle
// image at exactly its recovered commit count — all-or-nothing, never torn.
//
// The seed matrix is fixed (kSeeds of them, every kCrashEvery-th armed with
// a random mid-history crash) so CI is deterministic; each check is wrapped
// in a SCOPED_TRACE that prints the seed, so a failure names the exact
// history to replay.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "repl/link.hpp"
#include "repl/pipeline.hpp"
#include "rio/arena.hpp"
#include "rio/crash.hpp"
#include "sim/mem_bus.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using core::VersionKind;

constexpr VersionKind kAllVersions[] = {
    VersionKind::kV0Vista,
    VersionKind::kV1MirrorCopy,
    VersionKind::kV2MirrorDiff,
    VersionKind::kV3InlineLog,
};

constexpr std::uint64_t kSeeds = 32;
constexpr std::uint64_t kCrashEvery = 4;  // seeds 0,4,8,... get a crash

StoreConfig random_config() {
  StoreConfig config;
  config.db_size = 32 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  config.v0_meta_pad_bytes = 32;
  return config;
}

// Drive the seed's deterministic history through `store`. When `oracle` is
// non-null, committed writes are mirrored into it and `crc_at` records the
// oracle CRC after every commit (index = committed count; slot 0, the
// initial image, is pushed by the caller). Aborts leave both untouched.
// Throws rio::SimulatedCrash if the bus write hook is armed.
void run_history(core::TransactionStore& store, std::uint64_t seed,
                 std::vector<std::uint8_t>* oracle, std::vector<std::uint32_t>* crc_at) {
  Rng rng(seed * 2654435761u + 1);
  const int txns = 24 + static_cast<int>(rng.below(24));
  std::uint8_t* db = store.db();
  for (int t = 0; t < txns; ++t) {
    const bool abort = rng.below(8) == 0;
    const int ranges = 1 + static_cast<int>(rng.below(5));
    struct Write {
      std::size_t off;
      std::vector<std::uint8_t> bytes;
    };
    std::vector<Write> writes;
    store.begin_transaction();
    for (int r = 0; r < ranges; ++r) {
      // Variable lengths, unaligned offsets, natural overlap across ranges.
      const std::size_t len = 4 + rng.below(60);
      const std::size_t off = rng.below(store.db_size() - len);
      store.set_range(db + off, len);
      Write w{off, std::vector<std::uint8_t>(len)};
      for (auto& b : w.bytes) b = static_cast<std::uint8_t>(rng.next_u32());
      store.bus().write(db + off, w.bytes.data(), len, sim::TrafficClass::kModified);
      writes.push_back(std::move(w));
    }
    if (abort) {
      store.abort_transaction();
      continue;
    }
    store.commit_transaction();
    if (oracle != nullptr) {
      for (const Write& w : writes) {
        std::memcpy(oracle->data() + w.off, w.bytes.data(), w.bytes.size());
      }
      if (crc_at != nullptr) crc_at->push_back(Crc32::of(oracle->data(), oracle->size()));
    }
  }
}

class RandomConformanceTest : public ::testing::TestWithParam<VersionKind> {};

TEST_P(RandomConformanceTest, SeedMatrixMatchesOracle) {
  const VersionKind kind = GetParam();
  const StoreConfig config = random_config();

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const bool crash_seed = seed % kCrashEvery == 0;
    SCOPED_TRACE("seed=" + std::to_string(seed) + (crash_seed ? " (crash)" : "") +
                 " — rerun with this seed to reproduce");

    // Reference pass: build the oracle and its per-commit CRC trajectory,
    // and count the victim run's store writes for the crash sweep.
    std::vector<std::uint8_t> oracle(config.db_size, 0);
    std::vector<std::uint32_t> crc_at;
    std::uint64_t total_writes = 0;
    {
      sim::MemBus bus;
      rio::CrashInjector counter;
      rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      oracle.assign(store->db(), store->db() + config.db_size);
      crc_at.push_back(Crc32::of(oracle.data(), oracle.size()));  // commit count 0
      bus.set_write_hook(&counter);
      run_history(*store, seed, &oracle, &crc_at);
      bus.set_write_hook(nullptr);
      total_writes = counter.writes_seen();

      // Fault-free conformance: final database == oracle, bit for bit. All
      // four versions therefore agree with each other by transitivity.
      ASSERT_TRUE(store->validate());
      EXPECT_EQ(Crc32::of(store->db(), config.db_size),
                Crc32::of(oracle.data(), oracle.size()))
          << "fault-free image diverged from the oracle";
      EXPECT_EQ(store->committed_seq() + 1, crc_at.size());
    }
    if (!crash_seed) continue;

    // Crash pass: arm a crash at a seed-derived write inside the history,
    // reboot over the surviving bytes, and demand the recovered image equal
    // the oracle at exactly the recovered commit count — never a torn mix.
    ASSERT_GT(total_writes, 2u);
    Rng crash_rng(seed + 7777);
    const std::uint64_t crash_at = 1 + crash_rng.below(total_writes - 1);
    sim::MemBus bus;
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    {
      rio::CrashInjector injector;
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      bus.set_write_hook(&injector);
      injector.arm(crash_at);
      try {
        run_history(*store, seed, nullptr, nullptr);
        FAIL() << "crash at write " << crash_at << " of " << total_writes << " never fired";
      } catch (const rio::SimulatedCrash&) {
      }
      bus.set_write_hook(nullptr);
    }
    auto survivor = core::make_store(kind, bus, arena, config, /*format=*/false);
    survivor->recover();
    ASSERT_TRUE(survivor->validate()) << "crash at write " << crash_at;
    const std::uint64_t committed = survivor->committed_seq();
    ASSERT_LT(committed, crc_at.size()) << "recovered past the reference history";
    EXPECT_EQ(Crc32::of(survivor->db(), config.db_size), crc_at[committed])
        << "crash at write " << crash_at << " recovered commit count " << committed
        << " but the image does not match the oracle at that point";
  }
}

// ---- pipeline-level seed matrix: truncation + rejoin ------------------------
//
// The replication engine under randomized histories: every 2nd seed runs
// with fuzzy checkpointing enabled (seeded interval and copy step), the redo
// history is kept tiny so eviction and watermark truncation both happen, and
// a laggard backup frozen at a seeded mid-history point rejoins at the end.
// Whatever repair path the policy picks — delta, checkpoint+delta, or full
// image — the laggard must converge to the primary's exact bytes with zero
// committed-transaction loss.

class RecordingLink final : public repl::ReplicationLink {
 public:
  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    sent.push_back(repl::Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
    return true;
  }
  std::optional<repl::Frame> recv(int) override {
    if (inbound.empty()) {
      error_ = repl::LinkError::kTimeout;
      return std::nullopt;
    }
    repl::Frame frame = std::move(inbound.front());
    inbound.pop_front();
    error_ = repl::LinkError::kNone;
    return frame;
  }
  repl::LinkError last_error() const override { return error_; }
  bool connected() const override { return true; }

  std::deque<repl::Frame> inbound;
  std::vector<repl::Frame> sent;

 private:
  repl::LinkError error_ = repl::LinkError::kNone;
};

class VecSource final : public repl::RedoPipeline::Source {
 public:
  explicit VecSource(std::size_t size) : db_(size, 0) {}
  const std::uint8_t* db() const override { return db_.data(); }
  std::size_t db_size() const override { return db_.size(); }
  std::uint64_t committed_seq() const override { return committed; }
  std::uint8_t* mutable_db() { return db_.data(); }

  std::uint64_t committed = 0;

 private:
  std::vector<std::uint8_t> db_;
};

class VecTarget final : public repl::RedoApplier::Target {
 public:
  explicit VecTarget(std::size_t size) : mem(size, 0) {}
  void write(std::uint64_t off, const void* src, std::size_t len) override {
    std::memcpy(mem.data() + off, src, len);
  }
  std::size_t capacity() const override { return mem.size(); }
  const std::uint8_t* data() const override { return mem.data(); }

  std::vector<std::uint8_t> mem;
};

TEST(RandomPipelineConformance, TruncatedHistoryRejoinsConvergeAcrossSeedMatrix) {
  constexpr std::size_t kDb = 32 * 1024;
  std::map<repl::RedoPipeline::RejoinDecision, int> decisions;
  std::uint64_t checkpoints_total = 0, truncated_total = 0;

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const bool ckpt_seed = seed % 2 == 0;
    SCOPED_TRACE("seed=" + std::to_string(seed) + (ckpt_seed ? " (checkpointed)" : "") +
                 " — rerun with this seed to reproduce");

    VecSource source(kDb);
    RecordingLink link;
    // ~17 average batches of history: far less than the longest seeded gap,
    // so un-checkpointed laggards genuinely fall off the history window.
    repl::RedoPipeline pipe(source, &link, nullptr, {}, /*redo_history_bytes=*/1536);
    if (ckpt_seed) {
      pipe.enable_checkpoints(/*interval_txns=*/3 + seed % 5,
                              /*copy_bytes_per_commit=*/4096 + (seed % 3) * 4096);
    }

    Rng rng(seed * 96321u + 17);
    const int txns = 24 + static_cast<int>(rng.below(24));
    const std::uint64_t lag_at = 8 + rng.below(8);  // laggard freezes here
    std::vector<std::uint8_t> lag_image;
    for (std::uint64_t seq = 1; seq <= static_cast<std::uint64_t>(txns); ++seq) {
      pipe.begin();
      const int ranges = 1 + static_cast<int>(rng.below(3));
      for (int r = 0; r < ranges; ++r) {
        const std::size_t len = 4 + rng.below(60);
        const std::size_t off = rng.below(kDb - len);
        std::vector<std::uint8_t> bytes(len);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
        std::memcpy(source.mutable_db() + off, bytes.data(), len);
        pipe.stage(off, bytes.data(), len);
      }
      source.committed = seq;
      pipe.commit(seq);
      if (seq == lag_at) lag_image.assign(source.db(), source.db() + kDb);
    }
    if (ckpt_seed) {
      checkpoints_total += pipe.stats().checkpoints_completed;
      truncated_total += pipe.stats().redo_truncated_bytes;
    }

    // The laggard rejoins: record which repair the policy picked, then prove
    // that path converges to the primary's exact bytes.
    decisions[pipe.decide_rejoin(lag_at, 1)]++;
    VecTarget target(kDb);
    repl::RedoApplier applier(target);
    applier.seed(lag_image.data(), kDb, lag_at, /*state_epoch=*/1);
    repl::Frame request{repl::FrameKind::kRejoinRequest, 1, std::vector<std::uint8_t>(24)};
    const std::uint64_t node = 9, state_epoch = 1;
    std::memcpy(request.payload.data(), &lag_at, 8);
    std::memcpy(request.payload.data() + 8, &node, 8);
    std::memcpy(request.payload.data() + 16, &state_epoch, 8);
    link.inbound.push_back(std::move(request));
    link.sent.clear();
    ASSERT_TRUE(pipe.handle_rejoin(/*timeout_ms=*/0));
    RecordingLink backup_link;
    for (const auto& f : link.sent) applier.on_frame(f, backup_link);

    ASSERT_EQ(applier.applied_seq(), static_cast<std::uint64_t>(txns))
        << "rejoin lost committed transactions";
    ASSERT_EQ(std::memcmp(target.mem.data(), source.db(), kDb), 0)
        << "rejoined laggard != primary bytes";
    ASSERT_EQ(applier.stats().checkpoint_aborts, 0u) << "clean serve must not abort";
  }

  // The matrix must have exercised every repair path, and the checkpointed
  // half must have genuinely checkpointed and truncated.
  EXPECT_GE(decisions[repl::RedoPipeline::RejoinDecision::kDelta], 1);
  EXPECT_GE(decisions[repl::RedoPipeline::RejoinDecision::kCheckpointDelta], 1);
  EXPECT_GE(decisions[repl::RedoPipeline::RejoinDecision::kFullImage], 1);
  EXPECT_GT(checkpoints_total, 0u);
  EXPECT_GT(truncated_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, RandomConformanceTest, ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionKind::kV0Vista: return "V0Vista";
                             case VersionKind::kV1MirrorCopy: return "V1MirrorCopy";
                             case VersionKind::kV2MirrorDiff: return "V2MirrorDiff";
                             case VersionKind::kV3InlineLog: return "V3InlineLog";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace vrep
