// Cross-backend conformance: the SAME committed history driven through all
// three ReplicationLink backends — simulated Memory Channel ring, TCP, and
// in-process loopback — must leave every surviving backup with the identical
// database image (CRC-equal to the fault-free oracle). The loopback leg also
// runs under the fault injector to prove the protocol engine converges to
// the same bytes when the carrier drops, duplicates, and delays frames.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault_transport.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "repl/active.hpp"
#include "repl/link.hpp"
#include "repl/pipeline.hpp"
#include "rio/arena.hpp"
#include "shard/rebalancer.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_cluster.hpp"
#include "sim/node.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;

constexpr std::size_t kDbSize = 64 * 1024;
constexpr int kTxns = 200;

StoreConfig conformance_config() {
  StoreConfig config;
  config.db_size = kDbSize;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

// A Debit-Credit-flavoured history, generated ONCE so every backend replays
// bit-identical transactions: each transaction updates three fixed-size
// "balance" records at pseudo-random offsets and appends one larger
// "history" record.
struct TxnWrite {
  std::uint64_t off;
  std::vector<std::uint8_t> data;
};
using Txn = std::vector<TxnWrite>;

std::vector<Txn> debit_credit_history() {
  std::vector<Txn> history;
  Rng rng(20260806);
  for (int i = 0; i < kTxns; ++i) {
    Txn txn;
    for (int r = 0; r < 3; ++r) {  // branch / teller / account balances
      const std::size_t len = 8;
      const std::size_t off = rng.below(kDbSize - len) & ~std::size_t{7};
      std::vector<std::uint8_t> data(len);
      const std::uint64_t v = rng.next_u64() | 1;
      std::memcpy(data.data(), &v, 8);
      txn.push_back(TxnWrite{off, std::move(data)});
    }
    {  // history record
      const std::size_t len = 48;
      const std::size_t off = rng.below(kDbSize - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
      txn.push_back(TxnWrite{off, std::move(data)});
    }
    history.push_back(std::move(txn));
  }
  return history;
}

const std::vector<Txn>& history() {
  static const std::vector<Txn> h = debit_credit_history();
  return h;
}

void replay(core::TransactionStore& store, const std::vector<Txn>& txns) {
  std::uint8_t* db = store.db();
  for (const auto& txn : txns) {
    store.begin_transaction();
    for (const auto& w : txn) {
      store.set_range(db + w.off, w.data.size());
      store.bus().write(db + w.off, w.data.data(), w.data.size(),
                        sim::TrafficClass::kModified);
    }
    store.commit_transaction();
  }
}

// ---- simulated Memory Channel backend -------------------------------------

struct SimResult {
  std::uint32_t primary_crc;
  std::uint32_t backup_crc;
  std::uint64_t applied_seq;
};

SimResult run_sim_backend(unsigned window = 1, unsigned group = 1, bool two_safe = false) {
  const StoreConfig config = conformance_config();
  sim::AlphaCostModel cost;
  sim::McFabric fabric(cost.link);
  sim::Node primary_node(cost, 1, &fabric);
  sim::Node backup_node(cost, 1, nullptr);
  const auto layout = repl::ActiveBackupLayout::make(config.db_size, 1 << 16);
  rio::Arena primary_arena =
      rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout));
  rio::Arena backup_arena = rio::Arena::create(layout.arena_bytes());
  repl::ActiveBackup backup(backup_node.cpu(), backup_arena, layout, fabric);
  repl::ActivePrimary primary(primary_node.cpu().bus(), primary_arena, backup_arena, config,
                              layout, &backup, /*format=*/true);
  primary.set_two_safe(two_safe);
  primary.set_commit_window(window);
  primary.set_group_size(group);

  replay(primary, history());
  primary.sync();  // flush any buffered group, resolve outstanding tickets
  primary_node.cpu().mc()->flush();
  backup.poll(fabric.link().free_at + cost.link.propagation_ns);
  return SimResult{Crc32::of(primary.db(), config.db_size),
                   Crc32::of(backup.db(), config.db_size), backup.applied_seq()};
}

// ---- framed byte-stream backends (TCP / loopback) --------------------------

struct WireResult {
  std::uint32_t primary_crc;
  std::uint32_t backup_crc;
  std::uint64_t applied_seq;
};

bool await_ack(net::WirePrimary& primary, std::uint64_t seq, int max_iters = 5000) {
  for (int i = 0; i < max_iters && primary.backup_acked_seq() < seq; ++i) {
    primary.send_heartbeat();
    usleep(1000);
  }
  return primary.backup_acked_seq() >= seq;
}

// Run the history over a connected (primary_end, backup_end) transport pair;
// `primary_transport` is what the primary sends through (possibly a fault
// injector wrapping primary_end).
WireResult run_wire_backend(net::Transport& primary_transport, net::Transport& backup_end,
                            net::Transport& clean_primary_end, unsigned window = 1,
                            unsigned group = 1) {
  const StoreConfig config = conformance_config();
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  net::WirePrimary primary(arena, config, &primary_transport, /*format=*/true);
  primary.set_commit_window(window);
  primary.set_group_size(group);
  rio::Arena replica = rio::Arena::create(config.db_size);
  net::WireBackup backup(replica);
  std::thread backup_thread([&] { backup.serve(backup_end, 4000); });

  EXPECT_TRUE(primary.sync_backup());
  replay(primary, history());
  // Converge over the clean endpoint: the chaos window is the commit
  // stream, not the drain (a dropped heartbeat would only slow the wait).
  primary.attach_transport(&clean_primary_end);
  primary.sync();  // ship any buffered tail group before awaiting coverage
  EXPECT_TRUE(await_ack(primary, kTxns));
  clean_primary_end.close_peer();
  backup_thread.join();

  return WireResult{Crc32::of(primary.db(), config.db_size),
                    Crc32::of(backup.db(), config.db_size), backup.applied_seq()};
}

struct TcpPair {
  TcpPair() {
    EXPECT_TRUE(server.listen(0));
    std::thread connector(
        [this] { client_ok = client.connect_to("127.0.0.1", server.bound_port()); });
    EXPECT_TRUE(server.accept_peer());
    connector.join();
    EXPECT_TRUE(client_ok);
  }
  net::TcpTransport server, client;
  bool client_ok = false;
};

// ---- the conformance matrix ------------------------------------------------

// The fault-free oracle: the simulated backend's final image. Computed once;
// every other backend must land on exactly these bytes.
std::uint32_t oracle_crc() {
  static const SimResult sim = [] {
    SimResult r = run_sim_backend();
    EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
    EXPECT_EQ(r.backup_crc, r.primary_crc) << "sim backup diverged from its own primary";
    return r;
  }();
  return sim.backup_crc;
}

TEST(PipelineConformance, SimulatedRingMatchesOracle) {
  // Trivially true by construction — this test pins the oracle itself and
  // fails loudly if the sim backend ever stops applying the full history.
  EXPECT_NE(oracle_crc(), 0u);
}

TEST(PipelineConformance, TcpBackendMatchesOracle) {
  TcpPair pair;
  const WireResult r = run_wire_backend(pair.client, pair.server, pair.client);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "TCP backup image != fault-free oracle";
}

TEST(PipelineConformance, LoopbackBackendMatchesOracle) {
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  const WireResult r = run_wire_backend(a, b, a);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "loopback backup image != fault-free oracle";
}

TEST(PipelineConformance, LoopbackUnderFaultsConvergesToOracle) {
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  net::FaultPlan plan;
  plan.seed = 77;
  plan.drop = 0.06;
  plan.duplicate = 0.06;
  plan.delay = 0.03;
  plan.max_delay_us = 300;
  plan.start_after_frames = 2;  // hello + image chunk land untouched
  net::FaultInjectingTransport chaos(a, plan);

  const WireResult r = run_wire_backend(chaos, b, a);
  EXPECT_GT(chaos.stats().faults(), 0u) << "fault schedule never fired";
  EXPECT_GT(chaos.stats().drops, 0u);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc())
      << "surviving backup under faults != fault-free oracle";
}

// ---- protocol regression tests ---------------------------------------------
//
// Direct RedoPipeline tests over a scripted in-memory link: no sockets, no
// co-simulation, so misbehavior is attributable to the engine alone.

// Records every outbound frame; serves inbound frames from a queue and
// reports kTimeout when the queue is dry (an ack-swallowing link is simply
// one whose queue stays empty).
class ScriptedLink final : public repl::ReplicationLink {
 public:
  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    sent.push_back(repl::Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
    return true;
  }
  std::optional<repl::Frame> recv(int) override {
    recvs++;
    if (inbound.empty()) {
      error_ = repl::LinkError::kTimeout;
      return std::nullopt;
    }
    repl::Frame frame = std::move(inbound.front());
    inbound.pop_front();
    error_ = repl::LinkError::kNone;
    return frame;
  }
  repl::LinkError last_error() const override { return error_; }
  bool connected() const override { return true; }

  std::size_t count(repl::FrameKind kind) const {
    std::size_t n = 0;
    for (const auto& f : sent) {
      if (f.kind == kind) n++;
    }
    return n;
  }
  void push_ack(std::uint64_t seq, std::uint64_t epoch = 1) {
    repl::Frame frame{repl::FrameKind::kConsumerAck, epoch, std::vector<std::uint8_t>(8)};
    std::memcpy(frame.payload.data(), &seq, 8);
    inbound.push_back(std::move(frame));
  }

  std::deque<repl::Frame> inbound;
  std::vector<repl::Frame> sent;
  std::size_t recvs = 0;

 private:
  repl::LinkError error_ = repl::LinkError::kNone;
};

class MemSource final : public repl::RedoPipeline::Source {
 public:
  explicit MemSource(std::size_t size) : db_(size, 0) {}
  const std::uint8_t* db() const override { return db_.data(); }
  std::size_t db_size() const override { return db_.size(); }
  std::uint64_t committed_seq() const override { return committed; }
  // Checkpoint tests commit real writes: the fuzzy build copies from db(),
  // so the staged bytes must actually land there first.
  std::uint8_t* mutable_db() { return db_.data(); }

  std::uint64_t committed = 0;

 private:
  std::vector<std::uint8_t> db_;
};

void commit_one(repl::RedoPipeline& pipe, MemSource& source, std::uint64_t seq) {
  pipe.begin();
  std::uint8_t data[8] = {static_cast<std::uint8_t>(seq), 1, 2, 3, 4, 5, 6, 7};
  pipe.stage(0, data, sizeof data);
  source.committed = seq;
  pipe.commit(seq);
}

TEST(PipelineRegression, RejoinClaimingFutureSequenceGetsFullImageNotUnderflowedDelta) {
  // A rejoiner claiming a sequence PAST everything this lineage committed
  // (same epoch, so lineage checks pass) must get the full image. The broken
  // behavior was serving a delta whose count, committed - backup_seq,
  // underflows to ~2^64: an empty "replay" after which the backup believes
  // it is caught up on state that was never produced.
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) commit_one(pipe, source, seq);

  // The policy itself, pinned directly.
  EXPECT_EQ(pipe.decide_rejoin(3, 1), repl::RedoPipeline::RejoinDecision::kDelta);
  EXPECT_EQ(pipe.decide_rejoin(2, 1), repl::RedoPipeline::RejoinDecision::kDelta);
  EXPECT_EQ(pipe.decide_rejoin(4, 1), repl::RedoPipeline::RejoinDecision::kFullImage)
      << "claimed-future sequence must never be served a delta";
  EXPECT_EQ(pipe.decide_rejoin(~std::uint64_t{0}, 1),
            repl::RedoPipeline::RejoinDecision::kFullImage);

  // End-to-end through the rejoin handler: the answer on the wire must be a
  // full image (kHello + kDbChunk), never a kRejoinDelta header.
  repl::Frame request{repl::FrameKind::kRejoinRequest, 1, std::vector<std::uint8_t>(24)};
  const std::uint64_t claimed = 8, node = 7, state_epoch = 1;
  std::memcpy(request.payload.data(), &claimed, 8);
  std::memcpy(request.payload.data() + 8, &node, 8);
  std::memcpy(request.payload.data() + 16, &state_epoch, 8);
  link.inbound.push_back(std::move(request));
  link.sent.clear();
  ASSERT_TRUE(pipe.handle_rejoin(/*timeout_ms=*/0));
  EXPECT_EQ(link.count(repl::FrameKind::kRejoinDelta), 0u);
  EXPECT_EQ(link.count(repl::FrameKind::kHello), 1u);
  EXPECT_GE(link.count(repl::FrameKind::kDbChunk), 1u);
  EXPECT_EQ(pipe.stats().full_syncs_served, 1u);
  EXPECT_EQ(pipe.stats().deltas_served, 0u);
}

TEST(PipelineRegression, SilentTwoSafeDegradationIsSurfaced) {
  // A 2-safe commit whose ack never arrives exhausts its probes and falls
  // back to 1-safe. That used to be silent — commit() returned void and no
  // stat moved — so a harness could not tell a quorum-durable commit from a
  // local-only one.
  MemSource source(4096);
  ScriptedLink link;  // swallows acks: recv always times out
  repl::RedoPipeline pipe(source, &link);
  pipe.set_two_safe(true);

  pipe.begin();
  std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  pipe.stage(0, data, sizeof data);
  source.committed = 1;
  const auto outcome = pipe.commit(1);
  EXPECT_EQ(outcome, repl::RedoPipeline::CommitOutcome::kTwoSafeDegraded);
  EXPECT_EQ(pipe.last_commit_outcome(), repl::RedoPipeline::CommitOutcome::kTwoSafeDegraded);
  EXPECT_EQ(pipe.stats().two_safe_degraded, 1u);
  EXPECT_FALSE(pipe.connection_alive()) << "the silent peer should be marked down";

  // An acked 2-safe commit reports quorum durability — and does not move the
  // degradation counter.
  ScriptedLink healthy;
  pipe.attach_link(&healthy);
  healthy.push_ack(2);
  pipe.begin();
  pipe.stage(0, data, sizeof data);
  source.committed = 2;
  EXPECT_EQ(pipe.commit(2), repl::RedoPipeline::CommitOutcome::kQuorumDurable);
  EXPECT_EQ(pipe.stats().two_safe_degraded, 1u);
}

TEST(PipelineRegression, QuorumTwoSafeNeedsKAcks) {
  // Two backups, K=2: both must acknowledge before the commit is
  // quorum-durable; one ack is surfaced as degraded, not success.
  MemSource source(4096);
  ScriptedLink peer0, peer1;
  repl::RedoPipeline pipe(source, &peer0);
  ASSERT_EQ(pipe.add_peer(&peer1), 1u);
  pipe.set_two_safe(true);
  pipe.set_quorum(2);

  std::uint8_t data[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  peer0.push_ack(1);
  peer1.push_ack(1);
  pipe.begin();
  pipe.stage(0, data, sizeof data);
  source.committed = 1;
  EXPECT_EQ(pipe.commit(1), repl::RedoPipeline::CommitOutcome::kQuorumDurable);
  EXPECT_EQ(peer0.count(repl::FrameKind::kRedoBatch), 1u);
  EXPECT_EQ(peer1.count(repl::FrameKind::kRedoBatch), 1u) << "commit must fan out to all peers";
  EXPECT_EQ(pipe.quorum_acked_seq(), 1u);

  // Second commit: only peer0 acks, peer1 goes silent. K=2 cannot be met.
  peer0.push_ack(2);
  pipe.begin();
  pipe.stage(0, data, sizeof data);
  source.committed = 2;
  EXPECT_EQ(pipe.commit(2), repl::RedoPipeline::CommitOutcome::kTwoSafeDegraded);
  EXPECT_EQ(pipe.stats().two_safe_degraded, 1u);
  EXPECT_EQ(pipe.backup_acked_seq(), 2u);  // best peer
  EXPECT_EQ(pipe.quorum_acked_seq(), 1u);  // K-th best: quorum coverage stalled
  EXPECT_TRUE(pipe.peer_alive(0));
  EXPECT_FALSE(pipe.peer_alive(1));
}

// ---- group commit / bounded in-flight window -------------------------------

TEST(PipelineConformance, SimulatedRingGroupCommitMatchesOracle) {
  // G=4 coalesces four transactions into one checksummed ring unit; the
  // final image must be bit-identical to the unbatched oracle.
  const SimResult r = run_sim_backend(/*window=*/1, /*group=*/4);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "grouped ring image != ungrouped oracle";
}

TEST(PipelineConformance, SimulatedRingWindowedTwoSafeMatchesOracle) {
  // The full pipelined configuration: 2-safe with W=8 in flight, G=4 per
  // unit. Must converge on the oracle's bytes with everything acknowledged.
  const SimResult r = run_sim_backend(/*window=*/8, /*group=*/4, /*two_safe=*/true);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "windowed 2-safe image != oracle";
}

TEST(PipelineConformance, LoopbackGroupCommitMatchesOracle) {
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  const WireResult r = run_wire_backend(a, b, a, /*window=*/8, /*group=*/4);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "grouped loopback image != oracle";
}

TEST(PipelineConformance, LoopbackGroupCommitUnderFaultsConvergesToOracle) {
  // Group frames dropped/duplicated/delayed by the injector: the gap/dup
  // rules treat a group as one unit, and resync repairs whole groups.
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  net::FaultPlan plan;
  plan.seed = 78;
  plan.drop = 0.06;
  plan.duplicate = 0.06;
  plan.delay = 0.03;
  plan.max_delay_us = 300;
  plan.start_after_frames = 2;  // hello + image chunk land untouched
  net::FaultInjectingTransport chaos(a, plan);

  const WireResult r = run_wire_backend(chaos, b, a, /*window=*/8, /*group=*/4);
  EXPECT_GT(chaos.stats().faults(), 0u) << "fault schedule never fired";
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc())
      << "grouped backup under faults != fault-free oracle";
}

repl::RedoPipeline::CommitTicket commit_async_one(repl::RedoPipeline& pipe, MemSource& source,
                                                  std::uint64_t seq) {
  pipe.begin();
  std::uint8_t data[8] = {static_cast<std::uint8_t>(seq), 1, 2, 3, 4, 5, 6, 7};
  pipe.stage(0, data, sizeof data);
  source.committed = seq;
  return pipe.commit_async(seq);
}

TEST(PipelineWindow, FullWindowBlocksStagingNotEarlier) {
  // W=4: the first three commits ship without awaiting acks (the window has
  // room); the commit that would put a fourth unacked sequence in flight
  // must wait for coverage — and with an ack available, slides the window
  // without degrading. Only a full window with NO acks degrades, and then
  // it resolves every outstanding ticket at once.
  using Pipe = repl::RedoPipeline;
  MemSource source(4096);
  ScriptedLink link;
  Pipe pipe(source, &link);
  pipe.set_two_safe(true);
  pipe.set_commit_window(4);

  const auto t1 = commit_async_one(pipe, source, 1);
  const auto t2 = commit_async_one(pipe, source, 2);
  const auto t3 = commit_async_one(pipe, source, 3);
  EXPECT_EQ(link.count(repl::FrameKind::kRedoBatch), 3u) << "G=1: every commit ships";
  EXPECT_EQ(pipe.stats().two_safe_degraded, 0u) << "window not full: no wait, no degrade";
  EXPECT_EQ(pipe.ticket_state(t1), Pipe::TicketState::kPending);
  EXPECT_EQ(pipe.ticket_state(t3), Pipe::TicketState::kPending);

  link.push_ack(1);  // coverage for the oldest in-flight sequence
  const auto t4 = commit_async_one(pipe, source, 4);
  EXPECT_EQ(pipe.stats().two_safe_degraded, 0u)
      << "an available ack must slide the window, not degrade it";
  EXPECT_EQ(pipe.ticket_state(t1), Pipe::TicketState::kDurable);
  EXPECT_EQ(pipe.ticket_state(t2), Pipe::TicketState::kPending);
  EXPECT_EQ(pipe.ticket_state(t4), Pipe::TicketState::kPending);

  // No acks left: the next commit overflows the window, waits, exhausts its
  // probes, and resolves ALL outstanding tickets as degraded.
  const auto t5 = commit_async_one(pipe, source, 5);
  EXPECT_EQ(pipe.last_commit_outcome(), Pipe::CommitOutcome::kTwoSafeDegraded);
  EXPECT_EQ(pipe.stats().two_safe_degraded, 4u) << "tickets 2..5 resolve degraded together";
  EXPECT_EQ(pipe.ticket_state(t2), Pipe::TicketState::kDegraded);
  EXPECT_EQ(pipe.ticket_state(t5), Pipe::TicketState::kDegraded);
}

TEST(PipelineWindow, TicketResolutionFollowsSequenceOrder) {
  // Acks are watermarks: an ack covering sequence 3 resolves tickets 1..3
  // (in order), never a later one.
  using Pipe = repl::RedoPipeline;
  MemSource source(4096);
  ScriptedLink link;
  Pipe pipe(source, &link);
  pipe.set_two_safe(true);
  pipe.set_commit_window(8);

  std::vector<Pipe::CommitTicket> tickets;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    tickets.push_back(commit_async_one(pipe, source, seq));
  }
  for (const auto& t : tickets) {
    EXPECT_EQ(pipe.ticket_state(t), Pipe::TicketState::kPending);
  }

  link.push_ack(3);
  EXPECT_EQ(pipe.wait(tickets[2]), Pipe::CommitOutcome::kQuorumDurable);
  EXPECT_EQ(pipe.ticket_state(tickets[0]), Pipe::TicketState::kDurable);
  EXPECT_EQ(pipe.ticket_state(tickets[1]), Pipe::TicketState::kDurable);
  EXPECT_EQ(pipe.ticket_state(tickets[2]), Pipe::TicketState::kDurable);
  EXPECT_EQ(pipe.ticket_state(tickets[3]), Pipe::TicketState::kPending)
      << "a covering ack must never resolve a later sequence";
  EXPECT_EQ(pipe.ticket_state(tickets[4]), Pipe::TicketState::kPending);

  // wait() on an already-durable ticket answers from the watermark without
  // touching the link: no frames sent, no recv attempted.
  const std::size_t sent_before = link.sent.size();
  const std::size_t recvs_before = link.recvs;
  EXPECT_EQ(pipe.wait(tickets[0]), Pipe::CommitOutcome::kQuorumDurable);
  EXPECT_EQ(link.sent.size(), sent_before) << "wait() on a durable ticket sent frames";
  EXPECT_EQ(link.recvs, recvs_before) << "wait() on a durable ticket called recv";
}

TEST(PipelineWindow, QuorumAckCacheIsO1AndMatchesFreshScanAfterPeerRemoval) {
  // quorum_acked_seq() used to rescan every peer slot on every call; it is
  // now a cache recomputed only when an ack advances or the peer table
  // changes. The repl.primary.quorum_scans counter proves reads are O(1),
  // and removal must leave cache == a fresh K-th-highest scan.
  using Pipe = repl::RedoPipeline;
  MemSource source(4096);
  ScriptedLink p0, p1, p2;
  Pipe pipe(source, &p0);
  ASSERT_EQ(pipe.add_peer(&p1), 1u);
  ASSERT_EQ(pipe.add_peer(&p2), 2u);
  pipe.set_two_safe(true);
  pipe.set_quorum(2);
  pipe.set_commit_window(8);

  std::vector<Pipe::CommitTicket> tickets;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    tickets.push_back(commit_async_one(pipe, source, seq));
  }
  p0.push_ack(5);
  p1.push_ack(3);
  p2.push_ack(4);
  EXPECT_EQ(pipe.wait(tickets[2]), Pipe::CommitOutcome::kQuorumDurable);
  // Acks drain lazily — waiting on ticket 4 pulls peer2's queued ack in.
  EXPECT_EQ(pipe.wait(tickets[3]), Pipe::CommitOutcome::kQuorumDurable);
  EXPECT_EQ(pipe.quorum_acked_seq(), 4u) << "K=2: second-highest of {5,3,4}";

  // Reads do not rescan: the counter must not move across many queries.
  metrics::Counter& scans = metrics::counter("repl.primary.quorum_scans");
  const std::uint64_t scans_before = scans.value();
  for (int i = 0; i < 1000; ++i) {
    (void)pipe.quorum_acked_seq();
    (void)pipe.ticket_state(tickets[4]);
  }
  EXPECT_EQ(scans.value(), scans_before) << "quorum_acked_seq() reads must be O(1)";

  // Removing a peer invalidates the cache; the new value must equal a fresh
  // K-th-highest scan over the surviving slots.
  pipe.remove_peer(2);
  EXPECT_GT(scans.value(), scans_before) << "peer removal must recompute the cache";
  std::vector<std::uint64_t> acks;
  for (std::size_t p = 0; p < pipe.peer_count(); ++p) acks.push_back(pipe.peer_acked_seq(p));
  std::sort(acks.begin(), acks.end(), std::greater<>());
  EXPECT_EQ(pipe.quorum_acked_seq(), acks[pipe.quorum() - 1])
      << "cache != fresh scan after remove_peer";
  EXPECT_EQ(pipe.quorum_acked_seq(), 3u) << "second-highest of {5,3} after removal";
}

TEST(PipelineWindow, GroupBuffersUntilFullAndSyncFlushes) {
  // G=4: commits 1..3 stay buffered (nothing on the wire), the 4th ships one
  // kRedoGroup frame; sync() pushes out a partial tail group.
  using Pipe = repl::RedoPipeline;
  MemSource source(4096);
  ScriptedLink link;
  Pipe pipe(source, &link);
  pipe.set_commit_window(8);
  pipe.set_group_size(4);

  for (std::uint64_t seq = 1; seq <= 3; ++seq) commit_async_one(pipe, source, seq);
  EXPECT_EQ(link.sent.size(), 0u) << "a partial group must not ship";
  commit_async_one(pipe, source, 4);
  EXPECT_EQ(link.count(repl::FrameKind::kRedoGroup), 1u);
  EXPECT_EQ(link.count(repl::FrameKind::kRedoBatch), 0u);

  commit_async_one(pipe, source, 5);
  EXPECT_EQ(link.sent.size(), 1u) << "the next partial group buffers again";
  EXPECT_EQ(pipe.sync(), Pipe::CommitOutcome::kLocalDurable);
  // A single-transaction group ships as the classic kRedoBatch frame.
  EXPECT_EQ(link.count(repl::FrameKind::kRedoBatch), 1u)
      << "sync() must flush the partial tail group as a classic batch";
}

TEST(PipelineRegressionDeathTest, StageRejectsChunksBeyondU32WireFormat) {
  // Batch offsets/lengths are u32 on the wire; stage() used to truncate the
  // offset with a static_cast, silently wrapping redo for databases at or
  // beyond 4 GiB into low addresses on every backup.
  MemSource source(64);
  repl::RedoPipeline pipe(source, nullptr);
  pipe.begin();
  std::uint8_t byte = 0xAB;
  // Highest representable chunk: ends exactly at the 4 GiB boundary.
  pipe.stage((std::uint64_t{1} << 32) - 1, &byte, 1);
  EXPECT_DEATH(pipe.stage(std::uint64_t{1} << 32, &byte, 1), "CHECK");
  EXPECT_DEATH(pipe.stage((std::uint64_t{1} << 32) - 1, &byte, 2), "CHECK");
  pipe.discard();
}

// ---- fuzzy checkpoints + O(delta) rejoin -----------------------------------
//
// The checkpoint scenario used throughout: a 64 KiB database (16 checkpoint
// pages), one 64-byte write per commit at a sequence-derived page so dirty
// pages are attributable to exact sequences, checkpoints every 4 commits
// with a 16 KiB background copy step (a build spans 4 commits — genuinely
// fuzzy, writes land mid-build). Twenty commits complete two checkpoints
// (sequences 7 and 14) and leave a third build in flight; the watermark at
// 14 truncates the redo history, so sequences 1..13 are only reachable
// through checkpoint+delta.

constexpr std::size_t kCkptDb = 64 * 1024;
constexpr std::size_t kCkptPage = repl::RedoPipeline::kCkptPageBytes;

// Page the write of sequence `seq` lands in: (seq * 5) mod 16 visits 14
// distinct pages across sequences 1..14 (pages 0 and 11 stay clean).
std::size_t ckpt_page_of(std::uint64_t seq) { return (seq * 5) % (kCkptDb / kCkptPage); }

void commit_page_txn(repl::RedoPipeline& pipe, MemSource& source, std::uint64_t seq) {
  pipe.begin();
  const std::uint64_t off = ckpt_page_of(seq) * kCkptPage + 128;
  std::uint8_t data[64];
  for (std::size_t i = 0; i < sizeof data; ++i) {
    data[i] = static_cast<std::uint8_t>(seq * 31 + i);
  }
  std::memcpy(source.mutable_db() + off, data, sizeof data);
  pipe.stage(off, data, sizeof data);
  source.committed = seq;
  pipe.commit(seq);
}

struct CkptScenario {
  MemSource source{kCkptDb};
  ScriptedLink link;
  repl::RedoPipeline pipe{source, &link};
  std::vector<std::uint8_t> db_at_13;  // a laggard backup's last-synced state
  std::vector<std::uint8_t> db_at_14;  // oracle for the checkpoint image

  CkptScenario() {
    pipe.enable_checkpoints(/*interval_txns=*/4, /*copy_bytes_per_commit=*/16 * 1024);
    for (std::uint64_t seq = 1; seq <= 20; ++seq) {
      commit_page_txn(pipe, source, seq);
      if (seq == 13) db_at_13.assign(source.db(), source.db() + kCkptDb);
      if (seq == 14) db_at_14.assign(source.db(), source.db() + kCkptDb);
    }
  }

  // Serve a rejoin claiming sequence `seq`; returns the frames that went out.
  std::vector<repl::Frame> serve(std::uint64_t seq) {
    link.sent.clear();
    repl::Frame request{repl::FrameKind::kRejoinRequest, 1, std::vector<std::uint8_t>(24)};
    const std::uint64_t node = 7, state_epoch = 1;
    std::memcpy(request.payload.data(), &seq, 8);
    std::memcpy(request.payload.data() + 8, &node, 8);
    std::memcpy(request.payload.data() + 16, &state_epoch, 8);
    link.inbound.push_back(std::move(request));
    EXPECT_TRUE(pipe.handle_rejoin(/*timeout_ms=*/0));
    return link.sent;
  }
};

class MemTarget final : public repl::RedoApplier::Target {
 public:
  explicit MemTarget(std::size_t size) : mem(size, 0) {}
  void write(std::uint64_t off, const void* src, std::size_t len) override {
    std::memcpy(mem.data() + off, src, len);
  }
  std::size_t capacity() const override { return mem.size(); }
  const std::uint8_t* data() const override { return mem.data(); }

  std::vector<std::uint8_t> mem;
};

TEST(CheckpointRegression, FuzzyBuildIsConsistentAtItsWatermark) {
  // The background copy runs concurrently with commits (4 commits per
  // build), yet the finished image must equal the database at exactly the
  // completion sequence — writes behind the cursor patched in, writes ahead
  // picked up in passing.
  CkptScenario s;
  ASSERT_EQ(s.pipe.stats().checkpoints_completed, 2u);
  const auto& ckpt = s.pipe.checkpoint();
  ASSERT_TRUE(ckpt.valid);
  EXPECT_EQ(ckpt.seq, 14u);
  EXPECT_EQ(ckpt.state_epoch, 1u);
  const auto& image = s.pipe.checkpoint_image();
  ASSERT_EQ(image.size(), kCkptDb);
  EXPECT_EQ(Crc32::of(image.data(), image.size()), ckpt.crc);
  EXPECT_EQ(std::memcmp(image.data(), s.db_at_14.data(), kCkptDb), 0)
      << "fuzzy checkpoint image != database at the watermark sequence";
  EXPECT_GT(s.pipe.stats().redo_truncated_bytes, 0u)
      << "completion must truncate the redo history at the watermark";
}

TEST(CheckpointRegression, TruncatedLaggardGetsCheckpointDeltaNotFullImage) {
  // The silent cliff this PR removes: a backup whose sequence fell behind
  // the truncation watermark — but which the completed checkpoint covers —
  // used to be pushed off to a full image transfer. Pin the three-way
  // policy directly.
  using Decision = repl::RedoPipeline::RejoinDecision;
  CkptScenario s;

  // History was truncated at 14: it covers 14..20 and nothing older.
  EXPECT_EQ(s.pipe.decide_rejoin(20, 1), Decision::kDelta);
  EXPECT_EQ(s.pipe.decide_rejoin(14, 1), Decision::kDelta);
  // Behind the truncation watermark but inside the checkpoint's tracked
  // dirtiness range: checkpoint+delta, NOT the full-image cliff.
  EXPECT_EQ(s.pipe.decide_rejoin(13, 1), Decision::kCheckpointDelta);
  EXPECT_EQ(s.pipe.decide_rejoin(7, 1), Decision::kCheckpointDelta);
  EXPECT_EQ(s.pipe.decide_rejoin(1, 1), Decision::kCheckpointDelta);
  // Genuine last resorts keep getting the image: fresh joiners, claimed
  // futures, divergent lineages.
  EXPECT_EQ(s.pipe.decide_rejoin(0, 1), Decision::kFullImage);
  EXPECT_EQ(s.pipe.decide_rejoin(21, 1), Decision::kFullImage);
  EXPECT_EQ(s.pipe.decide_rejoin(~std::uint64_t{0}, 1), Decision::kFullImage);

  // Contrast: the same laggard against a checkpoint-less pipeline whose
  // small history evicted sequence 13 — that is the cliff.
  MemSource source2(kCkptDb);
  ScriptedLink link2;
  repl::RedoPipeline no_ckpt(source2, &link2, nullptr, {}, /*redo_history_bytes=*/200);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) commit_page_txn(no_ckpt, source2, seq);
  EXPECT_EQ(no_ckpt.decide_rejoin(13, 1), Decision::kFullImage)
      << "without a checkpoint, an evicted gap can only be repaired by the image";
}

TEST(CheckpointRegression, CheckpointDeltaServeShipsOnlyPagesDirtiedAfterTheLaggard) {
  // The O(delta) claim on the wire: a backup at 13 rejoining against the
  // checkpoint at 14 needs exactly one page (the page sequence 14 dirtied),
  // not the 64 KiB image — plus the redo tail 15..20.
  CkptScenario s;
  const auto runs = s.pipe.checkpoint_delta_runs(13);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first, ckpt_page_of(14) * kCkptPage);
  EXPECT_EQ(runs[0].second, kCkptPage);

  const auto frames = s.serve(13);
  EXPECT_EQ(s.link.count(repl::FrameKind::kCkptBegin), 1u);
  EXPECT_EQ(s.link.count(repl::FrameKind::kCkptChunk), 1u);
  EXPECT_EQ(s.link.count(repl::FrameKind::kCkptEnd), 1u);
  EXPECT_EQ(s.link.count(repl::FrameKind::kRejoinDelta), 1u);
  EXPECT_EQ(s.link.count(repl::FrameKind::kRedoBatch), 6u) << "redo tail 15..20";
  EXPECT_EQ(s.link.count(repl::FrameKind::kHello), 0u) << "no image transfer";
  EXPECT_EQ(s.link.count(repl::FrameKind::kDbChunk), 0u);
  for (const auto& f : frames) {
    if (f.kind == repl::FrameKind::kRejoinDelta) {
      std::uint64_t from, count;
      std::memcpy(&from, f.payload.data(), 8);
      std::memcpy(&count, f.payload.data() + 8, 8);
      EXPECT_EQ(from, 14u) << "replay resumes from the watermark";
      EXPECT_EQ(count, 6u);
    }
  }
  EXPECT_EQ(s.pipe.stats().checkpoint_deltas_served, 1u);
  EXPECT_EQ(s.pipe.stats().deltas_served, 0u);
  EXPECT_EQ(s.pipe.stats().full_syncs_served, 0u)
      << "full_syncs_served must only count genuine last resorts";

  // A fresh joiner (sequence 0) IS a genuine last resort.
  s.serve(0);
  EXPECT_EQ(s.link.count(repl::FrameKind::kHello), 1u);
  EXPECT_EQ(s.pipe.stats().full_syncs_served, 1u);
}

TEST(CheckpointRegression, ApplierInstallsCheckpointDeltaAndResumesReplay) {
  // Backup-side round trip: a laggard at 13 fed the serve's frames must
  // land on the primary's exact bytes — checkpoint page installed under the
  // watermark CRC, then redo 15..20 replayed on top.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, /*applied_seq=*/13, /*state_epoch=*/1);

  ScriptedLink backup_link;
  for (const auto& f : s.serve(13)) applier.on_frame(f, backup_link);

  EXPECT_EQ(applier.applied_seq(), 20u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0)
      << "checkpoint+delta rejoin must converge to the primary's bytes";
  EXPECT_EQ(applier.stats().checkpoint_installs, 1u);
  EXPECT_EQ(applier.stats().checkpoint_aborts, 0u);
  EXPECT_EQ(applier.stats().batches_applied, 6u);
  EXPECT_EQ(applier.stats().resyncs, 1u) << "one resync: install + replay is one repair";
  EXPECT_GE(backup_link.count(repl::FrameKind::kConsumerAck), 1u);
}

TEST(CheckpointRegression, DroppedChunkAbortsInstallUntornAndRerequestConverges) {
  // A checkpoint chunk lost in flight: the End's shape check must reject
  // the torn set BEFORE any byte touches the replica, and the clean
  // re-request (from the backup's real sequence) must converge.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, 13, 1);

  ScriptedLink backup_link;
  for (const auto& f : s.serve(13)) {
    if (f.kind == repl::FrameKind::kCkptChunk) continue;  // dropped
    applier.on_frame(f, backup_link);
  }
  EXPECT_EQ(applier.stats().checkpoint_aborts, 1u);
  EXPECT_EQ(applier.stats().checkpoint_installs, 0u);
  EXPECT_EQ(applier.applied_seq(), 13u) << "aborted install must not advance the sequence";
  EXPECT_EQ(std::memcmp(target.mem.data(), s.db_at_13.data(), kCkptDb), 0)
      << "a torn install must never leave partial checkpoint bytes in the replica";

  // The abort re-requested from the REAL sequence (the base image is still
  // intact), not from 0 — no gratuitous full sync.
  ASSERT_GE(backup_link.count(repl::FrameKind::kRejoinRequest), 1u);
  std::uint64_t from = ~std::uint64_t{0};
  for (const auto& f : backup_link.sent) {
    if (f.kind == repl::FrameKind::kRejoinRequest) {
      std::memcpy(&from, f.payload.data(), 8);
      break;
    }
  }
  EXPECT_EQ(from, 13u);

  // Second serve, delivered whole: converges.
  for (const auto& f : s.serve(13)) applier.on_frame(f, backup_link);
  EXPECT_EQ(applier.stats().checkpoint_installs, 1u);
  EXPECT_EQ(applier.applied_seq(), 20u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0);
  EXPECT_EQ(s.pipe.stats().full_syncs_served, 0u);
}

TEST(CheckpointRegression, DuplicatedChunkIsDedupedAndInstalls) {
  // Duplicate faults re-deliver a chunk verbatim; the install dedupes the
  // exact copy and verifies normally.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, 13, 1);

  ScriptedLink backup_link;
  for (const auto& f : s.serve(13)) {
    applier.on_frame(f, backup_link);
    if (f.kind == repl::FrameKind::kCkptChunk) applier.on_frame(f, backup_link);
  }
  EXPECT_EQ(applier.stats().checkpoint_aborts, 0u);
  EXPECT_EQ(applier.stats().checkpoint_installs, 1u);
  EXPECT_EQ(applier.applied_seq(), 20u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0);
}

TEST(CheckpointRegression, TruncatedChunkFrameAbortsInstallCleanly) {
  // A chunk frame cut short (below even its offset header) is a torn
  // transfer: abort, replica untouched, re-request from the real sequence.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, 13, 1);

  ScriptedLink backup_link;
  for (auto f : s.serve(13)) {
    if (f.kind == repl::FrameKind::kCkptChunk) f.payload.resize(4);
    applier.on_frame(f, backup_link);
  }
  EXPECT_GE(applier.stats().checkpoint_aborts, 1u);
  EXPECT_EQ(applier.stats().checkpoint_installs, 0u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.db_at_13.data(), kCkptDb), 0);

  for (const auto& f : s.serve(13)) applier.on_frame(f, backup_link);
  EXPECT_EQ(applier.stats().checkpoint_installs, 1u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0);
}

TEST(CheckpointRegression, CorruptChunkPayloadFailsMergedCrcAndFallsBackToImage) {
  // A bit-flip in a chunk's payload passes the shape check but must fail
  // the merged-CRC verify — and since transfer faults are caught by the
  // carrier CRC, a merged-CRC mismatch means the BASE image cannot be
  // trusted: the applier re-requests as imageless (full sync) instead of
  // looping on checkpoint deltas that can never verify.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, 13, 1);

  ScriptedLink backup_link;
  for (auto f : s.serve(13)) {
    if (f.kind == repl::FrameKind::kCkptChunk) f.payload[100] ^= 0x40;
    applier.on_frame(f, backup_link);
  }
  EXPECT_GE(applier.stats().checkpoint_aborts, 1u);
  EXPECT_EQ(applier.stats().checkpoint_installs, 0u);
  EXPECT_EQ(applier.applied_seq(), 13u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.db_at_13.data(), kCkptDb), 0)
      << "unverifiable chunks must never be applied";
  std::uint64_t from = ~std::uint64_t{0};
  for (const auto& f : backup_link.sent) {
    if (f.kind == repl::FrameKind::kRejoinRequest) {
      std::memcpy(&from, f.payload.data(), 8);
      break;
    }
  }
  EXPECT_EQ(from, 0u) << "a distrusted base image must re-request the full sync";

  // The full sync converges.
  for (const auto& f : s.serve(0)) applier.on_frame(f, backup_link);
  EXPECT_EQ(s.pipe.stats().full_syncs_served, 1u);
  EXPECT_EQ(applier.applied_seq(), 20u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0);
}

TEST(CheckpointRegression, LostEndIsRetriedViaHeartbeat) {
  // The serve dies after its chunks (End lost): the next heartbeat showing
  // a committed sequence we don't hold doubles as the install retry timer.
  CkptScenario s;
  MemTarget target(kCkptDb);
  repl::RedoApplier applier(target);
  applier.seed(s.db_at_13.data(), kCkptDb, 13, 1);

  ScriptedLink backup_link;
  for (const auto& f : s.serve(13)) {
    if (f.kind == repl::FrameKind::kCkptEnd) break;  // serve dies here
    applier.on_frame(f, backup_link);
  }
  EXPECT_TRUE(applier.checkpoint_installing());

  repl::Frame heartbeat{repl::FrameKind::kHeartbeat, 1, std::vector<std::uint8_t>(8)};
  const std::uint64_t committed = 20;
  std::memcpy(heartbeat.payload.data(), &committed, 8);
  applier.on_frame(heartbeat, backup_link);
  EXPECT_FALSE(applier.checkpoint_installing());
  EXPECT_EQ(applier.stats().checkpoint_aborts, 1u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.db_at_13.data(), kCkptDb), 0);
  EXPECT_GE(backup_link.count(repl::FrameKind::kRejoinRequest), 1u);

  for (const auto& f : s.serve(13)) applier.on_frame(f, backup_link);
  EXPECT_EQ(applier.stats().checkpoint_installs, 1u);
  EXPECT_EQ(applier.applied_seq(), 20u);
  EXPECT_EQ(std::memcmp(target.mem.data(), s.source.db(), kCkptDb), 0);
}

TEST(CheckpointRegression, DisabledPipelineServesExactlyAsBefore) {
  // Checkpointing is strictly opt-in: a pipeline that never enabled it must
  // not grow new frame kinds, new stats, or new decisions.
  MemSource source(kCkptDb);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) commit_page_txn(pipe, source, seq);
  EXPECT_FALSE(pipe.checkpoints_enabled());
  EXPECT_EQ(pipe.stats().checkpoints_completed, 0u);
  EXPECT_EQ(pipe.stats().redo_truncated_bytes, 0u);
  EXPECT_FALSE(pipe.checkpoint().valid);
  EXPECT_EQ(pipe.decide_rejoin(13, 1), repl::RedoPipeline::RejoinDecision::kDelta)
      << "default history still covers everything";
  EXPECT_EQ(link.count(repl::FrameKind::kCkptBegin), 0u);
  EXPECT_EQ(link.count(repl::FrameKind::kCkptEnd), 0u);
}

// ---- read-your-writes snapshot reads ---------------------------------------
//
// The backup read API: snapshot reads at the applied watermark with the
// CommitTicket min_seq contract — a reader holding ticket S bounces until
// the replica has applied S, and never observes state older than S once
// served. Wire-level coverage (epoll server, real TCP) lives in
// async_server_test; takeover-under-load coverage in chaos_soak_test.

TEST(ReadYourWrites, LaggardBackupBouncesUntilItAppliesTheTicketSeq) {
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) commit_one(pipe, source, seq);
  ASSERT_EQ(link.count(repl::FrameKind::kRedoBatch), 3u);

  MemTarget target(4096);
  repl::RedoApplier applier(target);
  const std::vector<std::uint8_t> zeros(4096, 0);
  applier.seed(zeros.data(), zeros.size(), 0, 1);
  ScriptedLink reply;
  // The backup lags: only sequences 1..2 arrived.
  applier.on_frame(link.sent[0], reply);
  applier.on_frame(link.sent[1], reply);
  ASSERT_EQ(applier.applied_seq(), 2u);

  std::uint8_t out[8] = {0};
  // A reader holding ticket 3 must bounce — and learn how far the replica got.
  repl::RedoApplier::ReadResult r = applier.read_at_watermark(0, 8, /*min_seq=*/3, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kLagging);
  EXPECT_EQ(r.at_seq, 2u);

  // A reader holding ticket 2 is served NOW, at watermark 2 — its own
  // commit is visible (commit_one writes its seq as the first byte).
  r = applier.read_at_watermark(0, 8, /*min_seq=*/2, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
  EXPECT_EQ(r.at_seq, 2u);
  EXPECT_EQ(out[0], 2);

  // Sequence 3 lands: the bounced reader's retry now observes its write.
  applier.on_frame(link.sent[2], reply);
  r = applier.read_at_watermark(0, 8, /*min_seq=*/3, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
  EXPECT_EQ(r.at_seq, 3u);
  EXPECT_EQ(out[0], 3) << "a served read must never show state older than min_seq";

  // Bounds discipline is separate from staleness: a range past the image
  // answers kOutOfBounds, not a park-forever kLagging.
  r = applier.read_at_watermark(4090, 8, 0, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOutOfBounds);
}

TEST(ReadYourWrites, TakeoverMidReadNeverServesRolledBackSequences) {
  // A 1-safe primary dies with committed-but-unshipped sequences 11..15.
  // The promoted backup holds exactly 1..10: a reader holding ticket 10
  // is served; a reader holding ticket 15 (a commit the takeover rolled
  // back) must bounce forever rather than ever be told "kOk" on older
  // bytes — the bounce is what routes it to the new primary for a fresh
  // commit, preserving "never observe state older than your ticket".
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  pipe.set_commit_window(16);
  for (std::uint64_t seq = 1; seq <= 10; ++seq) commit_one(pipe, source, seq);
  ASSERT_EQ(link.count(repl::FrameKind::kRedoBatch), 10u);
  // Sequences 11..15 commit locally but never ship (buffered group).
  pipe.set_group_size(8);
  for (std::uint64_t seq = 11; seq <= 15; ++seq) commit_async_one(pipe, source, seq);
  ASSERT_EQ(link.count(repl::FrameKind::kRedoBatch), 10u) << "11..15 must stay buffered";
  ASSERT_EQ(link.count(repl::FrameKind::kRedoGroup), 0u);

  MemTarget target(4096);
  repl::RedoApplier applier(target);
  const std::vector<std::uint8_t> zeros(4096, 0);
  applier.seed(zeros.data(), zeros.size(), 0, 1);
  ScriptedLink reply;
  for (const auto& f : link.sent) applier.on_frame(f, reply);
  ASSERT_EQ(applier.applied_seq(), 10u);

  // Mid-read takeover: the primary is gone (link dropped, never flushed).
  // The reader that was about to read with ticket 10 still succeeds …
  std::uint8_t out[8] = {0};
  repl::RedoApplier::ReadResult r = applier.read_at_watermark(0, 8, /*min_seq=*/10, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
  EXPECT_EQ(r.at_seq, 10u);
  EXPECT_EQ(out[0], 10);

  // … while the reader holding lost ticket 15 is refused, now and after
  // the promotion: at_seq tells it the surviving lineage ends at 10.
  r = applier.read_at_watermark(0, 8, /*min_seq=*/15, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kLagging);
  EXPECT_EQ(r.at_seq, 10u) << "no read may ever observe a rolled-back sequence";

  // The promoted lineage continues from 10 under a new epoch; a fresh
  // commit (the bounced client's retry) becomes readable at ITS ticket.
  MemSource promoted(4096);
  std::memcpy(promoted.mutable_db(), target.mem.data(), 4096);
  promoted.committed = applier.applied_seq();
  ScriptedLink new_link;
  repl::RedoPipeline new_pipe(promoted, &new_link);
  commit_one(new_pipe, promoted, 11);
  applier.on_frame(new_link.sent.back(), reply);
  r = applier.read_at_watermark(0, 8, /*min_seq=*/11, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
  EXPECT_EQ(r.at_seq, 11u);
  EXPECT_EQ(out[0], 11);
}

TEST(ReadYourWrites, WireBackupServesTheTicketSeqOnceAcked) {
  // End to end over a real transport: commit ticket S on a WirePrimary,
  // wait for the backup's covering ack (poll_acks, the async front end's
  // pump), then a locked WireBackup::read at min_seq = S must return the
  // committed bytes — while min_seq past the watermark still bounces.
  const StoreConfig config = conformance_config();
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  net::WirePrimary primary(arena, config, &a, /*format=*/true);
  primary.set_two_safe(true);
  primary.set_commit_window(8);
  rio::Arena replica = rio::Arena::create(config.db_size);
  net::WireBackup backup(replica);
  std::thread backup_thread([&] { backup.serve(b, 4000); });
  ASSERT_TRUE(primary.sync_backup());

  const std::uint64_t off = 512, value = 0x5afe5afe5afe5afeull;
  std::uint8_t* db = primary.db();
  primary.begin_transaction();
  primary.set_range(db + off, 8);
  primary.bus().write(db + off, &value, 8, sim::TrafficClass::kModified);
  primary.commit_transaction();
  const std::uint64_t ticket = primary.committed_seq();

  for (int i = 0; i < 5000 && primary.peer_acked_seq(0) < ticket; ++i) {
    primary.pipeline().poll_acks();
    usleep(200);
  }
  ASSERT_GE(primary.peer_acked_seq(0), ticket) << "backup never acked the commit";

  std::uint8_t out[8] = {0};
  repl::RedoApplier::ReadResult r = backup.read(off, 8, ticket, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
  EXPECT_GE(r.at_seq, ticket);
  std::uint64_t got;
  std::memcpy(&got, out, 8);
  EXPECT_EQ(got, value);

  r = backup.read(off, 8, backup.watermark() + 100, out);
  EXPECT_EQ(r.status, repl::RedoApplier::ReadStatus::kLagging)
      << "a ticket past the watermark must bounce, not serve stale bytes";

  a.close_peer();
  b.close_peer();
  backup_thread.join();
}

// ---- cross-shard 2PC regression tests --------------------------------------
//
// The prepare/decide hooks shard::CrossShardCoordinator drives: phase-1
// batches are buffered in-doubt on the backup (sequence consumed, bytes
// deferred), phase-2 decides apply or discard them, and takeover resolution
// replays the same rule through resolve_in_doubt().

TEST(CrossShard2pc, PrepareBuffersInDoubtAndDecideCommitApplies) {
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  MemTarget target(4096);
  repl::RedoApplier applier(target);
  const std::vector<std::uint8_t> zeros(4096, 0);
  applier.seed(zeros.data(), zeros.size(), 0, 1);
  ScriptedLink reply;

  commit_one(pipe, source, 1);  // an ordinary commit keeps the stream live
  pipe.begin();
  const std::uint8_t data[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  pipe.stage(64, data, sizeof data);
  source.committed = 2;
  pipe.prepare_cross(2, /*xid=*/42);
  EXPECT_EQ(pipe.in_doubt(), 1u);
  EXPECT_EQ(pipe.stats().prepares_shipped, 1u);

  for (const auto& f : link.sent) {
    ASSERT_EQ(applier.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
  }
  EXPECT_EQ(applier.applied_seq(), 2u) << "the prepare consumes its sequence";
  EXPECT_EQ(applier.in_doubt(), 1u);
  EXPECT_EQ(applier.stats().prepares_buffered, 1u);
  EXPECT_EQ(target.mem[64], 0) << "prepared bytes must not touch the image";

  link.sent.clear();
  EXPECT_TRUE(pipe.decide_cross(42, /*commit=*/true));
  EXPECT_EQ(pipe.in_doubt(), 0u);
  EXPECT_EQ(pipe.stats().decides_shipped, 1u);
  EXPECT_FALSE(pipe.decide_cross(42, true)) << "already resolved";

  for (const auto& f : link.sent) {
    ASSERT_EQ(applier.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
  }
  EXPECT_EQ(applier.in_doubt(), 0u);
  EXPECT_EQ(applier.stats().decides_committed, 1u);
  EXPECT_EQ(target.mem[64], 9) << "the decide applies the buffered bytes";
  EXPECT_EQ(applier.applied_seq(), 2u) << "applying the decision must not re-advance";
}

TEST(CrossShard2pc, AbortKeepsHistoryContiguousAndImageUntouched) {
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  commit_one(pipe, source, 1);
  pipe.begin();
  const std::uint8_t data[8] = {7, 7, 7, 7, 7, 7, 7, 7};
  pipe.stage(128, data, sizeof data);
  source.committed = 2;
  pipe.prepare_cross(2, /*xid=*/7);
  EXPECT_TRUE(pipe.decide_cross(7, /*commit=*/false));
  commit_one(pipe, source, 3);

  // Live stream: the backup consumes the aborted slot without writing.
  MemTarget target(4096);
  repl::RedoApplier applier(target);
  const std::vector<std::uint8_t> zeros(4096, 0);
  applier.seed(zeros.data(), zeros.size(), 0, 1);
  ScriptedLink reply;
  for (const auto& f : link.sent) {
    ASSERT_EQ(applier.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
  }
  EXPECT_EQ(applier.applied_seq(), 3u);
  EXPECT_EQ(applier.stats().decides_aborted, 1u);
  EXPECT_EQ(target.mem[128], 0) << "aborted bytes leaked into the image";

  // Rejoin replay: the empty batch at the aborted sequence advances a
  // laggard past the slot — history has no hole.
  EXPECT_EQ(pipe.decide_rejoin(1, 1), repl::RedoPipeline::RejoinDecision::kDelta);
  MemTarget lag_target(4096);
  repl::RedoApplier laggard(lag_target);
  laggard.seed(zeros.data(), zeros.size(), 0, 1);
  ASSERT_EQ(laggard.on_frame(link.sent.front(), reply),
            repl::RedoApplier::FrameResult::kOk);  // seq 1 only
  ASSERT_EQ(laggard.applied_seq(), 1u);
  repl::Frame request{repl::FrameKind::kRejoinRequest, 1, std::vector<std::uint8_t>(24)};
  const std::uint64_t claimed = 1, node = 9, state_epoch = 1;
  std::memcpy(request.payload.data(), &claimed, 8);
  std::memcpy(request.payload.data() + 8, &node, 8);
  std::memcpy(request.payload.data() + 16, &state_epoch, 8);
  link.inbound.push_back(std::move(request));
  link.sent.clear();
  ASSERT_TRUE(pipe.handle_rejoin(/*timeout_ms=*/0));
  EXPECT_EQ(link.count(repl::FrameKind::kRejoinDelta), 1u);
  for (const auto& f : link.sent) {
    ASSERT_EQ(laggard.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
  }
  EXPECT_EQ(laggard.applied_seq(), 3u);
  EXPECT_EQ(lag_target.mem[128], 0);
}

TEST(CrossShard2pc, TakeoverResolutionAppliesOrDiscardsTheBufferedBatch) {
  MemSource source(4096);
  ScriptedLink link;
  repl::RedoPipeline pipe(source, &link);
  pipe.begin();
  const std::uint8_t data[8] = {5, 5, 5, 5, 5, 5, 5, 5};
  pipe.stage(256, data, sizeof data);
  source.committed = 1;
  pipe.prepare_cross(1, /*xid=*/99);

  // Two replicas of the same in-doubt state; the takeover driver resolves
  // one commit, one abort (as two different decision logs would).
  MemTarget commit_target(4096), abort_target(4096);
  repl::RedoApplier commit_side(commit_target), abort_side(abort_target);
  const std::vector<std::uint8_t> zeros(4096, 0);
  commit_side.seed(zeros.data(), zeros.size(), 0, 1);
  abort_side.seed(zeros.data(), zeros.size(), 0, 1);
  ScriptedLink reply;
  for (const auto& f : link.sent) {
    ASSERT_EQ(commit_side.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
    ASSERT_EQ(abort_side.on_frame(f, reply), repl::RedoApplier::FrameResult::kOk);
  }
  ASSERT_EQ(commit_side.in_doubt_xids(), std::vector<std::uint64_t>{99});

  EXPECT_FALSE(commit_side.resolve_in_doubt(/*xid=*/1, true)) << "unknown xid";
  EXPECT_TRUE(commit_side.resolve_in_doubt(99, /*commit=*/true));
  EXPECT_TRUE(abort_side.resolve_in_doubt(99, /*commit=*/false));
  EXPECT_EQ(commit_side.in_doubt(), 0u);
  EXPECT_EQ(abort_side.in_doubt(), 0u);
  EXPECT_EQ(commit_target.mem[256], 5);
  EXPECT_EQ(abort_target.mem[256], 0);
  EXPECT_EQ(commit_side.applied_seq(), 1u);
  EXPECT_EQ(abort_side.applied_seq(), 1u);
}

// ---- cross-version 2PC (reconfigurable commit) ------------------------------
// Every transaction is stamped with the ShardMap version it was planned
// against. A prepare that straddles a reconfiguration must resolve exactly
// once against exactly one layout: decided after a cutover it re-routes to
// the new owner (abort-and-retry, counted in retried_2pc); decided against a
// range mid-migration it applies once at the source and the dual-write
// window re-ships the residual — never a dual apply.

// Visits every Debit-Credit record whose owner differs between two maps
// (same key rule as the Rebalancer: record_key -> hash -> owner).
template <typename Fn>
void for_each_moved_record(const shard::ShardMap& from, const shard::ShardMap& to,
                           const wl::DebitCredit& workload, Fn&& fn) {
  const auto scan = [&](unsigned kind, std::size_t count, auto offset_of) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t h =
          shard::hash_key(shard::ShardedCluster::record_key(kind, i));
      const shard::ShardId src = from.shard_of(h);
      const shard::ShardId dst = to.shard_of(h);
      if (src != dst) fn(src, dst, static_cast<std::uint64_t>(offset_of(i)));
    }
  };
  scan(0, workload.num_accounts(), [&](std::size_t i) { return workload.account_offset(i); });
  scan(1, workload.num_tellers(), [&](std::size_t i) { return workload.teller_offset(i); });
  scan(2, workload.num_branches(), [&](std::size_t i) { return workload.branch_offset(i); });
}

TEST(CrossVersionTwoPC, StalePrepareDecidedAfterCutoverReroutesToTheNewOwner) {
  shard::ShardedConfig config;
  config.shards = 2;
  shard::ShardedCluster cluster(config);
  ASSERT_EQ(cluster.run(9, 300, 0.25).committed, 300u);  // seed some balances

  // Plan a batch against the v1 map...
  const shard::ShardMap v1 = cluster.map();
  const shard::Router router(cluster.map());
  Rng rng(10);
  std::vector<shard::TxnDecision> stale;
  for (int i = 0; i < 200; ++i) {
    stale.push_back(
        shard::plan_txn(router, cluster.workload(), cluster.num_shards(), rng, 0.25));
  }

  // ...then run a split to completion BEFORE any of them decide.
  shard::Rebalancer rebalancer(cluster, shard::Rebalancer::Config{16});
  rebalancer.begin_split(0);
  rebalancer.run_to_completion();
  ASSERT_EQ(cluster.map().version(), 2u);

  // One local stale plan whose home range moved: its whole effect must land
  // on the new owner — the old owner's image stays byte-identical (single
  // placement, no dual apply).
  const shard::Router live(cluster.map());
  std::size_t moved = stale.size();
  for (std::size_t i = 0; i < stale.size(); ++i) {
    if (!stale[i].cross && live.route(stale[i].key) != stale[i].home) {
      moved = i;
      break;
    }
  }
  ASSERT_LT(moved, stale.size()) << "no local plan landed in the moved range";
  const shard::ShardId old_home = stale[moved].home;
  const shard::ShardId new_home = live.route(stale[moved].key);
  const std::uint32_t old_crc = cluster.shard_crc(old_home);
  const std::uint32_t new_crc = cluster.shard_crc(new_home);
  ASSERT_TRUE(cluster.execute(stale[moved]));
  EXPECT_EQ(cluster.shard_crc(old_home), old_crc)
      << "the old owner must not see a stale-stamped transaction post-cutover";
  EXPECT_NE(cluster.shard_crc(new_home), new_crc)
      << "the re-routed transaction never reached the new owner";

  // The rest of the batch resolves exactly once each, against the new map.
  for (std::size_t i = 0; i < stale.size(); ++i) {
    if (i != moved) ASSERT_TRUE(cluster.execute(stale[i]));
  }
  EXPECT_GT(cluster.rebalance_counters().retried_2pc, 0u);
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.check_replicas(s), "");
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  (void)v1;
}

TEST(CrossVersionTwoPC, PrepareAgainstAMidMigrationRangeAppliesOnceAtTheSource) {
  shard::ShardedConfig config;
  config.shards = 2;
  shard::ShardedCluster cluster(config);
  ASSERT_EQ(cluster.run(12, 300, 0.25).committed, 300u);

  const shard::ShardMap v1 = cluster.map();
  const shard::Router router(cluster.map());
  Rng rng(13);
  std::vector<shard::TxnDecision> plans;
  for (int i = 0; i < 120; ++i) {
    plans.push_back(
        shard::plan_txn(router, cluster.workload(), cluster.num_shards(), rng, 0.25));
  }

  // Start the migration but do NOT cut over: the live map is still v1, so
  // the v1-stamped prepares decide against the old layout at the source.
  // Post-transfer commits dirty their records and the dual-write window
  // re-ships the residuals until the cutover finds the moving set clean.
  shard::Rebalancer rebalancer(cluster, shard::Rebalancer::Config{8});
  rebalancer.begin_split(0);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(cluster.execute(plans[i]));
    rebalancer.step();  // interleave chunks; commits keep dirtying records
  }
  bool done = false;
  for (int guard = 0; !done && guard < 10'000; ++guard) {
    if (!rebalancer.step()) done = rebalancer.cutover();
  }
  ASSERT_TRUE(done) << "the migration never converged to a clean cutover";

  // Post-cutover: every moved record's balance lives on the destination
  // only — the source copy is exactly zero. A dual apply would leave the
  // source nonzero (and break the global balance invariant below).
  for_each_moved_record(v1, cluster.map(), cluster.workload(),
                        [&](shard::ShardId src, shard::ShardId, std::uint64_t off) {
                          std::int32_t v;
                          std::memcpy(&v, cluster.primary_db(src) + off, sizeof v);
                          EXPECT_EQ(v, 0) << "residual on the source at offset " << off;
                        });
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
  EXPECT_EQ(cluster.check_global_consistency(), "");
}

}  // namespace
}  // namespace vrep
