// Cross-backend conformance: the SAME committed history driven through all
// three ReplicationLink backends — simulated Memory Channel ring, TCP, and
// in-process loopback — must leave every surviving backup with the identical
// database image (CRC-equal to the fault-free oracle). The loopback leg also
// runs under the fault injector to prove the protocol engine converges to
// the same bytes when the carrier drops, duplicates, and delays frames.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault_transport.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "repl/active.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;

constexpr std::size_t kDbSize = 64 * 1024;
constexpr int kTxns = 200;

StoreConfig conformance_config() {
  StoreConfig config;
  config.db_size = kDbSize;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

// A Debit-Credit-flavoured history, generated ONCE so every backend replays
// bit-identical transactions: each transaction updates three fixed-size
// "balance" records at pseudo-random offsets and appends one larger
// "history" record.
struct TxnWrite {
  std::uint64_t off;
  std::vector<std::uint8_t> data;
};
using Txn = std::vector<TxnWrite>;

std::vector<Txn> debit_credit_history() {
  std::vector<Txn> history;
  Rng rng(20260806);
  for (int i = 0; i < kTxns; ++i) {
    Txn txn;
    for (int r = 0; r < 3; ++r) {  // branch / teller / account balances
      const std::size_t len = 8;
      const std::size_t off = rng.below(kDbSize - len) & ~std::size_t{7};
      std::vector<std::uint8_t> data(len);
      const std::uint64_t v = rng.next_u64() | 1;
      std::memcpy(data.data(), &v, 8);
      txn.push_back(TxnWrite{off, std::move(data)});
    }
    {  // history record
      const std::size_t len = 48;
      const std::size_t off = rng.below(kDbSize - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
      txn.push_back(TxnWrite{off, std::move(data)});
    }
    history.push_back(std::move(txn));
  }
  return history;
}

const std::vector<Txn>& history() {
  static const std::vector<Txn> h = debit_credit_history();
  return h;
}

void replay(core::TransactionStore& store, const std::vector<Txn>& txns) {
  std::uint8_t* db = store.db();
  for (const auto& txn : txns) {
    store.begin_transaction();
    for (const auto& w : txn) {
      store.set_range(db + w.off, w.data.size());
      store.bus().write(db + w.off, w.data.data(), w.data.size(),
                        sim::TrafficClass::kModified);
    }
    store.commit_transaction();
  }
}

// ---- simulated Memory Channel backend -------------------------------------

struct SimResult {
  std::uint32_t primary_crc;
  std::uint32_t backup_crc;
  std::uint64_t applied_seq;
};

SimResult run_sim_backend() {
  const StoreConfig config = conformance_config();
  sim::AlphaCostModel cost;
  sim::McFabric fabric(cost.link);
  sim::Node primary_node(cost, 1, &fabric);
  sim::Node backup_node(cost, 1, nullptr);
  const auto layout = repl::ActiveBackupLayout::make(config.db_size, 1 << 16);
  rio::Arena primary_arena =
      rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout));
  rio::Arena backup_arena = rio::Arena::create(layout.arena_bytes());
  repl::ActiveBackup backup(backup_node.cpu(), backup_arena, layout, fabric);
  repl::ActivePrimary primary(primary_node.cpu().bus(), primary_arena, backup_arena, config,
                              layout, &backup, /*format=*/true);

  replay(primary, history());
  primary_node.cpu().mc()->flush();
  backup.poll(fabric.link().free_at + cost.link.propagation_ns);
  return SimResult{Crc32::of(primary.db(), config.db_size),
                   Crc32::of(backup.db(), config.db_size), backup.applied_seq()};
}

// ---- framed byte-stream backends (TCP / loopback) --------------------------

struct WireResult {
  std::uint32_t primary_crc;
  std::uint32_t backup_crc;
  std::uint64_t applied_seq;
};

bool await_ack(net::WirePrimary& primary, std::uint64_t seq, int max_iters = 5000) {
  for (int i = 0; i < max_iters && primary.backup_acked_seq() < seq; ++i) {
    primary.send_heartbeat();
    usleep(1000);
  }
  return primary.backup_acked_seq() >= seq;
}

// Run the history over a connected (primary_end, backup_end) transport pair;
// `primary_transport` is what the primary sends through (possibly a fault
// injector wrapping primary_end).
WireResult run_wire_backend(net::Transport& primary_transport, net::Transport& backup_end,
                            net::Transport& clean_primary_end) {
  const StoreConfig config = conformance_config();
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  net::WirePrimary primary(arena, config, &primary_transport, /*format=*/true);
  rio::Arena replica = rio::Arena::create(config.db_size);
  net::WireBackup backup(replica);
  std::thread backup_thread([&] { backup.serve(backup_end, 4000); });

  EXPECT_TRUE(primary.sync_backup());
  replay(primary, history());
  // Converge over the clean endpoint: the chaos window is the commit
  // stream, not the drain (a dropped heartbeat would only slow the wait).
  primary.attach_transport(&clean_primary_end);
  EXPECT_TRUE(await_ack(primary, kTxns));
  clean_primary_end.close_peer();
  backup_thread.join();

  return WireResult{Crc32::of(primary.db(), config.db_size),
                    Crc32::of(backup.db(), config.db_size), backup.applied_seq()};
}

struct TcpPair {
  TcpPair() {
    EXPECT_TRUE(server.listen(0));
    std::thread connector(
        [this] { client_ok = client.connect_to("127.0.0.1", server.bound_port()); });
    EXPECT_TRUE(server.accept_peer());
    connector.join();
    EXPECT_TRUE(client_ok);
  }
  net::TcpTransport server, client;
  bool client_ok = false;
};

// ---- the conformance matrix ------------------------------------------------

// The fault-free oracle: the simulated backend's final image. Computed once;
// every other backend must land on exactly these bytes.
std::uint32_t oracle_crc() {
  static const SimResult sim = [] {
    SimResult r = run_sim_backend();
    EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
    EXPECT_EQ(r.backup_crc, r.primary_crc) << "sim backup diverged from its own primary";
    return r;
  }();
  return sim.backup_crc;
}

TEST(PipelineConformance, SimulatedRingMatchesOracle) {
  // Trivially true by construction — this test pins the oracle itself and
  // fails loudly if the sim backend ever stops applying the full history.
  EXPECT_NE(oracle_crc(), 0u);
}

TEST(PipelineConformance, TcpBackendMatchesOracle) {
  TcpPair pair;
  const WireResult r = run_wire_backend(pair.client, pair.server, pair.client);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "TCP backup image != fault-free oracle";
}

TEST(PipelineConformance, LoopbackBackendMatchesOracle) {
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  const WireResult r = run_wire_backend(a, b, a);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc()) << "loopback backup image != fault-free oracle";
}

TEST(PipelineConformance, LoopbackUnderFaultsConvergesToOracle) {
  net::InprocTransport a, b;
  net::InprocTransport::pair(a, b);
  net::FaultPlan plan;
  plan.seed = 77;
  plan.drop = 0.06;
  plan.duplicate = 0.06;
  plan.delay = 0.03;
  plan.max_delay_us = 300;
  plan.start_after_frames = 2;  // hello + image chunk land untouched
  net::FaultInjectingTransport chaos(a, plan);

  const WireResult r = run_wire_backend(chaos, b, a);
  EXPECT_GT(chaos.stats().faults(), 0u) << "fault schedule never fired";
  EXPECT_GT(chaos.stats().drops, 0u);
  EXPECT_EQ(r.applied_seq, static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(r.backup_crc, r.primary_crc);
  EXPECT_EQ(r.backup_crc, oracle_crc())
      << "surviving backup under faults != fault-free oracle";
}

}  // namespace
}  // namespace vrep
