// Metrics registry (counters/gauges/timers, snapshot/reset, thread safety),
// the minimal JSON value class, and the bench JsonReport emitter: the --json
// file must round-trip through Json::parse and agree with the numbers the
// binary printed.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace vrep {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, BuildDumpParseRoundTrip) {
  Json root = Json::object();
  root.set("name", "table3");
  root.set("tps", 123456.789);
  root.set("count", std::uint64_t{18446744073709551615ull});
  root.set("delta", std::int64_t{-42});
  root.set("ok", true);
  root.set("nothing", Json());
  Json arr = Json::array();
  arr.push(1).push(2).push("three");
  root.set("cells", std::move(arr));

  for (const int indent : {0, 2}) {
    const std::string text = root.dump(indent);
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->find("name")->str(), "table3");
    EXPECT_NEAR(parsed->find("tps")->number(), 123456.789, 1e-3);
    // u64 values survive exactly (not through double).
    EXPECT_EQ(parsed->find("count")->u64(), 18446744073709551615ull);
    EXPECT_EQ(static_cast<std::int64_t>(parsed->find("delta")->number()), -42);
    EXPECT_TRUE(parsed->find("ok")->boolean());
    EXPECT_EQ(parsed->find("nothing")->type(), Json::Type::kNull);
    ASSERT_EQ(parsed->find("cells")->size(), 3u);
    EXPECT_EQ(parsed->find("cells")->at(2).str(), "three");
  }
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2).set("z", 3);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.items()[0].first, "z");
  EXPECT_EQ(j.items()[0].second.u64(), 3u);
  EXPECT_EQ(j.items()[1].first, "a");
}

TEST(Json, EscapesStrings) {
  Json j = Json::object();
  j.set("s", "a\"b\\c\nd");
  const std::string text = j.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(parsed->find("s")->str(), "a\"b\\c\nd");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("treu").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
}

// \uXXXX escapes must decode the full Basic Multilingual Plane to UTF-8,
// not just ASCII — shard-map configs carry arbitrary strings. The parser
// used to replace anything above 0x7F with '?'.
TEST(Json, UnicodeEscapesDecodeFullBmpToUtf8) {
  // One code point per UTF-8 length class.
  const auto ascii = Json::parse("\"\\u0041\"");  // 'A'
  ASSERT_TRUE(ascii.has_value());
  EXPECT_EQ(ascii->str(), "A");

  const auto two_byte = Json::parse("\"caf\\u00e9\"");  // é -> C3 A9
  ASSERT_TRUE(two_byte.has_value());
  EXPECT_EQ(two_byte->str(), "caf\xc3\xa9");

  const auto three_byte = Json::parse("\"\\u4e2d\\u6587\"");  // 中文
  ASSERT_TRUE(three_byte.has_value());
  EXPECT_EQ(three_byte->str(), "\xe4\xb8\xad\xe6\x96\x87");

  const auto euro = Json::parse("\"\\u20ac\"");  // € -> E2 82 AC
  ASSERT_TRUE(euro.has_value());
  EXPECT_EQ(euro->str(), "\xe2\x82\xac");
}

TEST(Json, UnicodeEscapesRoundTripThroughDump) {
  // The dumper emits raw UTF-8 bytes (only control chars are escaped), so
  // parse -> dump -> parse must preserve the decoded bytes exactly.
  const auto first = Json::parse("\"na\\u00efve \\u4e2d \\u20ac\"");
  ASSERT_TRUE(first.has_value());
  const std::string text = first->dump();
  const auto second = Json::parse(text);
  ASSERT_TRUE(second.has_value()) << text;
  EXPECT_EQ(second->str(), first->str());
  EXPECT_EQ(second->str(), "na\xc3\xafve \xe4\xb8\xad \xe2\x82\xac");
}

TEST(Json, UnicodeSurrogateEscapesAreRejectedExplicitly) {
  // Surrogate halves are not scalar values; without pairing logic the only
  // correct answer is a parse error, not mojibake.
  EXPECT_FALSE(Json::parse("\"\\ud83d\\ude00\"").has_value());  // pair
  EXPECT_FALSE(Json::parse("\"\\ud800\"").has_value());         // lone high
  EXPECT_FALSE(Json::parse("\"\\udfff\"").has_value());         // lone low
  // Boundary neighbours still decode.
  const auto below = Json::parse("\"\\ud7ff\"");
  ASSERT_TRUE(below.has_value());
  EXPECT_EQ(below->str(), "\xed\x9f\xbf");
  const auto above = Json::parse("\"\\ue000\"");
  ASSERT_TRUE(above.has_value());
  EXPECT_EQ(above->str(), "\xee\x80\x80");
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeTimerBasics) {
  metrics::Registry reg;
  reg.counter("c").add(3);
  reg.counter("c").add();
  EXPECT_EQ(reg.counter("c").value(), 4u);

  reg.gauge("g").set(-5);
  reg.gauge("g").add(2);
  EXPECT_EQ(reg.gauge("g").value(), -3);
  reg.gauge("peak").update_max(10);
  reg.gauge("peak").update_max(7);  // lower value must not regress the max
  EXPECT_EQ(reg.gauge("peak").value(), 10);

  reg.timer("t").record(100, 5);
  EXPECT_EQ(reg.timer("t").snapshot().total_count(), 5u);
}

TEST(Metrics, InstrumentReferencesSurviveReset) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("stable");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // zeroed, not destroyed
  c.add(1);
  EXPECT_EQ(reg.counter("stable").value(), 1u);  // same instrument
  EXPECT_EQ(&reg.counter("stable"), &c);
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  metrics::Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(9);
  reg.timer("t").record(64);
  const metrics::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 9);
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].second.total_count(), 1u);

  const Json j = snap.to_json();
  EXPECT_EQ(j.find("counters")->find("a")->u64(), 1u);
  EXPECT_EQ(j.find("gauges")->find("g")->u64(), 9u);
  EXPECT_EQ(j.find("timers")->find("t")->find("count")->u64(), 1u);
}

TEST(Metrics, ConcurrentUpdatesAreLossFree) {
  // Mimics the SMP harness path: several streams hammering the same named
  // instruments through the global accessors' code path.
  metrics::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared.count").add(1);
        reg.gauge("shared.peak").update_max(t * kPerThread + i);
        if (i % 100 == 0) reg.timer("shared.lat").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared.count").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.gauge("shared.peak").value(), kThreads * kPerThread - 1);
  EXPECT_EQ(reg.timer("shared.lat").snapshot().total_count(),
            kThreads * (kPerThread / 100));
}

TEST(Metrics, GlobalAccessorsShareOneRegistry) {
  metrics::counter("test.global").add(5);
  EXPECT_EQ(metrics::Registry::global().counter("test.global").value(), 5u);
  metrics::Registry::global().reset();
  EXPECT_EQ(metrics::counter("test.global").value(), 0u);
}

// ---------------------------------------------------------------------------
// JsonReport: the --json output matches what run_experiment measured (and
// hence what the bench binary prints), and round-trips through the parser.
// ---------------------------------------------------------------------------

TEST(JsonReport, RoundTripsAndMatchesMeasuredResult) {
  metrics::Registry::global().reset();

  harness::ExperimentConfig config;
  config.mode = harness::Mode::kPassive;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.txns_per_stream = 2'000;
  const harness::ExperimentResult r = run_experiment(config);
  ASSERT_GT(r.tps, 0);
  ASSERT_GT(r.traffic.total(), 0u);
  ASSERT_EQ(r.commit_latency_ns.total_count(), r.committed);

  const std::string path = testing::TempDir() + "vrep_metrics_test.json";
  const char* argv[] = {"bench", "--json", path.c_str()};
  CliArgs args(3, const_cast<char**>(argv));
  bench::JsonReport report(args, "metrics_test");
  ASSERT_TRUE(report.enabled());
  report.add("V3/DebitCredit", config, r, 38735.0);
  ASSERT_TRUE(report.write());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("bench")->str(), "metrics_test");
  const Json* cells = parsed->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 1u);
  const Json& cell = cells->at(0);

  // The serialized cell is the same data the printed table is built from.
  EXPECT_EQ(cell.find("name")->str(), "V3/DebitCredit");
  EXPECT_EQ(cell.find("mode")->str(), "passive backup");
  EXPECT_EQ(cell.find("committed")->u64(), r.committed);
  EXPECT_NEAR(cell.find("tps")->number(), r.tps, r.tps * 1e-9);
  EXPECT_EQ(cell.find("traffic")->find("modified_bytes")->u64(), r.traffic.modified());
  EXPECT_EQ(cell.find("traffic")->find("undo_bytes")->u64(), r.traffic.undo());
  EXPECT_EQ(cell.find("traffic")->find("meta_bytes")->u64(), r.traffic.meta());
  EXPECT_EQ(cell.find("packets")->u64(), r.packets);
  const Json* lat = cell.find("commit_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->u64(), r.commit_latency_ns.total_count());
  EXPECT_EQ(lat->find("p50")->u64(), r.commit_latency_ns.percentile(0.5));
  EXPECT_EQ(lat->find("p99")->u64(), r.commit_latency_ns.percentile(0.99));
  EXPECT_GT(lat->find("p50")->u64(), 0u);

  // The registry snapshot rode along: the experiment instrumented the sim
  // layers, and the registry's view of shipped bytes equals the result's.
  const Json* metrics_json = parsed->find("metrics");
  ASSERT_NE(metrics_json, nullptr);
  const Json* counters = metrics_json->find("counters");
  ASSERT_NE(counters, nullptr);
  const std::uint64_t shipped = counters->find("sim.bus.shipped_bytes.modified")->u64() +
                                counters->find("sim.bus.shipped_bytes.undo")->u64() +
                                counters->find("sim.bus.shipped_bytes.meta")->u64();
  EXPECT_EQ(shipped, r.traffic.total());
  EXPECT_EQ(counters->find("sim.mc.packets")->u64(), r.packets);
  EXPECT_EQ(metrics_json->find("timers")
                ->find("harness.commit_latency_ns")
                ->find("count")
                ->u64(),
            r.committed);
}

}  // namespace
}  // namespace vrep
