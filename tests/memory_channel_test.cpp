// Memory Channel fabric + interface: mapping, delivery, crash cuts, FIFO
// back-pressure, ordering.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/memory_channel.hpp"

namespace vrep::sim {
namespace {

struct Rig {
  explicit Rig(int fifo_depth = 4)
      : fabric(LinkModel{}),
        remote(4096, 0),
        mc(&fabric, &clk, fifo_depth, /*store_base=*/5, /*store_byte=*/0.4,
           /*small_packet_penalty=*/0) {
    io_base = fabric.map_segment(remote.data(), remote.size());
  }
  McFabric fabric;
  VirtualClock clk;
  std::vector<std::uint8_t> remote;
  McInterface mc;
  std::uint64_t io_base;
};

TEST(MemoryChannel, BytesArriveAfterFlushAndDelivery) {
  Rig rig;
  const std::uint64_t value = 0x1122334455667788ull;
  rig.mc.io_write(rig.io_base + 16, &value, 8, TrafficClass::kModified);
  rig.mc.flush();
  EXPECT_NE(std::memcmp(rig.remote.data() + 16, &value, 8), 0)
      << "nothing may land before its delivery time";
  rig.fabric.deliver_all();
  EXPECT_EQ(std::memcmp(rig.remote.data() + 16, &value, 8), 0);
}

TEST(MemoryChannel, DeliveryHonoursPropagationDelay) {
  Rig rig;
  const std::uint32_t v = 42;
  rig.mc.io_write(rig.io_base, &v, 4, TrafficClass::kMeta);
  rig.mc.flush();
  // Link completion time is recorded in the shared link state; delivery
  // happens one propagation delay after that.
  const SimTime completion = rig.fabric.link().free_at;
  rig.fabric.deliver_until(completion + LinkModel{}.propagation_ns - 1);
  std::uint32_t got = 0;
  std::memcpy(&got, rig.remote.data(), 4);
  EXPECT_EQ(got, 0u) << "still in flight";
  rig.fabric.deliver_until(completion + LinkModel{}.propagation_ns);
  std::memcpy(&got, rig.remote.data(), 4);
  EXPECT_EQ(got, 42u);
}

TEST(MemoryChannel, CrashCutDropsInFlightPackets) {
  Rig rig;
  const std::uint32_t a = 1, b = 2;
  rig.mc.io_write(rig.io_base + 0, &a, 4, TrafficClass::kMeta);
  rig.mc.flush();
  const SimTime first_arrival = rig.fabric.link().free_at + LinkModel{}.propagation_ns;
  rig.clk.advance(1'000'000);  // much later
  rig.mc.io_write(rig.io_base + 64, &b, 4, TrafficClass::kMeta);
  rig.mc.flush();

  const std::size_t dropped = rig.fabric.crash_at(first_arrival);
  EXPECT_EQ(dropped, 1u);
  std::uint32_t got = 0;
  std::memcpy(&got, rig.remote.data(), 4);
  EXPECT_EQ(got, 1u);
  std::memcpy(&got, rig.remote.data() + 64, 4);
  EXPECT_EQ(got, 0u) << "the second packet was in flight and must be lost";
}

TEST(MemoryChannel, FifoBackPressureStallsTheClock) {
  Rig rig(/*fifo_depth=*/2);
  const SimTime start = rig.clk.now();
  // Burst of scattered 4-byte writes: each becomes its own packet; with a
  // 2-deep FIFO the CPU must stall on the link.
  const std::uint32_t v = 9;
  for (int i = 0; i < 32; ++i) {
    rig.mc.io_write(rig.io_base + static_cast<std::uint64_t>(i) * 64, &v, 4,
                    TrafficClass::kMeta);
  }
  rig.mc.flush();
  EXPECT_GT(rig.mc.stall_ns(), 0);
  EXPECT_GT(rig.clk.now() - start, 20 * LinkModel{}.packet_time(4))
      << "32 packets through a 2-deep FIFO must serialize on the link";
}

TEST(MemoryChannel, DeepFifoAbsorbsBursts) {
  Rig rig(/*fifo_depth=*/64);
  const std::uint32_t v = 9;
  for (int i = 0; i < 32; ++i) {
    rig.mc.io_write(rig.io_base + static_cast<std::uint64_t>(i) * 64, &v, 4,
                    TrafficClass::kMeta);
  }
  rig.mc.flush();
  EXPECT_EQ(rig.mc.stall_ns(), 0);
}

TEST(MemoryChannel, TrafficAccountsByClass) {
  Rig rig;
  const std::uint8_t buf[24] = {};
  rig.mc.io_write(rig.io_base, buf, 24, TrafficClass::kModified);
  rig.mc.io_write(rig.io_base + 100, buf, 10, TrafficClass::kUndo);
  rig.mc.io_write(rig.io_base + 200, buf, 3, TrafficClass::kMeta);
  EXPECT_EQ(rig.mc.traffic().modified(), 24u);
  EXPECT_EQ(rig.mc.traffic().undo(), 10u);
  EXPECT_EQ(rig.mc.traffic().meta(), 3u);
  EXPECT_EQ(rig.mc.traffic().total(), 37u);
}

TEST(MemoryChannel, PacketSizeHistogram) {
  Rig rig;
  std::uint8_t buf[32] = {};
  rig.mc.io_write(rig.io_base, buf, 32, TrafficClass::kModified);  // full block
  rig.mc.io_write(rig.io_base + 64, buf, 4, TrafficClass::kModified);
  rig.mc.flush();
  EXPECT_EQ(rig.fabric.packets_of_size(32), 1u);
  EXPECT_EQ(rig.fabric.packets_of_size(4), 1u);
  EXPECT_EQ(rig.fabric.total_packets(), 2u);
  EXPECT_EQ(rig.fabric.total_bytes(), 36u);
}

TEST(MemoryChannel, MultipleSegmentsResolveIndependently) {
  McFabric fabric{LinkModel{}};
  VirtualClock clk;
  std::vector<std::uint8_t> r1(256, 0), r2(256, 0);
  const std::uint64_t io1 = fabric.map_segment(r1.data(), r1.size());
  const std::uint64_t io2 = fabric.map_segment(r2.data(), r2.size());
  ASSERT_NE(io1, io2);
  McInterface mc(&fabric, &clk, 8, 5, 0.4, 0);
  const std::uint32_t a = 0xAA, b = 0xBB;
  mc.io_write(io1 + 8, &a, 4, TrafficClass::kMeta);
  mc.io_write(io2 + 8, &b, 4, TrafficClass::kMeta);
  mc.flush();
  fabric.deliver_all();
  std::uint32_t got;
  std::memcpy(&got, r1.data() + 8, 4);
  EXPECT_EQ(got, 0xAAu);
  std::memcpy(&got, r2.data() + 8, 4);
  EXPECT_EQ(got, 0xBBu);
}

TEST(MemoryChannel, SequentialStreamDeliveredInOrderAtCut) {
  // Sequential writes flush oldest-first, so any crash cut leaves a PREFIX
  // of the stream — the property the active scheme's commit markers rely on.
  Rig rig;
  for (std::uint32_t i = 0; i < 256; ++i) {
    rig.mc.io_write(rig.io_base + i * 4, &i, 4, TrafficClass::kModified);
  }
  rig.mc.flush();
  const SimTime horizon = rig.fabric.link().free_at + LinkModel{}.propagation_ns;
  for (SimTime cut = 0; cut <= horizon; cut += horizon / 7) {
    McFabric fabric2{LinkModel{}};  // fresh rig per cut
    VirtualClock clk2;
    std::vector<std::uint8_t> remote2(4096, 0xFF);
    const std::uint64_t io2 = fabric2.map_segment(remote2.data(), remote2.size());
    McInterface mc2(&fabric2, &clk2, 4, 5, 0.4, 0);
    for (std::uint32_t i = 0; i < 256; ++i) {
      mc2.io_write(io2 + i * 4, &i, 4, TrafficClass::kModified);
    }
    mc2.flush();
    fabric2.crash_at(cut);
    // Find the first byte that did not arrive; everything after must also be
    // missing (0xFF seed).
    std::size_t first_missing = 4096;
    for (std::size_t i = 0; i < 1024; i += 4) {
      std::uint32_t got;
      std::memcpy(&got, remote2.data() + i, 4);
      if (got != i / 4) {
        first_missing = i;
        break;
      }
    }
    for (std::size_t i = first_missing; i < 1024 && first_missing < 4096; i += 4) {
      std::uint32_t got;
      std::memcpy(&got, remote2.data() + i, 4);
      EXPECT_EQ(got, 0xFFFFFFFFu) << "non-prefix delivery at offset " << i << " cut " << cut;
    }
  }
}

}  // namespace
}  // namespace vrep::sim
