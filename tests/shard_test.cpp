// The shard layer: hash-range map + router, the 2PC decision log, shard-id
// frame routing (net/shard_mux), and the partitioned multi-primary cluster —
// randomized multi-seed cross-shard conformance against a fault-free oracle,
// including kill-one-shard's-primary chaos at every 2PC stage, and a
// threaded cross-shard commit hammer (the TSan preset's second subject).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "net/shard_mux.hpp"
#include "shard/coordinator.hpp"
#include "shard/decision_log.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

// ---- ShardMap / Router ------------------------------------------------------

TEST(ShardMap, UniformPartitionCoversTheHashSpace) {
  const shard::ShardMap map = shard::ShardMap::uniform(4);
  EXPECT_EQ(map.num_shards(), 4u);
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.upper_bound(3), ~std::uint64_t{0});
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(~std::uint64_t{0}), 3u);
  // Boundary semantics: an upper bound is inclusive, the next hash belongs
  // to the next shard.
  for (shard::ShardId s = 0; s + 1 < 4; ++s) {
    EXPECT_EQ(map.shard_of(map.upper_bound(s)), s);
    EXPECT_EQ(map.shard_of(map.upper_bound(s) + 1), s + 1);
  }
}

TEST(ShardMap, SingleShardOwnsEverything) {
  const shard::ShardMap map = shard::ShardMap::uniform(1);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(map.shard_of(rng.next_u64()), 0u);
}

TEST(ShardMap, RouterSpreadsKeysOverEveryShard) {
  const shard::ShardMap map = shard::ShardMap::uniform(3);
  const shard::Router router(map);
  std::vector<int> hits(3, 0);
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) hits[router.route(rng.next_u64())] += 1;
  for (int s = 0; s < 3; ++s) {
    EXPECT_GT(hits[s], 600) << "shard " << s << " starved: splitmix64 not spreading";
  }
  // Routing is a pure function of the key.
  EXPECT_EQ(router.route(12345), router.route(12345));
  EXPECT_EQ(router.map_version(), 1u);
}

TEST(ShardMap, JsonRoundTripPreservesBoundsVersionAndNames) {
  const shard::ShardMap map({1ull << 40, 1ull << 60, ~std::uint64_t{0}}, /*version=*/7,
                            {"alpha", "béta-ü", "gamma"});
  const Json encoded = map.to_json();
  const std::optional<shard::ShardMap> decoded = shard::ShardMap::from_json(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == map);
  EXPECT_EQ(decoded->name(1), "béta-ü") << "BMP names must survive the round trip";

  // And through the wire text, not just the tree.
  std::optional<Json> reparsed = Json::parse(encoded.dump());
  ASSERT_TRUE(reparsed.has_value());
  const std::optional<shard::ShardMap> redecoded = shard::ShardMap::from_json(*reparsed);
  ASSERT_TRUE(redecoded.has_value());
  EXPECT_TRUE(*redecoded == map);
}

TEST(ShardMap, FromJsonRejectsMalformedMaps) {
  const shard::ShardMap map = shard::ShardMap::uniform(2);
  Json good = map.to_json();
  EXPECT_TRUE(shard::ShardMap::from_json(good).has_value());

  Json no_version = Json::parse("{\"shards\": []}").value();
  EXPECT_FALSE(shard::ShardMap::from_json(no_version).has_value());

  // Last bound must be 2^64-1 (otherwise some hash has no owner).
  Json truncated = Json::parse(
      "{\"version\": 1, \"shards\": ["
      "{\"id\": 0, \"name\": \"a\", \"upper\": 100}]}").value();
  EXPECT_FALSE(shard::ShardMap::from_json(truncated).has_value());

  // A structurally well-formed document whose RANGE SET is inconsistent must
  // also be rejected — these used to slip straight into a router.
  const auto doc = [](const char* ranges) {
    std::string text =
        "{\"version\": 1, \"shards\": ["
        "{\"id\": 0, \"name\": \"a\"}, {\"id\": 1, \"name\": \"b\"}],"
        "\"ranges\": [";
    text += ranges;
    text += "]}";
    return Json::parse(text).value();
  };

  // Overlapping / unsorted uppers: two ranges claim the same hashes.
  EXPECT_FALSE(shard::ShardMap::from_json(doc(
                   "{\"upper\": 100, \"owner\": 0},"
                   "{\"upper\": 100, \"owner\": 1},"
                   "{\"upper\": 18446744073709551615, \"owner\": 0}"))
                   .has_value())
      << "duplicate uppers overlap";
  EXPECT_FALSE(shard::ShardMap::from_json(doc(
                   "{\"upper\": 200, \"owner\": 0},"
                   "{\"upper\": 100, \"owner\": 1},"
                   "{\"upper\": 18446744073709551615, \"owner\": 0}"))
                   .has_value())
      << "descending uppers overlap";

  // Non-covering: the last upper stops short of 2^64-1.
  EXPECT_FALSE(shard::ShardMap::from_json(doc(
                   "{\"upper\": 100, \"owner\": 0},"
                   "{\"upper\": 18446744073709551614, \"owner\": 1}"))
                   .has_value())
      << "a hole at the top of the hash space has no owner";

  // Owner referencing a shard the document never declared.
  EXPECT_FALSE(shard::ShardMap::from_json(doc(
                   "{\"upper\": 100, \"owner\": 0},"
                   "{\"upper\": 18446744073709551615, \"owner\": 7}"))
                   .has_value())
      << "owner out of range";

  // Version 0 is reserved (0 stamps mean \"legacy, unstamped\" in 2PC).
  Json v0 = Json::parse(
                "{\"version\": 0, \"shards\": [{\"id\": 0, \"name\": \"a\"}],"
                "\"ranges\": [{\"upper\": 18446744073709551615, \"owner\": 0}]}")
                .value();
  EXPECT_FALSE(shard::ShardMap::from_json(v0).has_value());

  // Wrong field types never coerce.
  Json typed = Json::parse(
                   "{\"version\": 1, \"shards\": [{\"id\": 0, \"name\": \"a\"}],"
                   "\"ranges\": [{\"upper\": \"max\", \"owner\": 0}]}")
                   .value();
  EXPECT_FALSE(shard::ShardMap::from_json(typed).has_value());

  // And a consistent new-format document with an explicit owner permutation
  // round-trips (owners are decoupled from range order after a merge).
  Json perm = Json::parse(
                  "{\"version\": 3, \"shards\": ["
                  "{\"id\": 0, \"name\": \"a\"}, {\"id\": 1, \"name\": \"b\"}],"
                  "\"ranges\": [{\"upper\": 100, \"owner\": 1},"
                  "{\"upper\": 18446744073709551615, \"owner\": 0}]}")
                  .value();
  const std::optional<shard::ShardMap> ok = shard::ShardMap::from_json(perm);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->shard_of(50), 1u);
  EXPECT_EQ(ok->shard_of(101), 0u);
  EXPECT_TRUE(shard::ShardMap::from_json(ok->to_json()).has_value());
}

// ---- DecisionLog ------------------------------------------------------------

TEST(DecisionLog, CommitRuleReadsExactlyTheEncodedSlot) {
  const shard::DecisionLog dlog(/*base_off=*/1024, /*slots=*/8);
  std::vector<std::uint8_t> db(2048, 0);

  const std::uint64_t xid = (std::uint64_t{3} << 48) | 41;
  EXPECT_FALSE(dlog.committed(db.data(), xid)) << "zeroed slot = presumed abort";

  std::uint8_t slot[shard::DecisionLog::kSlotBytes];
  shard::DecisionLog::encode_commit(slot, xid);
  std::memcpy(db.data() + dlog.slot_off(xid), slot, sizeof slot);
  EXPECT_TRUE(dlog.committed(db.data(), xid));

  // A different xid hashing to the same slot must NOT read as committed.
  const std::uint64_t other = xid + dlog.slots();
  EXPECT_EQ(dlog.slot_off(other), dlog.slot_off(xid));
  EXPECT_FALSE(dlog.committed(db.data(), other));
}

TEST(DecisionLog, SlotsRecycleModuloTheRing) {
  const shard::DecisionLog dlog(/*base_off=*/0, /*slots=*/4);
  EXPECT_EQ(dlog.slot_off(0), 0u);
  EXPECT_EQ(dlog.slot_off(5), 1 * shard::DecisionLog::kSlotBytes);
  EXPECT_EQ(dlog.slot_off(7), 3 * shard::DecisionLog::kSlotBytes);
  EXPECT_EQ(dlog.bytes(), 4 * shard::DecisionLog::kSlotBytes);
}

TEST(Coordinator, XidsEncodeTheirHomeShard) {
  shard::CrossShardCoordinator coord(shard::DecisionLog(0, 4));
  const std::uint64_t a = coord.next_xid(2);
  const std::uint64_t b = coord.next_xid(0);
  EXPECT_NE(a, b);
  EXPECT_EQ(shard::CrossShardCoordinator::home_of(a), 2u);
  EXPECT_EQ(shard::CrossShardCoordinator::home_of(b), 0u);
}

// ---- net/shard_mux ----------------------------------------------------------

// A loopback carrier: everything sent comes back on recv (what the other
// side of a real transport would deliver).
class LoopCarrier final : public repl::ReplicationLink {
 public:
  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    inbound.push_back(repl::Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
    return true;
  }
  std::optional<repl::Frame> recv(int) override {
    if (inbound.empty()) {
      err_ = repl::LinkError::kTimeout;
      return std::nullopt;
    }
    repl::Frame f = std::move(inbound.front());
    inbound.pop_front();
    err_ = repl::LinkError::kNone;
    return f;
  }
  repl::LinkError last_error() const override { return err_; }
  bool connected() const override { return true; }

  std::deque<repl::Frame> inbound;

 private:
  repl::LinkError err_ = repl::LinkError::kNone;
};

TEST(ShardMux, RoutesInterleavedFramesByShardId) {
  LoopCarrier carrier;
  net::ShardChannel channel(&carrier);
  repl::ReplicationLink& lane2 = channel.lane(2);
  repl::ReplicationLink& lane7 = channel.lane(7);

  // Interleave sends from both lanes; each frame's kind/epoch stay its own.
  const std::uint8_t a[4] = {0xa, 0xa, 0xa, 0xa};
  const std::uint8_t b[4] = {0xb, 0xb, 0xb, 0xb};
  ASSERT_TRUE(lane2.send(repl::FrameKind::kRedoBatch, 5, a, sizeof a));
  ASSERT_TRUE(lane7.send(repl::FrameKind::kHeartbeat, 9, b, sizeof b));
  ASSERT_TRUE(lane2.send(repl::FrameKind::kConsumerAck, 5, b, sizeof b));

  // lane 7's recv pumps past lane 2's frames (parking them) to its own.
  std::optional<repl::Frame> f7 = lane7.recv(0);
  ASSERT_TRUE(f7.has_value());
  EXPECT_EQ(f7->kind, repl::FrameKind::kHeartbeat);
  EXPECT_EQ(f7->epoch, 9u);
  EXPECT_EQ(f7->payload, std::vector<std::uint8_t>(b, b + 4));

  // lane 2 then drains its parked frames in order.
  std::optional<repl::Frame> f2 = lane2.recv(0);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->kind, repl::FrameKind::kRedoBatch);
  EXPECT_EQ(f2->payload, std::vector<std::uint8_t>(a, a + 4));
  f2 = lane2.recv(0);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->kind, repl::FrameKind::kConsumerAck);
  EXPECT_FALSE(lane2.recv(0).has_value()) << "no third frame for shard 2";
  EXPECT_EQ(lane2.last_error(), repl::LinkError::kTimeout);
  EXPECT_EQ(channel.unroutable(), 0u);
}

TEST(ShardMux, FramesForUnknownShardsAreCountedNotFatal) {
  LoopCarrier carrier;
  net::ShardChannel channel(&carrier);
  repl::ReplicationLink& lane0 = channel.lane(0);

  // A frame for shard 3 (no lane) and a runt frame (no envelope).
  const std::uint32_t three = 3;
  std::vector<std::uint8_t> wrapped(4 + 2, 0);
  std::memcpy(wrapped.data(), &three, 4);
  carrier.inbound.push_back(
      repl::Frame{repl::FrameKind::kHeartbeat, 1, wrapped});
  carrier.inbound.push_back(
      repl::Frame{repl::FrameKind::kHeartbeat, 1, std::vector<std::uint8_t>(2, 0)});
  const std::uint8_t payload[1] = {0x5};
  ASSERT_TRUE(lane0.send(repl::FrameKind::kRedoBatch, 1, payload, 1));

  std::optional<repl::Frame> f = lane0.recv(0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, repl::FrameKind::kRedoBatch);
  EXPECT_EQ(channel.unroutable(), 2u);
}

TEST(ShardMux, StalledLaneInboxIsBoundedAndDropsAreCounted) {
  LoopCarrier carrier;
  net::ShardChannel channel(&carrier);
  repl::ReplicationLink& live = channel.lane(1);
  channel.lane(2);  // opened but never drained: the stalled lane
  channel.set_inbox_capacity(8);
  ASSERT_EQ(channel.inbox_capacity(), 8u);

  // Skewed traffic: a flood for the stalled lane, one frame for the live
  // one behind it. Pumping the live lane's recv must park at most
  // capacity frames for lane 2 and drop (not queue) the rest.
  repl::ReplicationLink& stalled = channel.lane(2);
  const std::uint8_t byte = 0x5;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(stalled.send(repl::FrameKind::kHeartbeat, 1, &byte, 1));
  }
  ASSERT_TRUE(live.send(repl::FrameKind::kRedoBatch, 1, &byte, 1));

  std::optional<repl::Frame> f = live.recv(0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, repl::FrameKind::kRedoBatch);
  EXPECT_EQ(channel.inbox_dropped(), 92u) << "100 parked minus capacity 8";
  EXPECT_EQ(channel.inbox_highwater(), 8u);

  // The stalled lane still drains the frames that fit, then sees the gap
  // as an ordinary empty carrier (its protocol engine resyncs in-band).
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(stalled.recv(0).has_value()) << "parked frame " << i;
  }
  EXPECT_FALSE(stalled.recv(0).has_value());

  // Draining freed space: new traffic parks again instead of dropping.
  ASSERT_TRUE(stalled.send(repl::FrameKind::kHeartbeat, 1, &byte, 1));
  ASSERT_TRUE(live.send(repl::FrameKind::kRedoBatch, 1, &byte, 1));
  ASSERT_TRUE(live.recv(0).has_value());
  EXPECT_TRUE(stalled.recv(0).has_value());
  EXPECT_EQ(channel.inbox_dropped(), 92u) << "no new drops after the drain";
}

// ---- cross-shard conformance vs a fault-free oracle -------------------------

using Cluster = shard::ShardedCluster;

// Independently replay the cluster's history: the same seed drives the same
// plan_txn stream; the cluster's trace supplies only the outcomes (commit /
// chaos-abort) and the home commit sequences for audit-ring placement. Any
// divergence between these images and the cluster's surviving replicas is a
// replication or 2PC bug.
std::vector<std::vector<std::uint8_t>> replay_oracle(const Cluster& cluster,
                                                     std::uint64_t seed,
                                                     double remote_fraction,
                                                     const Cluster::RunResult& run) {
  const unsigned n = cluster.num_shards();
  const wl::DebitCredit& workload = cluster.workload();
  const shard::ShardMap map = shard::ShardMap::uniform(n);
  const shard::Router router(map);
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> dbs(
      n, std::vector<std::uint8_t>(cluster.workload_bytes(), 0));
  auto bump = [](std::vector<std::uint8_t>& db, std::size_t off, std::int32_t amount) {
    std::int32_t balance;
    std::memcpy(&balance, db.data() + off, sizeof balance);
    balance += amount;
    std::memcpy(db.data() + off, &balance, sizeof balance);
  };

  for (const Cluster::TxnOutcome& out : run.trace) {
    const shard::TxnDecision d =
        shard::plan_txn(router, workload, n, rng, remote_fraction);
    EXPECT_EQ(d.cross, out.cross) << "oracle diverged from the cluster's plan stream";
    EXPECT_EQ(d.home, out.home);
    EXPECT_EQ(d.remote, out.remote);
    if (!out.committed) continue;  // chaos-aborted 2PC: no effects anywhere
    auto& home = dbs[d.home];
    bump(dbs[d.cross ? d.remote : d.home], workload.account_offset(d.plan.account),
         d.plan.amount);
    bump(home, workload.teller_offset(d.plan.teller), d.plan.amount);
    bump(home, workload.branch_offset(d.plan.branch), d.plan.amount);
    const wl::DebitCredit::HistoryRecord rec{d.plan.account, d.plan.teller,
                                             d.plan.branch, d.plan.amount};
    // The audit record lands in the slot of the home commit that carried it.
    std::memcpy(home.data() + workload.history_offset(out.home_seq - 1), &rec,
                sizeof rec);
  }
  return dbs;
}

void expect_converged(const Cluster& cluster,
                      const std::vector<std::vector<std::uint8_t>>& oracle) {
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u) << "shard " << s << " still holds in-doubt state";
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
    const std::uint32_t want = Crc32::of(oracle[s].data(), oracle[s].size());
    EXPECT_EQ(cluster.shard_crc(s), want)
        << "shard " << s << " surviving image != fault-free oracle";
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u)
      << "a transaction was resolved both ways";
}

TEST(ShardConformance, MultiSeedCrossShardHistoriesMatchTheOracle) {
  for (const std::uint64_t seed : {1ull, 42ull, 977ull}) {
    shard::ShardedConfig config;
    config.shards = 3;
    config.backups_per_shard = 2;
    Cluster cluster(config);
    const Cluster::RunResult run = cluster.run(seed, 2000, /*remote_fraction=*/0.3);
    EXPECT_EQ(run.committed, 2000u) << "fault-free: every transaction commits";
    EXPECT_GT(run.cross_committed, 300u) << "remote mix never fired (seed " << seed << ")";
    EXPECT_LT(run.cross_committed, 1200u);
    expect_converged(cluster, replay_oracle(cluster, seed, 0.3, run));
  }
}

TEST(ShardConformance, RemoteFractionZeroNeverCrosses) {
  shard::ShardedConfig config;
  config.shards = 4;
  Cluster cluster(config);
  const Cluster::RunResult run = cluster.run(5, 1000, 0.0);
  EXPECT_EQ(run.committed, 1000u);
  EXPECT_EQ(run.cross_committed, 0u);
  expect_converged(cluster, replay_oracle(cluster, 5, 0.0, run));
}

TEST(ShardConformance, EveryTransactionCrossesAtFractionOne) {
  shard::ShardedConfig config;
  config.shards = 3;
  Cluster cluster(config);
  const Cluster::RunResult run = cluster.run(9, 500, 1.0);
  EXPECT_EQ(run.committed, 500u);
  EXPECT_EQ(run.cross_committed, 500u);
  expect_converged(cluster, replay_oracle(cluster, 9, 1.0, run));
}

// ---- chaos: kill one shard's primary mid-load -------------------------------

struct ChaosCase {
  shard::ChaosSchedule::Point point;
  const char* name;
};

class ShardChaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ShardChaos, KillOneShardsPrimaryOthersKeepServing) {
  const ChaosCase& c = GetParam();
  for (const std::uint64_t seed : {3ull, 1234ull}) {
    shard::ShardedConfig config;
    config.shards = 3;
    config.backups_per_shard = 2;  // the promoted shard must stay replicated
    Cluster cluster(config);

    shard::ChaosSchedule chaos;
    chaos.kill_after_txn = 400;
    chaos.point = c.point;
    // 2PC-stage kills target the victim txn's home shard; the between-txns
    // kill takes a fixed shard.
    chaos.target = c.point == shard::ChaosSchedule::Point::kBetweenTxns
                       ? shard::ChaosSchedule::Target::kFixedShard
                       : shard::ChaosSchedule::Target::kHomeShard;
    chaos.shard = 1;

    const double remote_fraction = 0.3;
    const Cluster::RunResult run = cluster.run(seed, 1500, remote_fraction, chaos);
    EXPECT_EQ(run.takeovers, 1u) << c.name;

    // Zero committed-transaction loss: every commit the run reported is in
    // the surviving images (the oracle replays exactly those), and the
    // trace is complete.
    EXPECT_EQ(run.committed + run.chaos_aborted, 1500u) << c.name;
    if (c.point == shard::ChaosSchedule::Point::kAfterPrepare) {
      EXPECT_EQ(run.chaos_aborted, 1u)
          << c.name << ": the in-flight 2PC txn must presume abort";
    } else {
      EXPECT_EQ(run.chaos_aborted, 0u) << c.name;
    }
    expect_converged(cluster, replay_oracle(cluster, seed, remote_fraction, run));

    // The cluster never stopped: transactions kept committing after the kill.
    std::uint64_t post_kill_commits = 0;
    for (std::size_t i = chaos.kill_after_txn; i < run.trace.size(); ++i) {
      if (run.trace[i].committed) post_kill_commits += 1;
    }
    EXPECT_GT(post_kill_commits, 500u)
        << c.name << ": the cluster stalled after the kill";

    // The takeover fenced exactly one shard: its epoch moved, the others'
    // did not (initial epoch = 1 + backups adopted at construction).
    const std::uint64_t base_epoch = 1 + config.backups_per_shard;
    unsigned bumped = 0;
    for (unsigned s = 0; s < cluster.num_shards(); ++s) {
      if (cluster.shard_epoch(s) > base_epoch) {
        bumped += 1;
      } else {
        EXPECT_EQ(cluster.shard_epoch(s), base_epoch);
      }
      EXPECT_EQ(cluster.backup_count(s),
                cluster.shard_epoch(s) > base_epoch ? config.backups_per_shard - 1
                                                    : config.backups_per_shard);
    }
    EXPECT_EQ(bumped, 1u) << c.name << ": a takeover on one shard fenced another";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, ShardChaos,
    ::testing::Values(
        ChaosCase{shard::ChaosSchedule::Point::kBetweenTxns, "between-txns"},
        ChaosCase{shard::ChaosSchedule::Point::kAfterPrepare, "after-prepare"},
        ChaosCase{shard::ChaosSchedule::Point::kAfterHomeCommit, "after-home-commit"}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      std::string n = info.param.name;
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(ShardChaos, KillingTheRemoteAfterHomeCommitStillCommits) {
  // The remote's primary dies after the decision became durable: the
  // transaction IS committed, and the remote's promoted backup must resolve
  // its buffered prepare as commit from the home shard's decision record.
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 2;
  Cluster cluster(config);
  shard::ChaosSchedule chaos;
  chaos.kill_after_txn = 100;
  chaos.point = shard::ChaosSchedule::Point::kAfterHomeCommit;
  chaos.target = shard::ChaosSchedule::Target::kRemoteShard;
  const Cluster::RunResult run = cluster.run(21, 800, 0.4, chaos);
  EXPECT_EQ(run.takeovers, 1u);
  EXPECT_EQ(run.chaos_aborted, 0u);
  EXPECT_EQ(run.committed, 800u) << "an after-commit kill must lose nothing";
  // The takeover resolved the in-doubt txn as COMMIT.
  bool found_commit_resolution = false;
  for (const auto& [xid, committed] : cluster.resolutions()) {
    if (committed) found_commit_resolution = true;
  }
  EXPECT_TRUE(found_commit_resolution);
  expect_converged(cluster, replay_oracle(cluster, 21, 0.4, run));
}

// ---- concurrency hammer (TSan subject) --------------------------------------

TEST(ShardHammer, ConcurrentCrossShardCommitsStayConsistent) {
  shard::ShardedConfig config;
  config.shards = 4;
  config.backups_per_shard = 1;
  Cluster cluster(config);
  const shard::Router router(cluster.map());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 400;
  // Plans are drawn up front (the Rng is not shared); execution interleaves.
  std::vector<std::vector<shard::TxnDecision>> plans(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(0x5eed + t);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      plans[t].push_back(shard::plan_txn(router, cluster.workload(),
                                         cluster.num_shards(), rng, 0.4));
    }
  }
  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const shard::TxnDecision& d : plans[t]) {
        if (cluster.execute(d)) committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(committed.load(), static_cast<std::uint64_t>(kThreads * kTxnsPerThread));
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u);
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
}

}  // namespace
}  // namespace vrep
