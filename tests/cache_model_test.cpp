// Cache hierarchy model.
#include <gtest/gtest.h>

#include "sim/cache_model.hpp"

namespace vrep::sim {
namespace {

CacheConfig tiny_config() {
  CacheConfig config;
  config.levels = {
      {1024, 1, 2},      // L1: 16 lines direct-mapped
      {4096, 2, 10},     // L2: 64 lines, 2-way
  };
  config.memory_ns = 100;
  return config;
}

TEST(CacheModel, ColdMissThenHit) {
  CacheModel cache(tiny_config());
  EXPECT_EQ(cache.access(0, 4), 100);  // cold: memory
  EXPECT_EQ(cache.access(0, 4), 2);    // L1 hit
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits[0], 1u);
}

TEST(CacheModel, DirectMappedConflictEvicts) {
  CacheModel cache(tiny_config());
  cache.access(0, 4);
  cache.access(1024, 4);  // same L1 set (16 lines * 64B = 1024B wrap)
  // line 0 evicted from L1 but still in L2 (2-way, different... same set but
  // two ways hold both).
  EXPECT_EQ(cache.access(0, 4), 10) << "should hit L2 after L1 conflict";
}

TEST(CacheModel, LruKeepsMostRecentlyUsed) {
  CacheConfig config;
  config.levels = {{128, 2, 3}};  // one set, 2 ways
  config.memory_ns = 50;
  CacheModel cache(config);
  cache.access(0, 1);      // A: miss
  cache.access(64, 1);     // B: miss
  cache.access(0, 1);      // A: hit (A is MRU now)
  cache.access(128, 1);    // C: miss, evicts B (LRU)
  EXPECT_EQ(cache.access(0, 1), 3) << "A must survive";
  EXPECT_EQ(cache.access(64, 1), 50) << "B was evicted";
}

TEST(CacheModel, MultiLineAccessChargesPerLine) {
  CacheModel cache(tiny_config());
  const SimTime cost = cache.access(0, 256);  // 4 lines, all cold
  EXPECT_EQ(cost, 4 * 100);
  EXPECT_EQ(cache.access(0, 256), 4 * 2);  // all hot in L1
}

TEST(CacheModel, UnalignedAccessTouchesBothLines) {
  CacheModel cache(tiny_config());
  EXPECT_EQ(cache.access(60, 8), 2 * 100);  // straddles lines 0 and 1
}

TEST(CacheModel, InvalidateAllForcesMisses) {
  CacheModel cache(tiny_config());
  cache.access(0, 4);
  cache.invalidate_all();
  EXPECT_EQ(cache.access(0, 4), 100);
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(tiny_config());  // 4KB L2
  // Stream 64KB twice: second pass must still miss everywhere.
  for (int pass = 0; pass < 2; ++pass) {
    cache.reset_stats();
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) cache.access(addr, 4);
    EXPECT_EQ(cache.stats().misses, 1024u) << "pass " << pass;
  }
}

TEST(CacheModel, SmallWorkingSetStaysResident) {
  CacheModel cache(tiny_config());
  for (std::uint64_t addr = 0; addr < 1024; addr += 64) cache.access(addr, 4);
  cache.reset_stats();
  for (std::uint64_t addr = 0; addr < 1024; addr += 64) cache.access(addr, 4);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheModel, DefaultGeometryMatchesAlpha) {
  // 8KB L1 + 96KB L2 + 8MB board cache: a 6MB working set fits L3 but not
  // L2; a 16MB set fits nothing.
  CacheModel cache{CacheConfig{}};
  auto stream = [&cache](std::uint64_t bytes) {
    for (std::uint64_t a = 0; a < bytes; a += 64) cache.access(a, 4);
  };
  stream(6ull << 20);  // warm
  cache.reset_stats();
  stream(6ull << 20);
  EXPECT_EQ(cache.stats().misses, 0u) << "6MB fits the 8MB board cache";
  stream(16ull << 20);  // blow it out
  cache.reset_stats();
  stream(16ull << 20);
  EXPECT_GT(cache.stats().misses, (16ull << 20) / 64 / 2) << "16MB thrashes";
}

}  // namespace
}  // namespace vrep::sim
