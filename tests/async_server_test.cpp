// The epoll front end: real TCP clients multiplexed onto commit_async
// tickets (writes) and backup watermark reads (reads). Covers the
// read-your-writes contract end to end — a client that commits ticket S and
// immediately reads with min_seq = S must observe its own write — plus the
// laggard bounce, stale-replica skipping, shard routing, and a
// many-connection sweep through one server.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/async_server.hpp"
#include "net/frame.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "rio/arena.hpp"
#include "sim/traffic.hpp"
#include "util/crc32.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using ReadStatus = repl::RedoApplier::ReadStatus;
using TicketState = repl::RedoPipeline::TicketState;

constexpr std::size_t kDbSize = 64 * 1024;

StoreConfig small_config() {
  StoreConfig config;
  config.db_size = kDbSize;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

// One replicated shard: a WirePrimary commit path over an in-process
// transport to a WireBackup serving on its own thread — the replication
// plumbing the AsyncServer front end composes over.
struct Shard {
  Shard()
      : arena(rio::Arena::create(
            core::required_arena_size(core::VersionKind::kV3InlineLog, small_config()))),
        replica(rio::Arena::create(kDbSize)) {
    net::InprocTransport::pair(primary_end, backup_end);
    primary = std::make_unique<net::WirePrimary>(arena, small_config(), &primary_end,
                                                 /*format=*/true);
    // 2-safe with an open window: commit_async returns a PENDING ticket the
    // server must resolve via poll_acks — the asynchronous path under test.
    primary->set_two_safe(true);
    primary->set_commit_window(8);
    backup = std::make_unique<net::WireBackup>(replica);
    backup_thread = std::thread([this] { backup->serve(backup_end, 4000); });
    EXPECT_TRUE(primary->sync_backup());
  }

  ~Shard() {
    primary_end.close_peer();
    backup_end.close_peer();
    if (backup_thread.joinable()) backup_thread.join();
  }

  // Client op payload: [u64 off | u64 value] — write an 8-byte value.
  std::uint64_t submit(const std::uint8_t* op, std::size_t len) {
    if (len < 16) return 0;
    std::uint64_t off, value;
    std::memcpy(&off, op, 8);
    std::memcpy(&value, op + 8, 8);
    if (off + 8 > kDbSize) return 0;
    std::uint8_t* db = primary->db();
    primary->begin_transaction();
    primary->set_range(db + off, 8);
    primary->bus().write(db + off, &value, 8, sim::TrafficClass::kModified);
    primary->commit_transaction();
    return primary->committed_seq();
  }

  net::AsyncServer::ShardEndpoint endpoint() {
    net::AsyncServer::ShardEndpoint ep;
    ep.submit = [this](std::uint64_t, const std::uint8_t* op, std::size_t len) {
      return submit(op, len);
    };
    ep.ticket_state = [this](std::uint64_t seq) {
      return primary->pipeline().ticket_state(repl::RedoPipeline::CommitTicket{seq});
    };
    ep.poll = [this] { primary->pipeline().poll_acks(); };
    ep.replicas.push_back(net::AsyncServer::Replica{
        [this](std::uint64_t off, std::uint32_t len, std::uint64_t min_seq,
               std::uint8_t* out) { return backup->read(off, len, min_seq, out); },
        // Advertised watermark: what the primary knows the backup acked —
        // skippable-staleness without touching the backup.
        [this] { return primary->peer_acked_seq(0); }});
    return ep;
  }

  rio::Arena arena;
  rio::Arena replica;
  net::InprocTransport primary_end, backup_end;
  std::unique_ptr<net::WirePrimary> primary;
  std::unique_ptr<net::WireBackup> backup;
  std::thread backup_thread;
};

// ---- client-side helpers ----------------------------------------------------

bool send_commit(net::TcpTransport& client, std::uint64_t op_id, std::uint64_t key,
                 std::uint64_t off, std::uint64_t value) {
  std::uint8_t payload[32];
  std::memcpy(payload, &op_id, 8);
  std::memcpy(payload + 8, &key, 8);
  std::memcpy(payload + 16, &off, 8);
  std::memcpy(payload + 24, &value, 8);
  return client.send(net::MsgType::kClientCommit, 1, payload, sizeof payload);
}

bool send_read(net::TcpTransport& client, std::uint64_t op_id, std::uint64_t key,
               std::uint64_t off, std::uint32_t len, std::uint64_t min_seq) {
  std::uint8_t payload[36];
  std::memcpy(payload, &op_id, 8);
  std::memcpy(payload + 8, &key, 8);
  std::memcpy(payload + 16, &off, 8);
  std::memcpy(payload + 24, &len, 4);
  std::memcpy(payload + 28, &min_seq, 8);
  return client.send(net::MsgType::kReadRequest, 1, payload, sizeof payload);
}

struct CommitReply {
  std::uint64_t op_id;
  std::uint64_t seq;
  std::uint8_t outcome;
};

std::optional<CommitReply> recv_commit_reply(net::TcpTransport& client,
                                             int timeout_ms = 5000) {
  std::optional<net::Message> msg = client.recv(timeout_ms);
  if (!msg.has_value() || msg->type != net::MsgType::kCommitReply ||
      msg->payload.size() != 17) {
    return std::nullopt;
  }
  CommitReply reply;
  std::memcpy(&reply.op_id, msg->payload.data(), 8);
  std::memcpy(&reply.seq, msg->payload.data() + 8, 8);
  reply.outcome = msg->payload[16];
  return reply;
}

struct ReadReply {
  std::uint64_t op_id;
  std::uint64_t at_seq;
  std::uint8_t status;
  std::vector<std::uint8_t> data;
};

std::optional<ReadReply> recv_read_reply(net::TcpTransport& client, int timeout_ms = 5000) {
  std::optional<net::Message> msg = client.recv(timeout_ms);
  if (!msg.has_value() || msg->type != net::MsgType::kReadReply ||
      msg->payload.size() < 17) {
    return std::nullopt;
  }
  ReadReply reply;
  std::memcpy(&reply.op_id, msg->payload.data(), 8);
  std::memcpy(&reply.at_seq, msg->payload.data() + 8, 8);
  reply.status = msg->payload[16];
  reply.data.assign(msg->payload.begin() + 17, msg->payload.end());
  return reply;
}

void connect_client(net::TcpTransport& client, std::uint16_t port) {
  ASSERT_TRUE(client.connect_to("127.0.0.1", port, 5000));
}

// ---- tests ------------------------------------------------------------------

TEST(AsyncServer, CommitTicketThenReadYourWriteFromTheBackup) {
  Shard shard;
  net::AsyncServer server;
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  const std::uint64_t off = 4096, value = 0xfeedfacecafe0001ull;
  ASSERT_TRUE(send_commit(client, /*op_id=*/7, /*key=*/1, off, value));
  std::optional<CommitReply> commit = recv_commit_reply(client);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->op_id, 7u);
  EXPECT_EQ(commit->outcome, static_cast<std::uint8_t>(TicketState::kDurable))
      << "2-safe ticket must resolve durable once the backup acks";
  ASSERT_GT(commit->seq, 0u);

  // Read-your-writes: min_seq = the commit's own sequence. The server may
  // park the read until the backup's watermark covers it, but the reply
  // must carry the committed bytes at a watermark >= S.
  ASSERT_TRUE(send_read(client, /*op_id=*/8, /*key=*/1, off, 8, commit->seq));
  std::optional<ReadReply> read = recv_read_reply(client);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->op_id, 8u);
  EXPECT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kOk));
  EXPECT_GE(read->at_seq, commit->seq);
  ASSERT_EQ(read->data.size(), 8u);
  std::uint64_t got;
  std::memcpy(&got, read->data.data(), 8);
  EXPECT_EQ(got, value);

  server.stop();
  EXPECT_GE(server.stats().reads_served.load(), 1u);
}

TEST(AsyncServer, LaggardReplicaBouncesAfterThePatienceWindow) {
  // A shard whose only replica never catches up: the read parks for
  // read_park_ms, then bounces with kLagging and the replica's watermark.
  net::AsyncServer::Options options;
  options.read_park_ms = 50;
  net::AsyncServer server(options);
  net::AsyncServer::ShardEndpoint ep;
  ep.submit = [](std::uint64_t, const std::uint8_t*, std::size_t) { return std::uint64_t{0}; };
  ep.ticket_state = [](std::uint64_t) { return TicketState::kDurable; };
  ep.poll = [] {};
  ep.replicas.push_back(net::AsyncServer::Replica{
      [](std::uint64_t, std::uint32_t, std::uint64_t, std::uint8_t*) {
        return repl::RedoApplier::ReadResult{ReadStatus::kLagging, 3};
      },
      [] { return std::uint64_t{3}; }});
  server.add_shard(std::move(ep));
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  const auto started = std::chrono::steady_clock::now();
  ASSERT_TRUE(send_read(client, 1, 1, 0, 8, /*min_seq=*/100));
  std::optional<ReadReply> read = recv_read_reply(client);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kLagging));
  EXPECT_EQ(read->at_seq, 3u) << "bounce must report how far the replica got";
  EXPECT_TRUE(read->data.empty());
  EXPECT_GE(elapsed, 45) << "bounced before the patience window";
  server.stop();
  EXPECT_EQ(server.stats().reads_bounced.load(), 1u);
  EXPECT_EQ(server.stats().reads_parked.load(), 1u);
}

TEST(AsyncServer, StaleReplicaIsSkippedByItsAdvertisedWatermark) {
  Shard shard;
  net::AsyncServer::ShardEndpoint ep = shard.endpoint();
  // Prepend a "stale backup": its advertised watermark is permanently 0, so
  // the server must route the read past it WITHOUT touching it.
  auto touched = std::make_shared<bool>(false);
  ep.replicas.insert(ep.replicas.begin(),
                     net::AsyncServer::Replica{
                         [touched](std::uint64_t, std::uint32_t, std::uint64_t,
                                   std::uint8_t*) {
                           *touched = true;
                           return repl::RedoApplier::ReadResult{ReadStatus::kLagging, 0};
                         },
                         [] { return std::uint64_t{0}; }});
  net::AsyncServer server;
  server.add_shard(std::move(ep));
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  ASSERT_TRUE(send_commit(client, 1, 1, 128, 0xabcdull));
  std::optional<CommitReply> commit = recv_commit_reply(client);
  ASSERT_TRUE(commit.has_value());
  ASSERT_GT(commit->seq, 0u);
  ASSERT_TRUE(send_read(client, 2, 1, 128, 8, commit->seq));
  std::optional<ReadReply> read = recv_read_reply(client);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kOk));
  server.stop();
  EXPECT_FALSE(*touched) << "a replica advertising watermark < min_seq must be skipped";
}

TEST(AsyncServer, RoutesCommitsAndReadsAcrossTwoShards) {
  Shard shard0, shard1;
  net::AsyncServer server;
  server.add_shard(shard0.endpoint());
  server.add_shard(shard1.endpoint());
  server.set_router([](std::uint64_t key) { return static_cast<std::uint32_t>(key % 2); });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  // Interleaved commits to both shards on one connection, distinct offsets.
  struct Op {
    std::uint64_t key, off, value, seq = 0;
  };
  std::vector<Op> ops = {{0, 1024, 0x11}, {1, 2048, 0x22}, {2, 3072, 0x33}, {3, 4096, 0x44}};
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(send_commit(client, i, ops[i].key, ops[i].off, ops[i].value));
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    std::optional<CommitReply> reply = recv_commit_reply(client);
    ASSERT_TRUE(reply.has_value());
    ASSERT_LT(reply->op_id, ops.size());
    EXPECT_NE(reply->outcome, net::AsyncServer::kRejectedOutcome);
    ops[reply->op_id].seq = reply->seq;
  }
  // Each value must be readable from its OWN shard's backup at its seq.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(send_read(client, 100 + i, ops[i].key, ops[i].off, 8, ops[i].seq));
    std::optional<ReadReply> read = recv_read_reply(client);
    ASSERT_TRUE(read.has_value());
    ASSERT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kOk)) << "op " << i;
    std::uint64_t got;
    std::memcpy(&got, read->data.data(), 8);
    const std::size_t idx = read->op_id - 100;
    EXPECT_EQ(got, ops[idx].value) << "shard routing misdelivered op " << idx;
  }
  server.stop();
}

TEST(AsyncServer, ManyConnectionsMultiplexOntoOneShard) {
  Shard shard;
  net::AsyncServer server;
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  constexpr int kClients = 64;
  std::vector<std::unique_ptr<net::TcpTransport>> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto client = std::make_unique<net::TcpTransport>();
    ASSERT_TRUE(client->connect_to("127.0.0.1", server.bound_port(), 5000)) << "client " << i;
    clients.push_back(std::move(client));
  }
  // All commits in flight before any reply is drained: the epoll loop must
  // interleave them all.
  for (int i = 0; i < kClients; ++i) {
    const std::uint64_t off = 64 + static_cast<std::uint64_t>(i) * 8;
    ASSERT_TRUE(send_commit(*clients[i], static_cast<std::uint64_t>(i), 1, off,
                            0x1000u + static_cast<std::uint64_t>(i)));
  }
  std::uint64_t max_seq = 0;
  for (int i = 0; i < kClients; ++i) {
    std::optional<CommitReply> reply = recv_commit_reply(*clients[i]);
    ASSERT_TRUE(reply.has_value()) << "client " << i;
    EXPECT_EQ(reply->op_id, static_cast<std::uint64_t>(i));
    EXPECT_NE(reply->outcome, net::AsyncServer::kRejectedOutcome);
    max_seq = std::max(max_seq, reply->seq);
  }
  // Every client reads its own write back (read-your-writes per client).
  for (int i = 0; i < kClients; ++i) {
    const std::uint64_t off = 64 + static_cast<std::uint64_t>(i) * 8;
    ASSERT_TRUE(send_read(*clients[i], static_cast<std::uint64_t>(i), 1, off, 8, max_seq));
  }
  for (int i = 0; i < kClients; ++i) {
    std::optional<ReadReply> read = recv_read_reply(*clients[i]);
    ASSERT_TRUE(read.has_value()) << "client " << i;
    ASSERT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kOk));
    std::uint64_t got;
    std::memcpy(&got, read->data.data(), 8);
    EXPECT_EQ(got, 0x1000u + static_cast<std::uint64_t>(i));
  }
  server.stop();
  EXPECT_EQ(server.stats().accepted.load(), static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server.stats().reads_served.load(), static_cast<std::uint64_t>(kClients));
}

TEST(AsyncServer, MidBatchProtocolViolationClosesTheConnNotTheServer) {
  // Regression (heap use-after-free): close_conn used to conns_.erase the
  // Conn while parse_frames still held the reference, so any mid-dispatch
  // close — protocol violation, bad shard route — read a destroyed object
  // on the next loop iteration (ASan tripped). The close is now deferred to
  // a dead-list reaped after the event-loop iteration unwinds.
  Shard shard;
  net::AsyncServer server;
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  // Three frames in ONE send so they land in the same parse batch: a valid
  // commit, a protocol violation (unknown frame type closes the connection
  // mid-parse), and a trailing commit that must never be processed.
  auto commit_payload = [](std::uint64_t op_id, std::uint64_t off, std::uint64_t value) {
    std::vector<std::uint8_t> p(32);
    std::memcpy(p.data(), &op_id, 8);
    const std::uint64_t key = 1;
    std::memcpy(p.data() + 8, &key, 8);
    std::memcpy(p.data() + 16, &off, 8);
    std::memcpy(p.data() + 24, &value, 8);
    return p;
  };
  std::vector<std::uint8_t> wire;
  auto append = [&wire](const std::vector<std::uint8_t>& frame) {
    wire.insert(wire.end(), frame.begin(), frame.end());
  };
  const std::vector<std::uint8_t> first = commit_payload(1, 512, 0x1111);
  const std::vector<std::uint8_t> trailing = commit_payload(2, 520, 0x2222);
  append(net::encode_frame(net::MsgType::kClientCommit, 1, first.data(), first.size()));
  append(net::encode_frame(static_cast<net::MsgType>(0x6e), 1, nullptr, 0));
  append(net::encode_frame(net::MsgType::kClientCommit, 1, trailing.data(), trailing.size()));
  ASSERT_TRUE(client.send_bytes(wire.data(), wire.size()));

  // The violation closes the connection before the first (2-safe, pending)
  // ticket can resolve, so no reply ever arrives — only the close. The
  // ticket still resolves inside the server and is dropped on the floor
  // (reply-to-a-dead-conn path).
  EXPECT_FALSE(recv_commit_reply(client, 2000).has_value());
  EXPECT_EQ(client.last_error(), net::TcpTransport::Error::kClosed);
  EXPECT_EQ(server.stats().commits_submitted.load(), 1u)
      << "the frame behind the violation must never dispatch";

  // The server itself shrugs it off: a fresh client round-trips.
  net::TcpTransport client2;
  connect_client(client2, server.bound_port());
  ASSERT_TRUE(send_commit(client2, 9, 1, 256, 0xbeef));
  std::optional<CommitReply> reply = recv_commit_reply(client2);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->outcome, net::AsyncServer::kRejectedOutcome);
  server.stop();
  EXPECT_EQ(server.stats().conns_open.load(), 0u);
}

TEST(AsyncServer, StopAccountsForConnectionsItCloses) {
  // Regression: stop() closed still-open connections without decrementing
  // conns_open, leaving the gauge permanently inflated across a restart.
  Shard shard;
  net::AsyncServer server;
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport a, b;
  connect_client(a, server.bound_port());
  connect_client(b, server.bound_port());
  // Round-trip on both so each accept has definitely been registered.
  ASSERT_TRUE(send_commit(a, 1, 1, 64, 0x0a));
  ASSERT_TRUE(send_commit(b, 2, 1, 72, 0x0b));
  ASSERT_TRUE(recv_commit_reply(a).has_value());
  ASSERT_TRUE(recv_commit_reply(b).has_value());
  EXPECT_EQ(server.stats().conns_open.load(), 2u);
  server.stop();
  EXPECT_EQ(server.stats().conns_open.load(), 0u);
}

TEST(AsyncServer, FdExhaustionBacksOffAndRecovers) {
  // EMFILE on accept4 with a level-triggered listen socket used to make
  // epoll_wait re-fire immediately forever (100% CPU busy-spin). The server
  // now disarms accept interest and re-arms after accept_backoff_ms; a
  // connection pending through the exhaustion window is accepted once fds
  // free up.
  net::AsyncServer::Options options;
  options.accept_backoff_ms = 50;
  Shard shard;
  net::AsyncServer server(options);
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  // Cap the fd table just above what is currently in use (the next free fd
  // number plus headroom), then hoard the headroom so accept4 has nothing
  // left. Probing keeps the hoard small on boxes with huge default limits.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  const int probe = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(probe, 0);
  ::close(probe);
  rlimit capped = saved;
  capped.rlim_cur = std::min<rlim_t>(static_cast<rlim_t>(probe) + 32, saved.rlim_max);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &capped), 0);
  std::vector<int> hoard;
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    hoard.push_back(fd);
  }
  ASSERT_FALSE(hoard.empty());
  // Free exactly one fd for the client's socket: the TCP handshake
  // completes via the listen backlog, but the server's accept4 hits EMFILE.
  ::close(hoard.back());
  hoard.pop_back();
  net::TcpTransport client;
  ASSERT_TRUE(client.connect_to("127.0.0.1", server.bound_port(), 5000));
  const auto overload_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().accept_overloads.load() == 0 &&
         std::chrono::steady_clock::now() < overload_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().accept_overloads.load(), 1u);

  // Relieve the pressure; after the backoff the listener re-arms and the
  // parked connection is finally accepted and served.
  for (const int fd : hoard) ::close(fd);
  hoard.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  ASSERT_TRUE(send_commit(client, 1, 1, 96, 0x77));
  std::optional<CommitReply> reply = recv_commit_reply(client, 10'000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->outcome, net::AsyncServer::kRejectedOutcome);
  server.stop();
}

TEST(AsyncServer, OutOfBoundsReadAnswersInsteadOfParking) {
  Shard shard;
  net::AsyncServer server;
  server.add_shard(shard.endpoint());
  server.set_router([](std::uint64_t) { return 0u; });
  ASSERT_TRUE(server.listen(0));
  ASSERT_TRUE(server.start());

  net::TcpTransport client;
  connect_client(client, server.bound_port());
  // Commit once so the backup has a complete image and a nonzero watermark.
  ASSERT_TRUE(send_commit(client, 1, 1, 0, 0x77));
  ASSERT_TRUE(recv_commit_reply(client).has_value());
  // A range past the image can never be served; the reply must be an
  // immediate kOutOfBounds, not a park-then-bounce.
  ASSERT_TRUE(send_read(client, 2, 1, kDbSize - 4, 8, 0));
  std::optional<ReadReply> read = recv_read_reply(client);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, static_cast<std::uint8_t>(ReadStatus::kOutOfBounds));
  EXPECT_TRUE(read->data.empty());
  server.stop();
}

}  // namespace
}  // namespace vrep
