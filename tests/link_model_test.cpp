// Link cost model: the Figure 1 fit and the shared-occupancy arithmetic.
#include <gtest/gtest.h>

#include "sim/link_model.hpp"

namespace vrep::sim {
namespace {

TEST(LinkModel, Figure1Endpoints) {
  const LinkModel m;
  // Paper: 32-byte packets sustain ~80 MB/s, 4-byte packets ~14 MB/s.
  EXPECT_NEAR(m.effective_bandwidth_mbs(32), 80.0, 2.0);
  EXPECT_NEAR(m.effective_bandwidth_mbs(4), 14.0, 1.0);
}

TEST(LinkModel, Figure1IntermediatePointsRoughlyDouble) {
  const LinkModel m;
  const double bw8 = m.effective_bandwidth_mbs(8);
  const double bw16 = m.effective_bandwidth_mbs(16);
  EXPECT_GT(bw8, 20.0);
  EXPECT_LT(bw8, 35.0);
  EXPECT_GT(bw16, 40.0);
  EXPECT_LT(bw16, 60.0);
}

TEST(LinkModel, BandwidthMonotoneInPacketSize) {
  const LinkModel m;
  double prev = 0;
  for (std::size_t s = 1; s <= 32; ++s) {
    const double bw = m.effective_bandwidth_mbs(s);
    EXPECT_GT(bw, prev) << "packet size " << s;
    prev = bw;
  }
}

TEST(LinkModel, PacketTimePositiveAndAffine) {
  const LinkModel m;
  const SimTime t4 = m.packet_time(4);
  const SimTime t8 = m.packet_time(8);
  const SimTime t32 = m.packet_time(32);
  EXPECT_GT(t4, 0);
  EXPECT_EQ(t8 - t4, (t32 - t4) / 7);  // affine in size
}

TEST(LinkState, ServeSerializesBackToBackPackets) {
  const LinkModel m;
  LinkState link;
  const SimTime t1 = link.serve(0, m.packet_time(32));
  const SimTime t2 = link.serve(0, m.packet_time(32));
  EXPECT_EQ(t1, m.packet_time(32));
  EXPECT_EQ(t2, 2 * m.packet_time(32));
  EXPECT_EQ(link.packets, 2u);
}

TEST(LinkState, IdleLinkStartsImmediately) {
  const LinkModel m;
  LinkState link;
  link.serve(0, m.packet_time(4));
  const SimTime later = 1'000'000;
  const SimTime done = link.serve(later, m.packet_time(4));
  EXPECT_EQ(done, later + m.packet_time(4));
}

TEST(LinkState, BusyTimeAccumulates) {
  const LinkModel m;
  LinkState link;
  for (int i = 0; i < 10; ++i) link.serve(0, m.packet_time(16));
  EXPECT_EQ(link.busy_ns, 10 * m.packet_time(16));
}

}  // namespace
}  // namespace vrep::sim
