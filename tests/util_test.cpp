// Utility layer: RNG, CRC, histogram, table/chart rendering, CLI parsing.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/ascii_chart.hpp"
#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace vrep {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Crc32, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (Castagnoli reference value).
  EXPECT_EQ(Crc32::of("123456789", 9), 0xE3069283u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  Crc32 inc;
  inc.update("hello ", 6);
  inc.update("world", 5);
  EXPECT_EQ(inc.value(), Crc32::of("hello world", 11));
}

TEST(Crc32, SensitiveToEveryByte) {
  std::string s(64, 'x');
  const std::uint32_t base = Crc32::of(s.data(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::string t = s;
    t[i] = 'y';
    ASSERT_NE(Crc32::of(t.data(), t.size()), base) << i;
  }
}

TEST(Histogram, MeanAndCount) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.max_seen(), 30u);
}

TEST(Histogram, PercentileBounds) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.add(8);
  h.add(1024);
  EXPECT_LE(h.percentile(0.5), 16u);
  EXPECT_GE(h.percentile(0.999), 1024u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(4, 10);
  b.add(4, 5);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 15u);
}

TEST(Histogram, PercentileOfUniformValueIsExact) {
  // All samples equal: every percentile must clamp to max_seen, never a
  // power-of-two bucket bound (the old exclusive-bound code returned 16).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(8);
  for (const double f : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(f), 8u) << "fraction " << f;
  }
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  // 50x100 (bucket [64,127]) + 50x1000 (bucket [512,1023], hi clamped to
  // 1000). Pinned values from the interpolation formula
  //   lo + (hi - lo) * rank_in_bucket / bucket_count.
  Histogram h;
  h.add(100, 50);
  h.add(1000, 50);
  EXPECT_EQ(h.percentile(0.25), 95u);   // 64 + 63 * 25/50
  EXPECT_EQ(h.percentile(0.75), 756u);  // 512 + 488 * 25/50
  EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(Histogram, TopBucketHasNoUndefinedShift) {
  // UINT64_MAX lands in bucket 63; the old code computed 1ull << 64 (UB)
  // for its upper bound. Runs under the UBSan preset.
  Histogram h;
  h.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.percentile(0.5), 1ull << 63);  // lo of bucket 63, rank 0
  EXPECT_EQ(h.percentile(1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max_seen(), std::numeric_limits<std::uint64_t>::max());
  // to_string used to print the same shifted bound; bounds are inclusive and
  // clamped to max_seen now.
  const std::string s = h.to_string();
  EXPECT_NE(s.find("18446744073709551615]"), std::string::npos) << s;
}

TEST(Histogram, ZeroAndOneShareBucketZeroRange) {
  // bucket_of sends 0 and 1 both to bucket 0; the printed range must agree
  // (the old code printed "[0, 2)" while only values <= 1 landed there).
  Histogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.percentile(1.0), 1u);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[0, 1]: 2"), std::string::npos) << s;
}

TEST(Histogram, SumSaturatesInsteadOfWrapping) {
  Histogram h;
  h.add(std::numeric_limits<std::uint64_t>::max(), 2);  // product overflows u64
  EXPECT_EQ(h.total_sum(), std::numeric_limits<std::uint64_t>::max());
  h.add(1);  // further adds keep it pinned, no wrap to small values
  EXPECT_EQ(h.total_sum(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.total_count(), 3u);

  Histogram a, b;
  a.add(std::numeric_limits<std::uint64_t>::max());
  b.add(std::numeric_limits<std::uint64_t>::max());
  a.merge(b);
  EXPECT_EQ(a.total_sum(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, ExistingBoundsStillHold) {
  // The original coarse-bound expectations, kept as a shape check on the
  // interpolated values: p50 of 99x8 + 1x1024 is 11, p999 is exactly 1024.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.add(8);
  h.add(1024);
  EXPECT_EQ(h.percentile(0.5), 11u);    // 8 + 7 * 50/99
  EXPECT_EQ(h.percentile(0.999), 1024u);
}

TEST(Table, RendersAlignedColumns) {
  Table t("Title");
  t.set_header({"name", "tps"});
  t.add_row({"V3", "372692"});
  t.add_row({"V0 (long name)", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| V3 "), std::string::npos);
  EXPECT_NE(out.find("372692"), std::string::npos);
  // Every rendered body line has the same width.
  std::size_t width = 0;
  std::size_t pos = out.find('+');
  const std::size_t line_end = out.find('\n', pos);
  width = line_end - pos;
  for (std::size_t p = pos; p < out.size();) {
    const std::size_t e = out.find('\n', p);
    if (e == std::string::npos) break;
    ASSERT_EQ(e - p, width);
    p = e + 1;
  }
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart chart("Throughput", "cpus", "tps");
  chart.set_x({1, 2, 3, 4});
  chart.add_series("Active", {100, 200, 300, 400});
  chart.add_series("Passive", {100, 120, 120, 120});
  const std::string out = chart.render(40, 10);
  EXPECT_NE(out.find("Throughput"), std::string::npos);
  EXPECT_NE(out.find("*=Active"), std::string::npos);
  EXPECT_NE(out.find("o=Passive"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositional) {
  // Positionals go before flags: a bare --flag followed by a word is read
  // as --flag=word (the --role primary form), which is the documented
  // ambiguity of this minimal parser.
  const char* argv[] = {"prog", "input.db", "--txns=5000", "--role", "primary", "--verbose"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("txns", 0), 5000);
  EXPECT_EQ(args.get_string("role", ""), "primary");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get_int("missing", 42), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.db");
}

TEST(Cli, DoubleValues) {
  const char* argv[] = {"prog", "--scale=2.5"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0), 2.5);
}

TEST(Backoff, DelaysGrowGeometricallyUpToTheCap) {
  // jitter=0 makes the schedule exact: base * multiplier^k, clamped at max.
  Backoff b({/*base_ms=*/10, /*max_ms=*/100, /*multiplier=*/2.0, /*jitter=*/0.0});
  EXPECT_EQ(b.next_delay_ms(), 10);
  EXPECT_EQ(b.next_delay_ms(), 20);
  EXPECT_EQ(b.next_delay_ms(), 40);
  EXPECT_EQ(b.next_delay_ms(), 80);
  EXPECT_EQ(b.next_delay_ms(), 100);  // capped
  EXPECT_EQ(b.next_delay_ms(), 100);  // stays capped
}

TEST(Backoff, JitterShavesAtMostTheConfiguredFraction) {
  Backoff b({/*base_ms=*/100, /*max_ms=*/10'000, /*multiplier=*/2.0, /*jitter=*/0.5}, 99);
  std::int64_t expected = 100;
  for (int k = 0; k < 7; ++k) {
    const auto d = b.next_delay_ms();
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, expected / 2);  // never below d_k * (1 - jitter)
    EXPECT_LE(*d, expected);      // never above the undithered delay
    expected = std::min<std::int64_t>(expected * 2, 10'000);
  }
}

TEST(Backoff, ResetRestartsTheScheduleCheap) {
  Backoff b({/*base_ms=*/10, /*max_ms=*/1'000, /*multiplier=*/2.0, /*jitter=*/0.0});
  b.next_delay_ms();
  b.next_delay_ms();
  EXPECT_EQ(b.attempts(), 2);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.next_delay_ms(), 10);  // back to base after a success
}

TEST(Backoff, GivesUpAfterMaxAttempts) {
  Backoff b({/*base_ms=*/10, /*max_ms=*/1'000, /*multiplier=*/2.0, /*jitter=*/0.0,
             /*max_attempts=*/3});
  EXPECT_TRUE(b.next_delay_ms().has_value());
  EXPECT_TRUE(b.next_delay_ms().has_value());
  EXPECT_TRUE(b.next_delay_ms().has_value());
  EXPECT_FALSE(b.next_delay_ms().has_value());  // exhausted: caller gives up
  b.reset();
  EXPECT_TRUE(b.next_delay_ms().has_value());  // a success re-arms the budget
}

TEST(Backoff, SameSeedYieldsIdenticalSchedule) {
  const Backoff::Config config{/*base_ms=*/10, /*max_ms=*/2'000, /*multiplier=*/2.0,
                               /*jitter=*/0.5};
  Backoff a(config, 7), b(config, 7), c(config, 8);
  bool diverged = false;
  for (int i = 0; i < 20; ++i) {
    const auto da = a.next_delay_ms(), db = b.next_delay_ms(), dc = c.next_delay_ms();
    ASSERT_EQ(da, db);
    diverged |= da != dc;
  }
  EXPECT_TRUE(diverged);  // jitter actually depends on the seed
}

TEST(Backoff, RejectsNonsenseConfigs) {
  EXPECT_DEATH(Backoff({/*base_ms=*/0}), "CHECK");
  EXPECT_DEATH(Backoff({/*base_ms=*/10, /*max_ms=*/5}), "CHECK");
  EXPECT_DEATH(Backoff({/*base_ms=*/10, /*max_ms=*/100, /*multiplier=*/0.5}), "CHECK");
  EXPECT_DEATH(Backoff({/*base_ms=*/10, /*max_ms=*/100, /*multiplier=*/2.0,
                        /*jitter=*/1.5}),
               "CHECK");
}

}  // namespace
}  // namespace vrep
