// Crash-recovery sweep: for every version, inject a crash at EVERY store
// boundary inside a victim transaction (including its commit processing) and
// prove that recovery restores an all-or-nothing state. Also crashes the
// recovery itself to prove recovery is idempotent.
//
// This is the property the whole system exists to provide: under Rio
// semantics, memory contents at any store boundary plus the recovery
// procedure must yield exactly the last committed state (or, if the crash
// hit after the commit point, the newly committed state).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "core/api.hpp"
#include "repl/active.hpp"
#include "rio/arena.hpp"
#include "rio/crash.hpp"
#include "sim/alpha_cost_model.hpp"
#include "sim/mem_bus.hpp"
#include "sim/node.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using core::VersionKind;

constexpr VersionKind kAllVersions[] = {
    VersionKind::kV0Vista,
    VersionKind::kV1MirrorCopy,
    VersionKind::kV2MirrorDiff,
    VersionKind::kV3InlineLog,
};

StoreConfig small_config() {
  StoreConfig config;
  config.db_size = 64 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  config.v0_meta_pad_bytes = 32;  // exercise the pad path too
  return config;
}

// The victim transaction: deterministic multi-range update with overlap.
void run_victim_txn(core::TransactionStore& store, std::uint64_t salt) {
  std::uint8_t* db = store.db();
  Rng rng(salt);
  store.begin_transaction();
  for (int r = 0; r < 4; ++r) {
    const std::size_t len = 8 + rng.below(48);
    const std::size_t off = rng.below(store.db_size() - len);
    store.set_range(db + off, len);
    for (std::size_t i = 0; i + 4 <= len; i += 4) {
      const std::uint32_t v = rng.next_u32() | 1;
      store.bus().write(db + off + i, &v, 4, sim::TrafficClass::kModified);
    }
  }
  store.commit_transaction();
}

void run_setup_txns(core::TransactionStore& store, int n) {
  for (int i = 0; i < n; ++i) run_victim_txn(store, 1000 + static_cast<std::uint64_t>(i));
}

class CrashSweepTest : public ::testing::TestWithParam<VersionKind> {};

TEST_P(CrashSweepTest, EveryCrashPointRecoversAllOrNothing) {
  const VersionKind kind = GetParam();
  const StoreConfig config = small_config();

  // Reference run (no crash): snapshot the database before the victim
  // transaction, after it, and after a follow-up ("epilogue") transaction.
  // Sweeping crash points through victim + epilogue guarantees we observe
  // both roll-back (early points) and the committed victim state (points in
  // the epilogue, plus post-commit-point tails of the victim where the
  // version does cleanup work after its commit write).
  std::vector<std::uint8_t> before, after, after2;
  std::uint64_t sweep_writes;
  {
    sim::MemBus bus;
    rio::CrashInjector counter;
    bus.set_write_hook(&counter);
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
    run_setup_txns(*store, 5);
    before.assign(store->db(), store->db() + config.db_size);
    const std::uint64_t w0 = counter.writes_seen();
    run_victim_txn(*store, 77);
    after.assign(store->db(), store->db() + config.db_size);
    run_victim_txn(*store, 78);
    after2.assign(store->db(), store->db() + config.db_size);
    sweep_writes = counter.writes_seen() - w0;
  }
  ASSERT_GT(sweep_writes, 20u);

  // Crash at every store boundary within victim + epilogue.
  std::uint64_t recovered_before = 0, recovered_after = 0, recovered_after2 = 0;
  for (std::uint64_t crash_at = 0; crash_at < sweep_writes; ++crash_at) {
    sim::MemBus bus;
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    rio::CrashInjector injector;
    {
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      run_setup_txns(*store, 5);
      bus.set_write_hook(&injector);
      injector.arm(crash_at);
      try {
        run_victim_txn(*store, 77);
        run_victim_txn(*store, 78);
        FAIL() << "crash point " << crash_at << " never fired";
      } catch (const rio::SimulatedCrash&) {
      }
      bus.set_write_hook(nullptr);
    }
    // "Reboot": new store over the surviving arena bytes.
    auto store = core::make_store(kind, bus, arena, config, /*format=*/false);
    store->recover();
    ASSERT_TRUE(store->validate()) << "crash point " << crash_at;

    const bool m0 = std::memcmp(store->db(), before.data(), config.db_size) == 0;
    const bool m1 = std::memcmp(store->db(), after.data(), config.db_size) == 0;
    const bool m2 = std::memcmp(store->db(), after2.data(), config.db_size) == 0;
    ASSERT_TRUE(m0 || m1 || m2)
        << "torn state after crash at write " << crash_at << " of " << sweep_writes;
    recovered_before += m0;
    recovered_after += m1;
    recovered_after2 += m2;

    // The recovered store must be fully usable.
    run_victim_txn(*store, 99);
    ASSERT_TRUE(store->validate());
  }
  // Sanity on the sweep itself: early crash points roll back, points inside
  // the epilogue land on the committed victim state, and the final commit
  // write of the epilogue can surface its state too.
  EXPECT_GT(recovered_before, 0u);
  EXPECT_GT(recovered_after, 0u);
}

TEST_P(CrashSweepTest, RecoveryItselfIsCrashSafe) {
  const VersionKind kind = GetParam();
  const StoreConfig config = small_config();

  // Produce a mid-transaction crash state.
  sim::MemBus bus;
  rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
  std::vector<std::uint8_t> before;
  {
    rio::CrashInjector injector;
    auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
    run_setup_txns(*store, 3);
    before.assign(store->db(), store->db() + config.db_size);
    bus.set_write_hook(&injector);
    injector.arm(15);  // mid set_range
    ASSERT_THROW(run_victim_txn(*store, 77), rio::SimulatedCrash);
    bus.set_write_hook(nullptr);
  }

  // Crash during recovery at every one of its write points, then let a
  // final recovery finish. The end state must still be exact.
  for (std::uint64_t crash_at = 0;; ++crash_at) {
    rio::CrashInjector injector;
    bus.set_write_hook(&injector);
    injector.arm(crash_at);
    bool crashed = false;
    {
      auto store = core::make_store(kind, bus, arena, config, /*format=*/false);
      try {
        store->recover();
      } catch (const rio::SimulatedCrash&) {
        crashed = true;
      }
    }
    bus.set_write_hook(nullptr);
    if (!crashed) break;  // recovery completed before the injection point
    // Double-crash recovery must converge on a second, clean attempt.
    auto store = core::make_store(kind, bus, arena, config, /*format=*/false);
    store->recover();
    ASSERT_TRUE(store->validate()) << "recovery crash point " << crash_at;
    ASSERT_EQ(std::memcmp(store->db(), before.data(), config.db_size), 0)
        << "recovery crash point " << crash_at;
    // Re-install the mid-transaction crash state for the next iteration.
    {
      rio::CrashInjector mid;
      auto s2 = core::make_store(kind, bus, arena, config, /*format=*/false);
      bus.set_write_hook(&mid);
      mid.arm(15);
      try {
        run_victim_txn(*s2, 77);
        FAIL() << "expected crash";
      } catch (const rio::SimulatedCrash&) {
      }
      bus.set_write_hook(nullptr);
    }
  }

  auto store = core::make_store(kind, bus, arena, config, /*format=*/false);
  store->recover();
  EXPECT_EQ(std::memcmp(store->db(), before.data(), config.db_size), 0);
}

TEST_P(CrashSweepTest, AbortIsCrashSafeAtEveryWrite) {
  const VersionKind kind = GetParam();
  const StoreConfig config = small_config();

  // Reference: state after setup; an aborted transaction must leave it.
  auto start_victim = [](core::TransactionStore& store) {
    std::uint8_t* db = store.db();
    Rng rng(55);
    store.begin_transaction();
    for (int r = 0; r < 3; ++r) {
      const std::size_t len = 8 + rng.below(32);
      const std::size_t off = rng.below(store.db_size() - len);
      store.set_range(db + off, len);
      for (std::size_t i = 0; i + 4 <= len; i += 4) {
        const std::uint32_t v = rng.next_u32() | 1;
        store.bus().write(db + off + i, &v, 4, sim::TrafficClass::kModified);
      }
    }
  };

  std::vector<std::uint8_t> before;
  std::uint64_t abort_writes;
  {
    sim::MemBus bus;
    rio::CrashInjector counter;
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
    run_setup_txns(*store, 3);
    before.assign(store->db(), store->db() + config.db_size);
    start_victim(*store);
    bus.set_write_hook(&counter);
    store->abort_transaction();
    abort_writes = counter.writes_seen();
  }
  ASSERT_GT(abort_writes, 0u);

  for (std::uint64_t crash_at = 0; crash_at < abort_writes; ++crash_at) {
    sim::MemBus bus;
    rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
    rio::CrashInjector injector;
    {
      auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
      run_setup_txns(*store, 3);
      start_victim(*store);
      bus.set_write_hook(&injector);
      injector.arm(crash_at);
      ASSERT_THROW(store->abort_transaction(), rio::SimulatedCrash) << crash_at;
      bus.set_write_hook(nullptr);
    }
    auto store = core::make_store(kind, bus, arena, config, /*format=*/false);
    store->recover();
    ASSERT_TRUE(store->validate()) << "abort crash point " << crash_at;
    ASSERT_EQ(std::memcmp(store->db(), before.data(), config.db_size), 0)
        << "abort crash point " << crash_at;
  }
}

// ---- group-commit window crashes -------------------------------------------
//
// Kill the primary while a group-commit window is OPEN — pending group
// buffered, 1..W shipped-but-unacked sequences in flight — and prove the
// surviving backup never applies a partially-shipped group: after takeover
// its applied count sits on a group boundary and its image is bit-identical
// to the primary's state at exactly that commit.

namespace groupcrash {

constexpr unsigned kWindow = 8;
constexpr unsigned kGroup = 4;
constexpr std::uint64_t kTxns = 48;

struct Topology {
  core::StoreConfig config = small_config();
  sim::AlphaCostModel cost{};
  repl::ActiveBackupLayout layout;
  std::unique_ptr<sim::McFabric> fabric;
  std::unique_ptr<sim::Node> pnode, bnode;
  rio::Arena parena, barena;
  std::unique_ptr<repl::ActiveBackup> backup;
  std::unique_ptr<repl::ActivePrimary> primary;

  Topology() : layout(repl::ActiveBackupLayout::make(small_config().db_size, 1 << 16)) {
    fabric = std::make_unique<sim::McFabric>(cost.link);
    pnode = std::make_unique<sim::Node>(cost, 1, fabric.get());
    bnode = std::make_unique<sim::Node>(cost, 1, nullptr);
    parena = rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout));
    barena = rio::Arena::create(layout.arena_bytes());
    backup = std::make_unique<repl::ActiveBackup>(bnode->cpu(), barena, layout, *fabric);
    primary = std::make_unique<repl::ActivePrimary>(pnode->cpu().bus(), parena, barena, config,
                                                    layout, backup.get(), /*format=*/true);
    primary->set_two_safe(true);
    primary->set_commit_window(kWindow);
    primary->set_group_size(kGroup);
    std::memcpy(backup->db(), primary->db(), config.db_size);
  }
};

// One deterministic transaction per sequence number (same salt scheme on
// the reference and crash runs, so images are comparable byte-for-byte).
void txn(core::TransactionStore& store, std::uint64_t seq) { run_victim_txn(store, 9000 + seq); }

}  // namespace groupcrash

TEST(GroupCommitCrashTest, BackupNeverAppliesPartialGroup) {
  using namespace groupcrash;

  // Reference run, fault-free: CRC of the primary image after every commit,
  // and the total store-write count of the whole history for the sweep.
  std::vector<std::uint32_t> crc_at;  // index = committed count
  std::uint64_t total_writes = 0;
  {
    Topology t;
    crc_at.push_back(Crc32::of(t.primary->db(), t.config.db_size));
    rio::CrashInjector counter;
    t.pnode->cpu().bus().set_write_hook(&counter);
    for (std::uint64_t seq = 1; seq <= kTxns; ++seq) {
      txn(*t.primary, seq);
      crc_at.push_back(Crc32::of(t.primary->db(), t.config.db_size));
    }
    t.pnode->cpu().bus().set_write_hook(nullptr);
    total_writes = counter.writes_seen();
  }
  ASSERT_GT(total_writes, 100u);

  // Sweep crashes across the history: every point must land the survivor on
  // a whole-group boundary with the exact reference image for that boundary.
  std::set<std::uint64_t> unacked_depths;
  std::set<std::uint64_t> applied_counts;
  constexpr int kSweepPoints = 24;
  for (int i = 0; i < kSweepPoints; ++i) {
    const std::uint64_t crash_at = 1 + (total_writes - 2) * static_cast<std::uint64_t>(i) /
                                           static_cast<std::uint64_t>(kSweepPoints);
    Topology t;
    rio::CrashInjector injector;
    t.pnode->cpu().bus().set_write_hook(&injector);
    injector.arm(crash_at);
    std::uint64_t committed = 0;
    try {
      for (std::uint64_t seq = 1; seq <= kTxns; ++seq) {
        txn(*t.primary, seq);
        committed = seq;
      }
      FAIL() << "crash at write " << crash_at << " of " << total_writes << " never fired";
    } catch (const rio::SimulatedCrash&) {
    }
    t.pnode->cpu().bus().set_write_hook(nullptr);

    const std::uint64_t applied = t.backup->takeover(t.pnode->cpu().clock().now());
    ASSERT_EQ(applied % kGroup, 0u)
        << "crash at write " << crash_at << ": survivor applied " << applied
        << " — a partially-shipped group was applied";
    ASSERT_LT(applied, crc_at.size());
    ASSERT_EQ(Crc32::of(t.backup->db(), t.config.db_size), crc_at[applied])
        << "crash at write " << crash_at << ": survivor image != reference at commit "
        << applied;
    ASSERT_GE(committed, applied) << "backup applied commits the primary never made";
    unacked_depths.insert(committed - applied);
    applied_counts.insert(applied);
  }
  // The sweep must actually have exercised an open window at several depths
  // (otherwise the boundary assertions above were vacuous).
  EXPECT_GE(unacked_depths.size(), 3u)
      << "sweep never varied the number of unacked transactions at the crash";
  EXPECT_GE(applied_counts.size(), 3u) << "sweep crashed at too few distinct group boundaries";
  EXPECT_GT(*unacked_depths.rbegin(), 0u) << "every crash point had an empty window";
}

TEST(CheckpointCrashTest, CrashMidCheckpointNeverPerturbsTheSurvivor) {
  using namespace groupcrash;

  // Same sweep as GroupCommitCrashTest, but the primary runs fuzzy
  // checkpointing in its commit path (4-commit builds starting every 6
  // commits, so ~half the crash points strike mid-build, and several strike
  // inside the completion/truncation step itself). The checkpoint build is
  // volatile primary state: killing the primary at ANY point must leave the
  // survivor exactly where the checkpoint-free sweep would — whole-group
  // boundary, bit-identical to the fault-free reference at that commit.
  constexpr std::uint64_t kCkptInterval = 6;
  constexpr std::size_t kCkptCopyBytes = 16 * 1024;  // 64 KiB db: 4-commit builds

  std::vector<std::uint32_t> crc_at;
  std::uint64_t total_writes = 0;
  {
    Topology t;
    t.primary->enable_checkpoints(kCkptInterval, kCkptCopyBytes);
    crc_at.push_back(Crc32::of(t.primary->db(), t.config.db_size));
    rio::CrashInjector counter;
    t.pnode->cpu().bus().set_write_hook(&counter);
    for (std::uint64_t seq = 1; seq <= kTxns; ++seq) {
      txn(*t.primary, seq);
      crc_at.push_back(Crc32::of(t.primary->db(), t.config.db_size));
    }
    t.pnode->cpu().bus().set_write_hook(nullptr);
    total_writes = counter.writes_seen();
    // The reference run must genuinely checkpoint (and truncate) mid-sweep.
    ASSERT_GE(t.primary->pipeline().stats().checkpoints_completed, 5u);
    ASSERT_GT(t.primary->pipeline().stats().redo_truncated_bytes, 0u);
  }
  ASSERT_GT(total_writes, 100u);

  constexpr int kSweepPoints = 24;
  std::set<std::uint64_t> ckpt_phases;  // completed-count at the crash instant
  for (int i = 0; i < kSweepPoints; ++i) {
    const std::uint64_t crash_at = 1 + (total_writes - 2) * static_cast<std::uint64_t>(i) /
                                           static_cast<std::uint64_t>(kSweepPoints);
    Topology t;
    t.primary->enable_checkpoints(kCkptInterval, kCkptCopyBytes);
    rio::CrashInjector injector;
    t.pnode->cpu().bus().set_write_hook(&injector);
    injector.arm(crash_at);
    std::uint64_t committed = 0;
    try {
      for (std::uint64_t seq = 1; seq <= kTxns; ++seq) {
        txn(*t.primary, seq);
        committed = seq;
      }
      FAIL() << "crash at write " << crash_at << " of " << total_writes << " never fired";
    } catch (const rio::SimulatedCrash&) {
    }
    t.pnode->cpu().bus().set_write_hook(nullptr);
    // Record the checkpoint phase the crash struck at (how many builds had
    // completed), for the vacuity check below.
    ckpt_phases.insert(t.primary->pipeline().stats().checkpoints_completed);

    const std::uint64_t applied = t.backup->takeover(t.pnode->cpu().clock().now());
    ASSERT_EQ(applied % kGroup, 0u)
        << "crash at write " << crash_at << ": survivor applied " << applied
        << " — a partially-shipped group was applied";
    ASSERT_LT(applied, crc_at.size());
    ASSERT_EQ(Crc32::of(t.backup->db(), t.config.db_size), crc_at[applied])
        << "crash at write " << crash_at
        << " (checkpointing enabled): survivor image != fault-free reference at commit "
        << applied;
    ASSERT_GE(committed, applied);
  }
  EXPECT_GE(ckpt_phases.size(), 3u)
      << "sweep struck too few distinct checkpoint phases — assertions near-vacuous";
}

INSTANTIATE_TEST_SUITE_P(AllVersions, CrashSweepTest, ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionKind::kV0Vista: return "V0Vista";
                             case VersionKind::kV1MirrorCopy: return "V1MirrorCopy";
                             case VersionKind::kV2MirrorDiff: return "V2MirrorDiff";
                             case VersionKind::kV3InlineLog: return "V3InlineLog";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace vrep
