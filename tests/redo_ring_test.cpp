// Redo ring wire-format edge cases: transactions whose ring footprint lands
// exactly on the capacity boundary, commit markers that would wrap (pre-pad
// path), sub-header pad slivers, and a consumer lag of exactly one full
// capacity. Each case drives the real producer (McRingLink) and consumer
// (ActiveBackup) and checks the replica converges to the primary's bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "repl/active.hpp"
#include "repl/redo_ring.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"

namespace vrep {
namespace {

using core::StoreConfig;

constexpr std::size_t kRingCapacity = 2048;

StoreConfig ring_config() {
  StoreConfig config;
  config.db_size = 64 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 128 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

struct RingPair {
  explicit RingPair(const StoreConfig& config)
      : fabric(cost.link),
        primary(cost, 1, &fabric),
        backup_node(cost, 1, nullptr),
        layout(repl::ActiveBackupLayout::make(config.db_size, kRingCapacity)) {
    primary_arena =
        rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout));
    backup_arena = rio::Arena::create(layout.arena_bytes());
    backup = std::make_unique<repl::ActiveBackup>(backup_node.cpu(), backup_arena, layout,
                                                  fabric);
    store = std::make_unique<repl::ActivePrimary>(primary.cpu().bus(), primary_arena,
                                                  backup_arena, config, layout, backup.get(),
                                                  /*format=*/true);
  }

  // One transaction with a single contiguous write of exactly `len` bytes:
  // its ring footprint is 6 + padded(len) + 14 marker bytes (plus any wrap
  // padding), so tests can place entry and marker boundaries precisely.
  void commit_exact(std::size_t off, std::size_t len, std::uint8_t fill) {
    std::uint8_t* db = store->db();
    const std::vector<std::uint8_t> data(len, fill);
    store->begin_transaction();
    store->set_range(db + off, len);
    store->bus().write(db + off, data.data(), data.size(), sim::TrafficClass::kModified);
    store->commit_transaction();
  }

  void quiesce() {
    primary.cpu().mc()->flush();
    backup->poll(fabric.link().free_at + cost.link.propagation_ns);
  }

  sim::AlphaCostModel cost;
  sim::McFabric fabric;
  sim::Node primary;
  sim::Node backup_node;
  repl::ActiveBackupLayout layout;
  rio::Arena primary_arena;
  rio::Arena backup_arena;
  std::unique_ptr<repl::ActiveBackup> backup;
  std::unique_ptr<repl::ActivePrimary> store;
};

TEST(RedoRing, EntryFootprintArithmetic) {
  // The constants the boundary tests below are built on.
  EXPECT_EQ(sizeof(repl::RedoEntryHeader), 6u);
  EXPECT_EQ(repl::kCommitMarkerBytes, 14u);
  EXPECT_EQ(repl::redo_entry_bytes(8), 14u);
  EXPECT_EQ(repl::redo_entry_bytes(7), 14u) << "odd payloads pad to 2-byte alignment";
  EXPECT_EQ(repl::redo_entry_bytes(1), 8u);
  EXPECT_EQ(repl::redo_entry_bytes(0), 6u);
}

TEST(RedoRing, BatchFootprintExactlyCapacityWrapsCleanly) {
  // 6 + 2028 + 14 == 2048: one transaction fills the ring to the byte, so
  // the consumer lag hits exactly one full capacity and the next entry
  // starts at physical offset 0 of the next lap.
  const StoreConfig config = ring_config();
  RingPair pair(config);
  const std::size_t len = kRingCapacity - sizeof(repl::RedoEntryHeader) -
                          repl::kCommitMarkerBytes;  // 2028
  ASSERT_EQ(sizeof(repl::RedoEntryHeader) + len + repl::kCommitMarkerBytes, kRingCapacity);

  pair.commit_exact(0, len, 0xA1);
  pair.commit_exact(4096, len, 0xB2);  // producer begins this lap at phys 0
  pair.commit_exact(8192, len, 0xC3);
  pair.quiesce();

  EXPECT_EQ(pair.backup->applied_seq(), 3u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
  EXPECT_EQ(pair.backup->consumer(), 3 * kRingCapacity)
      << "each transaction must occupy exactly one full ring lap";
}

TEST(RedoRing, FullRingBlocksProducerUntilConsumerAdvances) {
  // With every batch exactly one capacity, the producer finds the ring full
  // (lag == capacity, the == edge of the flow-control inequality) before
  // each subsequent commit and must wait for the cursor write-back.
  const StoreConfig config = ring_config();
  RingPair pair(config);
  const std::size_t len = kRingCapacity - sizeof(repl::RedoEntryHeader) -
                          repl::kCommitMarkerBytes;
  for (int i = 0; i < 8; ++i)
    pair.commit_exact(static_cast<std::size_t>(i) * 4096, len,
                      static_cast<std::uint8_t>(0x10 + i));
  pair.quiesce();

  EXPECT_EQ(pair.backup->applied_seq(), 8u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
  EXPECT_GT(pair.store->flow_stall_ns(), 0)
      << "capacity-sized batches must have stalled on the full ring";
}

TEST(RedoRing, CommitMarkerPrePadsWhenItWouldWrap) {
  // Data entry ends 10 bytes short of the physical end: the commit marker
  // (14 bytes) cannot fit, so the producer pads the remainder (an explicit
  // 6-byte pad header + implicit sliver) and the marker starts the next lap.
  const StoreConfig config = ring_config();
  RingPair pair(config);
  // txn1: footprint 6 + 100 + 14 = 120. txn2's single data entry then spans
  // [120, 2038), leaving 10 bytes of lap — room for an explicit pad header
  // (6 <= 10) but not the 14-byte marker, which pre-pads and starts the
  // next lap at physical offset 0.
  pair.commit_exact(0, 100, 0xD4);
  const std::size_t len = 1912;  // 120 + 6 + 1912 = 2038
  ASSERT_EQ(120 + sizeof(repl::RedoEntryHeader) + len, kRingCapacity - 10);

  pair.commit_exact(4096, len, 0xE5);
  pair.commit_exact(16384, 64, 0x3C);  // rides the lap the marker opened
  pair.quiesce();

  EXPECT_EQ(pair.backup->applied_seq(), 3u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
}

TEST(RedoRing, ImplicitPadSliverSmallerThanHeader) {
  // First transaction ends 4 bytes short of the physical end — too small
  // even for a pad header. Both sides must treat the sliver as implicit
  // padding: the producer skips it silently, the consumer's parser jumps it.
  const StoreConfig config = ring_config();
  RingPair pair(config);
  const std::size_t len = 2024;  // 6 + 2024 + 14 = 2044, leaving 4 < 6
  ASSERT_LT(kRingCapacity - (sizeof(repl::RedoEntryHeader) + len + repl::kCommitMarkerBytes),
            sizeof(repl::RedoEntryHeader));

  pair.commit_exact(0, len, 0xF6);
  pair.commit_exact(4096, 128, 0x17);  // first entry must skip the sliver
  pair.commit_exact(8192, 256, 0x28);
  pair.quiesce();

  EXPECT_EQ(pair.backup->applied_seq(), 3u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
}

}  // namespace
}  // namespace vrep
