// Fault-injecting transport + recovery machinery: deterministic fault
// schedules, in-band resync under drops/duplicates, torn-frame reconnect +
// rejoin, epoch fencing of a split-brain primary, and the full-image
// fallback when the redo history cannot serve a rejoin delta.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "net/fault_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep::net {
namespace {

struct LoopbackPair {
  LoopbackPair() {
    EXPECT_TRUE(server.listen(0));
    std::thread connector(
        [this] { client_ok = client.connect_to("127.0.0.1", server.bound_port()); });
    EXPECT_TRUE(server.accept_peer());
    connector.join();
    EXPECT_TRUE(client_ok);
  }
  // Re-establish the client->server connection after a disconnect.
  void reconnect() {
    std::thread connector(
        [this] { client_ok = client.connect_to("127.0.0.1", server.bound_port()); });
    EXPECT_TRUE(server.accept_peer());
    connector.join();
    EXPECT_TRUE(client_ok);
  }
  TcpTransport server, client;
  bool client_ok = false;
};

// One random transaction writing `range_bytes` at a random offset. The redo
// batch ships the captured bus writes, so range_bytes also sets the batch
// (and wire frame) size.
void commit_random_txn(WirePrimary& primary, Rng& rng, std::size_t db_size,
                       std::size_t range_bytes = 32) {
  primary.begin_transaction();
  const std::size_t off = rng.below(db_size - range_bytes);
  primary.set_range(primary.db() + off, range_bytes);
  const std::vector<std::uint8_t> data(range_bytes, static_cast<std::uint8_t>(rng.next_u64()));
  primary.bus().write(primary.db() + off, data.data(), data.size(),
                      sim::TrafficClass::kModified);
  primary.commit_transaction();
}

// Drive heartbeats until the backup acknowledges `seq` (bounded wait).
// Heartbeats both carry the primary's committed sequence (so the backup can
// detect trailing gaps and resync) and drain the backup's acks.
bool await_ack(WirePrimary& primary, std::uint64_t seq, int max_iters = 3000) {
  for (int i = 0; i < max_iters && primary.backup_acked_seq() < seq; ++i) {
    primary.send_heartbeat();
    usleep(1000);
  }
  return primary.backup_acked_seq() >= seq;
}

TEST(FaultInjector, ScheduleIsDeterministicPerSeed) {
  // Two injectors with the same plan over independent connections must
  // produce the identical fault sequence, and the receiver must observe
  // exactly sent - drops + duplicates frames.
  FaultPlan plan;
  plan.seed = 404;
  plan.drop = 0.10;
  plan.delay = 0.05;
  plan.max_delay_us = 100;
  plan.duplicate = 0.10;

  FaultInjectingTransport::Stats observed[2];
  std::uint64_t received[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    LoopbackPair pair;
    FaultInjectingTransport chaos(pair.client, plan);
    for (std::uint32_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(chaos.send(MsgType::kRedoBatch, 1, &i, 4));
      // Drain as we go so the loopback socket buffers never fill up.
      while (pair.server.recv(0).has_value()) received[run]++;
    }
    while (pair.server.recv(20).has_value()) received[run]++;
    observed[run] = chaos.stats();
  }
  EXPECT_EQ(observed[0].drops, observed[1].drops);
  EXPECT_EQ(observed[0].delays, observed[1].delays);
  EXPECT_EQ(observed[0].duplicates, observed[1].duplicates);
  EXPECT_GT(observed[0].faults(), 0u);
  for (int run = 0; run < 2; ++run) {
    EXPECT_EQ(received[run], 300u - observed[run].drops + observed[run].duplicates);
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  // Not just the fault *count*: the per-frame drop pattern must differ
  // between seeds (counts can collide by chance).
  FaultPlan plan;
  plan.drop = 0.5;
  std::vector<std::uint32_t> arrived[2];
  for (int run = 0; run < 2; ++run) {
    plan.seed = 1000 + static_cast<std::uint64_t>(run);
    LoopbackPair pair;
    FaultInjectingTransport chaos(pair.client, plan);
    for (std::uint32_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(chaos.send(MsgType::kHeartbeat, 1, &i, 4));
      while (auto msg = pair.server.recv(0)) {
        std::uint32_t got;
        std::memcpy(&got, msg->payload.data(), 4);
        arrived[run].push_back(got);
      }
    }
    while (auto msg = pair.server.recv(20)) {
      std::uint32_t got;
      std::memcpy(&got, msg->payload.data(), 4);
      arrived[run].push_back(got);
    }
    EXPECT_GT(chaos.stats().drops, 0u);
  }
  EXPECT_NE(arrived[0], arrived[1]);
}

TEST(FaultInjector, DroppedAndDuplicatedBatchesResyncInBand) {
  // Under drop + duplicate faults the backup must converge to the primary's
  // exact image without ever losing the connection: gaps are repaired by
  // in-band rejoin requests answered from the redo history.
  LoopbackPair pair;
  FaultPlan plan;
  plan.seed = 11;
  plan.drop = 0.08;
  plan.duplicate = 0.08;
  plan.start_after_frames = 2;  // let hello + image chunk through untouched
  FaultInjectingTransport chaos(pair.client, plan);

  core::StoreConfig config;
  config.db_size = 256 * 1024;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary primary(arena, config, &chaos, /*format=*/true);
  rio::Arena replica = rio::Arena::create(config.db_size);
  WireBackup backup(replica);
  std::thread backup_thread([&] { backup.serve(pair.server, 4000); });

  ASSERT_TRUE(primary.sync_backup());
  Rng rng(21);
  for (int i = 0; i < 300; ++i) commit_random_txn(primary, rng, config.db_size);
  EXPECT_TRUE(await_ack(primary, 300));
  chaos.close_peer();
  backup_thread.join();

  EXPECT_EQ(backup.applied_seq(), 300u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);
  EXPECT_GT(chaos.stats().drops, 0u);
  EXPECT_GT(chaos.stats().duplicates, 0u);
  EXPECT_GT(backup.stats().duplicates_ignored, 0u);
  EXPECT_GT(backup.stats().gaps_detected, 0u);
  EXPECT_GT(backup.stats().resyncs, 0u);
}

TEST(FaultInjector, BitflippedFramesAreSkippedAndResynced) {
  // Payload bit-flips surface as payload-CRC failures: the backup skips the
  // frame, stays connected, and repairs the sequence gap in-band. (A flip
  // landing in the header instead closes the stream; keep the rate low and
  // the run short so this seed stays on the payload path.)
  LoopbackPair pair;
  FaultPlan plan;
  plan.seed = 1302;
  plan.bitflip = 0.04;
  plan.start_after_frames = 2;
  FaultInjectingTransport chaos(pair.client, plan);

  core::StoreConfig config;
  config.db_size = 128 * 1024;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary primary(arena, config, &chaos, /*format=*/true);
  rio::Arena replica = rio::Arena::create(config.db_size);
  WireBackup backup(replica);
  std::thread backup_thread([&] { backup.serve(pair.server, 4000); });

  ASSERT_TRUE(primary.sync_backup());
  Rng rng(3);
  // 1 KB ranges keep the 24-byte header a tiny bit-flip target, so this
  // seed's flips all land in payloads.
  for (int i = 0; i < 150; ++i) commit_random_txn(primary, rng, config.db_size, 1024);
  ASSERT_TRUE(primary.connection_alive());  // no flip hit a header
  // Chaos window over: converge over the clean transport (a flipped
  // heartbeat header would tear the stream down for nothing).
  primary.attach_transport(&pair.client);
  EXPECT_TRUE(await_ack(primary, 150));
  chaos.close_peer();
  backup_thread.join();

  EXPECT_GT(chaos.stats().bitflips, 0u);
  EXPECT_GT(backup.stats().corrupt_skipped, 0u);
  EXPECT_EQ(backup.applied_seq(), 150u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);
}

TEST(FaultInjector, TornFrameThenReconnectRejoinsWithDelta) {
  // A frame truncated mid-send (sender killed) must never apply partially;
  // after reconnect the backup catches up incrementally from the redo
  // history (kRejoinDelta), not via a full image transfer.
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 128 * 1024;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));

  FaultPlan plan;
  plan.seed = 5;
  plan.truncate = 1.0;
  // hello + 1 image chunk + 50 clean batches; frame 53 (txn 51) is torn.
  plan.start_after_frames = 52;
  FaultInjectingTransport chaos(pair.client, plan);
  WirePrimary primary(arena, config, &chaos, /*format=*/true);

  rio::Arena replica = rio::Arena::create(config.db_size);
  WireBackup backup(replica);
  WireBackup::ServeResult phase1{};
  std::thread backup_thread([&] { phase1 = backup.serve(pair.server, 2000); });

  ASSERT_TRUE(primary.sync_backup());
  Rng rng(77);
  for (int i = 0; i < 50; ++i) commit_random_txn(primary, rng, config.db_size);
  std::vector<std::uint8_t> at_50(primary.db(), primary.db() + config.db_size);
  commit_random_txn(primary, rng, config.db_size);  // txn 51: torn mid-frame
  EXPECT_FALSE(primary.connection_alive());
  backup_thread.join();

  // The torn frame surfaced as a lost connection; nothing of txn 51 landed.
  EXPECT_EQ(phase1, WireBackup::ServeResult::kConnectionLost);
  EXPECT_EQ(backup.applied_seq(), 50u);
  EXPECT_EQ(std::memcmp(backup.db(), at_50.data(), config.db_size), 0);
  EXPECT_EQ(chaos.stats().truncations, 1u);

  // Reconnect (sans injector) and rejoin: the primary serves the delta.
  pair.reconnect();
  ASSERT_TRUE(backup.request_rejoin(pair.server));
  std::thread backup_thread2([&] { backup.serve(pair.server, 2000); });
  primary.attach_transport(&pair.client);
  ASSERT_TRUE(primary.handle_rejoin(2000));
  for (int i = 0; i < 2; ++i) commit_random_txn(primary, rng, config.db_size);
  EXPECT_TRUE(await_ack(primary, 53));
  pair.client.close_peer();
  backup_thread2.join();

  EXPECT_EQ(primary.stats().deltas_served, 1u);
  EXPECT_EQ(primary.stats().full_syncs_served, 0u);
  EXPECT_EQ(backup.applied_seq(), 53u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);
}

TEST(FaultInjector, CheckpointDeltaInstallUnderFaultsConvergesUntorn) {
  // A laggard whose gap outgrew the (tiny) redo history rejoins against a
  // checkpointed primary — and the serve runs through a drop/duplicate
  // injector, so checkpoint frames (Begin/Chunk/End) are lost and replayed
  // mid-install. The applier must never install a torn checkpoint: faulted
  // attempts abort cleanly (replica untouched) and the re-request converges
  // once the frames arrive whole. The full image path must stay untaken —
  // the checkpoint covers the gap even though the history no longer does.
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 128 * 1024;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  // History holds only the last ~14 batches; checkpoints every 10 commits
  // (4-commit fuzzy builds: 32 KiB steps over 128 KiB).
  WirePrimary primary(arena, config, &pair.client, /*format=*/true, nullptr,
                      WirePrimary::Lineage{0, 0}, /*redo_history_bytes=*/4096);
  primary.enable_checkpoints(/*interval_txns=*/10, /*copy_bytes_per_commit=*/32 * 1024);
  rio::Arena replica = rio::Arena::create(config.db_size);
  WireBackup backup(replica);

  WireBackup::ServeResult phase1{};
  std::thread serve1([&] { phase1 = backup.serve(pair.server, 2000); });
  ASSERT_TRUE(primary.sync_backup());
  Rng rng(42);
  for (int i = 0; i < 30; ++i) commit_random_txn(primary, rng, config.db_size, 256);
  ASSERT_TRUE(await_ack(primary, 30));
  pair.client.close_peer();
  serve1.join();
  ASSERT_EQ(phase1, WireBackup::ServeResult::kConnectionLost);
  ASSERT_EQ(backup.applied_seq(), 30u);
  const std::vector<std::uint8_t> at_30(backup.db(), backup.db() + config.db_size);

  // Link down, primary commits on: checkpoints complete and truncate the
  // history past sequence 30 — without them this would be a full-image
  // rejoin (see FullImageFallbackWhenHistoryEvicted above).
  for (int i = 0; i < 30; ++i) commit_random_txn(primary, rng, config.db_size, 256);
  ASSERT_GE(primary.stats().checkpoints_completed, 2u);
  ASSERT_GT(primary.stats().redo_truncated_bytes, 0u);

  // Reconnect; the rejoin serve goes through the injector. The install is
  // expected to tear at least once; heartbeats after the chaos window drive
  // the re-request/re-serve until it lands whole.
  pair.reconnect();
  FaultPlan plan;
  plan.seed = 909;
  plan.drop = 0.25;
  plan.duplicate = 0.25;
  FaultInjectingTransport chaos(pair.client, plan);
  ASSERT_TRUE(backup.request_rejoin(pair.server));
  std::thread serve2([&] { backup.serve(pair.server, 2000); });
  primary.attach_transport(&chaos);
  ASSERT_TRUE(primary.handle_rejoin(2000));
  // Chaos window over: converge over the clean transport (re-requests are
  // answered in-band from the heartbeat drain).
  primary.attach_transport(&pair.client);
  EXPECT_TRUE(await_ack(primary, 60));
  pair.client.close_peer();
  serve2.join();

  EXPECT_GT(chaos.stats().faults(), 0u) << "fault schedule never fired";
  EXPECT_EQ(backup.applied_seq(), 60u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0)
      << "backup after faulted checkpoint install != primary bytes";
  EXPECT_EQ(backup.stats().checkpoint_installs, 1u)
      << "exactly one install may verify; torn attempts must not count";
  EXPECT_GE(primary.stats().checkpoint_deltas_served, 1u);
  EXPECT_EQ(primary.stats().full_syncs_served, 0u)
      << "a checkpoint-covered laggard must never fall off the full-image cliff";
  // The first serve ran under 25% drop across ~10+ frames: it tore, and the
  // applier recovered by aborting (never by installing garbage).
  EXPECT_GE(backup.stats().checkpoint_aborts, 1u);
}

TEST(Fencing, SplitBrainOldPrimaryIsFencedThenRejoins) {
  // The split-brain regression: a paused-then-resumed primary keeps
  // committing in the old epoch after the backup promoted. Its frames must
  // be rejected wholesale (not one byte lands), it must learn it is fenced,
  // and it must be able to rejoin the new primary as a backup.
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 128 * 1024;

  cluster::Membership mem_a(0, cluster::Role::kPrimary);
  cluster::Membership mem_b(1, cluster::Role::kBackup);

  rio::Arena arena_a =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary primary_a(arena_a, config, &pair.client, /*format=*/true, &mem_a);
  rio::Arena replica_b = rio::Arena::create(config.db_size);
  WireBackup backup_b(replica_b, &mem_b, /*node_id=*/1);

  WireBackup::ServeResult phase1{};
  std::thread serve1([&] {
    phase1 = backup_b.serve(pair.server, WireBackup::ServeOptions{150, nullptr});
  });
  ASSERT_TRUE(primary_a.sync_backup());
  Rng rng_a(1);
  for (int i = 0; i < 100; ++i) commit_random_txn(primary_a, rng_a, config.db_size);
  // A "pauses" (GC stall, VM freeze): silence makes B declare it dead.
  serve1.join();
  ASSERT_EQ(phase1, WireBackup::ServeResult::kPrimaryFailed);
  ASSERT_EQ(backup_b.applied_seq(), 100u);

  mem_b.take_over();
  ASSERT_EQ(mem_b.view().epoch, 2u);
  const std::uint32_t crc_at_takeover = Crc32::of(backup_b.db(), config.db_size);

  // B keeps policing the old connection while A, back from its pause,
  // resumes committing in epoch 1.
  WireBackup::ServeResult phase2{};
  std::thread serve2([&] {
    phase2 = backup_b.serve(pair.server, WireBackup::ServeOptions{400, nullptr});
  });
  int stale_commits = 0;
  for (; stale_commits < 50 && !primary_a.fenced(); ++stale_commits) {
    commit_random_txn(primary_a, rng_a, config.db_size);
    usleep(5000);
  }
  serve2.join();

  EXPECT_TRUE(primary_a.fenced());
  EXPECT_EQ(primary_a.fenced_by_epoch(), 2u);
  EXPECT_EQ(phase2, WireBackup::ServeResult::kPrimaryFailed);
  EXPECT_GT(backup_b.stats().stale_fenced, 0u);
  // Not a single stale write reached the promoted node.
  EXPECT_EQ(backup_b.applied_seq(), 100u);
  EXPECT_EQ(Crc32::of(backup_b.db(), config.db_size), crc_at_takeover);
  // A committed locally past the takeover point: its state diverged.
  EXPECT_GT(primary_a.committed_seq(), 100u);

  // A demotes itself and rejoins with its own (divergent) state. B promotes
  // its replica and becomes the wire primary, remembering the lineage: the
  // shared prefix with epoch-1 state ends at sequence 100.
  mem_a.demote_to_backup(primary_a.fenced_by_epoch());
  EXPECT_EQ(mem_a.view().epoch, 2u);
  rio::Arena rejoin_arena = rio::Arena::create(config.db_size);
  WireBackup rejoiner_a(rejoin_arena, &mem_a, /*node_id=*/0);
  rejoiner_a.seed(primary_a.db(), config.db_size, primary_a.committed_seq(),
                  /*state_epoch=*/1);

  sim::MemBus scratch_bus;
  rio::Arena arena_b =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  { auto promoted = backup_b.promote(scratch_bus, arena_b, config); }
  WirePrimary primary_b(arena_b, config, &pair.server, /*format=*/false, &mem_b,
                        WirePrimary::Lineage{/*prev_epoch=*/1, /*takeover_floor=*/100});
  primary_b.recover();
  ASSERT_EQ(primary_b.committed_seq(), 100u);

  // Rejoin over the still-open connection. A's sequence is PAST the
  // takeover floor under the old epoch — a delta would smuggle divergent
  // state in, so B must ship the full image.
  ASSERT_TRUE(rejoiner_a.request_rejoin(pair.client));
  std::thread serve3([&] { rejoiner_a.serve(pair.client, 2000); });
  ASSERT_TRUE(primary_b.handle_rejoin(2000));
  EXPECT_EQ(primary_b.stats().full_syncs_served, 1u);
  EXPECT_EQ(primary_b.stats().deltas_served, 0u);

  Rng rng_b(2);
  for (int i = 0; i < 5; ++i) commit_random_txn(primary_b, rng_b, config.db_size);
  EXPECT_TRUE(await_ack(primary_b, 105));
  pair.server.close_peer();
  serve3.join();

  // Same lineage everywhere: A's divergent suffix is gone.
  EXPECT_EQ(rejoiner_a.applied_seq(), 105u);
  EXPECT_EQ(std::memcmp(rejoiner_a.db(), primary_b.db(), config.db_size), 0);
  // Adopting A as the new backup was a view change: epoch 3, both sides.
  EXPECT_EQ(mem_b.view().epoch, 3u);
  EXPECT_TRUE(mem_b.has_backup(0));
  EXPECT_EQ(mem_a.view().epoch, 3u);
  EXPECT_FALSE(mem_a.is_primary());
}

TEST(Rejoin, FullImageFallbackWhenHistoryEvicted) {
  // A rejoiner whose gap outgrew the primary's bounded redo history cannot
  // be served a delta; the primary must fall back to the full image.
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 64 * 1024;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  // Tiny history: ~2 KB holds only the last handful of 300-byte batches.
  WirePrimary primary(arena, config, &pair.client, /*format=*/true, nullptr,
                      WirePrimary::Lineage{0, 0}, /*redo_history_bytes=*/2048);
  rio::Arena replica = rio::Arena::create(config.db_size);
  WireBackup backup(replica);

  WireBackup::ServeResult phase1{};
  std::thread serve1([&] { phase1 = backup.serve(pair.server, 2000); });
  ASSERT_TRUE(primary.sync_backup());
  Rng rng(9);
  for (int i = 0; i < 30; ++i) commit_random_txn(primary, rng, config.db_size, 256);
  ASSERT_TRUE(await_ack(primary, 30));
  pair.client.close_peer();
  serve1.join();
  ASSERT_EQ(phase1, WireBackup::ServeResult::kConnectionLost);
  ASSERT_EQ(backup.applied_seq(), 30u);

  // The link stays down while the primary commits on: the history evicts
  // everything near sequence 30.
  for (int i = 0; i < 30; ++i) commit_random_txn(primary, rng, config.db_size, 256);

  pair.reconnect();
  ASSERT_TRUE(backup.request_rejoin(pair.server));
  std::thread serve2([&] { backup.serve(pair.server, 2000); });
  primary.attach_transport(&pair.client);
  ASSERT_TRUE(primary.handle_rejoin(2000));
  EXPECT_EQ(primary.stats().full_syncs_served, 1u);
  EXPECT_EQ(primary.stats().deltas_served, 0u);
  EXPECT_TRUE(await_ack(primary, 60));
  pair.client.close_peer();
  serve2.join();

  EXPECT_EQ(backup.applied_seq(), 60u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);
}

}  // namespace
}  // namespace vrep::net
