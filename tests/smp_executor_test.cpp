// Real-SMP executor: N concurrent workers under partition latches, captured
// redo funneled through the bounded staging queue into the single-writer
// sequencer, replicated 2-safe through the group-commit window to an
// in-process backup. These tests are the TSan preset's main subject: every
// assertion holds while the sanitizer watches the worker/sequencer/backup
// handoffs.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "exec/smp_executor.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport_link.hpp"
#include "net/wire_repl.hpp"
#include "util/crc32.hpp"

namespace vrep::exec {
namespace {

// In-process backup serving on its own thread: a third concurrent actor, so
// the 2-safe ack path runs against live worker/sequencer traffic.
struct BackupHarness {
  net::InprocTransport primary_end, backup_end;
  net::TransportLink link{&primary_end};
  rio::Arena arena;
  std::unique_ptr<net::WireBackup> backup;
  std::thread thread;

  void start(std::size_t db_size) {
    net::InprocTransport::pair(primary_end, backup_end);
    arena = rio::Arena::create(db_size);
    backup = std::make_unique<net::WireBackup>(arena);
    thread = std::thread([this] {
      net::WireBackup::ServeOptions options;
      options.idle_timeout_ms = 200;
      // Idle gaps (executor setup, final sync) look like primary silence;
      // keep serving until the primary really closes the connection.
      while (backup->serve(backup_end, options) ==
             net::WireBackup::ServeResult::kPrimaryFailed) {
      }
    });
  }
  void stop() {
    primary_end.close_peer();
    thread.join();
  }
};

void expect_converged(SmpExecutor& executor, BackupHarness& harness,
                      std::uint64_t expect_committed) {
  EXPECT_EQ(executor.sequenced(), expect_committed);
  EXPECT_EQ(harness.backup->applied_seq(), expect_committed);
  EXPECT_EQ(executor.check_consistency(), "");
  const std::uint32_t primary_crc = Crc32::of(executor.image(), executor.image_size());
  const std::uint32_t backup_crc = Crc32::of(harness.backup->db(), executor.image_size());
  EXPECT_EQ(primary_crc, backup_crc);
}

TEST(SmpExecutor, SingleWorkerBackupConverges) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.workers = 1;
  config.partitions = 1;
  config.txns_per_worker = 500;
  config.two_safe = true;
  config.commit_window = 8;
  config.group_size = 4;
  BackupHarness harness;
  SmpExecutor executor(config, &harness.link);
  harness.start(executor.image_size());
  ASSERT_TRUE(executor.sync_backup());
  const auto result = executor.run();
  harness.stop();
  EXPECT_EQ(result.committed, 500u);
  EXPECT_GT(result.tps, 0.0);
  expect_converged(executor, harness, 500);
}

// The commit_async()/wait() race hammer: more workers than partitions (every
// latch is contended), a deliberately tiny staging queue (constant
// backpressure), and a 2-safe W=8/G=4 window (the sequencer stalls on acks
// while workers keep producing). The backup must still converge to the
// byte-exact primary image.
TEST(SmpExecutor, RaceHammerContendedWorkersConverge) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.workers = 4;
  config.partitions = 2;
  config.queue_capacity = 8;
  config.txns_per_worker = 1'500;
  config.two_safe = true;
  config.commit_window = 8;
  config.group_size = 4;
  BackupHarness harness;
  SmpExecutor executor(config, &harness.link);
  harness.start(executor.image_size());
  ASSERT_TRUE(executor.sync_backup());
  const auto result = executor.run();
  harness.stop();
  EXPECT_EQ(result.committed, 6'000u);
  expect_converged(executor, harness, 6'000);
}

TEST(SmpExecutor, OrderEntryWorkloadConverges) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kOrderEntry;
  config.workers = 2;
  config.partitions = 2;
  config.partition_db_size = 4u << 20;
  config.txns_per_worker = 400;
  config.two_safe = true;
  config.commit_window = 8;
  config.group_size = 4;
  BackupHarness harness;
  SmpExecutor executor(config, &harness.link);
  harness.start(executor.image_size());
  ASSERT_TRUE(executor.sync_backup());
  const auto result = executor.run();
  harness.stop();
  EXPECT_EQ(result.committed, 800u);
  expect_converged(executor, harness, 800);
}

// All four workers on ONE partition: fully serialized by the latch, so the
// latch itself (not scheduling luck) carries correctness; runs without a
// link to cover the unreplicated path.
TEST(SmpExecutor, SinglePartitionFullContentionUnreplicated) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.workers = 4;
  config.partitions = 1;
  config.txns_per_worker = 800;
  SmpExecutor executor(config, /*link=*/nullptr);
  const auto result = executor.run();
  EXPECT_EQ(result.committed, 3'200u);
  EXPECT_EQ(executor.check_consistency(), "");
  // The pipeline sequenced every transaction even with no peer attached.
  EXPECT_EQ(executor.pipeline().last_ticket_seq(), 3'200u);
}

// Backpressure: a queue of one forces a worker/sequencer handoff per txn;
// with four workers the full-queue wait path is guaranteed to execute.
TEST(SmpExecutor, TinyQueueBackpressureIsLossless) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.workers = 4;
  config.partitions = 4;
  config.queue_capacity = 1;
  config.txns_per_worker = 300;
  BackupHarness harness;
  SmpConfig replicated = config;
  replicated.two_safe = true;
  SmpExecutor executor(replicated, &harness.link);
  harness.start(executor.image_size());
  ASSERT_TRUE(executor.sync_backup());
  const auto result = executor.run();
  harness.stop();
  EXPECT_EQ(result.committed, 1'200u);
  expect_converged(executor, harness, 1'200);
}

// Shard groups: the partitions split into independent sequencer domains,
// each with its own pipeline and sequence stream. Same worker RNG streams
// as the single-sequencer executor, so the partition picks are identical —
// only the commit sequencing is partitioned.
TEST(SmpExecutor, ShardGroupsSequenceIndependentlyAndStayConsistent) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  config.workers = 4;
  config.partitions = 8;
  config.txns_per_worker = 600;
  config.sequencer_shards = 4;
  SmpExecutor executor(config, /*link=*/nullptr);
  ASSERT_EQ(executor.shard_group_count(), 4u);
  const auto result = executor.run();
  EXPECT_EQ(result.committed, 2'400u);
  EXPECT_EQ(executor.check_consistency(), "");
  // Every transaction was sequenced by exactly one group, and each group
  // sequenced its own contiguous stream.
  std::uint64_t total = 0;
  for (unsigned g = 0; g < 4; ++g) {
    const std::uint64_t n = executor.group_sequenced(g);
    EXPECT_GT(n, 0u) << "group " << g << " never sequenced (partition map broken)";
    EXPECT_EQ(executor.group_pipeline(g).last_ticket_seq(), n);
    total += n;
  }
  EXPECT_EQ(total, 2'400u);
  EXPECT_EQ(executor.sequenced(), 2'400u);
  // The gathered image is still the full database (all groups concatenated).
  EXPECT_EQ(executor.image_size(), config.partitions * config.partition_db_size);
  EXPECT_NE(executor.image(), nullptr);
}

// The partition routing hook (the shard router's integration point): a null
// hook must be byte-identical to the historical `draw % partitions`
// placement — same RNG stream, same images — and a custom hook changes
// placement ONLY, never correctness.
TEST(SmpExecutor, RouteHookDefaultsToModuloAndOnlyMovesPlacement) {
  SmpConfig config;
  config.workload = wl::WorkloadKind::kDebitCredit;
  // One worker: the draw stream AND the sequencing order are deterministic,
  // so byte-identity between runs is meaningful.
  config.workers = 1;
  config.partitions = 4;
  config.txns_per_worker = 800;

  SmpExecutor baseline(config, /*link=*/nullptr);
  ASSERT_EQ(baseline.run().committed, 800u);

  // An explicit hook that reproduces the default placement: identical image.
  SmpConfig explicit_mod = config;
  explicit_mod.route = [](std::uint32_t draw, std::size_t partitions) {
    return static_cast<std::size_t>(draw % partitions);
  };
  SmpExecutor mirrored(explicit_mod, /*link=*/nullptr);
  ASSERT_EQ(mirrored.run().committed, 800u);
  ASSERT_EQ(mirrored.image_size(), baseline.image_size());
  EXPECT_EQ(Crc32::of(mirrored.image(), mirrored.image_size()),
            Crc32::of(baseline.image(), baseline.image_size()))
      << "a modulo route hook must be byte-identical to no hook";

  // A skewing hook (everything onto the upper half): placement moves, the
  // per-partition books still balance, and the same draw stream committed
  // the same transaction count.
  SmpConfig skewed = config;
  skewed.route = [](std::uint32_t draw, std::size_t partitions) {
    return partitions / 2 + static_cast<std::size_t>(draw) % (partitions - partitions / 2);
  };
  SmpExecutor skew(skewed, /*link=*/nullptr);
  ASSERT_EQ(skew.run().committed, 800u);
  EXPECT_EQ(skew.check_consistency(), "");
  EXPECT_NE(Crc32::of(skew.image(), skew.image_size()),
            Crc32::of(baseline.image(), baseline.image_size()))
      << "the skewing hook never changed placement";
}

}  // namespace
}  // namespace vrep::exec
