// Integration tests of the full experiment harness: determinism, the
// paper's qualitative orderings, and accounting sanity.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace vrep::harness {
namespace {

ExperimentConfig base() {
  ExperimentConfig config;
  config.db_size = 8ull << 20;
  config.txns_per_stream = 5'000;
  return config;
}

ExperimentResult run(core::VersionKind v, Mode m, int streams = 1,
                     wl::WorkloadKind w = wl::WorkloadKind::kDebitCredit) {
  ExperimentConfig config = base();
  config.version = v;
  config.mode = m;
  config.streams = streams;
  config.workload = w;
  return run_experiment(config);
}

TEST(Experiment, DeterministicVirtualTime) {
  const auto a = run(core::VersionKind::kV3InlineLog, Mode::kPassive);
  const auto b = run(core::VersionKind::kV3InlineLog, Mode::kPassive);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.traffic.total(), b.traffic.total());
  EXPECT_EQ(a.packets, b.packets);
}

TEST(Experiment, SeedChangesResultSlightly) {
  ExperimentConfig c1 = base(), c2 = base();
  c2.seed = 2;
  const auto a = run_experiment(c1);
  const auto b = run_experiment(c2);
  EXPECT_NE(a.seconds, b.seconds);
  EXPECT_NEAR(a.tps, b.tps, a.tps * 0.05) << "different seed, same distribution";
}

TEST(Experiment, StandaloneOrderingMatchesPaperTable3) {
  const double v0 = run(core::VersionKind::kV0Vista, Mode::kStandalone).tps;
  const double v1 = run(core::VersionKind::kV1MirrorCopy, Mode::kStandalone).tps;
  const double v2 = run(core::VersionKind::kV2MirrorDiff, Mode::kStandalone).tps;
  const double v3 = run(core::VersionKind::kV3InlineLog, Mode::kStandalone).tps;
  EXPECT_GT(v3, v1);
  EXPECT_GT(v1, v2);
  EXPECT_GT(v2, v0);
}

TEST(Experiment, PassiveOrderingMatchesPaperTable4) {
  const double v0 = run(core::VersionKind::kV0Vista, Mode::kPassive).tps;
  const double v2 = run(core::VersionKind::kV2MirrorDiff, Mode::kPassive).tps;
  const double v3 = run(core::VersionKind::kV3InlineLog, Mode::kPassive).tps;
  EXPECT_GT(v3, v2) << "logging beats mirroring under write-through";
  EXPECT_GT(v2, 2 * v0) << "all restructured versions crush Version 0";
}

TEST(Experiment, ActiveBeatsBestPassive) {
  const double passive = run(core::VersionKind::kV3InlineLog, Mode::kPassive).tps;
  const double active = run(core::VersionKind::kV3InlineLog, Mode::kActive).tps;
  EXPECT_GT(active, passive);
}

TEST(Experiment, ReplicationCostsThroughput) {
  const double standalone = run(core::VersionKind::kV3InlineLog, Mode::kStandalone).tps;
  const double passive = run(core::VersionKind::kV3InlineLog, Mode::kPassive).tps;
  EXPECT_GT(standalone, passive);
}

TEST(Experiment, TrafficBreakdownShape) {
  // Paper Table 5/7 structure: V1 ships full ranges as undo, V2 ships only
  // diffs, V3 ships undo + headers, active ships no undo at all.
  const auto v1 = run(core::VersionKind::kV1MirrorCopy, Mode::kPassive);
  const auto v2 = run(core::VersionKind::kV2MirrorDiff, Mode::kPassive);
  const auto v3 = run(core::VersionKind::kV3InlineLog, Mode::kPassive);
  const auto act = run(core::VersionKind::kV3InlineLog, Mode::kActive);

  EXPECT_EQ(v1.traffic.modified(), v2.traffic.modified());
  EXPECT_GT(v1.traffic.undo(), 2 * v2.traffic.undo());
  EXPECT_NEAR(static_cast<double>(v2.traffic.undo()),
              static_cast<double>(v2.traffic.modified()),
              static_cast<double>(v2.traffic.modified()) * 0.55)
      << "diffing ships roughly the modified bytes";
  EXPECT_EQ(v1.traffic.undo(), v3.traffic.undo()) << "same before-image volume";
  EXPECT_EQ(act.traffic.undo(), 0u);
  EXPECT_LT(act.traffic.total(), v3.traffic.total());
}

TEST(Experiment, ActivePacketsAreFullSize) {
  const auto act = run(core::VersionKind::kV3InlineLog, Mode::kActive);
  EXPECT_GT(act.avg_packet_bytes, 30.0) << "the redo stream must coalesce into 32B packets";
  const auto v2 = run(core::VersionKind::kV2MirrorDiff, Mode::kPassive);
  EXPECT_LT(v2.avg_packet_bytes, 8.0) << "diff writes are scattered small packets";
}

TEST(Experiment, CommittedCountsMatch) {
  const auto r = run(core::VersionKind::kV3InlineLog, Mode::kPassive);
  EXPECT_EQ(r.committed, 5'000u);
  EXPECT_GT(r.tps, 0.0);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Experiment, SmpAggregateScalesForActive) {
  ExperimentConfig config = base();
  config.mode = Mode::kActive;
  config.db_size = 4ull << 20;  // paper: 10MB per stream; scaled for test speed
  config.txns_per_stream = 3'000;
  config.streams = 1;
  const double one = run_experiment(config).tps;
  config.streams = 4;
  const double four = run_experiment(config).tps;
  EXPECT_GT(four, 3.0 * one) << "active should scale near-linearly to 4 CPUs";
}

TEST(Experiment, SmpMirroringSaturates) {
  ExperimentConfig config = base();
  config.mode = Mode::kPassive;
  config.version = core::VersionKind::kV1MirrorCopy;
  config.db_size = 4ull << 20;
  config.txns_per_stream = 3'000;
  config.streams = 1;
  const double one = run_experiment(config).tps;
  config.streams = 4;
  const double four = run_experiment(config).tps;
  EXPECT_LT(four, 2.5 * one) << "mirroring must hit the SAN wall (paper Fig. 2/3)";
}

TEST(Experiment, LargerDatabaseDegradesGracefully) {
  ExperimentConfig config = base();
  config.mode = Mode::kActive;
  config.txns_per_stream = 4'000;
  config.db_size = 8ull << 20;
  const double small = run_experiment(config).tps;
  config.db_size = 128ull << 20;
  const double large = run_experiment(config).tps;
  EXPECT_LT(large, small);
  EXPECT_GT(large, 0.6 * small) << "Table 8: graceful degradation, not collapse";
}

}  // namespace
}  // namespace vrep::harness
