// Write-buffer coalescing model (sim/write_buffer.hpp).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/write_buffer.hpp"

namespace vrep::sim {
namespace {

struct Collector {
  std::vector<Packet> packets;
  WriteBufferSet::PacketSink sink() {
    return [this](const Packet& p) { packets.push_back(p); };
  }
};

TEST(WriteBuffer, ContiguousStoresCoalesceIntoOnePacket) {
  Collector c;
  WriteBufferSet wb(c.sink());
  const std::uint32_t v = 0x01020304;
  for (int i = 0; i < 8; ++i) wb.store(64 + 4 * i, &v, 4);  // fills one 32B block
  ASSERT_EQ(c.packets.size(), 1u) << "a filled buffer flushes immediately";
  EXPECT_EQ(c.packets[0].io_offset, 64u);
  EXPECT_EQ(c.packets[0].len, 32u);
}

TEST(WriteBuffer, ScatteredStoresEmitSmallPackets) {
  Collector c;
  WriteBufferSet wb(c.sink());
  const std::uint32_t v = 7;
  // 12 stores to 12 distinct blocks: 6 fit in buffers, the rest evict.
  for (int i = 0; i < 12; ++i) wb.store(static_cast<std::uint64_t>(i) * 64, &v, 4);
  EXPECT_EQ(c.packets.size(), 6u);
  wb.flush_all();
  EXPECT_EQ(c.packets.size(), 12u);
  for (const auto& p : c.packets) EXPECT_EQ(p.len, 4u);
}

TEST(WriteBuffer, EvictionIsOldestFirst) {
  Collector c;
  WriteBufferSet wb(c.sink());
  const std::uint32_t v = 7;
  for (int i = 0; i < 7; ++i) wb.store(static_cast<std::uint64_t>(i) * 64, &v, 4);
  ASSERT_EQ(c.packets.size(), 1u);
  EXPECT_EQ(c.packets[0].io_offset, 0u) << "block 0 was the oldest allocation";
}

TEST(WriteBuffer, RewriteSameBlockMergesWithoutNewPacket) {
  Collector c;
  WriteBufferSet wb(c.sink());
  const std::uint32_t a = 0xAAAAAAAA, b = 0xBBBBBBBB;
  wb.store(128, &a, 4);
  wb.store(128, &b, 4);  // overwrite the same bytes
  wb.store(140, &a, 4);  // separate run in the same block
  EXPECT_TRUE(c.packets.empty());
  wb.flush_all();
  // Two contiguous runs: [128,132) and [140,144).
  ASSERT_EQ(c.packets.size(), 2u);
  EXPECT_EQ(c.packets[0].io_offset, 128u);
  EXPECT_EQ(c.packets[0].len, 4u);
  std::uint32_t got;
  std::memcpy(&got, c.packets[0].data.data(), 4);
  EXPECT_EQ(got, b) << "later store wins";
  EXPECT_EQ(c.packets[1].io_offset, 140u);
}

TEST(WriteBuffer, StoreSpanningBlocksSplits) {
  Collector c;
  WriteBufferSet wb(c.sink());
  std::uint8_t data[16];
  for (int i = 0; i < 16; ++i) data[i] = static_cast<std::uint8_t>(i + 1);
  wb.store(56, data, 16);  // crosses the 32B boundary at 64
  wb.flush_all();
  ASSERT_EQ(c.packets.size(), 2u);
  EXPECT_EQ(c.packets[0].io_offset, 56u);
  EXPECT_EQ(c.packets[0].len, 8u);
  EXPECT_EQ(c.packets[1].io_offset, 64u);
  EXPECT_EQ(c.packets[1].len, 8u);
  EXPECT_EQ(c.packets[1].data[0], 9);  // continuation of the payload
}

TEST(WriteBuffer, FlushAllPreservesAllocationOrder) {
  Collector c;
  WriteBufferSet wb(c.sink());
  const std::uint32_t v = 1;
  wb.store(5 * 64, &v, 4);
  wb.store(2 * 64, &v, 4);
  wb.store(9 * 64, &v, 4);
  wb.flush_all();
  ASSERT_EQ(c.packets.size(), 3u);
  EXPECT_EQ(c.packets[0].io_offset, 5u * 64);
  EXPECT_EQ(c.packets[1].io_offset, 2u * 64);
  EXPECT_EQ(c.packets[2].io_offset, 9u * 64);
}

TEST(WriteBuffer, SequentialStreamProducesFullPackets) {
  // The paper's headline effect: a sequential log write pattern must come
  // out as back-to-back 32-byte packets.
  Collector c;
  WriteBufferSet wb(c.sink());
  std::uint8_t chunk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (std::uint64_t off = 0; off < 4096; off += 8) wb.store(off, chunk, 8);
  EXPECT_EQ(c.packets.size(), 4096u / 32);
  for (const auto& p : c.packets) EXPECT_EQ(p.len, 32u);
}

TEST(WriteBuffer, PayloadBytesAreExact) {
  Collector c;
  WriteBufferSet wb(c.sink());
  std::uint8_t pattern[32];
  for (int i = 0; i < 32; ++i) pattern[i] = static_cast<std::uint8_t>(255 - i);
  wb.store(96, pattern, 32);
  ASSERT_EQ(c.packets.size(), 1u);
  EXPECT_EQ(std::memcmp(c.packets[0].data.data(), pattern, 32), 0);
}

}  // namespace
}  // namespace vrep::sim
