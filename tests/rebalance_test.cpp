// Online shard rebalancing: range split/merge semantics, map validation
// deaths, migration + fenced cutover conformance against a reconfiguration-
// aware oracle, planned primary handoff (zero loss, zero takeover-path
// resolutions, zero full syncs), stale-map 2PC re-routing, a randomized
// 32-seed reconfiguration matrix (splits, merges, handoffs and backup adds
// threaded through live cross-shard load — some seeds also kill a primary
// mid-migration), and a threaded execute-vs-rebalance hammer (TSan preset
// subject).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "shard/rebalancer.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using Cluster = shard::ShardedCluster;
constexpr std::uint64_t kHashMax = ~std::uint64_t{0};

// ---- ShardMap split / merge -------------------------------------------------

TEST(ShardMapSplit, SplitsOneRangeAndHandsTheUpperHalfToANewShard) {
  const shard::ShardMap map = shard::ShardMap::uniform(2);
  const std::uint64_t boundary = map.upper_bound(0);
  const std::uint64_t at = boundary / 2;
  const shard::ShardMap split = map.split(at, "fresh");

  EXPECT_EQ(split.version(), map.version() + 1);
  EXPECT_EQ(split.num_shards(), 3u);
  EXPECT_EQ(split.num_ranges(), 3u);
  EXPECT_EQ(split.name(2), "fresh");
  // Lower half keeps the old owner; (at, old_upper] belongs to the new shard.
  EXPECT_EQ(split.shard_of(0), 0u);
  EXPECT_EQ(split.shard_of(at), 0u);
  EXPECT_EQ(split.shard_of(at + 1), 2u);
  EXPECT_EQ(split.shard_of(boundary), 2u);
  EXPECT_EQ(split.shard_of(boundary + 1), 1u);
  EXPECT_EQ(split.shard_of(kHashMax), 1u);
  // The old map is untouched (split is pure).
  EXPECT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.version(), 1u);
}

TEST(ShardMapSplit, SecondSplitOfTheSameOwnerKeepsCoverage) {
  const shard::ShardMap map = shard::ShardMap::uniform(1);
  const shard::ShardMap once = map.split(1ull << 62);
  const shard::ShardMap twice = once.split(1ull << 60);
  EXPECT_EQ(twice.num_shards(), 3u);
  EXPECT_EQ(twice.shard_of(0), 0u);
  EXPECT_EQ(twice.shard_of((1ull << 60) + 1), 2u);
  EXPECT_EQ(twice.shard_of((1ull << 62) + 1), 1u);
  EXPECT_EQ(twice.shard_of(kHashMax), 1u);
}

TEST(ShardMapMerge, DrainsTheVictimIntoItsNeighbors) {
  const shard::ShardMap map = shard::ShardMap::uniform(3);
  const shard::ShardMap merged = shard::ShardMap(map).merged_out(1);
  EXPECT_EQ(merged.version(), map.version() + 1);
  // The victim keeps its id and name but owns nothing; every hash still has
  // an owner and none of it is the victim.
  EXPECT_EQ(merged.num_shards(), 3u);
  EXPECT_TRUE(merged.ranges_owned(1) == 0u);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(merged.shard_of(rng.next_u64()), 1u);
  }
  // Shard 1's old range went to the preceding survivor.
  EXPECT_EQ(merged.shard_of(map.upper_bound(0) + 1), 0u);
  EXPECT_EQ(merged.shard_of(kHashMax), 2u);
}

TEST(ShardMapMerge, MergingTheFirstShardFallsForwardToTheNextSurvivor) {
  const shard::ShardMap map = shard::ShardMap::uniform(3);
  const shard::ShardMap merged = shard::ShardMap(map).merged_out(0);
  EXPECT_TRUE(merged.ranges_owned(0) == 0u);
  EXPECT_EQ(merged.shard_of(0), 1u);
  EXPECT_EQ(merged.shard_of(map.upper_bound(0)), 1u);
  EXPECT_EQ(merged.shard_of(kHashMax), 2u);
}

TEST(ShardMapMerge, SplitThenMergeRestoresTheOriginalRouting) {
  const shard::ShardMap map = shard::ShardMap::uniform(3);
  const shard::ShardMap split = map.split(map.upper_bound(0) / 2);
  const shard::ShardMap merged = split.merged_out(3);
  Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t h = rng.next_u64();
    EXPECT_EQ(merged.shard_of(h), map.shard_of(h));
  }
}

// ---- map validation (the JSON-load bugfix's enforcement layer) --------------

using ShardMapDeath = ::testing::Test;

TEST(ShardMapDeath, OverlappingRangesDieOnConstruction) {
  const std::vector<shard::ShardMap::Range> overlapping = {
      {100, 0}, {100, 1}, {kHashMax, 1}};
  EXPECT_DEATH(shard::ShardMap(overlapping, 1, {"a", "b"}), "CHECK");
}

TEST(ShardMapDeath, NonCoveringRangesDieOnConstruction) {
  const std::vector<shard::ShardMap::Range> truncated = {{100, 0}, {200, 1}};
  EXPECT_DEATH(shard::ShardMap(truncated, 1, {"a", "b"}), "CHECK");
}

TEST(ShardMapDeath, OwnerOutOfRangeDiesOnConstruction) {
  const std::vector<shard::ShardMap::Range> stray = {{100, 0}, {kHashMax, 7}};
  EXPECT_DEATH(shard::ShardMap(stray, 1, {"a", "b"}), "CHECK");
}

TEST(ShardMapDeath, SplittingAtARangeUpperBoundDies) {
  const shard::ShardMap map = shard::ShardMap::uniform(2);
  EXPECT_DEATH(map.split(map.upper_bound(0)), "CHECK");
}

TEST(ShardMapDeath, MergingAShardThatOwnsNothingDies) {
  const shard::ShardMap merged = shard::ShardMap::uniform(3).merged_out(1);
  EXPECT_DEATH(merged.merged_out(1), "CHECK");
}

TEST(ShardMapDeath, MergingTheLastOwnerDies) {
  const shard::ShardMap map = shard::ShardMap::uniform(1);
  EXPECT_DEATH(map.merged_out(0), "CHECK");
}

// ---- reconfiguration-aware oracle -------------------------------------------

// Enumerate the moving set between two maps with the cluster's ownership
// rule (record_key -> hash -> owner), kinds: 0 account, 1 teller, 2 branch.
template <typename Fn>
void for_each_moving_record(const shard::ShardMap& live, const shard::ShardMap& target,
                            const wl::DebitCredit& workload, Fn&& fn) {
  const auto scan = [&](unsigned kind, std::size_t count, auto offset_of) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t h = shard::hash_key(Cluster::record_key(kind, i));
      const shard::ShardId src = live.shard_of(h);
      const shard::ShardId dst = target.shard_of(h);
      if (src != dst) fn(src, dst, static_cast<std::uint64_t>(offset_of(i)));
    }
  };
  scan(0, workload.num_accounts(), [&](std::size_t i) { return workload.account_offset(i); });
  scan(1, workload.num_tellers(), [&](std::size_t i) { return workload.teller_offset(i); });
  scan(2, workload.num_branches(), [&](std::size_t i) { return workload.branch_offset(i); });
}

// Replay the cluster's history — plan stream AND reconfiguration events —
// into flat per-shard images. Balances are purely additive and migration is
// move-and-zero, so the final image is interleave-independent: the oracle
// applies each migration's whole moving set in one shot at its cutover
// boundary and must still match the cluster byte for byte.
std::vector<std::vector<std::uint8_t>> replay_rebalance_oracle(
    const Cluster& cluster, unsigned initial_shards, std::uint64_t seed,
    double remote_fraction, const Cluster::RunResult& run) {
  const wl::DebitCredit& workload = cluster.workload();
  shard::ShardMap map = shard::ShardMap::uniform(initial_shards);
  std::optional<shard::ShardMap> staged;
  unsigned n = initial_shards;
  const shard::Router router(map);  // observes the in-place map flips below
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> dbs(
      cluster.num_shards(), std::vector<std::uint8_t>(cluster.workload_bytes(), 0));
  auto bump = [](std::vector<std::uint8_t>& db, std::size_t off, std::int32_t amount) {
    std::int32_t balance;
    std::memcpy(&balance, db.data() + off, sizeof balance);
    balance += amount;
    std::memcpy(db.data() + off, &balance, sizeof balance);
  };

  std::size_t ei = 0;
  const auto apply_events_at = [&](std::uint64_t txn) {
    while (ei < run.events.size() && run.events[ei].at_txn == txn) {
      const shard::RebalanceEvent& ev = run.events[ei++];
      switch (ev.kind) {
        case shard::RebalanceEvent::Kind::kBegin:
          ASSERT_FALSE(staged.has_value()) << "two migrations staged at once";
          staged = ev.op.kind == shard::RebalanceOp::Kind::kSplit
                       ? map.split(ev.op.at_hash)
                       : map.merged_out(ev.op.shard);
          EXPECT_EQ(ev.map_version, map.version()) << "begin does not flip the map";
          n = ev.num_shards;
          break;
        case shard::RebalanceEvent::Kind::kCutover: {
          ASSERT_TRUE(staged.has_value());
          for_each_moving_record(map, *staged, workload,
                                 [&](shard::ShardId src, shard::ShardId dst,
                                     std::uint64_t off) {
                                   std::int32_t v;
                                   std::memcpy(&v, dbs[src].data() + off, sizeof v);
                                   bump(dbs[dst], off, v);
                                   std::memset(dbs[src].data() + off, 0, sizeof v);
                                 });
          map = *staged;
          staged.reset();
          EXPECT_EQ(ev.map_version, map.version());
          n = ev.num_shards;
          break;
        }
        case shard::RebalanceEvent::Kind::kHandoff:
        case shard::RebalanceEvent::Kind::kAddBackup:
          break;  // membership only — no data effect
      }
    }
  };

  std::uint64_t i = 1;
  for (const Cluster::TxnOutcome& out : run.trace) {
    apply_events_at(i);
    const shard::TxnDecision d =
        shard::plan_txn(router, workload, n, rng, remote_fraction);
    EXPECT_EQ(d.cross, out.cross) << "oracle diverged from the plan stream at txn " << i;
    EXPECT_EQ(d.home, out.home) << "txn " << i;
    EXPECT_EQ(d.remote, out.remote) << "txn " << i;
    ++i;
    if (!out.committed) continue;  // chaos-aborted 2PC: no effects anywhere
    auto& home = dbs[d.home];
    bump(dbs[d.cross ? d.remote : d.home], workload.account_offset(d.plan.account),
         d.plan.amount);
    bump(home, workload.teller_offset(d.plan.teller), d.plan.amount);
    bump(home, workload.branch_offset(d.plan.branch), d.plan.amount);
    const wl::DebitCredit::HistoryRecord rec{d.plan.account, d.plan.teller,
                                             d.plan.branch, d.plan.amount};
    std::memcpy(home.data() + workload.history_offset(out.home_seq - 1), &rec,
                sizeof rec);
  }
  apply_events_at(i);  // ops/cutovers that completed after the stream
  return dbs;
}

void expect_converged(const Cluster& cluster,
                      const std::vector<std::vector<std::uint8_t>>& oracle) {
  ASSERT_EQ(oracle.size(), std::size_t{cluster.num_shards()});
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u) << "shard " << s << " still holds in-doubt state";
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
    EXPECT_EQ(cluster.shard_crc(s), Crc32::of(oracle[s].data(), oracle[s].size()))
        << "shard " << s << " surviving image != reconfiguration-aware oracle";
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u)
      << "a transaction was resolved both ways";
}

// ---- scripted split / merge under live traffic ------------------------------

TEST(Rebalance, SplitMigratesUnderLoadWithZeroLossAndOracleMatch) {
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 2;
  Cluster cluster(config);

  shard::RebalanceScript script;
  script.chunk_records = 4;  // small on purpose: force a multi-chunk migration
  script.ops.push_back({shard::RebalanceOp::Kind::kSplit, /*at_txn=*/200, /*shard=*/0, 0});
  const Cluster::RunResult run = cluster.run(/*seed=*/11, 1200, /*remote_fraction=*/0.3,
                                             {}, script);

  EXPECT_EQ(run.committed, 1200u) << "a migration must not abort live traffic";
  EXPECT_EQ(cluster.num_shards(), 4u);
  EXPECT_EQ(cluster.map().version(), 2u);
  ASSERT_GE(run.events.size(), 2u);
  EXPECT_EQ(run.events[0].kind, shard::RebalanceEvent::Kind::kBegin);
  EXPECT_EQ(run.events[0].at_txn, 200u);
  EXPECT_EQ(run.events[1].kind, shard::RebalanceEvent::Kind::kCutover);
  EXPECT_GT(run.events[1].at_txn, 200u) << "the cutover cannot precede the begin";

  const Cluster::RebalanceCounters c = cluster.rebalance_counters();
  EXPECT_GT(c.records_moved, 0u);
  EXPECT_GT(c.bytes_moved, 0u);
  EXPECT_GT(c.chunks, 0u);
  EXPECT_EQ(c.cutovers, 1u);
  // Bounded chunks: the moving set needed more than one 2PC transaction.
  EXPECT_GT(c.chunks, 1u);

  expect_converged(cluster,
                   replay_rebalance_oracle(cluster, config.shards, 11, 0.3, run));
}

TEST(Rebalance, SplitThenMergeDrainsTheNewShardBackOut) {
  shard::ShardedConfig config;
  config.shards = 2;
  Cluster cluster(config);

  shard::RebalanceScript script;
  script.chunk_records = 32;
  script.steps_per_txn = 2;
  script.ops.push_back({shard::RebalanceOp::Kind::kSplit, 100, /*shard=*/1, 0});
  script.ops.push_back({shard::RebalanceOp::Kind::kMerge, 600, /*shard=*/2, 0});
  const Cluster::RunResult run = cluster.run(23, 1500, 0.25, {}, script);

  EXPECT_EQ(run.committed, 1500u);
  EXPECT_EQ(cluster.map().version(), 3u) << "two cutovers";
  EXPECT_TRUE(cluster.map().ranges_owned(2) == 0u) << "the merged shard owns nothing";
  EXPECT_EQ(cluster.rebalance_counters().cutovers, 2u);
  expect_converged(cluster, replay_rebalance_oracle(cluster, config.shards, 23, 0.25, run));
}

// The acceptance recipe: a scripted split plus a primary handoff under live
// Debit-Credit load — zero committed-transaction loss, zero resolution
// conflicts, and the handoff ships no full image.
TEST(Rebalance, SplitPlusHandoffUnderLiveLoad) {
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 2;
  Cluster cluster(config);

  shard::RebalanceScript script;
  script.chunk_records = 16;
  script.ops.push_back({shard::RebalanceOp::Kind::kSplit, 150, /*shard=*/0, 0});
  script.ops.push_back({shard::RebalanceOp::Kind::kHandoff, 151, /*shard=*/0, 0});
  const Cluster::RunResult run = cluster.run(42, 1500, 0.3, {}, script);

  EXPECT_EQ(run.committed, 1500u) << "zero committed-transaction loss";
  EXPECT_EQ(run.chaos_aborted, 0u);
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
  EXPECT_EQ(run.takeovers, 0u) << "a planned handoff is not a takeover";
  EXPECT_EQ(cluster.rebalance_counters().handoffs, 1u);
  EXPECT_EQ(cluster.full_syncs_served(0), 0u)
      << "the demoted primary must rejoin by empty delta";
  // The handoff bumped shard 0's epoch (fencing the old primary's lineage);
  // the other shards were never fenced.
  const std::uint64_t base_epoch = 1 + config.backups_per_shard;
  EXPECT_GT(cluster.shard_epoch(0), base_epoch);
  EXPECT_EQ(cluster.shard_epoch(1), base_epoch);
  // The handoff was deferred past the split's cutover; both events logged.
  bool saw_handoff = false;
  for (const auto& ev : run.events) {
    saw_handoff |= ev.kind == shard::RebalanceEvent::Kind::kHandoff;
  }
  EXPECT_TRUE(saw_handoff);
  expect_converged(cluster, replay_rebalance_oracle(cluster, config.shards, 42, 0.3, run));
}

// ---- planned handoff / backup growth, driven directly -----------------------

TEST(Rebalance, HandoffPrimaryLosesNothingAndServesOn) {
  shard::ShardedConfig config;
  config.shards = 2;
  config.backups_per_shard = 2;
  Cluster cluster(config);
  const Cluster::RunResult before = cluster.run(7, 500, 0.4);
  EXPECT_EQ(before.committed, 500u);
  const std::uint64_t committed_before = cluster.shard_committed(0);

  cluster.handoff_primary(0);

  EXPECT_EQ(cluster.shard_committed(0), committed_before)
      << "a planned handoff replays nothing and loses nothing";
  EXPECT_EQ(cluster.takeovers(), 0u);
  EXPECT_EQ(cluster.backup_count(0), 2u)
      << "the demoted primary joined the backup set";
  EXPECT_EQ(cluster.full_syncs_served(0), 0u);
  EXPECT_EQ(cluster.check_replicas(0), "");

  // The shard keeps serving across a second handoff-heavy run.
  const Cluster::RunResult after = cluster.run(8, 500, 0.4);
  EXPECT_EQ(after.committed, 500u);
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
}

TEST(Rebalance, AddBackupFullSyncsAndRidesTheStream) {
  shard::ShardedConfig config;
  config.shards = 2;
  config.backups_per_shard = 1;
  Cluster cluster(config);
  EXPECT_EQ(cluster.run(3, 300, 0.2).committed, 300u);

  cluster.add_backup(1);
  EXPECT_EQ(cluster.backup_count(1), 2u);
  EXPECT_EQ(cluster.rebalance_counters().backup_adds, 1u);
  EXPECT_EQ(cluster.check_replicas(1), "") << "the new backup must be caught up";

  EXPECT_EQ(cluster.run(4, 300, 0.2).committed, 300u);
  EXPECT_EQ(cluster.check_replicas(1), "");
  EXPECT_EQ(cluster.check_global_consistency(), "");
}

// ---- reconfigurable 2PC: stale-map decisions --------------------------------

TEST(Rebalance, StaleMapDecisionsRerouteInsteadOfDualApplying) {
  shard::ShardedConfig config;
  config.shards = 2;
  Cluster cluster(config);

  // Plan a batch against map v1, including cross-shard transactions.
  const shard::Router router(cluster.map());
  std::vector<shard::TxnDecision> stale;
  Rng rng(0xabcd);
  for (int i = 0; i < 400; ++i) {
    stale.push_back(shard::plan_txn(router, cluster.workload(), cluster.num_shards(),
                                    rng, 0.5));
    EXPECT_EQ(stale.back().map_version, 1u);
  }

  // Split shard 0 and run the migration to completion: the map is now v2
  // and roughly half of shard 0's keys re-home to shard 2.
  shard::Rebalancer rebalancer(cluster);
  rebalancer.begin_split(0);
  rebalancer.run_to_completion();
  ASSERT_EQ(cluster.map().version(), 2u);
  ASSERT_EQ(cluster.num_shards(), 3u);

  // Every stale decision still commits — aborted against the old layout and
  // retried against the new one in a single execute() — and the moved homes
  // are counted.
  for (const shard::TxnDecision& d : stale) {
    EXPECT_TRUE(cluster.execute(d));
  }
  const Cluster::RebalanceCounters c = cluster.rebalance_counters();
  EXPECT_GT(c.retried_2pc, 0u) << "no stale decision was re-routed";
  EXPECT_LT(c.retried_2pc, 400u) << "unmoved homes must execute as planned";
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
  }
}

TEST(Rebalance, MidMigrationWritesLandOnceViaTheDualWriteWindow) {
  shard::ShardedConfig config;
  config.shards = 2;
  Cluster cluster(config);
  // Seed some balances so the migration has bytes to move.
  EXPECT_EQ(cluster.run(5, 400, 0.3).committed, 400u);

  shard::Rebalancer rebalancer(cluster, shard::Rebalancer::Config{8});
  rebalancer.begin_split(0);
  // Interleave live commits with migration chunks: post-transfer commits on
  // moving records dirty them, and the migration re-ships the residuals
  // until a cutover finds the moving set clean.
  const shard::Router router(cluster.map());
  Rng rng(6);
  bool done = false;
  for (int i = 0; i < 10'000 && !done; ++i) {
    cluster.execute(shard::plan_txn(router, cluster.workload(), cluster.num_shards(),
                                    rng, 0.3));
    if (!rebalancer.step()) done = rebalancer.cutover();
  }
  ASSERT_TRUE(done) << "the migration never converged to a clean cutover";

  // Post-cutover: every moving record's balance lives on the destination
  // only — the source copy is exactly zero (never a dual apply).
  for_each_moving_record(
      shard::ShardMap::uniform(2), cluster.map(), cluster.workload(),
      [&](shard::ShardId src, shard::ShardId, std::uint64_t off) {
        std::int32_t v;
        std::memcpy(&v, cluster.primary_db(src) + off, sizeof v);
        EXPECT_EQ(v, 0) << "residual left on the source at offset " << off;
      });
  EXPECT_EQ(cluster.check_global_consistency(), "");
}

// ---- randomized reconfiguration conformance (the seed matrix) ---------------

TEST(RebalanceRandomConformance, ThirtyTwoSeedReconfigurationMatrix) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng srng(seed * 7919 + 13);
    shard::ShardedConfig config;
    config.shards = 3;
    config.backups_per_shard = 2;
    Cluster cluster(config);

    // A random script: always one split, then one or two more ops drawn
    // from {merge the new shard back out, planned handoff, backup add,
    // second split}, at increasing transaction indexes.
    shard::RebalanceScript script;
    script.chunk_records = std::size_t{8} << srng.below(3);  // 8 / 16 / 32
    script.steps_per_txn = 1 + static_cast<unsigned>(srng.below(2));
    std::uint64_t at = 50 + srng.below(200);
    const shard::ShardId first_split = static_cast<shard::ShardId>(srng.below(3));
    script.ops.push_back({shard::RebalanceOp::Kind::kSplit, at, first_split, 0});
    const std::size_t extra_ops = 1 + srng.below(2);
    for (std::size_t o = 0; o < extra_ops; ++o) {
      at += 150 + srng.below(250);
      switch (srng.below(4)) {
        case 0:
          // Drain the shard the first split created (deferred until after
          // that split's cutover, so shard 3 owns its range by then).
          script.ops.push_back({shard::RebalanceOp::Kind::kMerge, at, 3, 0});
          break;
        case 1:
          script.ops.push_back({shard::RebalanceOp::Kind::kHandoff, at,
                                static_cast<shard::ShardId>(srng.below(3)), 0});
          break;
        case 2:
          script.ops.push_back({shard::RebalanceOp::Kind::kAddBackup, at,
                                static_cast<shard::ShardId>(srng.below(3)), 0});
          break;
        default:
          script.ops.push_back({shard::RebalanceOp::Kind::kSplit, at,
                                static_cast<shard::ShardId>(srng.below(3)), 0});
          break;
      }
      // A merge can only target shard 3 once.
      if (script.ops.back().kind == shard::RebalanceOp::Kind::kMerge) break;
    }

    // A third of the seeds also kill a primary mid-stream — some land inside
    // the migration window, exercising takeover with live transfer state.
    shard::ChaosSchedule chaos;
    if (seed % 3 == 0) {
      chaos.kill_after_txn = 100 + srng.below(500);
      const std::uint64_t point = srng.below(3);
      chaos.point = point == 0   ? shard::ChaosSchedule::Point::kBetweenTxns
                    : point == 1 ? shard::ChaosSchedule::Point::kAfterPrepare
                                 : shard::ChaosSchedule::Point::kAfterHomeCommit;
      chaos.target = chaos.point == shard::ChaosSchedule::Point::kBetweenTxns
                         ? shard::ChaosSchedule::Target::kFixedShard
                         : shard::ChaosSchedule::Target::kHomeShard;
      chaos.shard = static_cast<shard::ShardId>(srng.below(3));
    }

    const double remote_fraction = 0.2 + 0.05 * static_cast<double>(srng.below(5));
    const Cluster::RunResult run = cluster.run(seed, 1000, remote_fraction, chaos, script);

    // Zero committed-transaction loss: every transaction either committed or
    // was the (at most one) chaos-aborted in-flight 2PC.
    EXPECT_EQ(run.committed + run.chaos_aborted, 1000u);
    EXPECT_LE(run.chaos_aborted, 1u);
    EXPECT_EQ(cluster.resolution_conflicts(), 0u);
    EXPECT_GE(cluster.map().version(), 2u) << "no cutover ever happened";
    expect_converged(cluster, replay_rebalance_oracle(cluster, config.shards, seed,
                                                      remote_fraction, run));
  }
}

// ---- threaded hammer: execute() racing a live rebalance (TSan subject) ------

TEST(RebalanceHammer, ConcurrentCommitsRaceTheMigrationAndStayConsistent) {
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 1;
  Cluster cluster(config);

  // Pre-draw every plan against map v1 (the Rng is not shared); execution
  // interleaves with the migration, so some plans run mid-window and some
  // run post-cutover through the stale-map re-route.
  const shard::Router router(cluster.map());
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 300;
  std::vector<std::vector<shard::TxnDecision>> plans(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(0xfeed + t);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      plans[t].push_back(shard::plan_txn(router, cluster.workload(),
                                         cluster.num_shards(), rng, 0.4));
    }
  }

  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const shard::TxnDecision& d : plans[t]) {
        if (cluster.execute(d)) committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Main thread drives the rebalance while the committers hammer.
  shard::Rebalancer rebalancer(cluster, shard::Rebalancer::Config{8});
  rebalancer.begin_split(0);
  while (rebalancer.active()) {
    if (!rebalancer.step()) rebalancer.cutover();
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(committed.load(), static_cast<std::uint64_t>(kThreads * kTxnsPerThread));
  EXPECT_EQ(cluster.map().version(), 2u);
  EXPECT_EQ(cluster.num_shards(), 4u);
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u);
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
  }
  // Placement under the race is best-effort (a plan can slip through the
  // cutover window against the old layout), but value is conserved exactly
  // and nothing resolves both ways.
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
}

}  // namespace
}  // namespace vrep
