// TCP transport framing and wire replication (loopback, two threads).
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "util/rng.hpp"

namespace vrep::net {
namespace {

struct LoopbackPair {
  LoopbackPair() {
    EXPECT_TRUE(server.listen(0));
    std::thread connector([this] { client_ok = client.connect_to("127.0.0.1", server.bound_port()); });
    EXPECT_TRUE(server.accept_peer());
    connector.join();
    EXPECT_TRUE(client_ok);
  }
  TcpTransport server, client;
  bool client_ok = false;
};

TEST(Transport, RoundTripsFramedMessages) {
  LoopbackPair pair;
  const char payload[] = "hello backup";
  ASSERT_TRUE(pair.client.send(MsgType::kHeartbeat, /*epoch=*/7, payload, sizeof payload));
  auto msg = pair.server.recv(1000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kHeartbeat);
  EXPECT_EQ(msg->epoch, 7u);
  ASSERT_EQ(msg->payload.size(), sizeof payload);
  EXPECT_EQ(std::memcmp(msg->payload.data(), payload, sizeof payload), 0);
}

TEST(Transport, ManyMessagesArriveInOrder) {
  LoopbackPair pair;
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(pair.client.send(MsgType::kRedoBatch, 1, &i, 4));
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    auto msg = pair.server.recv(1000);
    ASSERT_TRUE(msg.has_value());
    std::uint32_t got;
    std::memcpy(&got, msg->payload.data(), 4);
    ASSERT_EQ(got, i);
  }
}

TEST(Transport, LargePayload) {
  LoopbackPair pair;
  std::vector<std::uint8_t> big(3u << 20);
  Rng rng(5);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_u32());
  std::thread sender([&] { pair.client.send(MsgType::kDbChunk, 1, big.data(), big.size()); });
  auto msg = pair.server.recv(5000);
  sender.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, big);
}

TEST(Transport, PayloadCorruptionIsSkippableInStream) {
  // A frame whose payload CRC fails must leave the stream aligned: the
  // receiver reports kCorrupt but stays connected and can read the next
  // frame.
  LoopbackPair pair;
  const char good[] = "intact";
  auto bad = TcpTransport::encode_frame(MsgType::kRedoBatch, 1, good, sizeof good);
  bad.back() ^= 0x01;  // flip a payload bit; header CRC still matches
  ASSERT_TRUE(pair.client.send_bytes(bad.data(), bad.size()));
  ASSERT_TRUE(pair.client.send(MsgType::kHeartbeat, 1, good, sizeof good));

  auto first = pair.server.recv(1000);
  EXPECT_FALSE(first.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kCorrupt);
  EXPECT_TRUE(pair.server.connected());
  auto second = pair.server.recv(1000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kHeartbeat);
}

TEST(Transport, HeaderCorruptionClosesTheStream) {
  // If the header CRC fails, the length field cannot be trusted and framing
  // is lost for good: the transport reports kCorrupt and disconnects.
  LoopbackPair pair;
  const char payload[] = "doomed";
  auto frame = TcpTransport::encode_frame(MsgType::kRedoBatch, 1, payload, sizeof payload);
  frame[8] ^= 0x40;  // flip a bit in the length field
  ASSERT_TRUE(pair.client.send_bytes(frame.data(), frame.size()));
  auto msg = pair.server.recv(1000);
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kCorrupt);
  EXPECT_FALSE(pair.server.connected());
}

TEST(Transport, TornFrameReportsClosedNotGarbage) {
  // Kill the sender mid-frame: the receiver must report kClosed (torn
  // stream), never hand out a partial message.
  LoopbackPair pair;
  std::vector<std::uint8_t> payload(4096, 0xab);
  const auto frame =
      TcpTransport::encode_frame(MsgType::kRedoBatch, 1, payload.data(), payload.size());
  ASSERT_TRUE(pair.client.send_bytes(frame.data(), frame.size() / 2));
  pair.client.close_peer();
  auto msg = pair.server.recv(1000);
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kClosed);
}

TEST(Transport, RecvTimesOutWhenSilent) {
  LoopbackPair pair;
  auto msg = pair.server.recv(50);
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kTimeout);
}

TEST(Transport, ClosedPeerIsDetected) {
  LoopbackPair pair;
  pair.client.close_peer();
  auto msg = pair.server.recv(1000);
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kClosed);
}

// Sends `frame` one byte every `interval` from a background thread until
// stopped — a peer that is alive but trickling below any useful rate.
struct Trickler {
  Trickler(TcpTransport& t, std::vector<std::uint8_t> frame,
           std::chrono::milliseconds interval)
      : transport(t), bytes(std::move(frame)) {
    thread = std::thread([this, interval] {
      for (std::size_t i = 0; i < bytes.size() && !stop.load(); ++i) {
        if (!transport.send_bytes(bytes.data() + i, 1)) return;
        std::this_thread::sleep_for(interval);
      }
    });
  }
  ~Trickler() {
    stop.store(true);
    thread.join();
  }
  TcpTransport& transport;
  std::vector<std::uint8_t> bytes;
  std::atomic<bool> stop{false};
  std::thread thread;
};

TEST(Transport, TricklingHeaderCannotStallRecvPastItsDeadline) {
  // Regression: read_fully used to restart the full timeout on every poll()
  // that saw a byte, so a peer dribbling one byte per window kept recv()
  // blocked indefinitely. The deadline must cap the WHOLE receive.
  LoopbackPair pair;
  std::vector<std::uint8_t> payload(256, 0x5a);
  auto frame = TcpTransport::encode_frame(MsgType::kRedoBatch, 1, payload.data(), payload.size());
  Trickler trickler(pair.client, std::move(frame), std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  auto msg = pair.server.recv(150);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kTimeout);
  // Pre-fix behavior would sit through ~280 polls x 20ms (several seconds);
  // the budget is 150ms, so even a loaded CI box stays well under a second.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1'000);
}

TEST(Transport, RecvDeadlineSpansHeaderAndPayload) {
  // The header arriving promptly must not grant the payload a fresh budget:
  // one deadline covers the whole frame.
  LoopbackPair pair;
  std::vector<std::uint8_t> payload(256, 0xc3);
  auto frame = TcpTransport::encode_frame(MsgType::kRedoBatch, 1, payload.data(), payload.size());
  constexpr std::size_t kHeader = sizeof(FrameHeader);
  ASSERT_TRUE(pair.client.send_bytes(frame.data(), kHeader));  // header at once
  std::vector<std::uint8_t> rest(frame.begin() + kHeader, frame.end());
  Trickler trickler(pair.client, std::move(rest), std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  auto msg = pair.server.recv(150);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(msg.has_value());
  EXPECT_EQ(pair.server.last_error(), TcpTransport::Error::kTimeout);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1'000);
}

TEST(Transport, SlowButSteadyPeerStillCompletesWithinDeadline) {
  // The overall deadline must not break a legitimate multi-read receive:
  // a frame delivered in a few chunks well inside the budget goes through.
  LoopbackPair pair;
  std::vector<std::uint8_t> payload(4096, 0x11);
  auto frame = TcpTransport::encode_frame(MsgType::kRedoBatch, 1, payload.data(), payload.size());
  std::thread chunked([&] {
    const std::size_t half = frame.size() / 2;
    ASSERT_TRUE(pair.client.send_bytes(frame.data(), half));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(pair.client.send_bytes(frame.data() + half, frame.size() - half));
  });
  auto msg = pair.server.recv(2'000);
  chunked.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload.size(), payload.size());
}

// ---- accept_peer / connect_to deadline semantics ---------------------------

// A no-op handler installed WITHOUT SA_RESTART, so pthread_kill genuinely
// interrupts blocking syscalls with EINTR instead of restarting them.
void install_interrupting_handler(int signo) {
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(sigaction(signo, &sa, nullptr), 0);
}

TEST(Transport, SignalInterruptedAcceptStillAcceptsThePeer) {
  // Regression: accept_peer treated poll() < 0 as kTimeout, so an EINTR —
  // a profiler tick, a child reaping, any signal — made the accept "time
  // out" instantly. It must retry against its one absolute deadline and
  // accept the (deliberately late) peer.
  install_interrupting_handler(SIGUSR1);
  TcpTransport server;
  ASSERT_TRUE(server.listen(0));
  const std::uint16_t port = server.bound_port();

  std::atomic<bool> stop{false};
  const pthread_t accepter = pthread_self();
  std::thread pepper([&] {
    // Shower the accepting thread with signals while it sits in poll().
    while (!stop.load()) {
      pthread_kill(accepter, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  TcpTransport client;
  bool client_ok = false;
  std::thread connector([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    client_ok = client.connect_to("127.0.0.1", port);
  });

  const bool accepted = server.accept_peer(5'000);
  stop.store(true);
  pepper.join();
  connector.join();
  EXPECT_TRUE(accepted) << "EINTR misclassified as timeout or failure";
  EXPECT_TRUE(client_ok);
  EXPECT_EQ(server.last_error(), TcpTransport::Error::kNone);
}

TEST(Transport, SignalInterruptedAcceptStillHonorsItsDeadline) {
  // The EINTR retry must not restart the budget: with nobody connecting and
  // a steady signal stream, accept_peer still returns kTimeout close to its
  // deadline instead of looping forever (or bailing early).
  install_interrupting_handler(SIGUSR1);
  TcpTransport server;
  ASSERT_TRUE(server.listen(0));
  std::atomic<bool> stop{false};
  const pthread_t accepter = pthread_self();
  std::thread pepper([&] {
    while (!stop.load()) {
      pthread_kill(accepter, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  const bool accepted = server.accept_peer(150);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  stop.store(true);
  pepper.join();
  EXPECT_FALSE(accepted);
  EXPECT_EQ(server.last_error(), TcpTransport::Error::kTimeout);
  EXPECT_GE(elapsed, 140) << "an EINTR must not be reported as a timeout early";
  EXPECT_LT(elapsed, 2'000) << "the retry must not restart the budget";
}

TEST(Transport, ConnectToNeverListeningPeerTimesOutOnSchedule) {
  // Regression: connect_to budgeted by attempt count (timeout_ms / 50 + 1),
  // not wall clock. Against a never-listening port it must give up close to
  // timeout_ms — neither instantly nor after an attempt-count-shaped
  // overshoot — and report kTimeout.
  std::uint16_t dead_port;
  {
    TcpTransport placeholder;  // grab an ephemeral port, then free it
    ASSERT_TRUE(placeholder.listen(0));
    dead_port = placeholder.bound_port();
  }
  TcpTransport client;
  const auto t0 = std::chrono::steady_clock::now();
  const bool connected = client.connect_to("127.0.0.1", dead_port, 300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_FALSE(connected);
  EXPECT_EQ(client.last_error(), TcpTransport::Error::kTimeout);
  EXPECT_GE(elapsed, 250) << "gave up before the budget was spent";
  EXPECT_LT(elapsed, 2'000) << "overshot a 300ms budget";
}

TEST(Transport, ConnectToUnresponsivePeerHonorsDeadline) {
  // Regression: connect_to used a blocking ::connect(), so a peer that
  // swallows the SYN (blackholed address, full accept queue) parked the
  // call in the kernel's SYN-retransmit schedule for minutes regardless of
  // timeout_ms. Simulate the blackhole locally: a listener that never calls
  // accept() with its backlog already full drops further SYNs on the floor,
  // leaving the client hanging mid-handshake.
  TcpTransport server;
  ASSERT_TRUE(server.listen(0));  // backlog 1, nobody ever accepts
  std::vector<std::unique_ptr<TcpTransport>> fillers;
  for (int i = 0; i < 4; ++i) {
    auto filler = std::make_unique<TcpTransport>();
    // Ignore the result: the early ones land in the accept queue, the rest
    // are the queue overflowing — both leave it saturated. Keep them alive
    // so their queue slots stay occupied.
    filler->connect_to("127.0.0.1", server.bound_port(), 250);
    fillers.push_back(std::move(filler));
  }
  TcpTransport client;
  const auto t0 = std::chrono::steady_clock::now();
  const bool connected = client.connect_to("127.0.0.1", server.bound_port(), 300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_FALSE(connected);
  EXPECT_EQ(client.last_error(), TcpTransport::Error::kTimeout);
  EXPECT_GE(elapsed, 250) << "gave up before the budget was spent";
  EXPECT_LT(elapsed, 5'000) << "a swallowed SYN must not hold connect_to past its budget";
}

TEST(TransportDeathTest, SendRefusesPayloadAboveFrameBound) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The u32 length field used to truncate silently — a >4 GiB payload (or
  // anything above the receive-side 64 MiB cap) would corrupt framing at the
  // receiver. The bound is CHECKed before any socket state, so no peer is
  // needed and the payload pointer is never dereferenced.
  TcpTransport transport;
  EXPECT_DEATH(transport.send(MsgType::kDbChunk, 1, nullptr, kMaxFramePayload + 1),
               "len <= kMaxFramePayload");
}

TEST(TransportDeathTest, EncodeFrameRefusesPayloadAboveFrameBound) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(encode_frame(MsgType::kDbChunk, 1, nullptr, kMaxFramePayload + 1),
               "len <= kMaxFramePayload");
}

TEST(WireRepl, BackupTracksPrimaryOverTcp) {
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 256 * 1024;

  rio::Arena primary_arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary primary(primary_arena, config, &pair.client, /*format=*/true);
  // 2-safe: every commit waits for the backup's ack, so the abrupt close
  // below cannot strand in-flight redo. 1-safe is *documented* to lose
  // trailing transactions on a primary crash — with it this test only passed
  // when the backup outran the primary (it does not under TSan slowdown).
  primary.set_two_safe(true);

  rio::Arena backup_arena = rio::Arena::create(config.db_size);
  WireBackup backup(backup_arena);
  std::thread backup_thread([&] {
    // Serve until the primary closes (test end) or goes silent.
    backup.serve(pair.server, 2000);
  });

  ASSERT_TRUE(primary.sync_backup());
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    primary.begin_transaction();
    const std::size_t off = rng.below(config.db_size - 64);
    primary.set_range(primary.db() + off, 32);
    const std::uint64_t v = rng.next_u64();
    primary.bus().write(primary.db() + off, &v, 8, sim::TrafficClass::kModified);
    primary.commit_transaction();
  }
  pair.client.close_peer();  // "primary crashes"
  backup_thread.join();

  EXPECT_EQ(backup.applied_seq(), 200u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);

  // Promote and keep serving.
  sim::MemBus bus;
  rio::Arena new_arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  auto promoted = backup.promote(bus, new_arena, config);
  EXPECT_EQ(std::memcmp(promoted->db(), primary.db(), config.db_size), 0);
  promoted->begin_transaction();
  promoted->set_range(promoted->db(), 8);
  const std::uint64_t v = 42;
  bus.write(promoted->db(), &v, 8, sim::TrafficClass::kModified);
  promoted->commit_transaction();
  EXPECT_TRUE(promoted->validate());
}

TEST(WireRepl, AbortedTransactionsNeverReachTheBackup) {
  LoopbackPair pair;
  core::StoreConfig config;
  config.db_size = 64 * 1024;
  rio::Arena primary_arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary primary(primary_arena, config, &pair.client, true);
  rio::Arena backup_arena = rio::Arena::create(config.db_size);
  WireBackup backup(backup_arena);
  std::thread backup_thread([&] { backup.serve(pair.server, 2000); });

  ASSERT_TRUE(primary.sync_backup());
  primary.begin_transaction();
  primary.set_range(primary.db(), 16);
  const std::uint64_t junk = ~0ull;
  primary.bus().write(primary.db(), &junk, 8, sim::TrafficClass::kModified);
  primary.abort_transaction();

  primary.begin_transaction();
  primary.set_range(primary.db() + 100, 16);
  const std::uint64_t v = 7;
  primary.bus().write(primary.db() + 100, &v, 8, sim::TrafficClass::kModified);
  primary.commit_transaction();

  pair.client.close_peer();
  backup_thread.join();
  EXPECT_EQ(backup.applied_seq(), 1u);
  EXPECT_EQ(std::memcmp(backup.db(), primary.db(), config.db_size), 0);
}

}  // namespace
}  // namespace vrep::net
