// Workload generators: determinism, invariants, structural sizing.
#include <gtest/gtest.h>

#include <cstring>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"
#include "workload/debit_credit.hpp"
#include "workload/order_entry.hpp"
#include "workload/workload.hpp"

namespace vrep::wl {
namespace {

constexpr std::size_t kDbSize = 4ull << 20;

struct Fixture {
  explicit Fixture(WorkloadKind kind,
                   core::VersionKind version = core::VersionKind::kV3InlineLog) {
    config = suggest_config(kind, kDbSize);
    arena = rio::Arena::create(core::required_arena_size(version, config));
    store = core::make_store(version, bus, arena, config, true);
    workload = make_workload(kind, kDbSize);
    workload->initialize(*store);
    store->flush_initial_state();
  }
  sim::MemBus bus;
  core::StoreConfig config;
  rio::Arena arena;
  std::unique_ptr<core::TransactionStore> store;
  std::unique_ptr<Workload> workload;
};

TEST(DebitCredit, FreshDatabaseIsConsistent) {
  Fixture f(WorkloadKind::kDebitCredit);
  EXPECT_EQ(f.workload->check_consistency(*f.store), "");
}

TEST(DebitCredit, InvariantHoldsAcrossManyTransactions) {
  Fixture f(WorkloadKind::kDebitCredit);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) f.workload->run_txn(*f.store, rng);
  EXPECT_EQ(f.store->committed_seq(), 2000u);
  EXPECT_EQ(f.workload->check_consistency(*f.store), "");
  EXPECT_TRUE(f.store->validate());
}

TEST(DebitCredit, ViolationIsDetected) {
  Fixture f(WorkloadKind::kDebitCredit);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) f.workload->run_txn(*f.store, rng);
  // Corrupt one account balance behind the workload's back.
  std::int32_t v;
  std::memcpy(&v, f.store->db(), 4);
  v += 1;
  std::memcpy(f.store->db(), &v, 4);
  EXPECT_NE(f.workload->check_consistency(*f.store), "");
}

TEST(DebitCredit, DeterministicAcrossRuns) {
  Fixture f1(WorkloadKind::kDebitCredit), f2(WorkloadKind::kDebitCredit);
  Rng r1(9), r2(9);
  for (int i = 0; i < 500; ++i) {
    f1.workload->run_txn(*f1.store, r1);
    f2.workload->run_txn(*f2.store, r2);
  }
  EXPECT_EQ(std::memcmp(f1.store->db(), f2.store->db(), kDbSize), 0);
}

TEST(DebitCredit, TpcbScaling) {
  DebitCredit dc(50ull << 20);
  EXPECT_GT(dc.num_accounts(), 100'000u);
  EXPECT_GE(dc.num_tellers(), 10u);
  EXPECT_GE(dc.num_branches(), 1u);
  EXPECT_EQ(dc.num_tellers() / dc.num_branches(), 10u);
}

TEST(OrderEntry, FreshDatabaseIsConsistent) {
  Fixture f(WorkloadKind::kOrderEntry);
  EXPECT_EQ(f.workload->check_consistency(*f.store), "");
}

TEST(OrderEntry, InvariantHoldsAcrossManyTransactions) {
  Fixture f(WorkloadKind::kOrderEntry);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) f.workload->run_txn(*f.store, rng);
  EXPECT_EQ(f.workload->check_consistency(*f.store), "");
  EXPECT_TRUE(f.store->validate());
  EXPECT_GT(f.store->committed_seq(), 1500u) << "most transactions commit";
}

TEST(OrderEntry, OrdersAreStructurallySound) {
  Fixture f(WorkloadKind::kOrderEntry);
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) f.workload->run_txn(*f.store, rng);
  // check_consistency validates order slot structure; also ensure some
  // orders were actually created and delivered.
  EXPECT_EQ(f.workload->check_consistency(*f.store), "");
}

TEST(OrderEntry, WorksOnEveryVersion) {
  for (auto version : {core::VersionKind::kV0Vista, core::VersionKind::kV1MirrorCopy,
                       core::VersionKind::kV2MirrorDiff, core::VersionKind::kV3InlineLog}) {
    Fixture f(WorkloadKind::kOrderEntry, version);
    Rng rng(8);
    for (int i = 0; i < 300; ++i) f.workload->run_txn(*f.store, rng);
    EXPECT_EQ(f.workload->check_consistency(*f.store), "") << core::version_name(version);
    EXPECT_TRUE(f.store->validate()) << core::version_name(version);
  }
}

TEST(DebitCredit, WorksOnEveryVersion) {
  for (auto version : {core::VersionKind::kV0Vista, core::VersionKind::kV1MirrorCopy,
                       core::VersionKind::kV2MirrorDiff, core::VersionKind::kV3InlineLog}) {
    Fixture f(WorkloadKind::kDebitCredit, version);
    Rng rng(8);
    for (int i = 0; i < 300; ++i) f.workload->run_txn(*f.store, rng);
    EXPECT_EQ(f.workload->check_consistency(*f.store), "") << core::version_name(version);
    EXPECT_TRUE(f.store->validate()) << core::version_name(version);
  }
}

TEST(Workload, FactoryNamesMatch) {
  EXPECT_STREQ(workload_name(WorkloadKind::kDebitCredit), "Debit-Credit");
  EXPECT_STREQ(workload_name(WorkloadKind::kOrderEntry), "Order-Entry");
  EXPECT_STREQ(make_workload(WorkloadKind::kDebitCredit, kDbSize)->name(), "Debit-Credit");
  EXPECT_STREQ(make_workload(WorkloadKind::kOrderEntry, kDbSize)->name(), "Order-Entry");
}

}  // namespace
}  // namespace vrep::wl
