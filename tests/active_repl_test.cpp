// Active primary-backup: redo ring framing, backup application, flow
// control, never-torn takeover, and epoch fencing of a stale primary.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/membership.hpp"
#include "repl/active.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;

StoreConfig small_config() {
  StoreConfig config;
  config.db_size = 64 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

struct ActivePair {
  ActivePair(const StoreConfig& config, std::size_t ring_capacity,
             cluster::Membership* primary_membership = nullptr,
             cluster::Membership* backup_membership = nullptr)
      : fabric(cost.link),
        primary(cost, 1, &fabric),
        backup_node(cost, 1, nullptr),
        layout(repl::ActiveBackupLayout::make(config.db_size, ring_capacity)) {
    primary_arena =
        rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout));
    backup_arena = rio::Arena::create(layout.arena_bytes());
    backup = std::make_unique<repl::ActiveBackup>(backup_node.cpu(), backup_arena, layout,
                                                  fabric, backup_membership);
    store = std::make_unique<repl::ActivePrimary>(primary.cpu().bus(), primary_arena,
                                                  backup_arena, config, layout, backup.get(),
                                                  /*format=*/true, primary_membership);
  }

  sim::AlphaCostModel cost;
  sim::McFabric fabric;
  sim::Node primary;
  sim::Node backup_node;
  repl::ActiveBackupLayout layout;
  rio::Arena primary_arena;
  rio::Arena backup_arena;
  std::unique_ptr<repl::ActiveBackup> backup;
  std::unique_ptr<repl::ActivePrimary> store;
};

void run_txn(core::TransactionStore& store, std::uint64_t salt, int ranges = 3) {
  std::uint8_t* db = store.db();
  Rng rng(salt);
  store.begin_transaction();
  for (int r = 0; r < ranges; ++r) {
    const std::size_t len = 8 + rng.below(40);
    const std::size_t off = rng.below(store.db_size() - len);
    store.set_range(db + off, len);
    for (std::size_t i = 0; i + 4 <= len; i += 4) {
      const std::uint32_t v = rng.next_u32() | 1;
      store.bus().write(db + off + i, &v, 4, sim::TrafficClass::kModified);
    }
  }
  store.commit_transaction();
}

TEST(ActiveRepl, BackupDatabaseTracksCommittedState) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  for (int i = 0; i < 100; ++i) run_txn(*pair.store, 10 + static_cast<std::uint64_t>(i));
  // Quiesce the trailing partial packet so the last commit marker lands.
  pair.primary.cpu().mc()->flush();
  pair.backup->poll(pair.fabric.link().free_at + pair.cost.link.propagation_ns);

  EXPECT_EQ(pair.backup->applied_seq(), 100u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
}

TEST(ActiveRepl, BackupLagsAtMostTheWriteBufferWindow) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  for (int i = 0; i < 20; ++i) {
    run_txn(*pair.store, 700 + static_cast<std::uint64_t>(i));
    // Without explicit flushes the trailing commit marker may still sit in a
    // write buffer, so the backup can lag — but never by more than a couple
    // of transactions' worth of buffered bytes.
    EXPECT_GE(pair.backup->applied_seq() + 3, pair.store->committed_seq());
  }
}

TEST(ActiveRepl, AbortShipsNothing) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  run_txn(*pair.store, 1);

  std::uint8_t* db = pair.store->db();
  pair.store->begin_transaction();
  pair.store->set_range(db + 64, 16);
  const std::uint64_t junk = 0x5555555555555555ull;
  pair.store->bus().write(db + 64, &junk, 8, sim::TrafficClass::kModified);
  pair.store->abort_transaction();

  run_txn(*pair.store, 2);
  pair.primary.cpu().mc()->flush();
  pair.backup->poll(pair.fabric.link().free_at + pair.cost.link.propagation_ns);

  EXPECT_EQ(pair.backup->applied_seq(), 2u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0)
      << "aborted writes must not reach the backup database";
}

TEST(ActiveRepl, RingWrapsAndPadsCorrectly) {
  const StoreConfig config = small_config();
  // Tiny ring: a few transactions per lap, many laps.
  ActivePair pair(config, 2048);
  for (int i = 0; i < 300; ++i) run_txn(*pair.store, 900 + static_cast<std::uint64_t>(i), 2);
  pair.primary.cpu().mc()->flush();
  pair.backup->poll(pair.fabric.link().free_at + pair.cost.link.propagation_ns);

  EXPECT_EQ(pair.backup->applied_seq(), 300u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
}

TEST(ActiveRepl, PrimaryBlocksWhenRingFills) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1024);  // barely bigger than one transaction
  for (int i = 0; i < 50; ++i) run_txn(*pair.store, 40 + static_cast<std::uint64_t>(i), 4);
  pair.primary.cpu().mc()->flush();
  pair.backup->poll(pair.fabric.link().free_at + pair.cost.link.propagation_ns);
  EXPECT_EQ(pair.backup->applied_seq(), 50u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
  EXPECT_GT(pair.store->flow_stall_ns(), 0) << "a 1 KB ring must have caused blocking";
}

TEST(ActiveRepl, TakeoverNeverServesTornTransactions) {
  // Cut the wire at many points; the backup must always hold a prefix of
  // committed transactions, each applied atomically.
  const StoreConfig config = small_config();
  for (int cut_percent = 0; cut_percent <= 100; cut_percent += 10) {
    ActivePair pair(config, 1 << 16);

    // Interpose reference snapshots after every commit.
    std::vector<std::vector<std::uint8_t>> snapshots;
    snapshots.emplace_back(pair.store->db(), pair.store->db() + config.db_size);
    for (int i = 0; i < 25; ++i) {
      run_txn(*pair.store, 60 + static_cast<std::uint64_t>(i));
      snapshots.emplace_back(pair.store->db(), pair.store->db() + config.db_size);
    }

    const sim::SimTime cut = pair.primary.cpu().clock().now() * cut_percent / 100;
    const std::uint64_t seq = pair.backup->takeover(cut);
    ASSERT_LE(seq, 25u);
    EXPECT_EQ(std::memcmp(pair.backup->db(), snapshots[seq].data(), config.db_size), 0)
        << "backup state at cut " << cut_percent << "% is not the exact prefix ending at seq "
        << seq;
  }
}

TEST(ActiveRepl, PrimaryRecoversLocallyAfterCrash) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  run_txn(*pair.store, 5);
  std::vector<std::uint8_t> committed(pair.store->db(), pair.store->db() + config.db_size);

  // Crash mid-transaction (no exception machinery needed: just abandon it)
  std::uint8_t* db = pair.store->db();
  pair.store->begin_transaction();
  pair.store->set_range(db + 0, 16);
  const std::uint64_t junk = 0x7777777777777777ull;
  pair.store->bus().write(db + 0, &junk, 8, sim::TrafficClass::kModified);

  EXPECT_EQ(pair.store->recover(), 1);
  EXPECT_EQ(std::memcmp(pair.store->db(), committed.data(), config.db_size), 0);
  EXPECT_TRUE(pair.store->validate());
}

TEST(ActiveRepl, TwoSafeCommitNeverLosesAcknowledgedTransactions) {
  // With 2-safe commits, every transaction whose commit returned is on the
  // backup — a takeover at ANY instant serves the full committed history.
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  pair.store->set_two_safe(true);
  for (int i = 0; i < 40; ++i) run_txn(*pair.store, 3000 + static_cast<std::uint64_t>(i));
  EXPECT_GT(pair.store->two_safe_wait_ns(), 0) << "2-safe must wait for the round trip";

  // Crash immediately after the last commit returned: nothing may be lost.
  const std::uint64_t seq = pair.backup->takeover(pair.primary.cpu().clock().now());
  EXPECT_EQ(seq, 40u);
  EXPECT_EQ(std::memcmp(pair.backup->db(), pair.store->db(), config.db_size), 0);
}

TEST(ActiveRepl, OneSafeCommitCanLoseTrailingTransactions) {
  // The contrast case documenting the paper's 1-safe window: a crash right
  // after commit returns may lose that transaction.
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  for (int i = 0; i < 40; ++i) run_txn(*pair.store, 4000 + static_cast<std::uint64_t>(i));
  const std::uint64_t seq = pair.backup->takeover(pair.primary.cpu().clock().now());
  EXPECT_LE(seq, 40u);
  // (Usually < 40: the final commit marker sits in a write buffer.)
}

TEST(ActiveFencing, StaleEpochPrimaryIsFencedWithoutTouchingBackup) {
  // The split-brain regression, co-simulated: the backup takes over (epoch
  // bump) while the primary is stalled; the primary's next stale-epoch
  // commit must be fenced wholesale — not one byte lands in the ring or the
  // replica — and the primary must learn which epoch fenced it so it can
  // demote and rejoin.
  const StoreConfig config = small_config();
  cluster::Membership mem_p(0, cluster::Role::kPrimary);
  cluster::Membership mem_b(1, cluster::Role::kBackup);
  ActivePair pair(config, 1 << 16, &mem_p, &mem_b);

  for (int i = 0; i < 20; ++i) run_txn(*pair.store, 5000 + static_cast<std::uint64_t>(i));
  pair.primary.cpu().mc()->flush();
  pair.backup->poll(pair.fabric.link().free_at + pair.cost.link.propagation_ns);
  ASSERT_EQ(pair.backup->applied_seq(), 20u);
  ASSERT_FALSE(pair.store->fenced());

  // Primary stalls; the backup declares it dead and takes over in epoch 2.
  mem_b.take_over();
  ASSERT_EQ(mem_b.view().epoch, 2u);
  const std::uint32_t crc_at_takeover = Crc32::of(pair.backup->db(), config.db_size);

  // The stalled primary resumes committing in epoch 1. The very first
  // commit is fenced synchronously (the co-simulated carrier routes the
  // stale frame through the backup's applier, whose kEpochFence reply the
  // commit's drain picks up).
  run_txn(*pair.store, 6000);
  EXPECT_TRUE(pair.store->fenced());
  EXPECT_EQ(pair.store->fenced_by_epoch(), 2u);
  EXPECT_GT(pair.backup->applier().stats().stale_fenced, 0u);

  // Further stale commits stay local; nothing reaches the promoted node.
  for (int i = 0; i < 5; ++i) run_txn(*pair.store, 6001 + static_cast<std::uint64_t>(i));
  EXPECT_EQ(pair.backup->applied_seq(), 20u);
  EXPECT_EQ(Crc32::of(pair.backup->db(), config.db_size), crc_at_takeover)
      << "stale-epoch traffic mutated the promoted backup's image";
  EXPECT_GT(pair.store->committed_seq(), 20u) << "the fenced primary diverged locally";

  // The fenced primary demotes itself into the fencing epoch, ready to
  // rejoin as a backup; the engine's lineage rule (decide_rejoin) would
  // refuse it a delta past the takeover floor.
  mem_p.demote_to_backup(pair.store->fenced_by_epoch());
  EXPECT_FALSE(mem_p.is_primary());
  EXPECT_EQ(mem_p.view().epoch, 2u);
  EXPECT_EQ(pair.store->pipeline().decide_rejoin(pair.store->committed_seq(), 1),
            repl::RedoPipeline::RejoinDecision::kFullImage);
}

TEST(ActiveRepl, TrafficIsRedoOnly) {
  const StoreConfig config = small_config();
  ActivePair pair(config, 1 << 16);
  for (int i = 0; i < 50; ++i) run_txn(*pair.store, 80 + static_cast<std::uint64_t>(i));
  pair.primary.cpu().mc()->flush();

  const auto& traffic = pair.primary.cpu().mc()->traffic();
  EXPECT_EQ(traffic.undo(), 0u) << "active backup ships no undo data (Table 7)";
  EXPECT_GT(traffic.modified(), 0u);
  EXPECT_GT(traffic.meta(), 0u);
}

}  // namespace
}  // namespace vrep
