// Failure detector and membership logic (pure virtual-time tests).
#include <gtest/gtest.h>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"

namespace vrep::cluster {
namespace {

TEST(HeartbeatDetector, NoSuspicionBeforeFirstContact) {
  HeartbeatDetector d(100);
  EXPECT_FALSE(d.suspects(1'000'000));
}

TEST(HeartbeatDetector, HealthyPeerIsNotSuspected) {
  HeartbeatDetector d(100);
  for (std::int64_t t = 0; t < 10'000; t += 50) d.heartbeat(t);
  EXPECT_FALSE(d.suspects(10'049));
}

TEST(HeartbeatDetector, SilenceTriggersSuspicion) {
  HeartbeatDetector d(100);
  d.heartbeat(1000);
  EXPECT_FALSE(d.suspects(1099));
  EXPECT_TRUE(d.suspects(1100));
}

TEST(HeartbeatDetector, ThresholdDebouncesLateHeartbeats) {
  HeartbeatDetector d(100, /*suspicion_threshold=*/3);
  d.heartbeat(0);
  EXPECT_FALSE(d.suspects(250));  // 2 intervals missed
  EXPECT_TRUE(d.suspects(300));   // 3 intervals missed
  d.heartbeat(301);               // peer recovered
  EXPECT_FALSE(d.suspects(400));
}

TEST(HeartbeatDetector, MissedIntervalCount) {
  HeartbeatDetector d(100);
  d.heartbeat(500);
  EXPECT_EQ(d.missed_intervals(500), 0);
  EXPECT_EQ(d.missed_intervals(750), 2);
  EXPECT_EQ(d.missed_intervals(1200), 7);
}

TEST(Membership, TakeoverBumpsEpochAndFencesOldPrimary) {
  Membership backup(1, Role::kBackup);
  const std::uint64_t old_epoch = backup.view().epoch;
  backup.take_over();
  EXPECT_TRUE(backup.is_primary());
  EXPECT_EQ(backup.view().primary, 1);
  EXPECT_EQ(backup.view().epoch, old_epoch + 1);
  // A message stamped with the dead primary's epoch is fenced.
  EXPECT_FALSE(backup.admits(old_epoch));
  EXPECT_TRUE(backup.admits(old_epoch + 1));
}

TEST(Membership, AdoptingANewBackupBumpsEpochAgain) {
  Membership node(1, Role::kBackup);
  node.take_over();
  const std::uint64_t epoch = node.view().epoch;
  node.adopt_backup(2);
  ASSERT_TRUE(node.has_backup(2));
  EXPECT_EQ(node.view().backups, (std::vector<int>{2}));
  EXPECT_EQ(node.view().epoch, epoch + 1);
  // Reconnection of a backup already in the view is NOT a view change.
  node.adopt_backup(2);
  EXPECT_EQ(node.view().epoch, epoch + 1);
  // A second backup joins behind the first (ordered failover preference)
  // with its own view change.
  node.adopt_backup(3);
  EXPECT_EQ(node.view().backups, (std::vector<int>{2, 3}));
  EXPECT_EQ(node.view().epoch, epoch + 2);
  // Declared-failed backups leave the view in a new epoch, preserving order.
  node.remove_backup(2);
  EXPECT_EQ(node.view().backups, (std::vector<int>{3}));
  EXPECT_EQ(node.view().epoch, epoch + 3);
  node.remove_backup(2);  // already gone: no view change
  EXPECT_EQ(node.view().epoch, epoch + 3);
}

TEST(HeartbeatDetector, RejectsNonPositiveTimeout) {
  // timeout_ms divides the observed silence; zero would divide by zero in
  // missed_intervals and negative would suspect immediately.
  EXPECT_DEATH(HeartbeatDetector(0), "CHECK");
  EXPECT_DEATH(HeartbeatDetector(-5), "CHECK");
  EXPECT_DEATH(HeartbeatDetector(100, 0), "CHECK");
}

TEST(HeartbeatDetector, BackwardsTimestampsDoNotRewindTheDetector) {
  // A delayed reporting thread handing in an old receive time must not
  // resurrect an already-silent peer...
  HeartbeatDetector d(100);
  d.heartbeat(1000);
  d.heartbeat(400);  // stale: ignored
  EXPECT_EQ(d.last_heartbeat_ms(), 1000);
  EXPECT_TRUE(d.suspects(1100));
  // ...and the very first heartbeat is always accepted, whatever its value.
  HeartbeatDetector fresh(100);
  fresh.heartbeat(-50);
  EXPECT_EQ(fresh.last_heartbeat_ms(), -50);
}

TEST(Membership, OnlyBackupsTakeOver) {
  Membership primary(0, Role::kPrimary);
  EXPECT_DEATH(primary.take_over(), "CHECK");
}

TEST(Membership, RolesStartWithHalfEmptyViews) {
  Membership primary(0, Role::kPrimary);
  EXPECT_FALSE(primary.has_backup());
  EXPECT_EQ(primary.view().primary, 0);
  Membership backup(1, Role::kBackup);
  EXPECT_EQ(backup.view().primary, -1);  // learned from the primary's hello
  EXPECT_EQ(backup.view().backups, (std::vector<int>{1}));
}

TEST(Membership, BackupFollowsEpochsForwardOnly) {
  Membership backup(1, Role::kBackup);
  backup.join_epoch(4);  // hello from a primary several takeovers ahead
  EXPECT_EQ(backup.view().epoch, 4u);
  backup.join_epoch(4);  // idempotent
  EXPECT_DEATH(backup.join_epoch(3), "CHECK");
}

TEST(Membership, FencedPrimaryDemotesIntoTheFencingEpoch) {
  Membership primary(0, Role::kPrimary);
  EXPECT_DEATH(primary.demote_to_backup(1), "CHECK");  // not newer than ours
  primary.demote_to_backup(3);
  EXPECT_FALSE(primary.is_primary());
  EXPECT_EQ(primary.view().epoch, 3u);
  EXPECT_EQ(primary.view().backups, (std::vector<int>{0}));
  // Now a backup again, it can follow the new primary's epochs...
  primary.join_epoch(4);
  // ...and even take over in a later failover.
  primary.take_over();
  EXPECT_TRUE(primary.is_primary());
  EXPECT_EQ(primary.view().epoch, 5u);
}

TEST(Membership, AdoptBackupRequiresPrimaryRole) {
  Membership backup(1, Role::kBackup);
  EXPECT_DEATH(backup.adopt_backup(0), "CHECK");
  EXPECT_DEATH(backup.demote_to_backup(9), "CHECK");
}

}  // namespace
}  // namespace vrep::cluster
