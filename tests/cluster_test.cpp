// Failure detector and membership logic (pure virtual-time tests).
#include <gtest/gtest.h>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"
#include "util/rng.hpp"

namespace vrep::cluster {
namespace {

TEST(HeartbeatDetector, NoSuspicionBeforeFirstContact) {
  HeartbeatDetector d(100);
  EXPECT_FALSE(d.suspects(1'000'000));
}

TEST(HeartbeatDetector, HealthyPeerIsNotSuspected) {
  HeartbeatDetector d(100);
  for (std::int64_t t = 0; t < 10'000; t += 50) d.heartbeat(t);
  EXPECT_FALSE(d.suspects(10'049));
}

TEST(HeartbeatDetector, SilenceTriggersSuspicion) {
  HeartbeatDetector d(100);
  d.heartbeat(1000);
  EXPECT_FALSE(d.suspects(1099));
  EXPECT_TRUE(d.suspects(1100));
}

TEST(HeartbeatDetector, ThresholdDebouncesLateHeartbeats) {
  HeartbeatDetector d(100, /*suspicion_threshold=*/3);
  d.heartbeat(0);
  EXPECT_FALSE(d.suspects(250));  // 2 intervals missed
  EXPECT_TRUE(d.suspects(300));   // 3 intervals missed
  d.heartbeat(301);               // peer recovered
  EXPECT_FALSE(d.suspects(400));
}

TEST(HeartbeatDetector, MissedIntervalCount) {
  HeartbeatDetector d(100);
  d.heartbeat(500);
  EXPECT_EQ(d.missed_intervals(500), 0);
  EXPECT_EQ(d.missed_intervals(750), 2);
  EXPECT_EQ(d.missed_intervals(1200), 7);
}

TEST(Membership, TakeoverBumpsEpochAndFencesOldPrimary) {
  Membership backup(1, Role::kBackup);
  const std::uint64_t old_epoch = backup.view().epoch;
  backup.take_over();
  EXPECT_TRUE(backup.is_primary());
  EXPECT_EQ(backup.view().primary, 1);
  EXPECT_EQ(backup.view().epoch, old_epoch + 1);
  // A message stamped with the dead primary's epoch is fenced.
  EXPECT_FALSE(backup.admits(old_epoch));
  EXPECT_TRUE(backup.admits(old_epoch + 1));
}

TEST(Membership, AdoptingANewBackupBumpsEpochAgain) {
  Membership node(1, Role::kBackup);
  node.take_over();
  const std::uint64_t epoch = node.view().epoch;
  node.adopt_backup(2);
  ASSERT_TRUE(node.has_backup(2));
  EXPECT_EQ(node.view().backups, (std::vector<int>{2}));
  EXPECT_EQ(node.view().epoch, epoch + 1);
  // Reconnection of a backup already in the view is NOT a view change.
  node.adopt_backup(2);
  EXPECT_EQ(node.view().epoch, epoch + 1);
  // A second backup joins behind the first (ordered failover preference)
  // with its own view change.
  node.adopt_backup(3);
  EXPECT_EQ(node.view().backups, (std::vector<int>{2, 3}));
  EXPECT_EQ(node.view().epoch, epoch + 2);
  // Declared-failed backups leave the view in a new epoch, preserving order.
  node.remove_backup(2);
  EXPECT_EQ(node.view().backups, (std::vector<int>{3}));
  EXPECT_EQ(node.view().epoch, epoch + 3);
  node.remove_backup(2);  // already gone: no view change
  EXPECT_EQ(node.view().epoch, epoch + 3);
}

TEST(HeartbeatDetector, RejectsNonPositiveTimeout) {
  // timeout_ms divides the observed silence; zero would divide by zero in
  // missed_intervals and negative would suspect immediately.
  EXPECT_DEATH(HeartbeatDetector(0), "CHECK");
  EXPECT_DEATH(HeartbeatDetector(-5), "CHECK");
  EXPECT_DEATH(HeartbeatDetector(100, 0), "CHECK");
}

TEST(HeartbeatDetector, BackwardsTimestampsDoNotRewindTheDetector) {
  // A delayed reporting thread handing in an old receive time must not
  // resurrect an already-silent peer...
  HeartbeatDetector d(100);
  d.heartbeat(1000);
  d.heartbeat(400);  // stale: ignored
  EXPECT_EQ(d.last_heartbeat_ms(), 1000);
  EXPECT_TRUE(d.suspects(1100));
  // ...and the very first heartbeat is always accepted, whatever its value.
  HeartbeatDetector fresh(100);
  fresh.heartbeat(-50);
  EXPECT_EQ(fresh.last_heartbeat_ms(), -50);
}

TEST(Membership, OnlyBackupsTakeOver) {
  Membership primary(0, Role::kPrimary);
  EXPECT_DEATH(primary.take_over(), "CHECK");
}

TEST(Membership, RolesStartWithHalfEmptyViews) {
  Membership primary(0, Role::kPrimary);
  EXPECT_FALSE(primary.has_backup());
  EXPECT_EQ(primary.view().primary, 0);
  Membership backup(1, Role::kBackup);
  EXPECT_EQ(backup.view().primary, -1);  // learned from the primary's hello
  EXPECT_EQ(backup.view().backups, (std::vector<int>{1}));
}

TEST(Membership, BackupFollowsEpochsForwardOnly) {
  Membership backup(1, Role::kBackup);
  EXPECT_TRUE(backup.join_epoch(4));  // hello from a primary takeovers ahead
  EXPECT_EQ(backup.view().epoch, 4u);
  EXPECT_TRUE(backup.join_epoch(4));  // idempotent
  EXPECT_EQ(backup.stale_joins(), 0u);
}

// Regression: a delayed kHello from a fenced old primary used to
// VREP_CHECK-crash the backup. A stale epoch must be dropped and counted —
// the fenced straggler will be told the current epoch and rejoin; crashing
// the healthy backup turns one stale packet into an outage.
TEST(Membership, StaleEpochHelloIsDroppedNotFatal) {
  Membership backup(1, Role::kBackup);
  EXPECT_TRUE(backup.join_epoch(5));
  EXPECT_FALSE(backup.join_epoch(3));  // fenced old primary's delayed hello
  EXPECT_EQ(backup.view().epoch, 5u);  // epoch did not regress
  EXPECT_FALSE(backup.join_epoch(4));
  EXPECT_EQ(backup.stale_joins(), 2u);
  EXPECT_TRUE(backup.join_epoch(6));  // forward progress still fine
  EXPECT_EQ(backup.view().epoch, 6u);
  EXPECT_EQ(backup.stale_joins(), 2u);
}

TEST(Membership, FencedPrimaryDemotesIntoTheFencingEpoch) {
  Membership primary(0, Role::kPrimary);
  EXPECT_DEATH(primary.demote_to_backup(1), "CHECK");  // not newer than ours
  primary.demote_to_backup(3);
  EXPECT_FALSE(primary.is_primary());
  EXPECT_EQ(primary.view().epoch, 3u);
  EXPECT_EQ(primary.view().backups, (std::vector<int>{0}));
  // Now a backup again, it can follow the new primary's epochs...
  primary.join_epoch(4);
  // ...and even take over in a later failover.
  primary.take_over();
  EXPECT_TRUE(primary.is_primary());
  EXPECT_EQ(primary.view().epoch, 5u);
}

TEST(Membership, AdoptBackupRequiresPrimaryRole) {
  Membership backup(1, Role::kBackup);
  EXPECT_DEATH(backup.adopt_backup(0), "CHECK");
  EXPECT_DEATH(backup.demote_to_backup(9), "CHECK");
}

// --- View-churn suite: adopt/remove/demote interleavings -------------------
//
// The shard layer runs one Membership per shard and churns views
// independently, so the invariants below must hold under arbitrary
// interleavings, not just the happy path the older tests cover.

// Epoch is strictly monotone across any sequence of view changes, and a
// no-op (re-adopting a present backup, removing an absent one) must NOT
// burn an epoch — reconnects are not view changes.
TEST(MembershipChurn, EpochStrictlyMonotoneAcrossArbitraryChurn) {
  Membership primary(0, Role::kPrimary);
  vrep::Rng rng(0xC0FFEEu);
  std::uint64_t last = primary.view().epoch;
  for (int step = 0; step < 500; ++step) {
    const int node = 1 + static_cast<int>(rng.next_u32() % 4);
    const bool was_member = primary.has_backup(node);
    if (rng.next_u32() % 2 == 0) {
      primary.adopt_backup(node);
      EXPECT_TRUE(primary.has_backup(node));
      if (was_member) {
        EXPECT_EQ(primary.view().epoch, last);  // reconnect, not view change
      } else {
        EXPECT_EQ(primary.view().epoch, last + 1);
      }
    } else {
      primary.remove_backup(node);
      EXPECT_FALSE(primary.has_backup(node));
      if (was_member) {
        EXPECT_EQ(primary.view().epoch, last + 1);
      } else {
        EXPECT_EQ(primary.view().epoch, last);
      }
    }
    EXPECT_GE(primary.view().epoch, last);
    last = primary.view().epoch;
  }
}

// Re-adoption after removal is a NEW view change: the epoch moves again, so
// redo the removed node acked in its old membership stint is fenced if it
// arrives late (admits() only accepts the current epoch).
TEST(MembershipChurn, ReAdoptionAfterRemovalReFences) {
  Membership primary(0, Role::kPrimary);
  primary.adopt_backup(1);
  const std::uint64_t first_stint = primary.view().epoch;
  EXPECT_TRUE(primary.admits(first_stint));

  primary.remove_backup(1);
  EXPECT_FALSE(primary.admits(first_stint));  // old stint is fenced

  primary.adopt_backup(1);  // re-join: a fresh stint, not a resumption
  const std::uint64_t second_stint = primary.view().epoch;
  EXPECT_GT(second_stint, first_stint + 0);
  EXPECT_EQ(second_stint, first_stint + 2);
  EXPECT_FALSE(primary.admits(first_stint));
  EXPECT_TRUE(primary.admits(second_stint));
}

// Demote/take-over round trip: a primary fenced by epoch E adopts E, and a
// subsequent takeover moves strictly past it — the old primacy's epoch can
// never be re-admitted by anyone.
TEST(MembershipChurn, DemoteTakeoverInterleavingNeverReadmitsOldEpoch) {
  Membership a(0, Role::kPrimary);
  a.adopt_backup(1);
  a.adopt_backup(2);
  const std::uint64_t old_epoch = a.view().epoch;  // 3

  a.demote_to_backup(old_epoch + 1);  // fenced by a takeover elsewhere
  EXPECT_FALSE(a.admits(old_epoch));
  EXPECT_TRUE(a.join_epoch(old_epoch + 2));   // new primary syncs us forward
  EXPECT_FALSE(a.join_epoch(old_epoch + 1));  // ...and the fencer's own hello
                                              // is now itself stale
  a.take_over();  // later failover: we win again
  EXPECT_TRUE(a.is_primary());
  EXPECT_EQ(a.view().epoch, old_epoch + 3);
  EXPECT_FALSE(a.admits(old_epoch));
}

// Per-shard views are independent Membership instances: churn on one shard
// must not move another shard's epoch, and a frame stamped with shard A's
// epoch is not admitted by shard B once their histories diverge.
TEST(MembershipChurn, PerShardViewsNeverCrossAdmit) {
  Membership shard_a(0, Role::kPrimary);
  Membership shard_b(0, Role::kPrimary);
  // Same node hosts both shards; each shard churns independently.
  shard_a.adopt_backup(1);
  shard_a.adopt_backup(2);
  shard_a.remove_backup(1);  // shard A at epoch 4
  shard_b.adopt_backup(1);   // shard B at epoch 2
  EXPECT_EQ(shard_a.view().epoch, 4u);
  EXPECT_EQ(shard_b.view().epoch, 2u);
  // A frame fenced on A's view is not admissible on B and vice versa.
  EXPECT_TRUE(shard_a.admits(4));
  EXPECT_FALSE(shard_b.admits(4));
  EXPECT_TRUE(shard_b.admits(2));
  EXPECT_FALSE(shard_a.admits(2));
}

}  // namespace
}  // namespace vrep::cluster
