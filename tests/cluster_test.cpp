// Failure detector and membership logic (pure virtual-time tests).
#include <gtest/gtest.h>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"

namespace vrep::cluster {
namespace {

TEST(HeartbeatDetector, NoSuspicionBeforeFirstContact) {
  HeartbeatDetector d(100);
  EXPECT_FALSE(d.suspects(1'000'000));
}

TEST(HeartbeatDetector, HealthyPeerIsNotSuspected) {
  HeartbeatDetector d(100);
  for (std::int64_t t = 0; t < 10'000; t += 50) d.heartbeat(t);
  EXPECT_FALSE(d.suspects(10'049));
}

TEST(HeartbeatDetector, SilenceTriggersSuspicion) {
  HeartbeatDetector d(100);
  d.heartbeat(1000);
  EXPECT_FALSE(d.suspects(1099));
  EXPECT_TRUE(d.suspects(1100));
}

TEST(HeartbeatDetector, ThresholdDebouncesLateHeartbeats) {
  HeartbeatDetector d(100, /*suspicion_threshold=*/3);
  d.heartbeat(0);
  EXPECT_FALSE(d.suspects(250));  // 2 intervals missed
  EXPECT_TRUE(d.suspects(300));   // 3 intervals missed
  d.heartbeat(301);               // peer recovered
  EXPECT_FALSE(d.suspects(400));
}

TEST(HeartbeatDetector, MissedIntervalCount) {
  HeartbeatDetector d(100);
  d.heartbeat(500);
  EXPECT_EQ(d.missed_intervals(500), 0);
  EXPECT_EQ(d.missed_intervals(750), 2);
  EXPECT_EQ(d.missed_intervals(1200), 7);
}

TEST(Membership, TakeoverBumpsEpochAndFencesOldPrimary) {
  Membership backup(1, Role::kBackup);
  const std::uint64_t old_epoch = backup.view().epoch;
  backup.take_over();
  EXPECT_TRUE(backup.is_primary());
  EXPECT_EQ(backup.view().primary, 1);
  EXPECT_EQ(backup.view().epoch, old_epoch + 1);
  // A message stamped with the dead primary's epoch is fenced.
  EXPECT_FALSE(backup.admits(old_epoch));
  EXPECT_TRUE(backup.admits(old_epoch + 1));
}

TEST(Membership, AdoptingANewBackupBumpsEpochAgain) {
  Membership node(1, Role::kBackup);
  node.take_over();
  const std::uint64_t epoch = node.view().epoch;
  node.adopt_backup(2);
  EXPECT_EQ(node.view().backup, 2);
  EXPECT_EQ(node.view().epoch, epoch + 1);
}

TEST(Membership, OnlyBackupsTakeOver) {
  Membership primary(0, Role::kPrimary);
  EXPECT_DEATH(primary.take_over(), "CHECK");
}

}  // namespace
}  // namespace vrep::cluster
