// Crash recovery under the real workloads: inject crashes at sampled store
// boundaries while Debit-Credit / Order-Entry run, recover, and check the
// workloads' logical invariants (balance sums, warehouse/district YTD,
// order-slot structure) — a different axis from the byte-exact synthetic
// sweeps in crash_recovery_test.cpp.
#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "rio/crash.hpp"
#include "sim/mem_bus.hpp"
#include "workload/workload.hpp"

namespace vrep {
namespace {

using Param = std::tuple<core::VersionKind, wl::WorkloadKind>;

class WorkloadCrashTest : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadCrashTest, InvariantsHoldAfterRecoveryFromSampledCrashes) {
  const auto [kind, workload_kind] = GetParam();
  constexpr std::size_t kDbSize = 2ull << 20;

  core::StoreConfig config = wl::suggest_config(workload_kind, kDbSize);
  sim::MemBus bus;
  rio::Arena arena = rio::Arena::create(core::required_arena_size(kind, config));
  rio::CrashInjector injector;

  auto store = core::make_store(kind, bus, arena, config, /*format=*/true);
  auto workload = wl::make_workload(workload_kind, kDbSize);
  workload->initialize(*store);
  store->flush_initial_state();

  Rng rng(17);
  std::uint64_t crashes = 0;
  // Run batches of transactions with a crash armed at a pseudo-random write
  // inside each batch; recover in place and keep going with the same store
  // state (a long-lived server that keeps crashing and recovering).
  for (int batch = 0; batch < 60; ++batch) {
    bus.set_write_hook(&injector);
    injector.arm(rng.below(400));
    bool crashed = false;
    try {
      for (int i = 0; i < 25; ++i) workload->run_txn(*store, rng);
    } catch (const rio::SimulatedCrash&) {
      crashed = true;
      ++crashes;
    }
    bus.set_write_hook(nullptr);
    if (crashed) {
      // Reboot: fresh store object over the surviving arena.
      store.reset();
      store = core::make_store(kind, bus, arena, config, /*format=*/false);
      store->recover();
    }
    ASSERT_TRUE(store->validate()) << "batch " << batch;
    ASSERT_EQ(workload->check_consistency(*store), "") << "batch " << batch;
  }
  // The sampling must actually have exercised the crash path.
  EXPECT_GT(crashes, 20u);
  EXPECT_GT(store->committed_seq(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersionsAndWorkloads, WorkloadCrashTest,
    ::testing::Combine(::testing::Values(core::VersionKind::kV0Vista,
                                         core::VersionKind::kV1MirrorCopy,
                                         core::VersionKind::kV2MirrorDiff,
                                         core::VersionKind::kV3InlineLog),
                       ::testing::Values(wl::WorkloadKind::kDebitCredit,
                                         wl::WorkloadKind::kOrderEntry)),
    [](const auto& info) {
      // No structured bindings here: a comma inside [] would split the
      // INSTANTIATE macro's arguments.
      const core::VersionKind kind = std::get<0>(info.param);
      const wl::WorkloadKind workload = std::get<1>(info.param);
      std::string name;
      switch (kind) {
        case core::VersionKind::kV0Vista: name = "V0"; break;
        case core::VersionKind::kV1MirrorCopy: name = "V1"; break;
        case core::VersionKind::kV2MirrorDiff: name = "V2"; break;
        case core::VersionKind::kV3InlineLog: name = "V3"; break;
      }
      name += workload == wl::WorkloadKind::kDebitCredit ? "DebitCredit" : "OrderEntry";
      return name;
    });

}  // namespace
}  // namespace vrep
