// Passive primary-backup: write-through replication and backup takeover.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/api.hpp"
#include "repl/passive.hpp"
#include "rio/arena.hpp"
#include "rio/crash.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using core::VersionKind;

constexpr VersionKind kAllVersions[] = {
    VersionKind::kV0Vista,
    VersionKind::kV1MirrorCopy,
    VersionKind::kV2MirrorDiff,
    VersionKind::kV3InlineLog,
};

StoreConfig small_config() {
  StoreConfig config;
  config.db_size = 64 * 1024;
  config.max_ranges_per_txn = 16;
  config.undo_log_capacity = 32 * 1024;
  config.heap_size = 512 * 1024;
  return config;
}

void run_txn(core::TransactionStore& store, std::uint64_t salt) {
  std::uint8_t* db = store.db();
  Rng rng(salt);
  store.begin_transaction();
  for (int r = 0; r < 3; ++r) {
    const std::size_t len = 8 + rng.below(40);
    const std::size_t off = rng.below(store.db_size() - len);
    store.set_range(db + off, len);
    for (std::size_t i = 0; i + 4 <= len; i += 4) {
      const std::uint32_t v = rng.next_u32() | 1;
      store.bus().write(db + off + i, &v, 4, sim::TrafficClass::kModified);
    }
  }
  store.commit_transaction();
}

// A primary node + passive backup arena wired through a simulated fabric.
struct Pair {
  explicit Pair(VersionKind kind, const StoreConfig& config)
      : fabric(cost.link), primary(cost, 1, &fabric) {
    const std::size_t bytes = core::required_arena_size(kind, config);
    primary_arena = rio::Arena::create(bytes);
    backup_arena = rio::Arena::create(bytes);
    store = core::make_store(kind, primary.cpu().bus(), primary_arena, config, true);
    repl::setup_passive_replication(*store, primary_arena, backup_arena);
    std::memcpy(backup_arena.data(), primary_arena.data(), primary_arena.size());
  }

  void quiesce() {
    primary.cpu().mc()->flush();
    fabric.deliver_all();
  }

  sim::AlphaCostModel cost;
  sim::McFabric fabric;
  sim::Node primary;
  rio::Arena primary_arena;
  rio::Arena backup_arena;
  std::unique_ptr<core::TransactionStore> store;
};

class PassiveReplTest : public ::testing::TestWithParam<VersionKind> {};

TEST_P(PassiveReplTest, ReplicatedRegionsAreByteIdenticalAfterQuiesce) {
  const StoreConfig config = small_config();
  Pair pair(GetParam(), config);
  for (int i = 0; i < 50; ++i) run_txn(*pair.store, 100 + static_cast<std::uint64_t>(i));
  pair.quiesce();

  for (const auto& region : pair.store->regions()) {
    if (!region.replicate_passive) continue;
    EXPECT_EQ(std::memcmp(pair.primary_arena.data() + region.offset,
                          pair.backup_arena.data() + region.offset, region.len),
              0)
        << "region " << region.name << " diverged";
  }
}

TEST_P(PassiveReplTest, TakeoverAfterQuiesceServesCommittedState) {
  const StoreConfig config = small_config();
  Pair pair(GetParam(), config);
  for (int i = 0; i < 30; ++i) run_txn(*pair.store, 200 + static_cast<std::uint64_t>(i));
  std::vector<std::uint8_t> committed(pair.store->db(), pair.store->db() + config.db_size);
  pair.quiesce();

  sim::MemBus backup_bus;  // takeover is functional here; no cost model needed
  auto backup_store =
      repl::passive_takeover(GetParam(), config, backup_bus, pair.backup_arena);
  EXPECT_EQ(std::memcmp(backup_store->db(), committed.data(), config.db_size), 0);
  EXPECT_TRUE(backup_store->validate());
  EXPECT_EQ(backup_store->committed_seq(), 30u);

  // The promoted backup must be able to process transactions.
  run_txn(*backup_store, 999);
  EXPECT_TRUE(backup_store->validate());
  EXPECT_EQ(backup_store->committed_seq(), 31u);
}

TEST_P(PassiveReplTest, TakeoverMidTransactionRollsBack) {
  const StoreConfig config = small_config();
  Pair pair(GetParam(), config);
  for (int i = 0; i < 10; ++i) run_txn(*pair.store, 300 + static_cast<std::uint64_t>(i));
  std::vector<std::uint8_t> committed(pair.store->db(), pair.store->db() + config.db_size);

  // Primary dies mid-transaction, but with the SAN quiesced (every issued
  // packet delivered) — the deterministic-window case.
  std::uint8_t* db = pair.store->db();
  pair.store->begin_transaction();
  pair.store->set_range(db + 100, 32);
  const std::uint64_t junk = 0xDEADDEADDEADDEADull;
  pair.store->bus().write(db + 100, &junk, 8, sim::TrafficClass::kModified);
  pair.quiesce();  // crash happens after buffers drained

  sim::MemBus backup_bus;
  auto backup_store =
      repl::passive_takeover(GetParam(), config, backup_bus, pair.backup_arena);
  EXPECT_EQ(std::memcmp(backup_store->db(), committed.data(), config.db_size), 0)
      << "takeover must roll the in-flight transaction back";
  EXPECT_TRUE(backup_store->validate());
}

TEST_P(PassiveReplTest, InFlightPacketsAreLostOnCrashButStateStaysUsable) {
  // 1-safety: crash the fabric mid-stream at increasing cut times. The
  // backup may lose trailing commits (and, for mirror versions, the paper's
  // window-of-vulnerability may tear the *final* in-flight transaction), but
  // takeover must always produce a validating, usable store.
  const StoreConfig config = small_config();
  for (const sim::SimTime cut_fraction : {0, 25, 50, 75, 100}) {
    Pair pair(GetParam(), config);
    for (int i = 0; i < 20; ++i) run_txn(*pair.store, 400 + static_cast<std::uint64_t>(i));
    const sim::SimTime end = pair.primary.cpu().clock().now();
    pair.primary.cpu().mc()->drop_pending();
    pair.fabric.crash_at(end * cut_fraction / 100);

    sim::MemBus backup_bus;
    auto backup_store =
        repl::passive_takeover(GetParam(), config, backup_bus, pair.backup_arena);
    EXPECT_TRUE(backup_store->validate()) << "cut at " << cut_fraction << "%";
    EXPECT_LE(backup_store->committed_seq(), 20u);
    run_txn(*backup_store, 555);
    EXPECT_TRUE(backup_store->validate());
  }
}

TEST_P(PassiveReplTest, UnreplicatedRegionsStayLocal) {
  const StoreConfig config = small_config();
  Pair pair(GetParam(), config);
  for (int i = 0; i < 10; ++i) run_txn(*pair.store, 500 + static_cast<std::uint64_t>(i));
  pair.quiesce();
  const auto kind = GetParam();
  if (kind == VersionKind::kV1MirrorCopy || kind == VersionKind::kV2MirrorDiff) {
    // The backup's copy of the range array must still be the seeded image:
    // nothing was written through for it after the initial memcpy. Verify by
    // checking traffic classes: undo bytes flowed (mirror), but the region
    // bytes... simplest: the backup range-array count should lag the
    // primary's unless coincidentally equal; instead check traffic volume.
    const auto& traffic = pair.primary.cpu().mc()->traffic();
    // 10 txns x 3 ranges x 16B records would be ~480B of meta if the array
    // were shipped; the state-machine meta per txn is ~20B. Assert the total
    // meta stays well below the would-be volume plus overhead.
    EXPECT_LT(traffic.meta(), 10u * 30u + 200u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, PassiveReplTest, ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionKind::kV0Vista: return "V0Vista";
                             case VersionKind::kV1MirrorCopy: return "V1MirrorCopy";
                             case VersionKind::kV2MirrorDiff: return "V2MirrorDiff";
                             case VersionKind::kV3InlineLog: return "V3InlineLog";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace vrep
