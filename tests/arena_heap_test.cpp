// Rio substrate: arenas, layout carving, the persistent heap.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "rio/arena.hpp"
#include "rio/heap.hpp"
#include "util/rng.hpp"

namespace vrep::rio {
namespace {

TEST(Arena, CreateZeroFills) {
  Arena a = Arena::create(4096);
  ASSERT_TRUE(a.valid());
  for (std::size_t i = 0; i < 4096; ++i) ASSERT_EQ(a.data()[i], 0);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a = Arena::create(128);
  std::uint8_t* p = a.data();
  Arena b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing the move
}

TEST(Arena, FileBackedSurvivesRemap) {
  const std::string path = ::testing::TempDir() + "/vrep_arena_test.dat";
  std::remove(path.c_str());
  {
    Arena a = Arena::map_file(path, 8192);
    std::memcpy(a.data() + 100, "persistent!", 11);
    a.sync();
  }
  {
    Arena b = Arena::map_file(path, 8192);
    EXPECT_EQ(std::memcmp(b.data() + 100, "persistent!", 11), 0);
  }
  std::remove(path.c_str());
}

TEST(Layout, CarveAlignsAndAdvances) {
  Arena a = Arena::create(4096);
  Layout layout(a);
  std::uint8_t* p1 = layout.carve(10, 64);
  std::uint8_t* p2 = layout.carve(100, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, reinterpret_cast<std::uintptr_t>(a.data()) % 64);
  EXPECT_GE(p2, p1 + 10);
  EXPECT_EQ((p2 - p1) % 64, 0);
}

TEST(Layout, ExhaustionAborts) {
  Arena a = Arena::create(256);
  Layout layout(a);
  layout.carve(200);
  EXPECT_DEATH(layout.carve(200), "CHECK");
}

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : arena_(Arena::create(1 << 20)), heap_(&bus_, arena_.data(), arena_.size(), true) {}
  sim::MemBus bus_;
  Arena arena_;
  PersistentHeap heap_;
};

TEST_F(HeapTest, AllocReturnsWritableDistinctBlocks) {
  std::set<std::uint64_t> offsets;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t off = heap_.alloc(48);
    ASSERT_NE(off, 0u);
    ASSERT_TRUE(offsets.insert(off).second);
    std::memset(heap_.ptr(off), 0xAB, 48);
  }
  EXPECT_TRUE(heap_.validate());
}

TEST_F(HeapTest, FreeThenAllocReusesBlock) {
  const std::uint64_t a = heap_.alloc(100);
  heap_.free(a);
  const std::uint64_t b = heap_.alloc(100);
  EXPECT_EQ(a, b) << "LIFO free list must hand the block back";
}

TEST_F(HeapTest, DifferentSizeClassesDoNotMix) {
  const std::uint64_t small = heap_.alloc(16);
  heap_.free(small);
  const std::uint64_t big = heap_.alloc(4000);
  EXPECT_NE(small, big);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(HeapTest, InUseAccounting) {
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  const std::uint64_t a = heap_.alloc(16);
  const std::uint64_t b = heap_.alloc(16);
  EXPECT_GT(heap_.bytes_in_use(), 0u);
  heap_.free(a);
  heap_.free(b);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
}

TEST_F(HeapTest, ExhaustionReturnsZero) {
  sim::MemBus bus;
  Arena small = Arena::create(1024);
  PersistentHeap heap(&bus, small.data(), small.size(), true);
  std::uint64_t last = 1;
  int count = 0;
  while ((last = heap.alloc(64)) != 0) ++count;
  EXPECT_GT(count, 2);
  EXPECT_EQ(heap.alloc(64), 0u);
  EXPECT_TRUE(heap.validate());
}

TEST_F(HeapTest, ResetRestoresPristineHeap) {
  for (int i = 0; i < 50; ++i) heap_.alloc(128);
  heap_.reset();
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  EXPECT_TRUE(heap_.validate());
  EXPECT_NE(heap_.alloc(128), 0u);
}

TEST_F(HeapTest, ReattachSeesSameState) {
  const std::uint64_t a = heap_.alloc(64);
  std::memcpy(heap_.ptr(a), "surviving data", 14);
  PersistentHeap reattached(&bus_, arena_.data(), arena_.size(), /*format=*/false);
  EXPECT_EQ(std::memcmp(reattached.ptr(a), "surviving data", 14), 0);
  EXPECT_EQ(reattached.bytes_in_use(), heap_.bytes_in_use());
  EXPECT_TRUE(reattached.validate());
}

TEST_F(HeapTest, RandomAllocFreeStressStaysConsistent) {
  Rng rng(11);
  std::vector<std::pair<std::uint64_t, std::size_t>> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.empty() || rng.below(100) < 60) {
      const std::size_t n = 8 + rng.below(500);
      const std::uint64_t off = heap_.alloc(n);
      if (off != 0) {
        std::memset(heap_.ptr(off), static_cast<int>(i & 0xff), n);
        live.emplace_back(off, n);
      }
    } else {
      const std::size_t idx = rng.below(live.size());
      heap_.free(live[idx].first);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_TRUE(heap_.validate());
  for (auto& [off, n] : live) heap_.free(off);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(HeapTest, DoubleFreeDies) {
  const std::uint64_t a = heap_.alloc(32);
  heap_.free(a);
  EXPECT_DEATH(heap_.free(a), "CHECK");
}

}  // namespace
}  // namespace vrep::rio
