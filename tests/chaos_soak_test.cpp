// Chaos soak: a primary/backup pair runs Debit-Credit under a randomized
// (but seeded, reproducible) fault schedule — drops, delays, duplicates,
// bit-flips, torn frames, spontaneous disconnects — through repeated
// hard-kill failovers and rejoins. At the end, the survivor's database must
// be byte-identical (CRC32) to a fault-free oracle run of the same
// transaction sequence.
//
// Determinism across 1-safe loss: commit returns before the batch is on the
// wire, so a crash loses the trailing transactions on purpose. The driver
// snapshots the workload RNG before every transaction; after a failover at
// survivor sequence K it rewinds to the snapshot for K+1 and re-executes the
// lost tail on the new primary. Because the promoted store continues the
// replicated sequence numbering (WireBackup::promote seeds committed_seq,
// which the Debit-Credit history ring derives its slot from), the re-run is
// bit-identical to what the oracle did — which is exactly the guarantee a
// client-side retry log would give a real 1-safe deployment.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "core/v3_inline_log.hpp"
#include "net/fault_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "util/backoff.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

namespace vrep::net {
namespace {

constexpr std::size_t kDbSize = 1u << 20;
constexpr int kTxns = 300;                       // >= 200 (acceptance floor)
constexpr int kKillAt[] = {75, 150, 225};        // 3 failover/rejoin cycles
constexpr std::uint64_t kWorkloadSeed = 20260806;

FaultPlan soak_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.03;
  plan.delay = 0.02;
  plan.max_delay_us = 500;
  plan.duplicate = 0.03;
  plan.bitflip = 0.01;
  plan.truncate = 0.005;
  plan.disconnect = 0.005;
  plan.start_after_frames = 8;  // hello + four 256 KB image chunks + slack
  return plan;
}

// One replica "process". The listener lives for the whole test (its port is
// the node's stable address); everything else is rebuilt as the node changes
// role, like a restarted process would.
struct Node {
  TcpTransport listener;
  TcpTransport dial;
  std::unique_ptr<FaultInjectingTransport> chaos;
  std::unique_ptr<cluster::Membership> membership;
  std::unique_ptr<rio::Arena> store_arena;    // primary role
  std::unique_ptr<WirePrimary> primary;       // primary role
  std::unique_ptr<rio::Arena> replica_arena;  // backup role
  std::unique_ptr<WireBackup> backup;         // backup role
};

// Backup-side service loop: accept the primary, announce our applied
// sequence, serve; ride out connection losses by re-accepting (the primary
// reconnects with backoff), and declare the primary failed only when no
// replacement connection shows up.
void backup_session(WireBackup* backup, TcpTransport* transport, int node_id) {
  (void)node_id;
  if (!transport->accept_peer(10'000)) return;
  backup->request_rejoin(*transport);
  while (true) {
    const auto result = backup->serve(*transport, WireBackup::ServeOptions{400, nullptr});
    if (result == WireBackup::ServeResult::kConnectionLost) {
      if (transport->accept_peer(1'500)) {
        backup->request_rejoin(*transport);
        continue;
      }
    }
    return;  // kPrimaryFailed, or nobody reconnected: takeover time
  }
}

TEST(ChaosSoak, SurvivorMatchesFaultFreeOracle) {
  const core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  wl::DebitCredit bank(kDbSize);

  // ---- Oracle: the same transaction sequence, no replication, no faults.
  sim::MemBus oracle_bus;
  rio::Arena oracle_arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  core::InlineLogStore oracle(oracle_bus, oracle_arena, config, /*format=*/true);
  bank.initialize(oracle);
  {
    Rng rng(kWorkloadSeed);
    for (int i = 0; i < kTxns; ++i) bank.run_txn(oracle, rng);
  }
  ASSERT_EQ(bank.check_consistency(oracle), "");
  const std::uint32_t oracle_crc = Crc32::of(oracle.db(), kDbSize);

  // ---- Chaos run.
  Node node[2];
  ASSERT_TRUE(node[0].listener.listen(0));
  ASSERT_TRUE(node[1].listener.listen(0));

  // Node 0 boots as primary, node 1 as backup.
  int cur = 0;
  node[0].membership = std::make_unique<cluster::Membership>(0, cluster::Role::kPrimary);
  node[0].store_arena = std::make_unique<rio::Arena>(
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config)));
  node[0].chaos = std::make_unique<FaultInjectingTransport>(node[0].dial, soak_plan(1));
  node[0].primary = std::make_unique<WirePrimary>(*node[0].store_arena, config, nullptr,
                                                  /*format=*/true, node[0].membership.get());
  bank.initialize(*node[0].primary);

  node[1].membership = std::make_unique<cluster::Membership>(1, cluster::Role::kBackup);
  node[1].replica_arena = std::make_unique<rio::Arena>(rio::Arena::create(kDbSize));
  node[1].backup =
      std::make_unique<WireBackup>(*node[1].replica_arena, node[1].membership.get(), 1);
  std::thread server(backup_session, node[1].backup.get(), &node[1].listener, 1);

  Backoff backoff({/*base_ms=*/5, /*max_ms=*/50, /*multiplier=*/2.0, /*jitter=*/0.5}, 99);
  // Dial the backup and reattach after any fault-induced disconnect. One
  // attempt per call; commits never wait on the link (1-safe).
  auto ensure_link = [&](int other) {
    WirePrimary& p = *node[cur].primary;
    if (p.connection_alive()) return;
    const auto delay = backoff.next_delay_ms();
    usleep(static_cast<useconds_t>(*delay * 1000));
    if (node[cur].dial.connect_to("127.0.0.1", node[other].listener.bound_port(), 300)) {
      p.attach_transport(node[cur].chaos.get());
      if (p.handle_rejoin(1'500)) backoff.reset();
    }
  };

  // rng snapshots: snap[s] is the generator state just before the
  // transaction that commits as sequence s.
  std::vector<Rng> snap(static_cast<std::size_t>(kTxns) + 2, Rng(0));
  Rng rng(kWorkloadSeed);
  std::uint64_t next_seq = 1;
  int failovers = 0;
  std::uint64_t total_faults = 0;
  std::vector<std::uint64_t> takeover_seqs;

  std::vector<int> phases(std::begin(kKillAt), std::end(kKillAt));
  phases.push_back(kTxns);  // final phase: run to the end, no kill
  for (const int phase_end : phases) {
    ensure_link(cur ^ 1);
    while (next_seq <= static_cast<std::uint64_t>(phase_end)) {
      snap[next_seq] = rng;
      if (!node[cur].primary->connection_alive()) ensure_link(cur ^ 1);
      bank.run_txn(*node[cur].primary, rng);
      ++next_seq;
      if (next_seq % 16 == 0) node[cur].primary->send_heartbeat();
    }
    // Also snapshot the state *after* the phase's last transaction: if the
    // backup is fully caught up at the kill, the rewind target is
    // snap[phase_end + 1], which no execution has recorded yet.
    snap[next_seq] = rng;
    if (phase_end == kTxns) break;

    // ---- Hard-kill the primary: socket torn, process never heard from
    // again. The backup's accept window expires and it takes over.
    const int dead = cur;
    const int heir = cur ^ 1;
    total_faults += node[dead].chaos->stats().faults();
    node[dead].chaos->close_peer();
    server.join();

    const std::uint64_t takeover_seq = node[heir].backup->applied_seq();
    takeover_seqs.push_back(takeover_seq);
    ASSERT_LE(takeover_seq, node[dead].primary->committed_seq());
    ASSERT_GT(takeover_seq, 0u);
    const std::uint64_t shared_epoch = node[heir].backup->state_epoch();

    node[heir].membership->take_over();
    node[heir].store_arena = std::make_unique<rio::Arena>(
        rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config)));
    {
      sim::MemBus scratch;
      auto promoted = node[heir].backup->promote(scratch, *node[heir].store_arena, config);
      ASSERT_EQ(promoted->committed_seq(), takeover_seq);
    }
    node[heir].chaos = std::make_unique<FaultInjectingTransport>(
        node[heir].dial, soak_plan(100 + static_cast<std::uint64_t>(failovers)));
    node[heir].primary = std::make_unique<WirePrimary>(
        *node[heir].store_arena, config, nullptr, /*format=*/false, node[heir].membership.get(),
        WirePrimary::Lineage{shared_epoch, takeover_seq});
    node[heir].primary->recover();
    node[heir].backup.reset();

    // ---- The dead node "restarts" as a backup, keeping its on-disk image:
    // it rejoins from its own last applied state. Its divergent 1-safe tail
    // (committed locally, never replicated) makes the new primary ship a
    // full image; had it died exactly in sync, a delta would do.
    const std::uint64_t dead_epoch = node[dead].primary->epoch();
    node[dead].membership = std::make_unique<cluster::Membership>(dead, cluster::Role::kBackup);
    node[dead].replica_arena = std::make_unique<rio::Arena>(rio::Arena::create(kDbSize));
    node[dead].backup =
        std::make_unique<WireBackup>(*node[dead].replica_arena, node[dead].membership.get(),
                                     static_cast<std::uint64_t>(dead));
    node[dead].backup->seed(node[dead].primary->db(), kDbSize,
                            node[dead].primary->committed_seq(), dead_epoch);
    node[dead].primary.reset();
    node[dead].store_arena.reset();
    server = std::thread(backup_session, node[dead].backup.get(), &node[dead].listener, dead);

    // ---- Resume the workload on the survivor: rewind the generator and
    // re-execute the lost tail.
    cur = heir;
    next_seq = takeover_seq + 1;
    rng = snap[next_seq];
    backoff.reset();
    ++failovers;
  }

  // ---- Converge: heartbeats carry the committed sequence, so a trailing
  // gap triggers the backup's in-band resync; keep nudging (and healing the
  // link) until it acknowledges everything.
  for (int i = 0;
       i < 8'000 && node[cur].primary->backup_acked_seq() < static_cast<std::uint64_t>(kTxns);
       ++i) {
    if (!node[cur].primary->connection_alive()) ensure_link(cur ^ 1);
    node[cur].primary->send_heartbeat();
    usleep(1'000);
  }
  EXPECT_EQ(node[cur].primary->backup_acked_seq(), static_cast<std::uint64_t>(kTxns));
  node[cur].chaos->close_peer();
  server.join();
  total_faults += node[cur].chaos->stats().faults();

  // ---- The acceptance bar: >=200 txns, >=3 failover/rejoin cycles, and the
  // survivor's database is byte-identical to the fault-free oracle.
  EXPECT_EQ(failovers, 3);
  EXPECT_EQ(node[cur].primary->committed_seq(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(bank.check_consistency(*node[cur].primary), "");
  EXPECT_EQ(Crc32::of(node[cur].primary->db(), kDbSize), oracle_crc);
  if (Crc32::of(node[cur].primary->db(), kDbSize) != oracle_crc) {
    const std::uint8_t* got = node[cur].primary->db();
    const std::uint8_t* want = oracle.db();
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < kDbSize; ++i) {
      if (got[i] != want[i] && diffs++ < 4) {
        ADD_FAILURE() << "diff at off " << i << " got " << int(got[i]) << " want "
                      << int(want[i]);
      }
    }
    ADD_FAILURE() << diffs << " differing bytes of " << kDbSize;
    // The history ring pins each sequence's (account, teller, branch,
    // amount): compare per-seq records to see which txns diverged.
    const std::size_t history_off = kDbSize - (kDbSize / 4);
    int bad_seqs = 0;
    for (int s = 1; s <= kTxns; ++s) {
      const std::size_t off = history_off + static_cast<std::size_t>(s - 1) * 16;
      if (std::memcmp(got + off, want + off, 16) != 0 && bad_seqs++ < 10) {
        std::uint32_t ga, wa;
        std::memcpy(&ga, got + off, 4);
        std::memcpy(&wa, want + off, 4);
        ADD_FAILURE() << "seq " << s << " diverged: account got " << ga << " want " << wa;
      }
    }
    ADD_FAILURE() << bad_seqs << " diverged seqs";
    for (std::size_t f = 0; f < takeover_seqs.size(); ++f) {
      ADD_FAILURE() << "failover " << f << " took over at seq " << takeover_seqs[f];
    }
  }
  // The rejoined backup tracked the survivor all the way, too.
  EXPECT_EQ(node[cur ^ 1].backup->applied_seq(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(std::memcmp(node[cur ^ 1].backup->db(), node[cur].primary->db(), kDbSize), 0);
  // And the chaos was real: the schedule actually perturbed the stream.
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace vrep::net
