// Chaos soak: a primary/backup pair runs Debit-Credit under a randomized
// (but seeded, reproducible) fault schedule — drops, delays, duplicates,
// bit-flips, torn frames, spontaneous disconnects — through repeated
// hard-kill failovers and rejoins. At the end, the survivor's database must
// be byte-identical (CRC32) to a fault-free oracle run of the same
// transaction sequence.
//
// Determinism across 1-safe loss: commit returns before the batch is on the
// wire, so a crash loses the trailing transactions on purpose. The driver
// snapshots the workload RNG before every transaction; after a failover at
// survivor sequence K it rewinds to the snapshot for K+1 and re-executes the
// lost tail on the new primary. Because the promoted store continues the
// replicated sequence numbering (WireBackup::promote seeds committed_seq,
// which the Debit-Credit history ring derives its slot from), the re-run is
// bit-identical to what the oracle did — which is exactly the guarantee a
// client-side retry log would give a real 1-safe deployment.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "core/v3_inline_log.hpp"
#include "net/fault_transport.hpp"
#include "net/inproc_transport.hpp"
#include "net/transport.hpp"
#include "net/wire_repl.hpp"
#include "repl/active.hpp"
#include "shard/sharded_cluster.hpp"
#include "sim/alpha_cost_model.hpp"
#include "sim/node.hpp"
#include "util/backoff.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "workload/debit_credit.hpp"

namespace vrep::net {
namespace {

constexpr std::size_t kDbSize = 1u << 20;
constexpr int kTxns = 300;                       // >= 200 (acceptance floor)
constexpr int kKillAt[] = {75, 150, 225};        // 3 failover/rejoin cycles
constexpr std::uint64_t kWorkloadSeed = 20260806;

FaultPlan soak_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.03;
  plan.delay = 0.02;
  plan.max_delay_us = 500;
  plan.duplicate = 0.03;
  plan.bitflip = 0.01;
  plan.truncate = 0.005;
  plan.disconnect = 0.005;
  plan.start_after_frames = 8;  // hello + four 256 KB image chunks + slack
  return plan;
}

// One replica "process". The listener lives for the whole test (its port is
// the node's stable address); everything else is rebuilt as the node changes
// role, like a restarted process would.
struct Node {
  TcpTransport listener;
  TcpTransport dial;
  std::unique_ptr<FaultInjectingTransport> chaos;
  std::unique_ptr<cluster::Membership> membership;
  std::unique_ptr<rio::Arena> store_arena;    // primary role
  std::unique_ptr<WirePrimary> primary;       // primary role
  std::unique_ptr<rio::Arena> replica_arena;  // backup role
  std::unique_ptr<WireBackup> backup;         // backup role
};

// Backup-side service loop: accept the primary, announce our applied
// sequence, serve; ride out connection losses by re-accepting (the primary
// reconnects with backoff), and declare the primary failed only when no
// replacement connection shows up.
void backup_session(WireBackup* backup, TcpTransport* transport, int node_id) {
  (void)node_id;
  if (!transport->accept_peer(10'000)) return;
  backup->request_rejoin(*transport);
  while (true) {
    const auto result = backup->serve(*transport, WireBackup::ServeOptions{400, nullptr});
    if (result == WireBackup::ServeResult::kConnectionLost) {
      if (transport->accept_peer(1'500)) {
        backup->request_rejoin(*transport);
        continue;
      }
    }
    return;  // kPrimaryFailed, or nobody reconnected: takeover time
  }
}

TEST(ChaosSoak, SurvivorMatchesFaultFreeOracle) {
  const core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  wl::DebitCredit bank(kDbSize);

  // ---- Oracle: the same transaction sequence, no replication, no faults.
  sim::MemBus oracle_bus;
  rio::Arena oracle_arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  core::InlineLogStore oracle(oracle_bus, oracle_arena, config, /*format=*/true);
  bank.initialize(oracle);
  {
    Rng rng(kWorkloadSeed);
    for (int i = 0; i < kTxns; ++i) bank.run_txn(oracle, rng);
  }
  ASSERT_EQ(bank.check_consistency(oracle), "");
  const std::uint32_t oracle_crc = Crc32::of(oracle.db(), kDbSize);

  // ---- Chaos run.
  Node node[2];
  ASSERT_TRUE(node[0].listener.listen(0));
  ASSERT_TRUE(node[1].listener.listen(0));

  // Node 0 boots as primary, node 1 as backup.
  int cur = 0;
  node[0].membership = std::make_unique<cluster::Membership>(0, cluster::Role::kPrimary);
  node[0].store_arena = std::make_unique<rio::Arena>(
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config)));
  node[0].chaos = std::make_unique<FaultInjectingTransport>(node[0].dial, soak_plan(1));
  node[0].primary = std::make_unique<WirePrimary>(*node[0].store_arena, config, nullptr,
                                                  /*format=*/true, node[0].membership.get());
  bank.initialize(*node[0].primary);

  node[1].membership = std::make_unique<cluster::Membership>(1, cluster::Role::kBackup);
  node[1].replica_arena = std::make_unique<rio::Arena>(rio::Arena::create(kDbSize));
  node[1].backup =
      std::make_unique<WireBackup>(*node[1].replica_arena, node[1].membership.get(), 1);
  std::thread server(backup_session, node[1].backup.get(), &node[1].listener, 1);

  Backoff backoff({/*base_ms=*/5, /*max_ms=*/50, /*multiplier=*/2.0, /*jitter=*/0.5}, 99);
  // Dial the backup and reattach after any fault-induced disconnect. One
  // attempt per call; commits never wait on the link (1-safe).
  auto ensure_link = [&](int other) {
    WirePrimary& p = *node[cur].primary;
    if (p.connection_alive()) return;
    const auto delay = backoff.next_delay_ms();
    usleep(static_cast<useconds_t>(*delay * 1000));
    if (node[cur].dial.connect_to("127.0.0.1", node[other].listener.bound_port(), 300)) {
      p.attach_transport(node[cur].chaos.get());
      if (p.handle_rejoin(1'500)) backoff.reset();
    }
  };

  // rng snapshots: snap[s] is the generator state just before the
  // transaction that commits as sequence s.
  std::vector<Rng> snap(static_cast<std::size_t>(kTxns) + 2, Rng(0));
  Rng rng(kWorkloadSeed);
  std::uint64_t next_seq = 1;
  int failovers = 0;
  std::uint64_t total_faults = 0;
  std::vector<std::uint64_t> takeover_seqs;

  // Watermark-read audit, threaded through the whole soak: every few
  // transactions a "client" reads the backup at min_seq = the primary's
  // advertised acked watermark (exactly what the async front end uses to
  // pick a replica). Served reads must satisfy at_seq >= min_seq
  // (read-your-writes), never exceed what the primary has committed, and
  // be monotone ACROSS failovers — a served at_seq can never go backwards,
  // because backups only ever serve their applied prefix, which is by
  // definition the surviving lineage. That is the "no read observes a
  // rolled-back sequence" acceptance bar, under the full fault schedule.
  std::uint64_t last_served_at_seq = 0;
  int reads_ok = 0;
  auto audit_read = [&] {
    const std::uint64_t min_seq = node[cur].primary->backup_acked_seq();
    if (min_seq == 0) return;  // rejoin handshake not done in this epoch yet
    std::uint8_t out[64];
    const repl::RedoApplier::ReadResult r =
        node[cur ^ 1].backup->read(0, sizeof out, min_seq, out);
    if (r.status == repl::RedoApplier::ReadStatus::kLagging) return;
    ASSERT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
    ASSERT_GE(r.at_seq, min_seq) << "served read older than the acked watermark";
    ASSERT_LE(r.at_seq, node[cur].primary->committed_seq())
        << "read observed a sequence the primary never committed";
    ASSERT_GE(r.at_seq, last_served_at_seq) << "served watermark went backwards";
    last_served_at_seq = r.at_seq;
    ++reads_ok;
  };

  std::vector<int> phases(std::begin(kKillAt), std::end(kKillAt));
  phases.push_back(kTxns);  // final phase: run to the end, no kill
  for (const int phase_end : phases) {
    ensure_link(cur ^ 1);
    while (next_seq <= static_cast<std::uint64_t>(phase_end)) {
      snap[next_seq] = rng;
      if (!node[cur].primary->connection_alive()) ensure_link(cur ^ 1);
      bank.run_txn(*node[cur].primary, rng);
      ++next_seq;
      if (next_seq % 16 == 0) node[cur].primary->send_heartbeat();
      if (next_seq % 8 == 0) audit_read();
    }
    // Also snapshot the state *after* the phase's last transaction: if the
    // backup is fully caught up at the kill, the rewind target is
    // snap[phase_end + 1], which no execution has recorded yet.
    snap[next_seq] = rng;
    if (phase_end == kTxns) break;

    // ---- Hard-kill the primary: socket torn, process never heard from
    // again. The backup's accept window expires and it takes over.
    const int dead = cur;
    const int heir = cur ^ 1;
    total_faults += node[dead].chaos->stats().faults();
    node[dead].chaos->close_peer();
    server.join();

    const std::uint64_t takeover_seq = node[heir].backup->applied_seq();
    takeover_seqs.push_back(takeover_seq);
    ASSERT_LE(takeover_seq, node[dead].primary->committed_seq());
    ASSERT_GT(takeover_seq, 0u);
    const std::uint64_t shared_epoch = node[heir].backup->state_epoch();

    // Takeover mid-read: a client caught between the kill and the
    // promotion. Its ticket at the heir's watermark is served exactly
    // there; a ticket from the dead primary's unreplicated 1-safe tail
    // must bounce (kLagging), never be answered with older bytes — the
    // bounce is what sends that client back to re-commit on the heir.
    {
      std::uint8_t out[64];
      repl::RedoApplier::ReadResult r =
          node[heir].backup->read(0, sizeof out, takeover_seq, out);
      ASSERT_EQ(r.status, repl::RedoApplier::ReadStatus::kOk);
      ASSERT_EQ(r.at_seq, takeover_seq);
      ASSERT_GE(r.at_seq, last_served_at_seq);
      last_served_at_seq = r.at_seq;
      ++reads_ok;
      const std::uint64_t lost_tail = node[dead].primary->committed_seq();
      if (lost_tail > takeover_seq) {
        r = node[heir].backup->read(0, sizeof out, lost_tail, out);
        ASSERT_EQ(r.status, repl::RedoApplier::ReadStatus::kLagging)
            << "a rolled-back ticket was served";
        ASSERT_EQ(r.at_seq, takeover_seq);
      }
    }

    node[heir].membership->take_over();
    node[heir].store_arena = std::make_unique<rio::Arena>(
        rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config)));
    {
      sim::MemBus scratch;
      auto promoted = node[heir].backup->promote(scratch, *node[heir].store_arena, config);
      ASSERT_EQ(promoted->committed_seq(), takeover_seq);
    }
    node[heir].chaos = std::make_unique<FaultInjectingTransport>(
        node[heir].dial, soak_plan(100 + static_cast<std::uint64_t>(failovers)));
    node[heir].primary = std::make_unique<WirePrimary>(
        *node[heir].store_arena, config, nullptr, /*format=*/false, node[heir].membership.get(),
        WirePrimary::Lineage{shared_epoch, takeover_seq});
    node[heir].primary->recover();
    node[heir].backup.reset();

    // ---- The dead node "restarts" as a backup, keeping its on-disk image:
    // it rejoins from its own last applied state. Its divergent 1-safe tail
    // (committed locally, never replicated) makes the new primary ship a
    // full image; had it died exactly in sync, a delta would do.
    const std::uint64_t dead_epoch = node[dead].primary->epoch();
    node[dead].membership = std::make_unique<cluster::Membership>(dead, cluster::Role::kBackup);
    node[dead].replica_arena = std::make_unique<rio::Arena>(rio::Arena::create(kDbSize));
    node[dead].backup =
        std::make_unique<WireBackup>(*node[dead].replica_arena, node[dead].membership.get(),
                                     static_cast<std::uint64_t>(dead));
    node[dead].backup->seed(node[dead].primary->db(), kDbSize,
                            node[dead].primary->committed_seq(), dead_epoch);
    node[dead].primary.reset();
    node[dead].store_arena.reset();
    server = std::thread(backup_session, node[dead].backup.get(), &node[dead].listener, dead);

    // ---- Resume the workload on the survivor: rewind the generator and
    // re-execute the lost tail.
    cur = heir;
    next_seq = takeover_seq + 1;
    rng = snap[next_seq];
    backoff.reset();
    ++failovers;
  }

  // ---- Converge: heartbeats carry the committed sequence, so a trailing
  // gap triggers the backup's in-band resync; keep nudging (and healing the
  // link) until it acknowledges everything.
  for (int i = 0;
       i < 8'000 && node[cur].primary->backup_acked_seq() < static_cast<std::uint64_t>(kTxns);
       ++i) {
    if (!node[cur].primary->connection_alive()) ensure_link(cur ^ 1);
    node[cur].primary->send_heartbeat();
    usleep(1'000);
  }
  EXPECT_EQ(node[cur].primary->backup_acked_seq(), static_cast<std::uint64_t>(kTxns));
  node[cur].chaos->close_peer();
  server.join();
  total_faults += node[cur].chaos->stats().faults();

  // ---- The acceptance bar: >=200 txns, >=3 failover/rejoin cycles, and the
  // survivor's database is byte-identical to the fault-free oracle.
  EXPECT_EQ(failovers, 3);
  EXPECT_GE(reads_ok, 8) << "the watermark-read audit barely exercised the backup";
  EXPECT_EQ(node[cur].primary->committed_seq(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(bank.check_consistency(*node[cur].primary), "");
  EXPECT_EQ(Crc32::of(node[cur].primary->db(), kDbSize), oracle_crc);
  if (Crc32::of(node[cur].primary->db(), kDbSize) != oracle_crc) {
    const std::uint8_t* got = node[cur].primary->db();
    const std::uint8_t* want = oracle.db();
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < kDbSize; ++i) {
      if (got[i] != want[i] && diffs++ < 4) {
        ADD_FAILURE() << "diff at off " << i << " got " << int(got[i]) << " want "
                      << int(want[i]);
      }
    }
    ADD_FAILURE() << diffs << " differing bytes of " << kDbSize;
    // The history ring pins each sequence's (account, teller, branch,
    // amount): compare per-seq records to see which txns diverged.
    const std::size_t history_off = kDbSize - (kDbSize / 4);
    int bad_seqs = 0;
    for (int s = 1; s <= kTxns; ++s) {
      const std::size_t off = history_off + static_cast<std::size_t>(s - 1) * 16;
      if (std::memcmp(got + off, want + off, 16) != 0 && bad_seqs++ < 10) {
        std::uint32_t ga, wa;
        std::memcpy(&ga, got + off, 4);
        std::memcpy(&wa, want + off, 4);
        ADD_FAILURE() << "seq " << s << " diverged: account got " << ga << " want " << wa;
      }
    }
    ADD_FAILURE() << bad_seqs << " diverged seqs";
    for (std::size_t f = 0; f < takeover_seqs.size(); ++f) {
      ADD_FAILURE() << "failover " << f << " took over at seq " << takeover_seqs[f];
    }
  }
  // The rejoined backup tracked the survivor all the way, too.
  EXPECT_EQ(node[cur ^ 1].backup->applied_seq(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(std::memcmp(node[cur ^ 1].backup->db(), node[cur].primary->db(), kDbSize), 0);
  // And the chaos was real: the schedule actually perturbed the stream.
  EXPECT_GT(total_faults, 0u);
}

// ---------------------------------------------------------------------------
// Cascading failover: a primary with TWO ordered backups loses the primary,
// promotes the most-caught-up backup, loses THAT one mid-stream, and the last
// survivor finishes the workload alone. Its database must be byte-identical
// to a fault-free oracle — on all three carriers (TCP, loopback, sim ring).
//
// The wire legs run 2-safe (quorum 2, then quorum 1 after the first kill), so
// every kill has a zero-loss window and no rewind is needed. The sim leg runs
// the paper's 1-safe mode and exercises the RNG-snapshot rewind instead.

constexpr int kCascadeTxns = 120;
constexpr int kCascadeKill1 = 40;
constexpr int kCascadeKill2 = 80;

std::uint32_t cascade_oracle_crc(wl::DebitCredit& bank, const core::StoreConfig& config) {
  sim::MemBus bus;
  rio::Arena arena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  core::InlineLogStore oracle(bus, arena, config, /*format=*/true);
  bank.initialize(oracle);
  Rng rng(kWorkloadSeed);
  for (int i = 0; i < kCascadeTxns; ++i) bank.run_txn(oracle, rng);
  EXPECT_EQ(bank.check_consistency(oracle), "");
  return Crc32::of(oracle.db(), kDbSize);
}

// A connected transport pair; the concrete carrier differs per test leg.
struct OwnedPair {
  std::vector<std::unique_ptr<Transport>> owned;
  Transport* primary_end = nullptr;
  Transport* backup_end = nullptr;
};

OwnedPair tcp_pair() {
  OwnedPair p;
  auto server = std::make_unique<TcpTransport>();
  auto client = std::make_unique<TcpTransport>();
  EXPECT_TRUE(server->listen(0));
  EXPECT_TRUE(client->connect_to("127.0.0.1", server->bound_port(), 2'000));
  EXPECT_TRUE(server->accept_peer(2'000));
  p.primary_end = client.get();
  p.backup_end = server.get();
  p.owned.push_back(std::move(server));
  p.owned.push_back(std::move(client));
  return p;
}

OwnedPair inproc_pair() {
  OwnedPair p;
  auto a = std::make_unique<InprocTransport>();
  auto b = std::make_unique<InprocTransport>();
  InprocTransport::pair(*a, *b);
  p.primary_end = a.get();
  p.backup_end = b.get();
  p.owned.push_back(std::move(a));
  p.owned.push_back(std::move(b));
  return p;
}

// Serve until the primary dies (close_peer from our side of the test) or
// fails. No fault injection here, so there are no transient errors to ride
// out; the first terminal event ends the session.
void cascade_session(WireBackup* backup, Transport* transport) {
  backup->request_rejoin(*transport);
  backup->serve(*transport, WireBackup::ServeOptions{2'000, nullptr});
}

void run_wire_cascade(OwnedPair (*make_pair)()) {
  const core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  wl::DebitCredit bank(kDbSize);
  const std::uint32_t oracle_crc = cascade_oracle_crc(bank, config);

  // ---- Phase 1: node 0 primary, nodes 1 and 2 ordered backups, 2-safe with
  // quorum 2 (every commit durable on all three replicas before it returns).
  cluster::Membership mem0(0, cluster::Role::kPrimary);
  cluster::Membership mem1(1, cluster::Role::kBackup);
  cluster::Membership mem2(2, cluster::Role::kBackup);
  mem0.adopt_backup(1);
  mem0.adopt_backup(2);
  ASSERT_EQ(mem0.view().backups, (std::vector<int>{1, 2}));

  OwnedPair link1 = make_pair();
  OwnedPair link2 = make_pair();
  rio::Arena arena0 =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  WirePrimary p0(arena0, config, link1.primary_end, /*format=*/true, &mem0);
  ASSERT_EQ(p0.add_backup(link2.primary_end), 1u);
  bank.initialize(p0);

  rio::Arena rep1 = rio::Arena::create(kDbSize);
  rio::Arena rep2 = rio::Arena::create(kDbSize);
  WireBackup b1(rep1, &mem1, 1);
  WireBackup b2(rep2, &mem2, 2);
  std::thread t1(cascade_session, &b1, link1.backup_end);
  std::thread t2(cascade_session, &b2, link2.backup_end);
  ASSERT_TRUE(p0.handle_rejoin(0, 5'000));
  ASSERT_TRUE(p0.handle_rejoin(1, 5'000));

  p0.set_two_safe(true);
  p0.set_quorum(2);
  Rng rng(kWorkloadSeed);
  for (int i = 0; i < kCascadeKill1; ++i) bank.run_txn(p0, rng);
  ASSERT_EQ(p0.last_commit_outcome(), repl::RedoPipeline::CommitOutcome::kQuorumDurable);
  ASSERT_EQ(p0.quorum_acked_seq(), static_cast<std::uint64_t>(kCascadeKill1));
  ASSERT_EQ(p0.stats().two_safe_degraded, 0u);

  // ---- Kill the primary. Quorum-2 2-safety means ZERO loss window: both
  // backups hold every committed transaction.
  link1.primary_end->close_peer();
  link2.primary_end->close_peer();
  t1.join();
  t2.join();
  ASSERT_EQ(b1.applied_seq(), static_cast<std::uint64_t>(kCascadeKill1));
  ASSERT_EQ(b2.applied_seq(), static_cast<std::uint64_t>(kCascadeKill1));

  // ---- Ordered failover: equally caught up, so the FIRST backup in the
  // view (node 1) is promoted; node 2 rejoins it (a no-op delta, not an
  // image — they share lineage and nothing was lost).
  const std::uint64_t takeover_seq = b1.applied_seq();
  const std::uint64_t shared_epoch = b1.state_epoch();
  mem1.take_over();
  OwnedPair link3 = make_pair();
  rio::Arena arena1 =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  {
    sim::MemBus scratch;
    auto promoted = b1.promote(scratch, arena1, config);
    ASSERT_EQ(promoted->committed_seq(), takeover_seq);
  }
  WirePrimary p1(arena1, config, link3.primary_end, /*format=*/false, &mem1,
                 WirePrimary::Lineage{shared_epoch, takeover_seq});
  p1.recover();
  std::thread t3(cascade_session, &b2, link3.backup_end);
  ASSERT_TRUE(p1.handle_rejoin(0, 5'000));
  EXPECT_EQ(p1.stats().deltas_served, 1u);
  EXPECT_EQ(p1.stats().full_syncs_served, 0u);

  // ---- Phase 2: the promoted pair continues 2-safe (quorum 1 == classic).
  p1.set_two_safe(true);
  for (int i = kCascadeKill1; i < kCascadeKill2; ++i) bank.run_txn(p1, rng);
  ASSERT_EQ(p1.committed_seq(), static_cast<std::uint64_t>(kCascadeKill2));
  ASSERT_EQ(p1.quorum_acked_seq(), static_cast<std::uint64_t>(kCascadeKill2));

  // ---- Kill the promoted primary too (cascading failure). The last
  // survivor promotes to a standalone store and finishes the run.
  link3.primary_end->close_peer();
  t3.join();
  ASSERT_EQ(b2.applied_seq(), static_cast<std::uint64_t>(kCascadeKill2));
  mem2.take_over();
  rio::Arena arena2 =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  sim::MemBus scratch;
  auto survivor = b2.promote(scratch, arena2, config);
  ASSERT_EQ(survivor->committed_seq(), static_cast<std::uint64_t>(kCascadeKill2));
  for (int i = kCascadeKill2; i < kCascadeTxns; ++i) bank.run_txn(*survivor, rng);

  ASSERT_EQ(survivor->committed_seq(), static_cast<std::uint64_t>(kCascadeTxns));
  EXPECT_EQ(bank.check_consistency(*survivor), "");
  EXPECT_EQ(Crc32::of(survivor->db(), kDbSize), oracle_crc);
}

TEST(ChaosCascade, TcpCascadingFailoverMatchesOracle) { run_wire_cascade(&tcp_pair); }

TEST(ChaosCascade, LoopbackCascadingFailoverMatchesOracle) { run_wire_cascade(&inproc_pair); }

// Simulated Memory Channel leg: two co-simulated backups behind one primary,
// 1-safe (the paper's mode), so each kill can lose a trailing window — the
// driver rewinds the workload RNG to the survivor's sequence and re-executes
// the lost tail, exactly like the TCP soak above.
TEST(ChaosCascade, SimRingCascadingFailoverMatchesOracle) {
  const core::StoreConfig config = wl::suggest_config(wl::WorkloadKind::kDebitCredit, kDbSize);
  wl::DebitCredit bank(kDbSize);
  const std::uint32_t oracle_crc = cascade_oracle_crc(bank, config);

  const sim::AlphaCostModel cost;
  const auto layout = repl::ActiveBackupLayout::make(kDbSize);

  // ---- Phase 1: primary ships to two ring shadows on one fabric.
  sim::McFabric fabric(cost.link);
  sim::Node pnode(cost, 1, &fabric);
  sim::Node bnode(cost, 2, nullptr);
  rio::Arena parena =
      rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout, 2));
  rio::Arena barena1 = rio::Arena::create(layout.arena_bytes());
  rio::Arena barena2 = rio::Arena::create(layout.arena_bytes());
  auto b1 = std::make_unique<repl::ActiveBackup>(bnode.cpu(0), barena1, layout, fabric);
  auto b2 = std::make_unique<repl::ActiveBackup>(bnode.cpu(1), barena2, layout, fabric);
  auto p0 = std::make_unique<repl::ActivePrimary>(pnode.cpu().bus(), parena, barena1, config,
                                                  layout, b1.get(), /*format=*/true);
  ASSERT_EQ(p0->add_backup(barena2, b2.get()), 1u);
  bank.initialize(*p0);
  p0->flush_initial_state();
  // Initial image seeding is out of band, as in the harness experiments.
  std::memcpy(b1->db(), p0->db(), kDbSize);
  std::memcpy(b2->db(), p0->db(), kDbSize);

  std::vector<Rng> snap(static_cast<std::size_t>(kCascadeTxns) + 2, Rng(0));
  Rng rng(kWorkloadSeed);
  std::uint64_t next_seq = 1;
  while (next_seq <= static_cast<std::uint64_t>(kCascadeKill1)) {
    snap[next_seq] = rng;
    bank.run_txn(*p0, rng);
    ++next_seq;
  }
  snap[next_seq] = rng;

  // ---- Kill the primary at its current virtual time. Both backups cut the
  // fabric and drain what physically arrived; the most-caught-up one is
  // promoted and the other is reseeded from it (out-of-band image transfer —
  // the sim carrier has no in-band rejoin channel).
  const sim::SimTime crash = pnode.cpu().clock().now();
  const std::uint64_t s1 = b1->takeover(crash);
  const std::uint64_t s2 = b2->takeover(crash);
  ASSERT_LE(s1, p0->committed_seq());
  ASSERT_LE(s2, p0->committed_seq());
  ASSERT_GT(std::max(s1, s2), 0u);
  const bool heir_is_b1 = s1 >= s2;  // ties follow view order
  repl::ActiveBackup* heir = heir_is_b1 ? b1.get() : b2.get();
  rio::Arena& survivor_arena = heir_is_b1 ? barena2 : barena1;
  const std::uint64_t heir_seq = std::max(s1, s2);
  p0.reset();

  // ---- Phase 2: promote the heir onto a fresh node; the survivor reattaches
  // over a new fabric. Its ring region still holds phase-1 bytes — wipe them
  // so the new session's ring decodes from a clean slate.
  sim::McFabric fabric2(cost.link);
  sim::Node pnode2(cost, 1, &fabric2);
  sim::Node bnode2(cost, 1, nullptr);
  std::memset(survivor_arena.data() + layout.ring_offset, 0, layout.ring_capacity);
  auto survivor2 =
      std::make_unique<repl::ActiveBackup>(bnode2.cpu(), survivor_arena, layout, fabric2);
  rio::Arena parena2 =
      rio::Arena::create(repl::ActivePrimary::primary_arena_bytes(config, layout, 1));
  auto p1 = std::make_unique<repl::ActivePrimary>(pnode2.cpu().bus(), parena2, survivor_arena,
                                                  config, layout, survivor2.get(),
                                                  /*format=*/true);
  p1->seed_from(heir->db(), kDbSize, heir_seq);
  std::memcpy(survivor2->db(), heir->db(), kDbSize);
  survivor2->applier().adopt_image(kDbSize, heir_seq, survivor2->applier().epoch());
  b1.reset();
  b2.reset();

  next_seq = heir_seq + 1;
  rng = snap[next_seq];  // rewind: re-execute the 1-safe loss window
  while (next_seq <= static_cast<std::uint64_t>(kCascadeKill2)) {
    snap[next_seq] = rng;
    bank.run_txn(*p1, rng);
    ++next_seq;
  }
  snap[next_seq] = rng;

  // ---- Kill the promoted primary too; the last survivor finishes alone on
  // a standalone Version 3 store that continues the sequence numbering.
  const std::uint64_t s3 = survivor2->takeover(pnode2.cpu().clock().now());
  ASSERT_LE(s3, p1->committed_seq());
  ASSERT_GE(s3, heir_seq);
  p1.reset();

  sim::MemBus standalone_bus;
  rio::Arena sarena =
      rio::Arena::create(core::required_arena_size(core::VersionKind::kV3InlineLog, config));
  core::InlineLogStore survivor_store(standalone_bus, sarena, config, /*format=*/true);
  std::memcpy(survivor_store.db(), survivor2->db(), kDbSize);
  survivor_store.seed_committed_seq(s3);

  next_seq = s3 + 1;
  rng = snap[next_seq];
  while (next_seq <= static_cast<std::uint64_t>(kCascadeTxns)) {
    bank.run_txn(survivor_store, rng);
    ++next_seq;
  }
  ASSERT_EQ(survivor_store.committed_seq(), static_cast<std::uint64_t>(kCascadeTxns));
  EXPECT_EQ(bank.check_consistency(survivor_store), "");
  EXPECT_EQ(Crc32::of(survivor_store.db(), kDbSize), oracle_crc);
}

// ---- sharded cascade --------------------------------------------------------
//
// The partitioned multi-primary under cascading shard-primary kills: shard
// 1's primary dies mid-load, later shard 0's does too. The other shards
// never stop committing (their epochs and pipelines are untouched — that is
// the point of per-shard membership), and at the end every shard's
// surviving image must match a fault-free oracle replay of the combined
// history.

// Replay `runs` (seed + remote mix + trace) into flat per-shard images, the
// same deterministic plan stream the cluster drew.
std::vector<std::vector<std::uint8_t>> sharded_oracle(
    const shard::ShardedCluster& cluster,
    const std::vector<std::tuple<std::uint64_t, double,
                                 const shard::ShardedCluster::RunResult*>>& runs) {
  const unsigned n = cluster.num_shards();
  const wl::DebitCredit& workload = cluster.workload();
  const shard::ShardMap map = shard::ShardMap::uniform(n);
  const shard::Router router(map);
  std::vector<std::vector<std::uint8_t>> dbs(
      n, std::vector<std::uint8_t>(cluster.workload_bytes(), 0));
  auto bump = [](std::vector<std::uint8_t>& db, std::size_t off, std::int32_t amount) {
    std::int32_t balance;
    std::memcpy(&balance, db.data() + off, sizeof balance);
    balance += amount;
    std::memcpy(db.data() + off, &balance, sizeof balance);
  };
  for (const auto& [seed, remote_fraction, run] : runs) {
    Rng rng(seed);
    for (const auto& out : run->trace) {
      const shard::TxnDecision d =
          shard::plan_txn(router, workload, n, rng, remote_fraction);
      if (!out.committed) continue;
      auto& home = dbs[d.home];
      bump(dbs[d.cross ? d.remote : d.home], workload.account_offset(d.plan.account),
           d.plan.amount);
      bump(home, workload.teller_offset(d.plan.teller), d.plan.amount);
      bump(home, workload.branch_offset(d.plan.branch), d.plan.amount);
      const wl::DebitCredit::HistoryRecord rec{d.plan.account, d.plan.teller,
                                               d.plan.branch, d.plan.amount};
      std::memcpy(home.data() + workload.history_offset(out.home_seq - 1), &rec,
                  sizeof rec);
    }
  }
  return dbs;
}

TEST(ChaosCascade, ShardedClusterSurvivesCascadingShardPrimaryKills) {
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 2;  // a promoted shard must stay replicated
  shard::ShardedCluster cluster(config);
  const std::uint64_t base_epoch = 1 + config.backups_per_shard;

  // Load 1: shard 1's primary dies mid-load; shards 0 and 2 keep serving.
  shard::ChaosSchedule chaos;
  chaos.kill_after_txn = 500;
  chaos.point = shard::ChaosSchedule::Point::kBetweenTxns;
  chaos.shard = 1;
  const auto run1 = cluster.run(/*seed=*/31, 1500, /*remote_fraction=*/0.25, chaos);
  EXPECT_EQ(run1.takeovers, 1u);
  // Inline delivery keeps the replicas synchronously covered, so even the
  // kill loses no committed transaction.
  EXPECT_EQ(run1.committed, 1500u);
  EXPECT_GT(cluster.shard_epoch(1), base_epoch);
  EXPECT_EQ(cluster.shard_epoch(0), base_epoch) << "takeover on shard 1 fenced shard 0";
  EXPECT_EQ(cluster.shard_epoch(2), base_epoch);

  // Cascading failure: shard 0's primary dies too; load continues on the
  // twice-degraded cluster.
  cluster.kill_primary(0);
  const auto run2 = cluster.run(/*seed=*/77, 1000, 0.25);
  EXPECT_EQ(run2.committed, 1000u);
  EXPECT_EQ(cluster.takeovers(), 2u);
  EXPECT_EQ(cluster.shard_epoch(2), base_epoch) << "shard 2 was never fenced";

  const auto oracle = sharded_oracle(cluster, {{31, 0.25, &run1}, {77, 0.25, &run2}});
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u);
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
    EXPECT_EQ(cluster.shard_crc(s), Crc32::of(oracle[s].data(), oracle[s].size()))
        << "shard " << s << " surviving image != fault-free oracle";
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
}

// ---- cascade with a live rebalance threaded through -------------------------
//
// Same cascading-kill schedule, but shard 0 SPLITS mid-load (its upper half
// migrates to a brand-new shard while shard 1's primary dies) and then hands
// its primary off once the migration lands. The oracle replays plan stream
// AND reconfiguration events; the watermark audit checks that every shard's
// committed sequence and every backup's applied watermark only move forward
// across the cutover and the handoff.

// Multi-run, reconfiguration-aware oracle: `map`/`staged` persist across
// runs, each run's events fire at its own 1-based txn indices. Mirrors
// rebalance_test's single-run oracle.
std::vector<std::vector<std::uint8_t>> sharded_rebalance_oracle(
    const shard::ShardedCluster& cluster, unsigned initial_shards,
    const std::vector<std::tuple<std::uint64_t, double,
                                 const shard::ShardedCluster::RunResult*>>& runs) {
  const wl::DebitCredit& workload = cluster.workload();
  shard::ShardMap map = shard::ShardMap::uniform(initial_shards);
  std::optional<shard::ShardMap> staged;
  unsigned n = initial_shards;
  const shard::Router router(map);  // observes the in-place flips below
  std::vector<std::vector<std::uint8_t>> dbs(
      cluster.num_shards(), std::vector<std::uint8_t>(cluster.workload_bytes(), 0));
  auto bump = [](std::vector<std::uint8_t>& db, std::size_t off, std::int32_t amount) {
    std::int32_t balance;
    std::memcpy(&balance, db.data() + off, sizeof balance);
    balance += amount;
    std::memcpy(db.data() + off, &balance, sizeof balance);
  };
  const auto each_moving = [&](const shard::ShardMap& from, const shard::ShardMap& to,
                               auto&& fn) {
    const auto scan = [&](unsigned kind, std::size_t count, auto offset_of) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t h =
            shard::hash_key(shard::ShardedCluster::record_key(kind, i));
        if (from.shard_of(h) != to.shard_of(h)) {
          fn(from.shard_of(h), to.shard_of(h),
             static_cast<std::uint64_t>(offset_of(i)));
        }
      }
    };
    scan(0, workload.num_accounts(),
         [&](std::size_t i) { return workload.account_offset(i); });
    scan(1, workload.num_tellers(),
         [&](std::size_t i) { return workload.teller_offset(i); });
    scan(2, workload.num_branches(),
         [&](std::size_t i) { return workload.branch_offset(i); });
  };

  for (const auto& [seed, remote_fraction, run] : runs) {
    Rng rng(seed);
    std::size_t ei = 0;
    const auto apply_events_at = [&](std::uint64_t txn) {
      while (ei < run->events.size() && run->events[ei].at_txn == txn) {
        const shard::RebalanceEvent& ev = run->events[ei++];
        switch (ev.kind) {
          case shard::RebalanceEvent::Kind::kBegin:
            staged = ev.op.kind == shard::RebalanceOp::Kind::kSplit
                         ? map.split(ev.op.at_hash)
                         : map.merged_out(ev.op.shard);
            n = ev.num_shards;
            break;
          case shard::RebalanceEvent::Kind::kCutover:
            each_moving(map, *staged,
                        [&](shard::ShardId src, shard::ShardId dst, std::uint64_t off) {
                          std::int32_t v;
                          std::memcpy(&v, dbs[src].data() + off, sizeof v);
                          bump(dbs[dst], off, v);
                          std::memset(dbs[src].data() + off, 0, sizeof v);
                        });
            map = *staged;
            staged.reset();
            n = ev.num_shards;
            break;
          case shard::RebalanceEvent::Kind::kHandoff:
          case shard::RebalanceEvent::Kind::kAddBackup:
            break;  // membership only — no data effect
        }
      }
    };
    std::uint64_t i = 1;
    for (const auto& out : run->trace) {
      apply_events_at(i);
      const shard::TxnDecision d =
          shard::plan_txn(router, workload, n, rng, remote_fraction);
      EXPECT_EQ(d.home, out.home) << "oracle diverged from the plan stream at txn " << i;
      ++i;
      if (!out.committed) continue;
      auto& home = dbs[d.home];
      bump(dbs[d.cross ? d.remote : d.home], workload.account_offset(d.plan.account),
           d.plan.amount);
      bump(home, workload.teller_offset(d.plan.teller), d.plan.amount);
      bump(home, workload.branch_offset(d.plan.branch), d.plan.amount);
      const wl::DebitCredit::HistoryRecord rec{d.plan.account, d.plan.teller,
                                               d.plan.branch, d.plan.amount};
      std::memcpy(home.data() + workload.history_offset(out.home_seq - 1), &rec,
                  sizeof rec);
    }
    apply_events_at(i);  // ops that completed after the stream drained
  }
  return dbs;
}

TEST(ChaosCascade, LiveRebalanceThreadedThroughTheCascadeStaysConsistent) {
  shard::ShardedConfig config;
  config.shards = 3;
  config.backups_per_shard = 2;
  shard::ShardedCluster cluster(config);

  // Load 1: shard 0 splits at txn 300 and hands off its primary once the
  // migration lands; shard 1's primary dies at txn 500, mid-migration.
  shard::ChaosSchedule chaos;
  chaos.kill_after_txn = 500;
  chaos.point = shard::ChaosSchedule::Point::kBetweenTxns;
  chaos.shard = 1;
  shard::RebalanceScript script;
  script.chunk_records = 16;
  script.ops.push_back({shard::RebalanceOp::Kind::kSplit, /*at_txn=*/300, /*shard=*/0, 0});
  script.ops.push_back(
      {shard::RebalanceOp::Kind::kHandoff, /*at_txn=*/1100, /*shard=*/0, 0});
  const auto run1 = cluster.run(/*seed=*/31, 1500, /*remote_fraction=*/0.25, chaos, script);
  EXPECT_EQ(run1.committed, 1500u) << "neither the kill nor the migration may lose commits";
  EXPECT_EQ(run1.takeovers, 1u);
  ASSERT_EQ(cluster.num_shards(), 4u);
  EXPECT_EQ(cluster.rebalance_counters().cutovers, 1u);
  EXPECT_EQ(cluster.rebalance_counters().handoffs, 1u);
  EXPECT_EQ(cluster.full_syncs_served(0), 0u)
      << "a planned handoff must rejoin by delta, never by full image";

  // Watermark audit, phase boundary 1: every backup sits exactly at its
  // shard's committed sequence — across the cutover AND the handoff.
  std::vector<std::uint64_t> floor(cluster.num_shards());
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    floor[s] = cluster.shard_committed(s);
    for (std::size_t b = 0; b < cluster.backup_count(s); ++b) {
      EXPECT_EQ(cluster.backup_applied(s, b), floor[s])
          << "shard " << s << " backup " << b << " watermark lagged the cutover";
    }
  }

  // Load 2 on the rebalanced, once-degraded cluster.
  const auto run2 = cluster.run(/*seed=*/77, 1000, 0.25);
  EXPECT_EQ(run2.committed, 1000u);
  EXPECT_EQ(cluster.takeovers(), 1u) << "load 2 saw no kill";

  // Watermark audit, phase boundary 2: monotone — no shard's committed
  // sequence regressed, and every backup caught back up.
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_GE(cluster.shard_committed(s), floor[s])
        << "shard " << s << " watermark went backwards";
    for (std::size_t b = 0; b < cluster.backup_count(s); ++b) {
      EXPECT_EQ(cluster.backup_applied(s, b), cluster.shard_committed(s))
          << "shard " << s << " backup " << b;
    }
  }

  const auto oracle =
      sharded_rebalance_oracle(cluster, config.shards, {{31, 0.25, &run1}, {77, 0.25, &run2}});
  for (unsigned s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.in_doubt(s), 0u);
    EXPECT_EQ(cluster.check_replicas(s), "") << "shard " << s;
    EXPECT_EQ(cluster.shard_crc(s), Crc32::of(oracle[s].data(), oracle[s].size()))
        << "shard " << s << " surviving image != reconfiguration-aware oracle";
  }
  EXPECT_EQ(cluster.check_global_consistency(), "");
  EXPECT_EQ(cluster.resolution_conflicts(), 0u);
}

}  // namespace
}  // namespace vrep::net
