// Instrumented memory bus: charging, regions, write-through, diff_copy,
// capture, determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/mem_bus.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace vrep::sim {
namespace {

TEST(MemBus, PassThroughBusMovesDataWithoutClock) {
  MemBus bus;
  std::uint8_t dst[16] = {};
  const std::uint8_t src[16] = {1, 2, 3, 4};
  bus.write(dst, src, 16, TrafficClass::kModified);
  EXPECT_EQ(std::memcmp(dst, src, 16), 0);
  EXPECT_FALSE(bus.simulated());
}

TEST(MemBus, ChargesAccumulateOnClock) {
  AlphaCostModel cost;
  VirtualClock clk;
  CacheModel cache(cost.cache);
  MemBus bus(&clk, &cache, &cost);
  std::vector<std::uint8_t> region(4096);
  bus.register_region(region.data(), region.size());
  const SimTime t0 = clk.now();
  const std::uint32_t v = 5;
  bus.write(region.data(), &v, 4, TrafficClass::kModified);
  EXPECT_GT(clk.now(), t0);
}

TEST(MemBus, VirtualAddressingIsLayoutIndependent) {
  // Two buses with regions at different host addresses must charge the
  // exact same virtual time for the same access pattern: results cannot
  // depend on where the host allocator put the arena.
  AlphaCostModel cost;
  auto run = [&cost](std::size_t slack) {
    VirtualClock clk;
    CacheModel cache(cost.cache);
    MemBus bus(&clk, &cache, &cost);
    std::vector<std::uint8_t> pad(slack);
    std::vector<std::uint8_t> region(1 << 20);
    bus.register_region(region.data(), region.size());
    Rng rng = Rng(7);
    for (int i = 0; i < 10'000; ++i) {
      const std::uint32_t v = static_cast<std::uint32_t>(i);
      bus.write(region.data() + rng.below(region.size() - 4), &v, 4,
                TrafficClass::kModified);
    }
    return clk.now();
  };
  EXPECT_EQ(run(0), run(12345));
}

TEST(MemBus, WriteThroughOnlyForReplicatedRegions) {
  AlphaCostModel cost;
  McFabric fabric(cost.link);
  VirtualClock clk;
  CacheModel cache(cost.cache);
  McInterface mc(&fabric, &clk, 8, 5, 0.4, 0);
  MemBus bus(&clk, &cache, &cost);
  bus.attach_mc(&mc);

  std::vector<std::uint8_t> repl(4096), local(4096), remote(4096);
  bus.register_region(repl.data(), repl.size());
  bus.register_region(local.data(), local.size());
  bus.replicate_region(repl.data(), remote.data());

  const std::uint64_t v = 0xABCDEF;
  bus.write(repl.data() + 8, &v, 8, TrafficClass::kModified);
  bus.write(local.data() + 8, &v, 8, TrafficClass::kModified);
  bus.barrier();
  fabric.deliver_all();

  EXPECT_EQ(std::memcmp(remote.data() + 8, &v, 8), 0);
  EXPECT_EQ(mc.traffic().total(), 8u) << "the local region must not be shipped";
}

TEST(MemBus, UnreplicateStopsShipping) {
  AlphaCostModel cost;
  McFabric fabric(cost.link);
  VirtualClock clk;
  CacheModel cache(cost.cache);
  McInterface mc(&fabric, &clk, 8, 5, 0.4, 0);
  MemBus bus(&clk, &cache, &cost);
  bus.attach_mc(&mc);
  std::vector<std::uint8_t> repl(4096), remote(4096);
  bus.register_region(repl.data(), repl.size());
  bus.replicate_region(repl.data(), remote.data());
  const std::uint32_t v = 1;
  bus.write(repl.data(), &v, 4, TrafficClass::kMeta);
  bus.unreplicate_region(repl.data());
  bus.write(repl.data() + 64, &v, 4, TrafficClass::kMeta);
  EXPECT_EQ(mc.traffic().total(), 4u);
}

TEST(MemBus, DiffCopyReturnsChangedBytesOnly) {
  MemBus bus;
  std::uint8_t mirror[64], db[64];
  std::memset(mirror, 0, sizeof mirror);
  std::memset(db, 0, sizeof db);
  db[3] = 1;
  db[4] = 2;
  db[40] = 9;
  EXPECT_EQ(bus.diff_copy(mirror, db, 64, TrafficClass::kUndo), 3u);
  EXPECT_EQ(std::memcmp(mirror, db, 64), 0);
  EXPECT_EQ(bus.diff_copy(mirror, db, 64, TrafficClass::kUndo), 0u) << "now identical";
}

TEST(MemBus, DiffCopyShipsOnlyDifferingRuns) {
  AlphaCostModel cost;
  McFabric fabric(cost.link);
  VirtualClock clk;
  CacheModel cache(cost.cache);
  McInterface mc(&fabric, &clk, 8, 5, 0.4, 0);
  MemBus bus(&clk, &cache, &cost);
  bus.attach_mc(&mc);
  std::vector<std::uint8_t> mirror(4096, 0), db(4096, 0), remote(4096, 0);
  bus.register_region(mirror.data(), mirror.size());
  bus.replicate_region(mirror.data(), remote.data());
  db[10] = 7;
  db[11] = 8;
  db[100] = 9;
  bus.diff_copy(mirror.data(), db.data(), 256, TrafficClass::kUndo);
  EXPECT_EQ(mc.traffic().undo(), 3u) << "only the 3 changed bytes cross the wire";
}

TEST(MemBus, CaptureSeesDatabaseStoresRegionRelative) {
  struct Sink : MemBus::CaptureSink {
    std::vector<std::pair<std::uint64_t, std::size_t>> stores;
    void on_captured_store(std::uint64_t off, const void*, std::size_t len) override {
      stores.emplace_back(off, len);
    }
  } sink;
  MemBus bus;
  std::vector<std::uint8_t> db(4096), other(4096);
  bus.set_capture(db.data(), db.size(), &sink);
  const std::uint32_t v = 3;
  bus.write(db.data() + 100, &v, 4, TrafficClass::kModified);
  bus.write(other.data() + 5, &v, 4, TrafficClass::kModified);
  bus.clear_capture();
  bus.write(db.data() + 200, &v, 4, TrafficClass::kModified);
  ASSERT_EQ(sink.stores.size(), 1u);
  EXPECT_EQ(sink.stores[0].first, 100u);
  EXPECT_EQ(sink.stores[0].second, 4u);
}

TEST(MemBus, RegisterRegionIsIdempotent) {
  MemBus bus;
  std::vector<std::uint8_t> region(4096);
  bus.register_region(region.data(), region.size());
  bus.register_region(region.data(), region.size());  // reboot re-attach
  SUCCEED();
}

TEST(MemBus, CopyMovesAndCharges) {
  AlphaCostModel cost;
  VirtualClock clk;
  CacheModel cache(cost.cache);
  MemBus bus(&clk, &cache, &cost);
  std::vector<std::uint8_t> region(8192);
  bus.register_region(region.data(), region.size());
  for (int i = 0; i < 64; ++i) region[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const SimTime t0 = clk.now();
  bus.copy(region.data() + 4096, region.data(), 64, TrafficClass::kUndo);
  EXPECT_EQ(std::memcmp(region.data() + 4096, region.data(), 64), 0);
  EXPECT_GE(clk.now() - t0, static_cast<SimTime>(64 * cost.copy_byte_ns));
}

}  // namespace
}  // namespace vrep::sim
