// Functional tests of the four transaction store versions, parameterized so
// every behaviour is checked against every version.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace vrep {
namespace {

using core::StoreConfig;
using core::VersionKind;

constexpr VersionKind kAllVersions[] = {
    VersionKind::kV0Vista,
    VersionKind::kV1MirrorCopy,
    VersionKind::kV2MirrorDiff,
    VersionKind::kV3InlineLog,
};

StoreConfig small_config() {
  StoreConfig config;
  config.db_size = 256 * 1024;
  config.max_ranges_per_txn = 32;
  config.undo_log_capacity = 64 * 1024;
  config.heap_size = 1ull << 20;
  return config;
}

class StoreTest : public ::testing::TestWithParam<VersionKind> {
 protected:
  void SetUp() override {
    config_ = small_config();
    arena_ = rio::Arena::create(core::required_arena_size(GetParam(), config_));
    store_ = core::make_store(GetParam(), bus_, arena_, config_, /*format=*/true);
  }

  // Re-attach to the same arena, as a reboot would.
  void reopen() {
    store_.reset();
    store_ = core::make_store(GetParam(), bus_, arena_, config_, /*format=*/false);
  }

  sim::MemBus bus_;  // pass-through: functional tests need no cost model
  StoreConfig config_;
  rio::Arena arena_;
  std::unique_ptr<core::TransactionStore> store_;
};

TEST_P(StoreTest, FreshStoreIsValidAndEmpty) {
  EXPECT_TRUE(store_->validate());
  EXPECT_EQ(store_->committed_seq(), 0u);
  EXPECT_EQ(store_->db_size(), config_.db_size);
  for (std::size_t i = 0; i < config_.db_size; ++i) {
    ASSERT_EQ(store_->db()[i], 0) << "fresh database must be zeroed, byte " << i;
  }
}

TEST_P(StoreTest, CommitMakesWritesDurable) {
  std::uint8_t* db = store_->db();
  store_->begin_transaction();
  store_->set_range(db + 100, 16);
  const std::uint32_t value = 0xdeadbeef;
  store_->bus().write(db + 100, &value, 4, sim::TrafficClass::kModified);
  store_->commit_transaction();

  EXPECT_EQ(store_->committed_seq(), 1u);
  std::uint32_t readback;
  std::memcpy(&readback, db + 100, 4);
  EXPECT_EQ(readback, value);
  EXPECT_TRUE(store_->validate());
}

TEST_P(StoreTest, AbortRestoresPreImage) {
  std::uint8_t* db = store_->db();
  // Commit an initial value.
  store_->begin_transaction();
  store_->set_range(db + 64, 8);
  const std::uint64_t initial = 0x1111111111111111ull;
  store_->bus().write(db + 64, &initial, 8, sim::TrafficClass::kModified);
  store_->commit_transaction();

  // Overwrite and abort.
  store_->begin_transaction();
  store_->set_range(db + 64, 8);
  const std::uint64_t scribble = 0x2222222222222222ull;
  store_->bus().write(db + 64, &scribble, 8, sim::TrafficClass::kModified);
  store_->abort_transaction();

  std::uint64_t readback;
  std::memcpy(&readback, db + 64, 8);
  EXPECT_EQ(readback, initial);
  EXPECT_EQ(store_->committed_seq(), 1u) << "abort must not bump the commit sequence";
  EXPECT_TRUE(store_->validate());
}

TEST_P(StoreTest, AbortRestoresManyRangesNewestFirst) {
  std::uint8_t* db = store_->db();
  // Two overlapping set_ranges in one transaction: the second snapshot sees
  // the first modification, so newest-first undo must end at the ORIGINAL.
  store_->begin_transaction();
  store_->set_range(db + 0, 16);
  const std::uint64_t first = 0xAAAAAAAAAAAAAAAAull;
  store_->bus().write(db + 0, &first, 8, sim::TrafficClass::kModified);
  store_->set_range(db + 8, 16);  // overlaps bytes 8..16
  const std::uint64_t second = 0xBBBBBBBBBBBBBBBBull;
  store_->bus().write(db + 8, &second, 8, sim::TrafficClass::kModified);
  store_->abort_transaction();

  for (std::size_t i = 0; i < 24; ++i) {
    ASSERT_EQ(db[i], 0) << "byte " << i << " not restored";
  }
  EXPECT_TRUE(store_->validate());
}

TEST_P(StoreTest, SequenceAdvancesPerCommit) {
  std::uint8_t* db = store_->db();
  for (int i = 1; i <= 10; ++i) {
    store_->begin_transaction();
    store_->set_range(db + 32, 4);
    store_->bus().write(db + 32, &i, 4, sim::TrafficClass::kModified);
    store_->commit_transaction();
    EXPECT_EQ(store_->committed_seq(), static_cast<std::uint64_t>(i));
  }
}

TEST_P(StoreTest, RecoverOnCleanStoreIsNoOp) {
  std::uint8_t* db = store_->db();
  store_->begin_transaction();
  store_->set_range(db + 0, 4);
  const int v = 7;
  store_->bus().write(db + 0, &v, 4, sim::TrafficClass::kModified);
  store_->commit_transaction();

  reopen();
  EXPECT_EQ(store_->recover(), 0);
  EXPECT_EQ(store_->committed_seq(), 1u);
  int readback;
  std::memcpy(&readback, store_->db() + 0, 4);
  EXPECT_EQ(readback, 7);
  EXPECT_TRUE(store_->validate());
}

TEST_P(StoreTest, ReopenWithoutRecoverySeesCommittedData) {
  std::uint8_t* db = store_->db();
  store_->begin_transaction();
  store_->set_range(db + 1000, 32);
  std::uint8_t pattern[32];
  for (int i = 0; i < 32; ++i) pattern[i] = static_cast<std::uint8_t>(i * 3 + 1);
  store_->bus().write(db + 1000, pattern, 32, sim::TrafficClass::kModified);
  store_->commit_transaction();

  reopen();
  EXPECT_EQ(std::memcmp(store_->db() + 1000, pattern, 32), 0);
}

TEST_P(StoreTest, RegionsCoverRootAndDatabase) {
  bool has_root = false, has_db = false;
  for (const auto& r : store_->regions()) {
    if (std::string(r.name) == "root") has_root = true;
    if (std::string(r.name) == "db") {
      has_db = true;
      EXPECT_EQ(r.len, config_.db_size);
      EXPECT_TRUE(r.replicate_passive);
    }
    EXPECT_LE(r.offset + r.len, arena_.size());
  }
  EXPECT_TRUE(has_root);
  EXPECT_TRUE(has_db);
}

TEST_P(StoreTest, MirrorVersionsKeepRangeArrayLocal) {
  const auto kind = GetParam();
  const bool is_mirror =
      kind == VersionKind::kV1MirrorCopy || kind == VersionKind::kV2MirrorDiff;
  for (const auto& r : store_->regions()) {
    if (std::string(r.name) == "ranges") {
      EXPECT_TRUE(is_mirror);
      EXPECT_FALSE(r.replicate_passive) << "Section 5.1: the range array is not shipped";
    }
  }
}

TEST_P(StoreTest, ManyRandomTransactionsStayConsistent) {
  // Model check against an in-memory reference: random commits and aborts,
  // the database must always equal the reference afterwards.
  std::uint8_t* db = store_->db();
  std::vector<std::uint8_t> reference(config_.db_size, 0);
  Rng rng(42);

  for (int txn = 0; txn < 300; ++txn) {
    const bool commit = rng.below(100) < 70;
    store_->begin_transaction();
    std::vector<std::uint8_t> scratch = reference;
    const int ranges = static_cast<int>(1 + rng.below(5));
    for (int r = 0; r < ranges; ++r) {
      const std::size_t len = 4 + rng.below(64);
      const std::size_t off = rng.below(config_.db_size - len);
      store_->set_range(db + off, len);
      for (std::size_t i = 0; i < len; i += 4) {
        const auto v = static_cast<std::uint32_t>(rng.next_u32());
        const std::size_t n = std::min<std::size_t>(4, len - i);
        store_->bus().write(db + off + i, &v, n, sim::TrafficClass::kModified);
        std::memcpy(scratch.data() + off + i, &v, n);
      }
    }
    if (commit) {
      store_->commit_transaction();
      reference = std::move(scratch);
    } else {
      store_->abort_transaction();
    }
    ASSERT_EQ(std::memcmp(db, reference.data(), config_.db_size), 0)
        << "divergence after txn " << txn << (commit ? " (commit)" : " (abort)");
    ASSERT_TRUE(store_->validate());
  }
}

TEST_P(StoreTest, SetRangeRejectsOutOfBounds) {
  store_->begin_transaction();
  EXPECT_DEATH(store_->set_range(store_->db() + config_.db_size - 2, 8), "CHECK");
}

TEST_P(StoreTest, DoubleBeginIsRejected) {
  store_->begin_transaction();
  EXPECT_DEATH(store_->begin_transaction(), "CHECK");
}

INSTANTIATE_TEST_SUITE_P(AllVersions, StoreTest, ::testing::ValuesIn(kAllVersions),
                         [](const auto& info) {
                           switch (info.param) {
                             case VersionKind::kV0Vista: return "V0Vista";
                             case VersionKind::kV1MirrorCopy: return "V1MirrorCopy";
                             case VersionKind::kV2MirrorDiff: return "V2MirrorDiff";
                             case VersionKind::kV3InlineLog: return "V3InlineLog";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace vrep
