#include "core/mirror_store.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrep::core {

using sim::TrafficClass;

std::size_t MirrorStore::arena_bytes(const StoreConfig& config) {
  return 4096 + sizeof(RangeArray) + config.max_ranges_per_txn * sizeof(RangeRecord) +
         2 * config.db_size + 4096;
}

MirrorStore::MirrorStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config,
                         bool diff, bool format)
    : StoreBase(bus, arena, config), diff_(diff) {
  VREP_CHECK(arena.size() >= arena_bytes(config));
  rio::Layout layout(arena);
  auto* root = layout.carve_as<RootBlock>();
  ranges_ = reinterpret_cast<RangeArray*>(
      layout.carve(sizeof(RangeArray) + config.max_ranges_per_txn * sizeof(RangeRecord), 64));
  db_ = layout.carve(config.db_size, 64);
  mirror_ = layout.carve(config.db_size, 64);
  bus_->register_region(root, sizeof(RootBlock));
  bus_->register_region(ranges_,
                        sizeof(RangeArray) + config.max_ranges_per_txn * sizeof(RangeRecord));
  bus_->register_region(db_, config.db_size);
  bus_->register_region(mirror_, config.db_size);
  init_root(root, kind(), format);
  if (format) {
    // The mirror starts identical to the (zeroed) database. A plain memset
    // suffices: initialisation is not on any measured path.
    std::memset(mirror_, 0, config.db_size);
  }
}

std::vector<StoreRegion> MirrorStore::regions() const {
  const std::uint8_t* base = arena_->data();
  return {
      {"root", static_cast<std::size_t>(reinterpret_cast<const std::uint8_t*>(root_) - base),
       sizeof(RootBlock), true},
      // Section 5.1 optimisation: the range array stays on the primary.
      {"ranges", static_cast<std::size_t>(reinterpret_cast<const std::uint8_t*>(ranges_) - base),
       sizeof(RangeArray) + config_.max_ranges_per_txn * sizeof(RangeRecord), false},
      {"db", static_cast<std::size_t>(db_ - base), config_.db_size, true},
      {"mirror", static_cast<std::size_t>(mirror_ - base), config_.db_size, true},
  };
}

void MirrorStore::begin_transaction() {
  VREP_CHECK(!in_txn_);
  in_txn_ = true;
  bus_->charge(bus_->cost().begin_ns);
  bus_->write_pod(&ranges_->count, std::uint64_t{0}, TrafficClass::kMeta);
  persist_state(kActive);
}

void MirrorStore::set_range(void* base, std::size_t len) {
  VREP_CHECK(in_txn_);
  auto* p = static_cast<std::uint8_t*>(base);
  VREP_CHECK(p >= db_ && p + len <= db_ + config_.db_size);
  bus_->charge(bus_->cost().set_range_base_ns);
  const std::uint64_t i = ranges_->count;
  VREP_CHECK(i < config_.max_ranges_per_txn);
  RangeRecord rec{static_cast<std::uint64_t>(p - db_), len};
  bus_->write(&ranges_->records[i], &rec, sizeof rec, TrafficClass::kMeta);
  // Publication point for the record.
  bus_->write_pod(&ranges_->count, i + 1, TrafficClass::kMeta);
}

void MirrorStore::propagate_range_to_mirror(const RangeRecord& r) {
  if (diff_) {
    bus_->diff_copy(mirror_ + r.db_off, db_ + r.db_off, r.len, TrafficClass::kUndo);
  } else {
    bus_->copy(mirror_ + r.db_off, db_ + r.db_off, r.len, TrafficClass::kUndo);
  }
}

void MirrorStore::commit_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().commit_base_ns);
  // Commit point: one write flips the state machine to kCommitting with the
  // new sequence number; the database is authoritative from here on.
  persist_state_and_seq(kCommitting, root_->committed_seq + 1);
  const std::uint64_t n = ranges_->count;
  for (std::uint64_t i = 0; i < n; ++i) {
    bus_->charge(bus_->cost().commit_per_range_ns);
    bus_->read(&ranges_->records[i], sizeof(RangeRecord));
    propagate_range_to_mirror(ranges_->records[i]);
  }
  persist_state(kIdle);
  in_txn_ = false;
}

void MirrorStore::abort_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().abort_base_ns);
  // Reinstall before-images from the mirror, newest range first.
  const std::uint64_t n = ranges_->count;
  for (std::uint64_t i = n; i > 0; --i) {
    bus_->read(&ranges_->records[i - 1], sizeof(RangeRecord));
    const RangeRecord& r = ranges_->records[i - 1];
    bus_->copy(db_ + r.db_off, mirror_ + r.db_off, r.len, TrafficClass::kModified);
  }
  bus_->write_pod(&ranges_->count, std::uint64_t{0}, TrafficClass::kMeta);
  persist_state(kIdle);
  in_txn_ = false;
}

int MirrorStore::recover() {
  VREP_CHECK(validate_root(kind()));
  int rolled_back = 0;
  const std::uint64_t n = ranges_->count;
  switch (root_->state) {
    case kIdle:
      break;
    case kActive:
      // The in-flight transaction never committed: undo its in-place writes
      // from the mirror.
      for (std::uint64_t i = n; i > 0; --i) {
        const RangeRecord& r = ranges_->records[i - 1];
        VREP_CHECK(r.db_off + r.len <= config_.db_size);
        bus_->copy(db_ + r.db_off, mirror_ + r.db_off, r.len, TrafficClass::kModified);
      }
      rolled_back = 1;
      break;
    case kCommitting:
      // Commit point passed: redo the (idempotent) propagation to the mirror.
      for (std::uint64_t i = 0; i < n; ++i) {
        const RangeRecord& r = ranges_->records[i];
        VREP_CHECK(r.db_off + r.len <= config_.db_size);
        propagate_range_to_mirror(r);
      }
      break;
    default:
      VREP_CHECK(false && "corrupt state");
  }
  bus_->write_pod(&ranges_->count, std::uint64_t{0}, TrafficClass::kMeta);
  persist_state(kIdle);
  in_txn_ = false;
  return rolled_back;
}

int MirrorStore::takeover() {
  // Backup-side repair: the range array was never shipped, so repair works
  // on whole databases (paper Section 5.1: "On recovery, the backup will
  // have to copy the entire database from the mirror").
  VREP_CHECK(validate_root(kind()));
  int rolled_back = 0;
  switch (root_->state) {
    case kIdle:
      // Even at idle the replica's database and mirror may disagree on the
      // trailing transaction (write-buffer flushes are not program-ordered,
      // so a later transaction's bytes can land before the state flip — the
      // 1-safe window). The mirror is the committed authority; repair from
      // it unconditionally.
      bus_->copy(db_, mirror_, config_.db_size, TrafficClass::kModified);
      break;
    case kActive:
      bus_->copy(db_, mirror_, config_.db_size, TrafficClass::kModified);
      rolled_back = 1;
      break;
    case kCommitting:
      bus_->copy(mirror_, db_, config_.db_size, TrafficClass::kUndo);
      break;
    default:
      VREP_CHECK(false && "corrupt state");
  }
  bus_->write_pod(&ranges_->count, std::uint64_t{0}, TrafficClass::kMeta);
  persist_state(kIdle);
  in_txn_ = false;
  return rolled_back;
}

bool MirrorStore::validate() const {
  if (!validate_root(kind())) return false;
  if (ranges_->count > config_.max_ranges_per_txn) return false;
  for (std::uint64_t i = 0; i < ranges_->count; ++i) {
    const RangeRecord& r = ranges_->records[i];
    if (r.db_off + r.len > config_.db_size) return false;
  }
  // When idle, the mirror must equal the database everywhere.
  if (root_->state == kIdle && !in_txn_) {
    if (std::memcmp(db_, mirror_, config_.db_size) != 0) return false;
  }
  return true;
}

}  // namespace vrep::core
