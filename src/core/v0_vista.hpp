// Version 0 — the original Vista design (paper Section 4.1).
//
// A set_range allocates an undo log record from the persistent heap, puts it
// at the head of a linked list, allocates a second heap area to hold the
// before-image, and bcopy's the range into it. Database writes are in-place.
// Commit unlinks the list and frees every record and area; abort (and crash
// recovery) walks the list newest-first reinstalling before-images.
//
// Persistent protocol:
//   * A record becomes visible by the single 8-byte write of
//     root.undo_head (the link is prepared inside the record first).
//   * The commit point is one 16-byte write {committed_seq+1, undo_head=0}.
//     Records are freed only after it; a crash mid-free leaves garbage that
//     recovery reclaims wholesale (the heap is empty between transactions,
//     so recovery ends with heap.reset()).
//
// Arena layout: [root | heap | pad region | db].
#pragma once

#include "core/store_base.hpp"
#include "rio/heap.hpp"

namespace vrep::core {

class VistaStore final : public StoreBase {
 public:
  VistaStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config, bool format);

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override;
  VersionKind kind() const override { return VersionKind::kV0Vista; }
  std::vector<StoreRegion> regions() const override;

  static std::size_t arena_bytes(const StoreConfig& config);

 private:
  struct UndoRecord {  // persistent, allocated from the heap
    std::uint64_t next;    // heap offset of next record (0 = end of list)
    std::uint64_t db_off;  // range start within the database
    std::uint64_t len;
    std::uint64_t area;    // heap offset of the before-image area
  };

  // Reinstall before-images walking the list from `head`; frees nothing.
  void apply_undo_list(std::uint64_t head);
  void write_meta_pad();

  std::unique_ptr<rio::PersistentHeap> heap_;
  std::uint8_t* heap_base_ = nullptr;
  std::uint8_t* pad_region_ = nullptr;
  std::size_t pad_cursor_ = 0;
  static constexpr std::size_t kPadRegionSize = 64 * 1024;
};

}  // namespace vrep::core
