// Versions 1 and 2 — mirroring (paper Sections 4.2 and 4.3).
//
// Both versions replace Vista's heap-allocated linked list with a flat array
// of {offset, len} range records (allocation = bumping an index) and keep a
// full "mirror" copy of the database holding the last committed state.
// Database writes are in-place; commit propagates each set_range region from
// the database into the mirror:
//   * Version 1 (mirror by copy):  straight bcopy of the whole region.
//   * Version 2 (mirror by diff):  compare and write only the bytes that
//     changed — fewer writes, at the price of the comparison.
//
// Persistent protocol (state machine in root.state):
//   kActive      transaction mutating db in-place; mirror == committed state;
//                recovery direction: mirror -> db over the recorded ranges.
//   kCommitting  commit point passed (single 12-byte write of
//                {state, committed_seq}); db == committed state; recovery
//                direction: db -> mirror (idempotent redo of the copies).
//   kIdle        db == mirror over all ranges.
//
// In the passive primary-backup configuration the range array is
// deliberately *not* written through (paper Section 5.1): that halves the
// meta-data traffic but means the backup cannot repair ranges individually —
// its takeover() copies the whole database from the mirror (or vice versa),
// trading recovery time for failure-free throughput.
//
// Arena layout: [root | range array | db | mirror].
#pragma once

#include "core/store_base.hpp"

namespace vrep::core {

class MirrorStore final : public StoreBase {
 public:
  MirrorStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config, bool diff,
              bool format);

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  int takeover() override;
  bool validate() const override;
  void flush_initial_state() override { std::memcpy(mirror_, db_, config_.db_size); }
  VersionKind kind() const override {
    return diff_ ? VersionKind::kV2MirrorDiff : VersionKind::kV1MirrorCopy;
  }
  std::vector<StoreRegion> regions() const override;

  const std::uint8_t* mirror() const { return mirror_; }

  static std::size_t arena_bytes(const StoreConfig& config);

 private:
  struct RangeRecord {  // persistent, in the range array
    std::uint64_t db_off;
    std::uint64_t len;
  };
  // The range array region: count + records. Lives next to the records (not
  // in the root block) because none of it is written through to the backup —
  // it is primary-local undo metadata (Section 5.1).
  struct RangeArray {
    std::uint64_t count;
    RangeRecord records[];  // max_ranges_per_txn entries
  };

  void propagate_range_to_mirror(const RangeRecord& r);

  bool diff_;
  RangeArray* ranges_ = nullptr;
  std::uint8_t* mirror_ = nullptr;
};

}  // namespace vrep::core
