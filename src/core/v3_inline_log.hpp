// Version 3 — improved logging (paper Section 4.4).
//
// The undo log is a single contiguous region written with a bump pointer.
// Each set_range appends one record holding the range coordinates AND the
// before-image in-line (no separate heap area, no mirror). Commit rewinds
// the bump pointer — deallocation is free. All writes are therefore strictly
// localized to the database and a small, sequentially-written log: best
// cache behaviour locally, and best write-buffer coalescing (32-byte Memory
// Channel packets) when the log is written through to a backup. This is the
// version the paper crowns for both standalone and passive primary-backup
// use, and the local scheme the active primary runs underneath its redo
// stream.
//
// Persistent record format ("publication by last word"):
//   [u32 magic | u32 db_off | u32 len | u32 stamp]  + len bytes before-image
// The first 12 header bytes and the payload are written first; the stamp —
// mixing the transaction sequence number with the store's incarnation
// counter (bumped by every recovery and abort; see publication_stamp()) —
// is written last, atomically publishing the record. Records of older
// transactions or of a crashed earlier attempt are invisible because their
// stamp doesn't match; commit is the single 8-byte bump of
// root.committed_seq, which instantly invalidates the whole log. The bump
// pointer itself is volatile: recovery rediscovers the log extent by
// scanning records with a matching stamp (bounded by magic + range
// checks).
//
// Arena layout: [root | undo log | db].
#pragma once

#include <vector>

#include "core/store_base.hpp"

namespace vrep::core {

class InlineLogStore final : public StoreBase {
 public:
  InlineLogStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config, bool format);

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override;
  VersionKind kind() const override { return VersionKind::kV3InlineLog; }
  std::vector<StoreRegion> regions() const override;

  static std::size_t arena_bytes(const StoreConfig& config);

  // Exposed for the active replicator, which reuses V3 locally and ships a
  // redo log instead of this undo log.
  std::size_t ranges_in_txn() const { return txn_records_.size(); }

  // Seed the persistent sequence counter of a freshly formatted store so a
  // promoted backup continues the replicated numbering (rejoin deltas and
  // any workload state derived from committed_seq depend on it). Only valid
  // outside a transaction, before the store commits anything of its own.
  void seed_committed_seq(std::uint64_t seq) {
    VREP_CHECK(!in_txn_);
    persist_committed_seq(seq);
  }

 private:
  struct RecordHeader {  // persistent, 16 bytes
    std::uint32_t magic;
    std::uint32_t db_off;
    std::uint32_t len;
    std::uint32_t seq;  // publication stamp (see publication_stamp()); written LAST
  };
  static constexpr std::uint32_t kRecordMagic = 0x554e444fu;  // "UNDO"

  // The stamp records of the current in-flight transaction carry.
  std::uint32_t publication_stamp() const;
  // Scan the log for records carrying `stamp`; returns their offsets in
  // log order. Stops at the first invalid or mismatching header.
  std::vector<std::size_t> scan_log(std::uint32_t stamp) const;
  void apply_records_reverse(const std::vector<std::size_t>& records);
  void invalidate_log();

  std::uint8_t* log_ = nullptr;
  std::size_t log_tail_ = 0;                // volatile bump pointer
  std::vector<std::size_t> txn_records_;    // volatile: record offsets this txn
};

}  // namespace vrep::core
