// Partition latch for the SMP executor (src/exec).
//
// The paper scopes concurrency control out of the transaction store
// ("provided by a layer above"; api.hpp): a store instance is used by one
// transaction stream at a time. This is that layer's bottom brick — plain
// mutual exclusion guarding one store partition, with a contention counter
// so benches and tests can see how often workers actually collided.
//
// try_lock-first keeps the uncontended fast path to a single atomic
// exchange; the counter only moves on collisions and is relaxed (monitoring
// only, read after the worker threads are joined).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace vrep::core {

class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void lock() {
    if (mu_.try_lock()) return;
    contended_.fetch_add(1, std::memory_order_relaxed);
    mu_.lock();
  }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  // Acquisitions that found the latch held by another thread.
  std::uint64_t contended() const { return contended_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::atomic<std::uint64_t> contended_{0};
};

using LatchGuard = std::lock_guard<Latch>;

}  // namespace vrep::core
