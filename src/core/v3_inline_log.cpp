#include "core/v3_inline_log.hpp"

#include "util/check.hpp"

namespace vrep::core {

using sim::TrafficClass;

namespace {
std::size_t round_up4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }
}  // namespace

std::size_t InlineLogStore::arena_bytes(const StoreConfig& config) {
  return 4096 + config.undo_log_capacity + config.db_size + 4096;
}

InlineLogStore::InlineLogStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config,
                               bool format)
    : StoreBase(bus, arena, config) {
  VREP_CHECK(arena.size() >= arena_bytes(config));
  rio::Layout layout(arena);
  auto* root = layout.carve_as<RootBlock>();
  log_ = layout.carve(config.undo_log_capacity, 64);
  db_ = layout.carve(config.db_size, 64);
  bus_->register_region(root, sizeof(RootBlock));
  bus_->register_region(log_, config.undo_log_capacity);
  bus_->register_region(db_, config.db_size);
  init_root(root, VersionKind::kV3InlineLog, format);
}

std::vector<StoreRegion> InlineLogStore::regions() const {
  const std::uint8_t* base = arena_->data();
  return {
      {"root", static_cast<std::size_t>(reinterpret_cast<const std::uint8_t*>(root_) - base),
       sizeof(RootBlock), true},
      {"undo_log", static_cast<std::size_t>(log_ - base), config_.undo_log_capacity, true},
      {"db", static_cast<std::size_t>(db_ - base), config_.db_size, true},
  };
}

void InlineLogStore::begin_transaction() {
  VREP_CHECK(!in_txn_);
  in_txn_ = true;
  log_tail_ = 0;
  txn_records_.clear();
  bus_->charge(bus_->cost().begin_ns);
}

void InlineLogStore::set_range(void* base, std::size_t len) {
  VREP_CHECK(in_txn_);
  auto* p = static_cast<std::uint8_t*>(base);
  VREP_CHECK(p >= db_ && p + len <= db_ + config_.db_size);
  bus_->charge(bus_->cost().set_range_base_ns);

  const std::size_t rec_off = log_tail_;
  VREP_CHECK(rec_off + sizeof(RecordHeader) + round_up4(len) <= config_.undo_log_capacity);
  auto* hdr = reinterpret_cast<RecordHeader*>(log_ + rec_off);

  // Header minus the stamp, then the in-line before-image, then the
  // publication stamp as the last word — all strictly sequential stores, so
  // consecutive records coalesce into full write-buffer packets.
  RecordHeader h;
  h.magic = kRecordMagic;
  h.db_off = static_cast<std::uint32_t>(p - db_);
  h.len = static_cast<std::uint32_t>(len);
  bus_->write(hdr, &h, 12, TrafficClass::kMeta);
  bus_->copy(log_ + rec_off + sizeof(RecordHeader), p, len, TrafficClass::kUndo);
  bus_->write_pod(&hdr->seq, publication_stamp(), TrafficClass::kMeta);

  log_tail_ = rec_off + sizeof(RecordHeader) + round_up4(len);
  txn_records_.push_back(rec_off);
}

void InlineLogStore::commit_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().commit_base_ns +
               bus_->cost().commit_per_range_ns * static_cast<sim::SimTime>(txn_records_.size()));
  // Commit point: the sequence bump makes every log record stale at once.
  persist_committed_seq(root_->committed_seq + 1);
  // Deallocation is moving the bump pointer back — free.
  log_tail_ = 0;
  txn_records_.clear();
  in_txn_ = false;
}

void InlineLogStore::apply_records_reverse(const std::vector<std::size_t>& records) {
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const auto* hdr = reinterpret_cast<const RecordHeader*>(log_ + *it);
    bus_->read(hdr, sizeof *hdr);
    VREP_CHECK(hdr->db_off + hdr->len <= config_.db_size);
    bus_->copy(db_ + hdr->db_off, log_ + *it + sizeof(RecordHeader), hdr->len,
               TrafficClass::kModified);
  }
}

void InlineLogStore::invalidate_log() {
  // Clearing the first record's magic makes the log scan stop immediately.
  bus_->write_pod(reinterpret_cast<std::uint32_t*>(log_), 0u, TrafficClass::kMeta);
}

void InlineLogStore::abort_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().abort_base_ns);
  apply_records_reverse(txn_records_);
  bus_->write_pod(&root_->incarnation, root_->incarnation + 1, TrafficClass::kMeta);
  invalidate_log();
  log_tail_ = 0;
  txn_records_.clear();
  in_txn_ = false;
}

std::uint32_t InlineLogStore::publication_stamp() const {
  // The stamp a record of the CURRENT in-flight transaction must carry.
  // Mixing in the incarnation counter is essential: after a crash is
  // recovered (or an abort), the next transaction reuses the same sequence
  // number, and stale bytes at a stamp position — possibly payload of the
  // rolled-back attempt, i.e. arbitrary — must never read as published.
  // Every recovery/abort bumps the incarnation, so a structured collision
  // with the previous attempt is impossible (residual risk is a 2^-32
  // random coincidence, the same class as trusting any log checksum).
  // (The hazard was found by the workload crash-sweep test.)
  const auto seq = static_cast<std::uint32_t>(root_->committed_seq + 1);
  const auto inc = static_cast<std::uint32_t>(root_->incarnation);
  return seq ^ (inc * 0x9e3779b9u) ^ 0x5aa5c33cu;
}

std::vector<std::size_t> InlineLogStore::scan_log(std::uint32_t seq) const {
  std::vector<std::size_t> records;
  std::size_t off = 0;
  while (off + sizeof(RecordHeader) <= config_.undo_log_capacity) {
    const auto* hdr = reinterpret_cast<const RecordHeader*>(log_ + off);
    if (hdr->magic != kRecordMagic || hdr->seq != seq) break;
    if (hdr->db_off + std::uint64_t{hdr->len} > config_.db_size) break;
    if (off + sizeof(RecordHeader) + round_up4(hdr->len) > config_.undo_log_capacity) break;
    records.push_back(off);
    off += sizeof(RecordHeader) + round_up4(hdr->len);
  }
  return records;
}

int InlineLogStore::recover() {
  VREP_CHECK(validate_root(VersionKind::kV3InlineLog));
  const std::vector<std::size_t> records = scan_log(publication_stamp());
  if (!records.empty()) {
    apply_records_reverse(records);
    invalidate_log();
  }
  bus_->write_pod(&root_->incarnation, root_->incarnation + 1, TrafficClass::kMeta);
  log_tail_ = 0;
  txn_records_.clear();
  in_txn_ = false;
  return records.empty() ? 0 : 1;
}

bool InlineLogStore::validate() const {
  if (!validate_root(VersionKind::kV3InlineLog)) return false;
  // Any records claiming to belong to the in-flight transaction must parse
  // cleanly (scan_log's checks) — scan_log already enforces this by
  // construction; validate the volatile view agrees with it while in a txn.
  if (in_txn_) {
    const auto records = scan_log(publication_stamp());
    if (records.size() < txn_records_.size()) return false;
  }
  return true;
}

}  // namespace vrep::core
