// Public transaction API.
//
// This is the RVM / Vista interface the paper builds on (Section 2.1):
//
//   begin_transaction();
//   set_range(addr, len);   // declare a region the transaction may modify
//   ... in-place writes to the database through the store's bus ...
//   commit_transaction();   // or abort_transaction()
//
// The transaction data is a flat region ("the database") mapped into the
// caller's address space. Concurrency control is explicitly out of scope
// (provided by a layer above, as in the paper); a store instance is used by
// one transaction stream at a time.
//
// Four interchangeable implementations reproduce the paper's Versions 0-3
// (see DESIGN.md and the per-version headers); all of them are 1-safe when
// replicated: commit returns as soon as the commit is durable locally,
// leaving a microseconds-wide window in which a failure loses the last
// committed transaction but never yields a torn one on the backup (active)
// or a torn-by-at-most-the-last-transaction mirror (passive, documented
// in repl/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::core {

enum class VersionKind : std::uint32_t {
  kV0Vista = 0,       // heap-allocated undo records in a linked list
  kV1MirrorCopy = 1,  // range array + mirror; commit copies ranges to mirror
  kV2MirrorDiff = 2,  // range array + mirror; commit diffs ranges into mirror
  kV3InlineLog = 3,   // bump-pointer undo log with in-line before-images
};

const char* version_name(VersionKind v);

struct StoreConfig {
  std::size_t db_size = 50ull << 20;
  std::size_t max_ranges_per_txn = 64;
  // Capacity of the V3 inline undo log (headers + before-images of one txn).
  std::size_t undo_log_capacity = 1ull << 20;
  // V0 persistent heap for undo records and before-image areas.
  std::size_t heap_size = 8ull << 20;
  // Extra bytes of bookkeeping written per V0 undo record, standing in for
  // Vista-internal metadata traffic we cannot reconstruct (see DESIGN.md).
  std::size_t v0_meta_pad_bytes = 0;
};

// A sub-region of the store's arena, described by arena offset so the same
// description applies to the primary's and the backup's arena.
struct StoreRegion {
  const char* name;
  std::size_t offset;
  std::size_t len;
  // Whether the passive primary-backup configuration writes this region
  // through to the backup. (The V1/V2 range array is deliberately not
  // written through — the Section 5.1 optimisation.)
  bool replicate_passive;
};

class TransactionStore {
 public:
  virtual ~TransactionStore() = default;

  virtual void begin_transaction() = 0;
  virtual void set_range(void* base, std::size_t len) = 0;
  virtual void commit_transaction() = 0;
  virtual void abort_transaction() = 0;

  // Crash recovery: bring the persistent state back to the last committed
  // transaction. Called on the rebooted primary, or on the backup's replica
  // of the structures during takeover. Returns the number of transactions
  // rolled back (0 or 1).
  virtual int recover() = 0;

  // Backup takeover. Differs from recover() only for the mirror versions,
  // where the backup has no range array and must restore the database from
  // the mirror wholesale (paper Section 5.1).
  virtual int takeover() { return recover(); }

  // Check internal invariants of the persistent structures; used by tests
  // and by recovery paranoia mode. Returns true if consistent.
  virtual bool validate() const = 0;

  // Called once after the application has populated a freshly formatted
  // database, before the first transaction (off every measured path). The
  // mirror versions synchronise the mirror with the database here.
  virtual void flush_initial_state() {}

  virtual VersionKind kind() const = 0;
  virtual std::uint8_t* db() = 0;
  virtual const std::uint8_t* db() const = 0;
  virtual std::size_t db_size() const = 0;
  virtual std::uint64_t committed_seq() const = 0;
  virtual std::vector<StoreRegion> regions() const = 0;

  // The bus every database access must go through (so that in-place writes
  // by the application are charged and replicated like the store's own).
  virtual sim::MemBus& bus() = 0;
};

// Bytes of arena required to host a store of this kind/config.
std::size_t required_arena_size(VersionKind kind, const StoreConfig& config);

// Create a store over `arena`. If `format` is true the arena is initialised
// from scratch; if false the store attaches to existing persistent state
// (reboot / takeover) and the caller should invoke recover()/takeover().
std::unique_ptr<TransactionStore> make_store(VersionKind kind, sim::MemBus& bus,
                                             rio::Arena& arena, const StoreConfig& config,
                                             bool format);

// RAII transaction: commits explicitly; aborts when the scope is left
// without a commit on the normal path. When the scope unwinds with an
// exception in flight, the transaction is deliberately NOT aborted in
// place: under Rio semantics an exception models a crash, and the frozen
// in-flight state is exactly what recover() exists to repair (the crash
// injection tests rely on this). Call abort_transaction() explicitly for
// recoverable application-level errors.
class Transaction {
 public:
  explicit Transaction(TransactionStore& store)
      : store_(&store), uncaught_at_ctor_(std::uncaught_exceptions()) {
    store_->begin_transaction();
  }
  ~Transaction() {
    if (store_ != nullptr && std::uncaught_exceptions() == uncaught_at_ctor_) {
      store_->abort_transaction();
    }
  }
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  void set_range(void* base, std::size_t len) { store_->set_range(base, len); }
  void commit() {
    store_->commit_transaction();
    store_ = nullptr;
  }

 private:
  TransactionStore* store_;
  int uncaught_at_ctor_;
};

}  // namespace vrep::core
