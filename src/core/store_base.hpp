// Shared persistent root block and common machinery for all four versions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/api.hpp"
#include "sim/traffic.hpp"
#include "util/check.hpp"

namespace vrep::core {

// Transaction lifecycle as recorded persistently (needed by recovery to know
// which direction to repair in; see each version's protocol comment).
enum StoreState : std::uint32_t {
  kIdle = 0,        // no transaction in progress
  kActive = 1,      // a transaction is mutating the database in-place
  kCommitting = 2,  // mirror versions: propagating committed data to mirror
};

// Lives at offset 0 of every store arena. All fields are written through the
// bus; offsets (not pointers) are used for intra-arena references so the
// backup's byte-identical replica is valid at a different address.
// Field order matters: the versions' commit points are implemented as one
// contiguous write covering the fields that must change together (our
// simulated stores are atomic memcpys, standing in for the write ordering a
// real Rio implementation enforces with memory barriers):
//   * V1/V2 commit point: {state, committed_seq}   (offsets 12..24)
//   * V0 commit point:    {committed_seq, undo_head} (offsets 16..32)
struct RootBlock {
  static constexpr std::uint64_t kMagic = 0x56697374614442ull;  // "VistaDB"

  std::uint64_t magic;          // 0
  std::uint32_t version;        // 8   VersionKind
  std::uint32_t state;          // 12  StoreState
  std::uint64_t committed_seq;  // 16  sequence number of the last committed txn
  std::uint64_t undo_head;      // 24  V0: heap offset of newest undo record (0 = none)
  std::uint64_t range_count;    // 32  V1/V2: valid entries in the range array
  std::uint64_t db_size;        // 40
  // Incremented by every recovery and abort. V3 mixes it into its record
  // publication stamps so a retry (which reuses the sequence number — the
  // rolled-back transaction never committed) can never be confused with the
  // crashed attempt's stale log records.
  std::uint64_t incarnation;    // 48
  std::uint64_t reserved;
};
static_assert(offsetof(RootBlock, committed_seq) == 16);
static_assert(offsetof(RootBlock, undo_head) == 24);

class StoreBase : public TransactionStore {
 public:
  StoreBase(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config)
      : bus_(&bus), arena_(&arena), config_(config) {}

  std::uint8_t* db() override { return db_; }
  const std::uint8_t* db() const override { return db_; }
  std::size_t db_size() const override { return config_.db_size; }
  std::uint64_t committed_seq() const override { return root_->committed_seq; }
  sim::MemBus& bus() override { return *bus_; }

 protected:
  // Initialise or validate the root block. Call from the subclass ctor after
  // carving the root out of the arena.
  void init_root(RootBlock* root, VersionKind kind, bool format) {
    root_ = root;
    if (format) {
      RootBlock fresh{};
      fresh.magic = RootBlock::kMagic;
      fresh.version = static_cast<std::uint32_t>(kind);
      fresh.state = kIdle;
      fresh.db_size = config_.db_size;
      bus_->write(root_, &fresh, sizeof fresh, sim::TrafficClass::kMeta);
    } else {
      VREP_CHECK(root->magic == RootBlock::kMagic);
      VREP_CHECK(root->version == static_cast<std::uint32_t>(kind));
      VREP_CHECK(root->db_size == config_.db_size);
    }
  }

  void persist_state(StoreState s) {
    bus_->write_pod(&root_->state, static_cast<std::uint32_t>(s), sim::TrafficClass::kMeta);
  }

  void persist_committed_seq(std::uint64_t seq) {
    bus_->write_pod(&root_->committed_seq, seq, sim::TrafficClass::kMeta);
  }

  // V1/V2 commit point: atomically enter kCommitting with the new sequence.
  // One 12-byte write covering root offsets 12..24 ({state, committed_seq}).
  void persist_state_and_seq(StoreState s, std::uint64_t seq) {
    unsigned char v[12];
    const auto s32 = static_cast<std::uint32_t>(s);
    std::memcpy(v, &s32, 4);
    std::memcpy(v + 4, &seq, 8);
    bus_->write(&root_->state, v, sizeof v, sim::TrafficClass::kMeta);
  }

  // V0 commit point: atomically bump the sequence and unlink the undo list.
  void persist_seq_and_undo_head(std::uint64_t seq, std::uint64_t undo_head) {
    struct {
      std::uint64_t seq;
      std::uint64_t undo_head;
    } v{seq, undo_head};
    bus_->write(&root_->committed_seq, &v, sizeof v, sim::TrafficClass::kMeta);
  }

  bool validate_root(VersionKind kind) const {
    return root_->magic == RootBlock::kMagic &&
           root_->version == static_cast<std::uint32_t>(kind) &&
           root_->db_size == config_.db_size && root_->state <= kCommitting;
  }

  sim::MemBus* bus_;
  rio::Arena* arena_;
  StoreConfig config_;
  RootBlock* root_ = nullptr;
  std::uint8_t* db_ = nullptr;
  bool in_txn_ = false;  // volatile API-misuse guard (lost on crash, by design)
};

}  // namespace vrep::core
