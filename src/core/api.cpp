#include "core/api.hpp"

#include "core/mirror_store.hpp"
#include "core/v0_vista.hpp"
#include "core/v3_inline_log.hpp"
#include "util/check.hpp"

namespace vrep::core {

const char* version_name(VersionKind v) {
  switch (v) {
    case VersionKind::kV0Vista:
      return "Version 0 (Vista)";
    case VersionKind::kV1MirrorCopy:
      return "Version 1 (Mirror by Copy)";
    case VersionKind::kV2MirrorDiff:
      return "Version 2 (Mirror by Diff)";
    case VersionKind::kV3InlineLog:
      return "Version 3 (Improved Log)";
  }
  return "unknown";
}

std::size_t required_arena_size(VersionKind kind, const StoreConfig& config) {
  switch (kind) {
    case VersionKind::kV0Vista:
      return VistaStore::arena_bytes(config);
    case VersionKind::kV1MirrorCopy:
    case VersionKind::kV2MirrorDiff:
      return MirrorStore::arena_bytes(config);
    case VersionKind::kV3InlineLog:
      return InlineLogStore::arena_bytes(config);
  }
  VREP_CHECK(false && "bad VersionKind");
  return 0;
}

std::unique_ptr<TransactionStore> make_store(VersionKind kind, sim::MemBus& bus,
                                             rio::Arena& arena, const StoreConfig& config,
                                             bool format) {
  switch (kind) {
    case VersionKind::kV0Vista:
      return std::make_unique<VistaStore>(bus, arena, config, format);
    case VersionKind::kV1MirrorCopy:
      return std::make_unique<MirrorStore>(bus, arena, config, /*diff=*/false, format);
    case VersionKind::kV2MirrorDiff:
      return std::make_unique<MirrorStore>(bus, arena, config, /*diff=*/true, format);
    case VersionKind::kV3InlineLog:
      return std::make_unique<InlineLogStore>(bus, arena, config, format);
  }
  VREP_CHECK(false && "bad VersionKind");
  return nullptr;
}

}  // namespace vrep::core
