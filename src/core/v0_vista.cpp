#include "core/v0_vista.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace vrep::core {

using sim::TrafficClass;

std::size_t VistaStore::arena_bytes(const StoreConfig& config) {
  return 4096 + config.heap_size + kPadRegionSize + config.db_size + 4096;
}

VistaStore::VistaStore(sim::MemBus& bus, rio::Arena& arena, const StoreConfig& config,
                       bool format)
    : StoreBase(bus, arena, config) {
  VREP_CHECK(arena.size() >= arena_bytes(config));
  rio::Layout layout(arena);
  auto* root = layout.carve_as<RootBlock>();
  heap_base_ = layout.carve(config.heap_size, 64);
  pad_region_ = layout.carve(kPadRegionSize, 64);
  db_ = layout.carve(config.db_size, 64);
  bus_->register_region(root, sizeof(RootBlock));
  bus_->register_region(heap_base_, config.heap_size);
  bus_->register_region(pad_region_, kPadRegionSize);
  bus_->register_region(db_, config.db_size);
  init_root(root, VersionKind::kV0Vista, format);
  heap_ = std::make_unique<rio::PersistentHeap>(bus_, heap_base_, config.heap_size, format);
}

std::vector<StoreRegion> VistaStore::regions() const {
  const std::uint8_t* base = arena_->data();
  return {
      {"root", static_cast<std::size_t>(reinterpret_cast<const std::uint8_t*>(root_) - base),
       sizeof(RootBlock), true},
      {"heap", static_cast<std::size_t>(heap_base_ - base), config_.heap_size, true},
      {"pad", static_cast<std::size_t>(pad_region_ - base), kPadRegionSize, true},
      {"db", static_cast<std::size_t>(db_ - base), config_.db_size, true},
  };
}

void VistaStore::begin_transaction() {
  VREP_CHECK(!in_txn_);
  in_txn_ = true;
  bus_->charge(bus_->cost().begin_ns);
}

void VistaStore::write_meta_pad() {
  // Stand-in for Vista-internal bookkeeping traffic (see StoreConfig).
  std::size_t remaining = config_.v0_meta_pad_bytes;
  static const std::uint8_t kJunk[256] = {};
  while (remaining > 0) {
    if (pad_cursor_ >= kPadRegionSize) pad_cursor_ = 0;
    const std::size_t chunk =
        std::min({remaining, sizeof kJunk, kPadRegionSize - pad_cursor_});
    bus_->write(pad_region_ + pad_cursor_, kJunk, chunk, TrafficClass::kMeta);
    pad_cursor_ += chunk;
    remaining -= chunk;
  }
}

void VistaStore::set_range(void* base, std::size_t len) {
  VREP_CHECK(in_txn_);
  auto* p = static_cast<std::uint8_t*>(base);
  VREP_CHECK(p >= db_ && p + len <= db_ + config_.db_size);
  bus_->charge(bus_->cost().set_range_base_ns);

  const std::uint64_t rec_off = heap_->alloc(sizeof(UndoRecord));
  const std::uint64_t area_off = heap_->alloc(len);
  VREP_CHECK(rec_off != 0 && area_off != 0);

  // Before-image copy (the "bcopy" of Section 4.1).
  bus_->copy(heap_->ptr(area_off), p, len, TrafficClass::kUndo);

  UndoRecord rec;
  rec.next = root_->undo_head;
  rec.db_off = static_cast<std::uint64_t>(p - db_);
  rec.len = len;
  rec.area = area_off;
  bus_->charge(bus_->cost().list_op_ns);
  bus_->write(heap_->ptr(rec_off), &rec, sizeof rec, TrafficClass::kMeta);
  // Publication point: one 8-byte write links the record into the undo list.
  bus_->write_pod(&root_->undo_head, rec_off, TrafficClass::kMeta);

  if (config_.v0_meta_pad_bytes > 0) write_meta_pad();
}

void VistaStore::commit_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().commit_base_ns);
  std::uint64_t head = root_->undo_head;
  // Commit point: bump the sequence and unlink the whole undo list at once.
  persist_seq_and_undo_head(root_->committed_seq + 1, 0);
  // Free records after the commit point; a crash mid-walk leaves unreachable
  // blocks that the next recovery's heap reset reclaims.
  while (head != 0) {
    bus_->charge(bus_->cost().commit_per_range_ns);
    auto* rec = static_cast<UndoRecord*>(heap_->ptr(head));
    bus_->read(rec, sizeof *rec);
    const std::uint64_t next = rec->next;
    heap_->free(rec->area);
    heap_->free(head);
    head = next;
  }
  in_txn_ = false;
}

void VistaStore::apply_undo_list(std::uint64_t head) {
  // Defensive walk: on the backup's replica, the trailing (in-flight) undo
  // record can be torn — write buffers flush out of program order, so the
  // head pointer may have arrived before the record body (the paper's 1-safe
  // window of vulnerability). A record that fails validation terminates the
  // walk instead of corrupting the database.
  std::size_t guard = 0;
  while (head != 0 && ++guard < 1'000'000) {
    if (head + sizeof(UndoRecord) > config_.heap_size) return;
    auto* rec = static_cast<UndoRecord*>(heap_->ptr(head));
    bus_->read(rec, sizeof *rec);
    if (rec->db_off + rec->len > config_.db_size) return;
    if (rec->area + rec->len > config_.heap_size || rec->area == 0) return;
    bus_->copy(db_ + rec->db_off, heap_->ptr(rec->area), rec->len, TrafficClass::kModified);
    head = rec->next;
  }
}

void VistaStore::abort_transaction() {
  VREP_CHECK(in_txn_);
  bus_->charge(bus_->cost().abort_base_ns);
  // Walk newest-first reinstalling before-images, unlinking as we go so a
  // crash mid-abort resumes where we stopped.
  std::uint64_t head = root_->undo_head;
  while (head != 0) {
    auto* rec = static_cast<UndoRecord*>(heap_->ptr(head));
    bus_->read(rec, sizeof *rec);
    bus_->copy(db_ + rec->db_off, heap_->ptr(rec->area), rec->len, TrafficClass::kModified);
    const std::uint64_t next = rec->next;
    const std::uint64_t area = rec->area;
    bus_->write_pod(&root_->undo_head, next, TrafficClass::kMeta);
    heap_->free(area);
    heap_->free(head);
    head = next;
  }
  in_txn_ = false;
}

int VistaStore::recover() {
  VREP_CHECK(validate_root(VersionKind::kV0Vista));
  const bool had_txn = root_->undo_head != 0;
  if (had_txn) {
    apply_undo_list(root_->undo_head);
    bus_->write_pod(&root_->undo_head, std::uint64_t{0}, TrafficClass::kMeta);
  }
  // Between transactions the heap holds no live objects, so recovery always
  // ends with a pristine heap (this also reclaims blocks leaked by a crash
  // inside commit's free walk).
  heap_->reset();
  in_txn_ = false;
  return had_txn ? 1 : 0;
}

bool VistaStore::validate() const {
  if (!validate_root(VersionKind::kV0Vista)) return false;
  if (!heap_->validate()) return false;
  // Every undo record must lie inside the heap and reference a sane range.
  std::uint64_t head = root_->undo_head;
  std::size_t records = 0;
  while (head != 0) {
    if (head + sizeof(UndoRecord) > config_.heap_size) return false;
    const auto* rec = static_cast<const UndoRecord*>(
        static_cast<const rio::PersistentHeap&>(*heap_).ptr(head));
    if (rec->db_off + rec->len > config_.db_size) return false;
    if (rec->area + rec->len > config_.heap_size) return false;
    head = rec->next;
    if (++records > 1'000'000) return false;  // cycle guard
  }
  return true;
}

}  // namespace vrep::core
