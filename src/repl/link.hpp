// Transport-agnostic replication link.
//
// The active scheme is ONE protocol — a sequenced, checksummed redo stream
// with flow control, rejoin and epoch fencing — that this repo runs over
// three very different carriers: the simulated Memory Channel ring (virtual
// time), a framed TCP byte stream (wall clock, two processes), and an
// in-process loopback queue (wall clock, two threads). `ReplicationLink` is
// the seam between the protocol engine (`repl/pipeline.hpp`) and those
// carriers: a frame is the unit of atomic, CRC-protected, epoch-stamped
// delivery, and everything below it (byte framing, ring entry packing,
// write-buffer coalescing, virtual-time cost charging, socket plumbing) is
// the backend's private business.
//
// Contract every backend provides:
//   * send() delivers the frame whole or not at all, applying backpressure
//     however the carrier does (the sim ring blocks the virtual-time CPU
//     until the consumer cursor advances; TCP blocks in the socket; the
//     loopback blocks on a condition variable). Returns false only when the
//     peer is unreachable (the frame may or may not have been lost).
//   * recv() returns the next frame, nullopt on timeout / broken stream /
//     corrupt frame — distinguished via last_error(), with the same
//     recoverable-vs-fatal split as net/transport.hpp: a kCorrupt with
//     connected() still true means the stream is aligned and the frame was
//     skipped in place; kCorrupt with connected() false (or kClosed) means
//     framing is lost and recovery is reconnect + rejoin.
//   * Every frame carries the sender's membership epoch so the engine can
//     fence stale-epoch traffic (split-brain defense) without knowing what
//     the carrier is.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vrep::repl {

// Frame kinds, shared by every backend. Values match net::MsgType so the
// TCP/loopback adapter is a cast, not a table.
enum class FrameKind : std::uint8_t {
  kRedoBatch = 1,      // one committed transaction's redo chunks
  kHeartbeat = 2,      // primary liveness + committed sequence
  kConsumerAck = 3,    // backup's applied sequence (flow control / monitoring)
  kHello = 4,          // full-sync handshake: db size, starting state
  kDbChunk = 5,        // database image transfer
  kRejoinRequest = 6,  // backup -> primary: last applied seq, node, state epoch
  kRejoinDelta = 7,    // primary -> backup: u64 from_seq | u64 batch count
  kEpochFence = 8,     // receiver -> stale sender: u64 current epoch
  kRedoGroup = 9,      // group commit: several contiguous kRedoBatch payloads
  kCkptBegin = 10,     // checkpoint install start: watermark + image geometry
  kCkptChunk = 11,     // checkpoint page run: u64 offset | bytes
  kCkptEnd = 12,       // checkpoint install end: watermark seq + full-image crc
  kXPrepare = 13,      // 2PC phase 1: u64 xid | staged redo batch (in-doubt)
  kXDecide = 14,       // 2PC phase 2: u64 xid | u8 commit (1) / abort (0)
};

struct Frame {
  FrameKind kind;
  std::uint64_t epoch;
  std::vector<std::uint8_t> payload;
};

enum class LinkError : std::uint8_t { kNone, kTimeout, kClosed, kCorrupt };

class ReplicationLink {
 public:
  virtual ~ReplicationLink() = default;

  // Send one frame stamped with `epoch`. Blocks under carrier backpressure.
  // Returns false on a broken connection.
  virtual bool send(FrameKind kind, std::uint64_t epoch, const void* payload,
                    std::size_t len) = 0;

  // Receive the next frame, waiting up to timeout_ms (0 = poll, -1 = until
  // the carrier can prove nothing further will arrive).
  virtual std::optional<Frame> recv(int timeout_ms) = 0;

  virtual LinkError last_error() const = 0;
  virtual bool connected() const = 0;

  // Push boundary: force everything accepted by send() onto the carrier
  // (drain coalescing write buffers, flush socket buffers). Used by 2-safe
  // commits before waiting for the covering acknowledgment.
  virtual void flush() {}

  // Cumulative nanoseconds this link has blocked its sender awaiting
  // acknowledgments — VIRTUAL time on co-simulated carriers (so metrics
  // derived from it stay byte-stable run to run). Wall-clock transports
  // return nullopt and the engine falls back to measuring wall time.
  virtual std::optional<std::uint64_t> blocked_wait_ns() const { return std::nullopt; }
};

}  // namespace vrep::repl
