// Active primary-backup (paper Section 6).
//
// The primary runs the best local scheme (Version 3) for its own
// recoverability, captures the bytes each transaction modifies, and at
// commit ships them — redo data only, no undo log, no mirror — through a
// circular buffer in write-through memory (see redo_ring.hpp for the wire
// format). The backup CPU applies the entries to its own database copy and
// writes its consumer cursor back; the primary blocks only if the ring
// fills.
//
// In the simulated environment the backup is co-simulated deterministically:
// after each commit the primary polls the backup with the virtual time at
// which the Memory Channel traffic it just generated lands; the ActiveBackup
// advances its own clock, parses whatever complete transactions have
// physically arrived in its replica, applies them (charging its own cache
// model), and records when its consumer cursor becomes visible to the
// primary for flow control. The same redo entry format is reused by the TCP
// transport in net/ for real two-process failover.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/v3_inline_log.hpp"
#include "repl/redo_ring.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"

namespace vrep::repl {

// Layout of the backup arena used by the active scheme.
struct ActiveBackupLayout {
  std::size_t ring_offset = 0;
  std::size_t ring_capacity = 1ull << 20;  // data bytes
  std::size_t db_offset = 0;
  std::size_t db_size = 0;

  static ActiveBackupLayout make(std::size_t db_size, std::size_t ring_capacity = 1ull << 20);
  std::size_t arena_bytes() const { return db_offset + db_size; }
};

class ActiveBackup {
 public:
  // `cpu` is the backup's CPU (own clock + cache); `arena` its physical
  // memory holding the ring replica and the database copy.
  ActiveBackup(sim::Cpu& cpu, rio::Arena& arena, const ActiveBackupLayout& layout,
               sim::McFabric& fabric);

  // Busy-wait iteration: bring the backup to virtual time `t`, deliver what
  // has physically arrived, and apply every complete transaction found.
  void poll(sim::SimTime t);

  std::uint64_t consumer() const { return consumer_; }
  std::uint64_t applied_seq() const { return applied_seq_; }

  // Flow control as the *primary* experiences it: after applying a batch the
  // backup writes its cursor through to the primary, which therefore sees
  // the value one propagation delay after the apply finishes.
  static constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::max();
  std::uint64_t consumer_visible(sim::SimTime t) const;
  sim::SimTime next_visibility_after(sim::SimTime t) const;

  std::uint8_t* db() { return arena_->data() + layout_.db_offset; }
  const std::uint8_t* db() const { return arena_->data() + layout_.db_offset; }

  // Primary died at virtual time `crash_time`: cut the fabric, then apply
  // every complete transaction the replica received. Returns the committed
  // sequence the backup now serves (trailing in-flight commits are lost —
  // the 1-safe window — but never torn).
  std::uint64_t takeover(sim::SimTime crash_time);

  sim::Cpu& cpu() { return *cpu_; }

 private:
  // Parse one complete transaction starting at consumer_; returns true and
  // applies it if its commit marker (matching seq and checksum) has arrived.
  bool try_apply_one();
  std::uint32_t ring_crc(std::uint64_t from, std::uint64_t to) const;

  sim::Cpu* cpu_;
  rio::Arena* arena_;
  ActiveBackupLayout layout_;
  sim::McFabric* fabric_;
  std::uint8_t* data_;
  std::uint64_t consumer_ = 0;
  std::uint64_t applied_seq_ = 0;
  // (visible_at, cursor) pairs, oldest first; pruned as the primary reads.
  mutable std::deque<std::pair<sim::SimTime, std::uint64_t>> visibility_;
  mutable std::uint64_t last_visible_ = 0;
};

// Decorator around an InlineLogStore: same TransactionStore interface (so
// workloads run unchanged), plus redo shipping at commit.
class ActivePrimary final : public core::TransactionStore, private sim::MemBus::CaptureSink {
 public:
  // `primary_arena` hosts the local V3 store plus the local halves of the
  // doubled ring writes; `backup` owns the replica arena whose ring region
  // is reached through `bus`'s MC interface.
  ActivePrimary(sim::MemBus& bus, rio::Arena& primary_arena, rio::Arena& backup_arena,
                const core::StoreConfig& config, const ActiveBackupLayout& layout,
                ActiveBackup* backup, bool format);

  // 2-safe commit (extension beyond the paper's 1-safe design): commit does
  // not return until the backup has durably applied the transaction and its
  // acknowledgment has reached the primary. Closes the window of
  // vulnerability at the price of one round trip per commit.
  void set_two_safe(bool enabled) { two_safe_ = enabled; }
  bool two_safe() const { return two_safe_; }
  sim::SimTime two_safe_wait_ns() const { return two_safe_wait_ns_; }

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override { return local_->validate(); }
  core::VersionKind kind() const override { return core::VersionKind::kV3InlineLog; }
  std::uint8_t* db() override { return local_->db(); }
  const std::uint8_t* db() const override { return local_->db(); }
  std::size_t db_size() const override { return local_->db_size(); }
  std::uint64_t committed_seq() const override { return local_->committed_seq(); }
  std::vector<core::StoreRegion> regions() const override { return local_->regions(); }
  sim::MemBus& bus() override { return *bus_; }

  sim::SimTime flow_stall_ns() const { return flow_stall_ns_; }

  static std::size_t primary_arena_bytes(const core::StoreConfig& config,
                                         const ActiveBackupLayout& layout);

 private:
  void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;
  void ship_redo();
  void reserve_ring_space(std::uint64_t bytes);
  void ring_write(const void* src, std::size_t len, sim::TrafficClass cls);

  sim::MemBus* bus_;
  std::unique_ptr<core::InlineLogStore> local_;
  ActiveBackupLayout layout_;
  ActiveBackup* backup_;
  std::uint8_t* ring_data_;  // local (shadow) half of the doubled writes
  std::uint64_t producer_ = 0;

  struct Staged {
    std::uint64_t off;
    std::uint32_t len;
    std::uint32_t data_pos;  // into staging_bytes_
  };
  std::vector<Staged> staged_;
  std::vector<std::uint8_t> staging_bytes_;
  sim::SimTime flow_stall_ns_ = 0;
  bool two_safe_ = false;
  sim::SimTime two_safe_wait_ns_ = 0;
};

}  // namespace vrep::repl
