// Active primary-backup (paper Section 6).
//
// The primary runs the best local scheme (Version 3) for its own
// recoverability, captures the bytes each transaction modifies, and at
// commit ships them — redo data only, no undo log, no mirror — through a
// circular buffer in write-through memory (see redo_ring.hpp for the wire
// format). The backup CPU applies the entries to its own database copy and
// writes its consumer cursor back; the primary blocks only if the ring
// fills.
//
// Protocol logic (sequencing, batch encoding, epoch fencing, 1-safe/2-safe
// commits, rejoin decisions) lives in repl::RedoPipeline / repl::RedoApplier
// (pipeline.hpp) — the same engine the TCP and loopback deployments use.
// This file supplies the simulated Memory Channel specifics: ActivePrimary
// composes the engine over a McRingLink (mc_ring_link.hpp), and
// ActiveBackup decodes the ring wire format, charging its own cache model,
// before handing decoded batches to its RedoApplier.
//
// In the simulated environment the backup is co-simulated deterministically:
// after each commit the primary polls the backup with the virtual time at
// which the Memory Channel traffic it just generated lands; the ActiveBackup
// advances its own clock, parses whatever complete transactions have
// physically arrived in its replica, applies them (charging its own cache
// model), and records when its consumer cursor becomes visible to the
// primary for flow control.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/membership.hpp"
#include "core/api.hpp"
#include "core/v3_inline_log.hpp"
#include "repl/mc_ring_link.hpp"
#include "repl/pipeline.hpp"
#include "repl/redo_ring.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"

namespace vrep::repl {

// Layout of the backup arena used by the active scheme.
struct ActiveBackupLayout {
  std::size_t ring_offset = 0;
  std::size_t ring_capacity = 1ull << 20;  // data bytes
  std::size_t db_offset = 0;
  std::size_t db_size = 0;

  static ActiveBackupLayout make(std::size_t db_size, std::size_t ring_capacity = 1ull << 20);
  std::size_t arena_bytes() const { return db_offset + db_size; }
};

class ActiveBackup : private RedoApplier::Target {
 public:
  // `cpu` is the backup's CPU (own clock + cache); `arena` its physical
  // memory holding the ring replica and the database copy. With a
  // `membership`, the applier fences stale-epoch traffic (split-brain
  // defense across takeovers); without one, everything runs in epoch 1.
  ActiveBackup(sim::Cpu& cpu, rio::Arena& arena, const ActiveBackupLayout& layout,
               sim::McFabric& fabric, cluster::Membership* membership = nullptr,
               std::uint64_t node_id = 2);

  // Busy-wait iteration: bring the backup to virtual time `t`, deliver what
  // has physically arrived, and apply every complete transaction found.
  void poll(sim::SimTime t);

  std::uint64_t consumer() const { return consumer_; }
  std::uint64_t applied_seq() const { return applier_.applied_seq(); }

  // Flow control as the *primary* experiences it: after applying a batch the
  // backup writes its cursor through to the primary, which therefore sees
  // the value one propagation delay after the apply finishes.
  static constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::max();
  std::uint64_t consumer_visible(sim::SimTime t) const;
  // Highest applied sequence whose cursor write-back is visible at `t` (the
  // McRingLink synthesizes kConsumerAck frames from this).
  std::uint64_t applied_visible(sim::SimTime t) const;
  sim::SimTime next_visibility_after(sim::SimTime t) const;

  std::uint8_t* db() { return arena_->data() + layout_.db_offset; }
  const std::uint8_t* db() const { return arena_->data() + layout_.db_offset; }

  // Primary died at virtual time `crash_time`: cut the fabric, then apply
  // every complete transaction the replica received. Returns the committed
  // sequence the backup now serves (trailing in-flight commits are lost —
  // the 1-safe window — but never torn).
  std::uint64_t takeover(sim::SimTime crash_time);

  sim::Cpu& cpu() { return *cpu_; }
  // Protocol state machine (sequencing, fencing, stats) — shared with the
  // TCP/loopback backups.
  RedoApplier& applier() { return applier_; }
  const RedoApplier& applier() const { return applier_; }

 private:
  // RedoApplier::Target: replica bytes land in the database copy through the
  // instrumented bus, charging the backup's own cache model.
  void write(std::uint64_t off, const void* src, std::size_t len) override;
  std::size_t capacity() const override { return layout_.db_size; }
  const std::uint8_t* data() const override { return db(); }

  // Parse one complete transaction starting at consumer_; returns true and
  // applies it if its commit marker (matching seq and checksum) has arrived.
  bool try_apply_one();
  std::uint32_t ring_crc(std::uint64_t from, std::uint64_t to) const;

  sim::Cpu* cpu_;
  rio::Arena* arena_;
  ActiveBackupLayout layout_;
  sim::McFabric* fabric_;
  std::uint8_t* data_;
  RedoApplier applier_;
  std::uint64_t consumer_ = 0;
  struct Visibility {
    sim::SimTime at;
    std::uint64_t cursor;
    std::uint64_t seq;
  };
  // Cursor write-back events, oldest first; pruned as the primary reads.
  mutable std::deque<Visibility> visibility_;
  mutable std::uint64_t last_visible_ = 0;
  mutable std::uint64_t last_visible_seq_ = 0;
};

// Decorator around an InlineLogStore: same TransactionStore interface (so
// workloads run unchanged), plus redo shipping at commit via the shared
// RedoPipeline engine over a McRingLink.
class ActivePrimary final : public core::TransactionStore,
                            private sim::MemBus::CaptureSink,
                            private RedoPipeline::Source {
 public:
  // `primary_arena` hosts the local V3 store plus the local halves of the
  // doubled ring writes; `backup` owns the replica arena whose ring region
  // is reached through `bus`'s MC interface. With a `membership`, shipped
  // batches carry its epoch and a takeover elsewhere fences this primary
  // (fenced()); `lineage` seeds the rejoin delta-vs-full-image rule for a
  // primary promoted from backup.
  ActivePrimary(sim::MemBus& bus, rio::Arena& primary_arena, rio::Arena& backup_arena,
                const core::StoreConfig& config, const ActiveBackupLayout& layout,
                ActiveBackup* backup, bool format, cluster::Membership* membership = nullptr,
                RedoPipeline::Lineage lineage = RedoPipeline::Lineage{0, 0});

  // Attach another co-simulated backup: a further ring shadow is carved out
  // of the primary arena (size it with the multi-backup
  // primary_arena_bytes overload) and replicated into `backup_arena`'s ring
  // region. Returns the pipeline peer index. All backups share `layout`.
  std::size_t add_backup(rio::Arena& backup_arena, ActiveBackup* backup);

  // Acks required for a 2-safe commit to count as quorum-durable (default 1).
  void set_quorum(unsigned k) { pipeline_.set_quorum(k); }
  unsigned quorum() const { return pipeline_.quorum(); }
  RedoPipeline::CommitOutcome last_commit_outcome() const {
    return pipeline_.last_commit_outcome();
  }

  // Install an existing database image and continue its sequence numbering
  // (promotion of a co-simulated backup to primary).
  void seed_from(const std::uint8_t* db, std::size_t size, std::uint64_t seq);

  // 2-safe commit (extension beyond the paper's 1-safe design): commit does
  // not return until the backup has durably applied the transaction and its
  // acknowledgment has reached the primary. Closes the window of
  // vulnerability at the price of one round trip per commit.
  void set_two_safe(bool enabled) { pipeline_.set_two_safe(enabled); }
  bool two_safe() const { return pipeline_.two_safe(); }
  sim::SimTime two_safe_wait_ns() const;

  // Incremental fuzzy checkpointing (strictly opt-in; see repl/pipeline.hpp):
  // the commit path advances a background image copy, each completed
  // watermark truncates redo history, and laggard rejoins are served
  // checkpoint+delta instead of a full image.
  void enable_checkpoints(std::uint64_t interval_txns,
                          std::size_t copy_bytes_per_commit = 256 * 1024) {
    pipeline_.enable_checkpoints(interval_txns, copy_bytes_per_commit);
  }
  bool checkpoints_enabled() const { return pipeline_.checkpoints_enabled(); }

  // Group commit with a bounded in-flight window (see repl/pipeline.hpp):
  // up to G commits coalesce into one ring unit and up to W shipped
  // sequences may await acks before commit_transaction blocks. Defaults
  // (W=1, G=1) reproduce the classic blocking commit byte-for-byte.
  void set_commit_window(unsigned w) { pipeline_.set_commit_window(w); }
  unsigned commit_window() const { return pipeline_.commit_window(); }
  void set_group_size(unsigned g) { pipeline_.set_group_size(g); }
  unsigned group_size() const { return pipeline_.group_size(); }
  // Flush any buffered group and resolve every outstanding ticket.
  RedoPipeline::CommitOutcome sync() { return pipeline_.sync(); }
  RedoPipeline::CommitOutcome wait(RedoPipeline::CommitTicket t) { return pipeline_.wait(t); }

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override { return local_->validate(); }
  core::VersionKind kind() const override { return core::VersionKind::kV3InlineLog; }
  std::uint8_t* db() override { return local_->db(); }
  const std::uint8_t* db() const override { return local_->db(); }
  std::size_t db_size() const override { return local_->db_size(); }
  std::uint64_t committed_seq() const override { return local_->committed_seq(); }
  std::vector<core::StoreRegion> regions() const override { return local_->regions(); }
  sim::MemBus& bus() override { return *bus_; }

  sim::SimTime flow_stall_ns() const;

  // Epoch fencing (shared engine state; see repl/pipeline.hpp).
  bool fenced() const { return pipeline_.fenced(); }
  std::uint64_t fenced_by_epoch() const { return pipeline_.fenced_by_epoch(); }
  std::uint64_t epoch() const { return pipeline_.epoch(); }
  const RedoPipeline::Stats& stats() const { return pipeline_.stats(); }
  RedoPipeline& pipeline() { return pipeline_; }

  // Arena size for a primary shipping to `backups` co-simulated backups
  // (one ring shadow each).
  static std::size_t primary_arena_bytes(const core::StoreConfig& config,
                                         const ActiveBackupLayout& layout,
                                         std::size_t backups = 1);

 private:
  void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;

  sim::MemBus* bus_;
  rio::Arena* primary_arena_;
  ActiveBackupLayout layout_;
  std::unique_ptr<core::InlineLogStore> local_;
  McRingLink link_;
  std::vector<std::unique_ptr<McRingLink>> extra_links_;
  RedoPipeline pipeline_;
};

}  // namespace vrep::repl
