#include "repl/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

namespace {
constexpr std::size_t kDbChunkBytes = 256 * 1024;

// A 2-safe commit probes with heartbeats while waiting for the covering
// acknowledgments; sustained silence on a peer degrades that peer to down.
// When the live set can no longer reach quorum, the commit degrades to
// 1-safe (the transaction is locally durable either way) and the outcome
// says so.
constexpr int kTwoSafeRecvTimeoutMs = 250;
constexpr int kTwoSafeMaxProbes = 20;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
}  // namespace

// ---------------------------------------------------------------------------
// Batch codec
// ---------------------------------------------------------------------------

bool batch_valid(const std::uint8_t* payload, std::size_t size, std::size_t db_size) {
  if (size < 8) return false;
  std::size_t at = 8;
  while (at < size) {
    if (at + 8 > size) return false;
    std::uint32_t off, len;
    std::memcpy(&off, payload + at, 4);
    std::memcpy(&len, payload + at + 4, 4);
    at += 8;
    if (at + len > size || off + std::uint64_t{len} > db_size) return false;
    at += len;
  }
  return true;
}

std::uint64_t batch_seq(const std::uint8_t* payload) {
  std::uint64_t seq;
  std::memcpy(&seq, payload, 8);
  return seq;
}

bool BatchReader::next(RedoChunk* out) {
  if (at_ + 8 > size_) return false;
  std::uint32_t off, len;
  std::memcpy(&off, payload_ + at_, 4);
  std::memcpy(&len, payload_ + at_ + 4, 4);
  at_ += 8;
  out->db_off = off;
  out->len = len;
  out->data = payload_ + at_;
  at_ += len;
  return true;
}

bool group_valid(const std::uint8_t* payload, std::size_t size, std::size_t db_size) {
  if (size < 4) return false;
  std::uint32_t count;
  std::memcpy(&count, payload, 4);
  if (count < 1) return false;
  std::size_t at = 4;
  std::uint64_t expect_seq = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (at + 4 > size) return false;
    std::uint32_t len;
    std::memcpy(&len, payload + at, 4);
    at += 4;
    if (len < 8 || at + len > size) return false;
    if (!batch_valid(payload + at, len, db_size)) return false;
    const std::uint64_t seq = batch_seq(payload + at);
    if (i == 0) {
      expect_seq = seq;
    } else if (seq != expect_seq) {
      return false;  // sub-batches must be contiguous ascending
    }
    expect_seq = seq + 1;
    at += len;
  }
  return at == size;
}

GroupReader::GroupReader(const std::uint8_t* payload, std::size_t size)
    : payload_(payload), size_(size) {
  std::memcpy(&count_, payload, 4);
}

bool GroupReader::next(const std::uint8_t** batch, std::size_t* len) {
  if (at_ + 4 > size_) return false;
  std::uint32_t sub_len;
  std::memcpy(&sub_len, payload_ + at_, 4);
  at_ += 4;
  *batch = payload_ + at_;
  *len = sub_len;
  at_ += sub_len;
  return true;
}

// ---------------------------------------------------------------------------
// RedoPipeline
// ---------------------------------------------------------------------------

RedoPipeline::RedoPipeline(Source& source, ReplicationLink* link,
                           cluster::Membership* membership, Lineage lineage,
                           std::size_t redo_history_bytes)
    : source_(source), membership_(membership), lineage_(lineage),
      history_capacity_(redo_history_bytes) {
  add_peer(link);
}

std::size_t RedoPipeline::add_peer(ReplicationLink* link) {
  const std::size_t index = peers_.size();
  PeerSlot slot;
  slot.link = link;
  slot.alive = link != nullptr && link->connected();
  const std::string prefix = "repl.primary.peer" + std::to_string(index);
  slot.shipped = &metrics::counter(prefix + ".txns_shipped");
  slot.acked = &metrics::gauge(prefix + ".acked_seq");
  peers_.push_back(slot);
  recompute_quorum_acked();  // the table grew: the K-th watermark may drop
  return index;
}

void RedoPipeline::attach_link(std::size_t peer, ReplicationLink* link) {
  PeerSlot& p = peers_[peer];
  p.link = link;
  p.alive = link != nullptr && link->connected();
}

void RedoPipeline::remove_peer(std::size_t peer) {
  PeerSlot& p = peers_[peer];
  p.link = nullptr;
  p.alive = false;
  p.acked_seq = 0;
  p.acked->set(0);
  recompute_quorum_acked();
}

std::size_t RedoPipeline::live_peers() const {
  std::size_t n = 0;
  for (const PeerSlot& p : peers_) {
    if (p.alive) n++;
  }
  return n;
}

bool RedoPipeline::connection_alive() const {
  for (const PeerSlot& p : peers_) {
    if (p.alive) return true;
  }
  return false;
}

std::uint64_t RedoPipeline::backup_acked_seq() const {
  std::uint64_t best = 0;
  for (const PeerSlot& p : peers_) best = std::max(best, p.acked_seq);
  return best;
}

void RedoPipeline::recompute_quorum_acked() {
  // K-th highest acknowledged sequence: everything at or below it has been
  // acknowledged by at least `quorum_` peers. This full scan runs only when
  // an ack advances or the peer table / quorum changes; every other query
  // reads the cache (repl.primary.quorum_scans counts the scans).
  metrics::counter("repl.primary.quorum_scans").add(1);
  if (peers_.size() < quorum_) {
    quorum_acked_cache_ = 0;
    return;
  }
  std::vector<std::uint64_t> acks;
  acks.reserve(peers_.size());
  for (const PeerSlot& p : peers_) acks.push_back(p.acked_seq);
  std::sort(acks.begin(), acks.end(), std::greater<>());
  quorum_acked_cache_ = acks[quorum_ - 1];
}

void RedoPipeline::set_quorum(unsigned k) {
  VREP_CHECK(k >= 1);
  quorum_ = k;
  recompute_quorum_acked();
}

void RedoPipeline::set_group_size(unsigned g) {
  VREP_CHECK(g >= 1);
  // Shrinking the group below what is already buffered would strand the
  // excess; flush first so the new size applies cleanly from here on.
  if (pending_group_.size() >= g) ship_group();
  group_size_ = g;
}

void RedoPipeline::set_commit_window(unsigned w) {
  VREP_CHECK(w >= 1);
  window_ = w;
}

bool RedoPipeline::link_send(PeerSlot& peer, FrameKind kind, const void* payload,
                             std::size_t len) {
  if (peer.link == nullptr) return false;
  return peer.link->send(kind, epoch(), payload, len);
}

void RedoPipeline::begin() {
  batch_.clear();
  batch_.resize(8);  // sequence filled in at commit
  if (ckpt_enabled_) staged_spans_.clear();
}

void RedoPipeline::stage(std::uint64_t off, const void* src, std::size_t len) {
  // Offsets and lengths are u32 on the wire (see the batch-format comment in
  // pipeline.hpp): a silent cast would wrap redo for databases >= 4 GiB into
  // the wrong pages on every backup. Refuse loudly instead.
  VREP_CHECK(off + std::uint64_t{len} <= (std::uint64_t{1} << 32) &&
             "redo chunk exceeds the u32 batch wire format (4 GiB)");
  append_u32(batch_, static_cast<std::uint32_t>(off));
  append_u32(batch_, static_cast<std::uint32_t>(len));
  const std::size_t at = batch_.size();
  batch_.resize(at + len);
  std::memcpy(batch_.data() + at, src, len);
  if (ckpt_enabled_) staged_spans_.emplace_back(off, static_cast<std::uint32_t>(len));
}

void RedoPipeline::discard() {
  batch_.clear();
  if (ckpt_enabled_) staged_spans_.clear();
}

void RedoPipeline::fence(std::uint64_t newer_epoch) {
  fenced_ = true;
  fenced_by_epoch_ = newer_epoch;
  for (PeerSlot& p : peers_) p.alive = false;
  metrics::counter("repl.primary.fenced").add(1);
}

void RedoPipeline::on_control_frame(PeerSlot& peer, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kConsumerAck:
      if (frame.payload.size() == 8 && (membership_ == nullptr || frame.epoch == epoch())) {
        std::uint64_t v;
        std::memcpy(&v, frame.payload.data(), 8);
        if (v > peer.acked_seq) {
          peer.acked_seq = v;
          peer.acked->set(static_cast<std::int64_t>(v));
          recompute_quorum_acked();
        }
      }
      break;
    case FrameKind::kEpochFence: {
      if (frame.payload.size() != 8) break;
      std::uint64_t e;
      std::memcpy(&e, frame.payload.data(), 8);
      if (e > epoch()) {
        // Someone took over in a newer epoch while we were out: stop
        // shipping immediately; the caller demotes us and rejoins.
        fence(e);
      }
      break;
    }
    case FrameKind::kRejoinRequest: {
      if (frame.payload.size() != 24) break;
      if (membership_ != nullptr && frame.epoch > epoch()) {
        fence(frame.epoch);
        break;
      }
      std::uint64_t seq, node, state_epoch;
      std::memcpy(&seq, frame.payload.data(), 8);
      std::memcpy(&node, frame.payload.data() + 8, 8);
      std::memcpy(&state_epoch, frame.payload.data() + 16, 8);
      serve_rejoin(peer, seq, node, state_epoch);
      break;
    }
    default:
      break;
  }
}

void RedoPipeline::drain(PeerSlot& peer) {
  // Consume whatever the backup sent back: acks (flow control), in-band
  // rejoin requests (sequence-gap resync), and epoch fences. Leaving them
  // unread would eventually fill the carrier's buffers and, on close, make
  // a TCP kernel RST the connection under the backup's feet.
  while (peer.alive) {
    auto frame = peer.link->recv(0);
    if (!frame.has_value()) {
      if (peer.link->last_error() == LinkError::kCorrupt && peer.link->connected()) {
        continue;  // skip an aligned corrupt inbound frame
      }
      if (peer.link->last_error() == LinkError::kClosed) peer.alive = false;
      break;
    }
    on_control_frame(peer, *frame);
  }
}

void RedoPipeline::wait_covered(std::uint64_t target) {
  // Push the shipped frames all the way onto every carrier, then probe: the
  // heartbeat carries our shipped sequence, and a caught-up backup answers
  // it with an immediate ack (a behind one requests resync, which
  // serve_rejoin repairs right here in the wait loop).
  // Wait accounting: co-simulated carriers report their blocking time in
  // virtual nanoseconds, which keeps the metric byte-stable across runs;
  // only when every link is wall-clock do we fall back to measuring wall
  // time ourselves.
  const auto virtual_wait = [&]() -> std::optional<std::uint64_t> {
    std::optional<std::uint64_t> total;
    for (const PeerSlot& p : peers_) {
      if (p.link == nullptr) continue;
      if (const auto ns = p.link->blocked_wait_ns(); ns.has_value()) {
        total = total.value_or(0) + *ns;
      }
    }
    return total;
  };
  const std::optional<std::uint64_t> virt0 = virtual_wait();
  const auto t0 = std::chrono::steady_clock::now();
  for (PeerSlot& p : peers_) {
    if (p.link != nullptr) p.link->flush();
  }
  const auto probe = [&](PeerSlot& p) {
    const std::uint64_t shipped = shipped_watermark();
    if (p.alive && !fenced_ && !link_send(p, FrameKind::kHeartbeat, &shipped, 8)) {
      p.alive = false;
    }
  };
  for (PeerSlot& p : peers_) {
    probe(p);
    p.silent = 0;
  }
  while (!fenced_ && quorum_acked_cache_ < target) {
    bool any_waiting = false;
    for (PeerSlot& p : peers_) {
      if (fenced_ || quorum_acked_cache_ >= target) break;
      if (!p.alive || p.acked_seq >= target) continue;
      any_waiting = true;
      auto frame = p.link->recv(kTwoSafeRecvTimeoutMs);
      if (!frame.has_value()) {
        switch (p.link->last_error()) {
          case LinkError::kTimeout:
            // The probe (or the ack answering it) may have been lost.
            if (++p.silent > kTwoSafeMaxProbes) {
              p.alive = false;
              break;
            }
            probe(p);
            continue;
          case LinkError::kCorrupt:
            if (p.link->connected()) continue;
            p.alive = false;
            break;
          default:
            p.alive = false;
            break;
        }
        continue;
      }
      p.silent = 0;
      on_control_frame(p, *frame);
    }
    // Every laggard peer is down: no further acks can arrive, so the commit
    // degrades to whatever coverage it already has.
    if (!any_waiting) break;
  }
  const std::optional<std::uint64_t> virt1 = virtual_wait();
  metrics::counter("repl.primary.commit_wait_ns")
      .add(virt1.has_value()
               ? *virt1 - virt0.value_or(0)
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count()));
  // Coverage unreachable (peers dead/silent or we were fenced): resolve
  // every outstanding ticket now instead of leaving the window dangling.
  if (quorum_acked_cache_ < target) note_degraded();
}

void RedoPipeline::note_degraded() {
  // Every ticket up to the newest one resolves: quorum-covered ones durable,
  // the rest degraded (locally durable only). Counted per newly degraded
  // transaction so the classic one-commit-at-a-time path still counts one
  // per degraded commit.
  const std::uint64_t resolved = std::max(degraded_upto_, quorum_acked_cache_);
  if (last_ticket_seq_ <= resolved) return;
  const std::uint64_t newly = last_ticket_seq_ - resolved;
  degraded_upto_ = last_ticket_seq_;
  stats_.two_safe_degraded += newly;
  metrics::counter("repl.primary.two_safe_degraded").add(newly);
}

void RedoPipeline::push_history(std::uint64_t seq) {
  history_.push_back({seq, batch_});
  history_bytes_ += batch_.size();
  while (history_bytes_ > history_capacity_ && !history_.empty()) {
    history_bytes_ -= history_.front().batch.size();
    history_.pop_front();
  }
}

void RedoPipeline::enable_checkpoints(std::uint64_t interval_txns,
                                      std::size_t copy_bytes_per_commit) {
  VREP_CHECK(interval_txns >= 1 && copy_bytes_per_commit >= 1);
  VREP_CHECK(in_doubt_.empty() &&
             "fuzzy checkpoints do not compose with cross-shard prepares yet");
  ckpt_enabled_ = true;
  ckpt_interval_ = interval_txns;
  ckpt_copy_bytes_ = copy_bytes_per_commit;
  // Dirtiness is only tracked from here on: a checkpoint+delta can repair a
  // rejoiner whose sequence is at or above this floor (older states may hold
  // stale pages we never recorded as dirty).
  ckpt_anchor_ = source_.committed_seq();
  dirty_floor_ = ckpt_anchor_;
  page_seq_.assign((source_.db_size() + kCkptPageBytes - 1) / kCkptPageBytes, 0);
}

void RedoPipeline::step_checkpoint(std::uint64_t seq) {
  // Dirty-page accounting first, so a completion below snapshots a table
  // that already includes this commit's writes.
  for (const auto& [off, len] : staged_spans_) {
    const std::size_t first = off / kCkptPageBytes;
    const std::size_t last = (off + len - 1) / kCkptPageBytes;
    for (std::size_t p = first; p <= last; ++p) page_seq_[p] = seq;
  }
  if (!ckpt_building_) {
    if (seq < ckpt_anchor_ + ckpt_interval_) {
      staged_spans_.clear();
      return;
    }
    ckpt_building_ = true;
    ckpt_build_.resize(source_.db_size());
    ckpt_snap_.reset(source_.db(), source_.db_size());
  }
  // Fuzzy rule: the background copy only ever reads committed state (this
  // runs between transactions), and writes landing behind the copy cursor
  // are patched into the build immediately — so when the cursor reaches the
  // end at commit S, the build equals the database image at exactly S.
  const std::uint8_t* db = source_.db();
  for (const auto& [off, len] : staged_spans_) {
    if (off >= ckpt_snap_.offset()) continue;
    const std::size_t patch = std::min<std::size_t>(len, ckpt_snap_.offset() - off);
    std::memcpy(ckpt_build_.data() + off, db + off, patch);
  }
  ckpt_snap_.step(ckpt_build_.data(), ckpt_copy_bytes_);
  if (ckpt_snap_.done()) complete_checkpoint(seq);
  staged_spans_.clear();
}

void RedoPipeline::complete_checkpoint(std::uint64_t seq) {
  ckpt_building_ = false;
  ckpt_image_.swap(ckpt_build_);
  ckpt_ = Checkpoint{seq, epoch(), Crc32::of(ckpt_image_.data(), ckpt_image_.size()), true};
  ckpt_page_seq_ = page_seq_;
  ckpt_anchor_ = seq;
  stats_.checkpoints_completed++;
  metrics::counter("repl.primary.checkpoints").add(1);
  // Truncate redo history at the watermark: everything at or below it is now
  // reachable through checkpoint+delta, so dropping it cannot push a
  // checkpoint-covered laggard off a full-image cliff.
  std::size_t truncated = 0;
  while (!history_.empty() && history_.front().seq <= seq) {
    truncated += history_.front().batch.size();
    history_.pop_front();
  }
  history_bytes_ -= truncated;
  stats_.redo_truncated_bytes += truncated;
  metrics::counter("repl.primary.redo_truncated_bytes").add(truncated);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> RedoPipeline::checkpoint_delta_runs(
    std::uint64_t backup_seq) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  const std::size_t db_size = ckpt_image_.size();
  const std::size_t pages = ckpt_page_seq_.size();
  std::size_t p = 0;
  while (p < pages) {
    if (ckpt_page_seq_[p] <= backup_seq) {
      p++;
      continue;
    }
    std::size_t q = p;
    while (q < pages && ckpt_page_seq_[q] > backup_seq &&
           (q - p) * kCkptPageBytes < kDbChunkBytes) {
      q++;
    }
    const std::uint64_t off = p * kCkptPageBytes;
    runs.emplace_back(off, std::min(db_size, q * kCkptPageBytes) - off);
    p = q;
  }
  return runs;
}

bool RedoPipeline::serve_checkpoint_delta(PeerSlot& peer, std::uint64_t backup_seq) {
  const auto runs = checkpoint_delta_runs(backup_seq);
  // kCkptBegin: u64 watermark seq | u64 db_size | u32 image crc | u32 chunks.
  std::uint8_t begin[24];
  const std::uint64_t size = ckpt_image_.size();
  const std::uint32_t count = static_cast<std::uint32_t>(runs.size());
  std::memcpy(begin, &ckpt_.seq, 8);
  std::memcpy(begin + 8, &size, 8);
  std::memcpy(begin + 16, &ckpt_.crc, 4);
  std::memcpy(begin + 20, &count, 4);
  if (!link_send(peer, FrameKind::kCkptBegin, begin, sizeof begin)) {
    peer.alive = false;
    return false;
  }
  std::vector<std::uint8_t> chunk;
  std::uint64_t shipped_bytes = 0;
  for (const auto& [off, len] : runs) {
    chunk.clear();
    chunk.resize(8);
    std::memcpy(chunk.data(), &off, 8);
    chunk.insert(chunk.end(), ckpt_image_.data() + off, ckpt_image_.data() + off + len);
    if (!link_send(peer, FrameKind::kCkptChunk, chunk.data(), chunk.size())) {
      peer.alive = false;
      return false;
    }
    shipped_bytes += len;
  }
  // kCkptEnd: u64 watermark seq | u32 image crc.
  std::uint8_t end[12];
  std::memcpy(end, &ckpt_.seq, 8);
  std::memcpy(end + 8, &ckpt_.crc, 4);
  if (!link_send(peer, FrameKind::kCkptEnd, end, sizeof end)) {
    peer.alive = false;
    return false;
  }
  metrics::counter("repl.primary.checkpoint_bytes_shipped").add(shipped_bytes);
  peer.alive = true;
  return true;
}

void RedoPipeline::ship_group() {
  if (pending_group_.empty()) return;
  const std::size_t count = pending_group_.size();
  // A single-transaction group ships as the classic kRedoBatch frame,
  // byte-identical to the ungrouped stream; 2+ coalesce into one kRedoGroup
  // frame that every backend delivers (and applies) atomically.
  FrameKind kind = FrameKind::kRedoBatch;
  const std::uint8_t* payload = pending_group_[0].batch.data();
  std::size_t payload_len = pending_group_[0].batch.size();
  std::vector<std::uint8_t> group;
  if (count > 1) {
    kind = FrameKind::kRedoGroup;
    append_u32(group, static_cast<std::uint32_t>(count));
    for (const PendingTxn& txn : pending_group_) {
      append_u32(group, static_cast<std::uint32_t>(txn.batch.size()));
      group.insert(group.end(), txn.batch.begin(), txn.batch.end());
    }
    payload = group.data();
    payload_len = group.size();
  }
  // Fire and forget to every live peer; a send failure marks that peer down
  // but never blocks or fails the local commits (1-safe semantics — the
  // 2-safe wait is the caller's window backpressure).
  bool shipped = false;
  for (PeerSlot& p : peers_) {
    if (!p.alive || fenced_) continue;
    if (link_send(p, kind, payload, payload_len)) {
      p.shipped->add(static_cast<std::uint64_t>(count));
      shipped = true;
    } else {
      p.alive = false;
    }
  }
  shipped_seq_ = pending_group_.back().seq;
  if (shipped) {
    stats_.txns_shipped += count;
    metrics::counter("repl.primary.txns_shipped").add(count);
  }
  for (PeerSlot& p : peers_) {
    if (p.alive) drain(p);
  }
  metrics::timer("repl.primary.group_size").record(count);
  const std::uint64_t in_flight =
      shipped_seq_ - std::min(shipped_seq_, quorum_acked_cache_);
  metrics::gauge("repl.primary.inflight_window")
      .update_max(static_cast<std::int64_t>(in_flight));
  pending_group_.clear();
}

std::uint64_t RedoPipeline::shipped_watermark() const {
  // What heartbeats claim: the committed prefix that has actually been
  // handed to the carriers. Transactions buffered in an unshipped group must
  // not make a caught-up backup think it has a gap — but a pipeline attached
  // to pre-existing committed state (nothing shipped, nothing pending) still
  // claims that state so a behind backup notices and resyncs.
  return source_.committed_seq() - pending_group_.size();
}

std::uint64_t RedoPipeline::window_target() const {
  // The commit may proceed while at most window_-1 shipped sequences are
  // unacked, i.e. acks must cover everything older than the newest
  // window_-1. W=1 target == shipped_seq_: the classic full block.
  return shipped_seq_ - std::min<std::uint64_t>(shipped_seq_, window_ - 1);
}

RedoPipeline::CommitOutcome RedoPipeline::outcome_of(std::uint64_t seq) const {
  switch (ticket_state(CommitTicket{seq})) {
    case TicketState::kDurable:
      // Durable via quorum coverage in 2-safe mode is the quorum guarantee;
      // a 1-safe commit only ever promises local durability (even if acks
      // happen to cover it).
      return (two_safe_ && seq <= quorum_acked_cache_) ? CommitOutcome::kQuorumDurable
                                                       : CommitOutcome::kLocalDurable;
    case TicketState::kDegraded:
    case TicketState::kLost:
      return CommitOutcome::kTwoSafeDegraded;
    case TicketState::kPending:
      break;
  }
  return CommitOutcome::kPending;
}

RedoPipeline::TicketState RedoPipeline::ticket_state(CommitTicket ticket) const {
  const std::uint64_t seq = ticket.seq;
  if (seq <= quorum_acked_cache_) return TicketState::kDurable;
  if (seq <= local_resolved_upto_) return TicketState::kDurable;  // 1-safe commit
  if (fenced_) return TicketState::kLost;  // committed past a lost lineage's fence
  if (seq <= degraded_upto_) return TicketState::kDegraded;
  return TicketState::kPending;
}

void RedoPipeline::poll_acks() {
  const std::uint64_t shipped = shipped_watermark();
  for (PeerSlot& peer : peers_) {
    if (!peer.alive) continue;
    drain(peer);
    // An applier acks in answer to a probe carrying our shipped watermark
    // (wait_covered's protocol), not per applied batch — so a lagging peer
    // must be probed here or an async caller would poll forever.
    if (peer.alive && !fenced_ && peer.acked_seq < shipped &&
        !link_send(peer, FrameKind::kHeartbeat, &shipped, 8)) {
      peer.alive = false;
    }
  }
}

RedoPipeline::CommitTicket RedoPipeline::commit_async(std::uint64_t seq) {
  std::memcpy(batch_.data(), &seq, 8);
  // Retain the batch even while every link is down or we are fenced: a later
  // rejoin (ours or a backup's) replays from this history.
  push_history(seq);
  if (ckpt_enabled_) step_checkpoint(seq);
  pending_group_.push_back(PendingTxn{seq, std::move(batch_)});
  batch_.clear();
  last_ticket_seq_ = seq;
  if (pending_group_.size() >= group_size_) ship_group();
  CommitOutcome outcome = CommitOutcome::kLocalDurable;
  if (!two_safe_) {
    // 1-safe: locally durable the moment the local store committed; the
    // ticket resolves immediately.
    local_resolved_upto_ = seq;
  } else {
    // 2-safe: the bounded in-flight window is the backpressure. With W=1 we
    // take the classic path unconditionally whenever this commit shipped its
    // own sequence (flush + probe + wait until covered — byte-identical to
    // the historical blocking commit); a wider window blocks only once more
    // than W-1 shipped sequences are unacked.
    if (window_ == 1) {
      if (shipped_seq_ == seq) wait_covered(seq);
    } else if (shipped_seq_ > 0 && window_target() > quorum_acked_cache_) {
      wait_covered(window_target());
    }
    outcome = outcome_of(seq);
  }
  last_commit_outcome_ = outcome;
  return CommitTicket{seq};
}

RedoPipeline::CommitOutcome RedoPipeline::wait(CommitTicket ticket) {
  VREP_CHECK(ticket.seq <= last_ticket_seq_ && "wait() on a ticket never issued");
  // Already resolved: answer from the watermarks without touching any link.
  if (ticket_state(ticket) == TicketState::kPending) {
    // The covering group may still be buffered; ship it before waiting.
    if (!pending_group_.empty() && pending_group_.front().seq <= ticket.seq) ship_group();
    if (two_safe_ && ticket.seq > quorum_acked_cache_) wait_covered(ticket.seq);
  }
  const CommitOutcome outcome = outcome_of(ticket.seq);
  last_commit_outcome_ = outcome;
  return outcome;
}

RedoPipeline::CommitOutcome RedoPipeline::sync() {
  ship_group();
  if (!two_safe_ || shipped_seq_ == 0) return CommitOutcome::kLocalDurable;
  if (quorum_acked_cache_ < shipped_seq_) wait_covered(shipped_seq_);
  const CommitOutcome outcome = outcome_of(shipped_seq_);
  last_commit_outcome_ = outcome;
  return outcome;
}

RedoPipeline::CommitOutcome RedoPipeline::commit(std::uint64_t seq) {
  return wait(commit_async(seq));
}

bool RedoPipeline::drain_peers() {
  // Everything committed must reach the carriers before the wait: the drain
  // target is the full shipped watermark, and every live peer — not just a
  // quorum — must acknowledge it. This is the quiesce step of a planned
  // primary handoff: once it returns true, any backup promotes with nothing
  // to replay and nothing in flight to resolve through the takeover path.
  ship_group();
  if (fenced_) return false;
  const std::uint64_t target = shipped_watermark();
  for (PeerSlot& p : peers_) {
    if (p.link != nullptr) p.link->flush();
  }
  const auto lagging = [&]() {
    for (const PeerSlot& p : peers_) {
      if (p.alive && p.acked_seq < target) return true;
    }
    return false;
  };
  const auto probe = [&](PeerSlot& p) {
    if (p.alive && !fenced_ && !link_send(p, FrameKind::kHeartbeat, &target, 8)) {
      p.alive = false;
    }
  };
  for (PeerSlot& p : peers_) {
    if (p.alive && p.acked_seq < target) probe(p);
    p.silent = 0;
  }
  while (!fenced_ && lagging()) {
    bool any_waiting = false;
    for (PeerSlot& p : peers_) {
      if (fenced_) break;
      if (!p.alive || p.acked_seq >= target) continue;
      any_waiting = true;
      auto frame = p.link->recv(kTwoSafeRecvTimeoutMs);
      if (!frame.has_value()) {
        switch (p.link->last_error()) {
          case LinkError::kTimeout:
            if (++p.silent > kTwoSafeMaxProbes) {
              p.alive = false;
              break;
            }
            probe(p);
            continue;
          case LinkError::kCorrupt:
            if (p.link->connected()) continue;
            p.alive = false;
            break;
          default:
            p.alive = false;
            break;
        }
        continue;
      }
      p.silent = 0;
      on_control_frame(p, *frame);
    }
    if (!any_waiting) break;
  }
  if (fenced_) return false;
  bool any_live = false;
  for (const PeerSlot& p : peers_) {
    if (!p.alive) continue;
    any_live = true;
    if (p.acked_seq < target) return false;  // gave up on a silent laggard
  }
  return any_live;
}

void RedoPipeline::insert_history(std::uint64_t seq, std::vector<std::uint8_t> batch) {
  history_bytes_ += batch.size();
  // Later sequences may already be in the history when a decision lands;
  // keep it seq-ordered so rejoin replays stay ascending.
  auto it = std::lower_bound(
      history_.begin(), history_.end(), seq,
      [](const HistoryEntry& e, std::uint64_t s) { return e.seq < s; });
  history_.insert(it, HistoryEntry{seq, std::move(batch)});
  while (history_bytes_ > history_capacity_ && !history_.empty()) {
    history_bytes_ -= history_.front().batch.size();
    history_.pop_front();
  }
}

RedoPipeline::CommitTicket RedoPipeline::prepare_cross(std::uint64_t seq, std::uint64_t xid) {
  VREP_CHECK(!ckpt_enabled_ &&
             "fuzzy checkpoints do not compose with cross-shard prepares yet");
  VREP_CHECK(in_doubt_.find(xid) == in_doubt_.end() && "xid already prepared");
  std::memcpy(batch_.data(), &seq, 8);
  // Anything buffered in the pending group precedes this prepare on the
  // wire; ship it so the backup sees sequences in order.
  ship_group();
  std::vector<std::uint8_t> payload(8 + batch_.size());
  std::memcpy(payload.data(), &xid, 8);
  std::memcpy(payload.data() + 8, batch_.data(), batch_.size());
  for (PeerSlot& p : peers_) {
    if (!p.alive || fenced_) continue;
    if (link_send(p, FrameKind::kXPrepare, payload.data(), payload.size())) {
      p.shipped->add(1);
    } else {
      p.alive = false;
    }
  }
  shipped_seq_ = seq;
  last_ticket_seq_ = seq;
  stats_.prepares_shipped++;
  metrics::counter("repl.primary.prepares_shipped").add(1);
  in_doubt_.emplace(xid, InDoubtTxn{seq, std::move(batch_)});
  batch_.clear();
  for (PeerSlot& p : peers_) {
    if (p.alive) drain(p);
  }
  CommitOutcome outcome = CommitOutcome::kLocalDurable;
  if (!two_safe_) {
    local_resolved_upto_ = seq;
  } else {
    // Same bounded-window backpressure as commit_async: the coordinator's
    // conformance rule (decision only after every prepare is covered) rides
    // on these acks.
    if (window_ == 1) {
      wait_covered(seq);
    } else if (window_target() > quorum_acked_cache_) {
      wait_covered(window_target());
    }
    outcome = outcome_of(seq);
  }
  last_commit_outcome_ = outcome;
  return CommitTicket{seq};
}

bool RedoPipeline::decide_cross(std::uint64_t xid, bool commit) {
  auto it = in_doubt_.find(xid);
  if (it == in_doubt_.end()) return false;
  std::uint8_t payload[9];
  std::memcpy(payload, &xid, 8);
  payload[8] = commit ? 1 : 0;
  for (PeerSlot& p : peers_) {
    if (!p.alive || fenced_) continue;
    if (!link_send(p, FrameKind::kXDecide, payload, sizeof payload)) p.alive = false;
  }
  stats_.decides_shipped++;
  metrics::counter("repl.primary.decides_shipped").add(1);
  if (commit) {
    insert_history(it->second.seq, std::move(it->second.batch));
  } else {
    // The sequence was consumed by the prepare; an empty batch keeps the
    // replay history contiguous while writing nothing.
    std::vector<std::uint8_t> empty(8);
    std::memcpy(empty.data(), &it->second.seq, 8);
    insert_history(it->second.seq, std::move(empty));
  }
  in_doubt_.erase(it);
  for (PeerSlot& p : peers_) {
    if (p.alive) drain(p);
  }
  return true;
}

bool RedoPipeline::sync_peer(PeerSlot& peer) {
  if (fenced_ || peer.link == nullptr) return false;
  std::uint8_t hello[16];
  const std::uint64_t size = source_.db_size();
  const std::uint64_t seq = source_.committed_seq();
  std::memcpy(hello, &size, 8);
  std::memcpy(hello + 8, &seq, 8);
  if (!link_send(peer, FrameKind::kHello, hello, sizeof hello)) {
    peer.alive = false;
    return false;
  }
  std::vector<std::uint8_t> chunk;
  for (std::size_t off = 0; off < source_.db_size(); off += kDbChunkBytes) {
    const std::size_t len = std::min(kDbChunkBytes, source_.db_size() - off);
    chunk.clear();
    chunk.resize(8);
    const std::uint64_t off64 = off;
    std::memcpy(chunk.data(), &off64, 8);
    chunk.insert(chunk.end(), source_.db() + off, source_.db() + off + len);
    if (!link_send(peer, FrameKind::kDbChunk, chunk.data(), chunk.size())) {
      peer.alive = false;
      return false;
    }
  }
  peer.alive = true;
  return true;
}

bool RedoPipeline::sync_backup() {
  bool any = false;
  for (PeerSlot& p : peers_) {
    if (p.link != nullptr && sync_peer(p)) any = true;
  }
  return any;
}

bool RedoPipeline::history_covers(std::uint64_t from_seq) const {
  const std::uint64_t committed = source_.committed_seq();
  if (from_seq == committed) return true;  // nothing to replay
  return !history_.empty() && history_.front().seq <= from_seq + 1 &&
         history_.back().seq == committed;
}

bool RedoPipeline::shared_lineage(std::uint64_t backup_seq, std::uint64_t state_epoch) const {
  // Same epoch: the requester has been following this primary, its state is
  // a prefix of ours. Pre-takeover epoch: only the prefix up to the
  // takeover floor is shared — a fenced straggler may have committed past
  // it into a lineage we never saw. Anything older is unverifiable.
  if (state_epoch == epoch()) return true;
  return lineage_.prev_epoch != 0 && state_epoch == lineage_.prev_epoch &&
         backup_seq <= lineage_.takeover_floor;
}

RedoPipeline::RejoinDecision RedoPipeline::decide_rejoin(std::uint64_t backup_seq,
                                                         std::uint64_t state_epoch) const {
  const std::uint64_t committed = source_.committed_seq();
  // A rejoiner claiming a sequence beyond anything this lineage committed
  // can never be repaired by a delta: the count `committed - backup_seq`
  // would underflow and the "replay" would be empty, leaving the backup
  // convinced it is caught up on state we never produced. Full image.
  if (backup_seq == 0 || backup_seq > committed) return RejoinDecision::kFullImage;
  if (!shared_lineage(backup_seq, state_epoch)) return RejoinDecision::kFullImage;
  if (history_covers(backup_seq)) return RejoinDecision::kDelta;
  // Behind the history window but covered by the completed checkpoint: patch
  // the pages dirtied after the requester's sequence from the checkpoint
  // image, then replay from the watermark. Requires the requester inside the
  // tracked-dirtiness range and an intact replay tail above the watermark.
  if (ckpt_.valid && backup_seq >= dirty_floor_ && backup_seq <= ckpt_.seq &&
      history_covers(ckpt_.seq)) {
    return RejoinDecision::kCheckpointDelta;
  }
  // Gap unservable from history or checkpoint (divergent lineage or evicted
  // batches): full image as last resort.
  return RejoinDecision::kFullImage;
}

bool RedoPipeline::serve_rejoin(PeerSlot& peer, std::uint64_t backup_seq, std::uint64_t node_id,
                                std::uint64_t state_epoch) {
  if (fenced_) return false;
  // A *new* backup joining the view is a membership change (epoch bump); a
  // reconnect of a backup already in the view is not.
  if (membership_ != nullptr && membership_->is_primary() &&
      !membership_->has_backup(static_cast<int>(node_id))) {
    membership_->adopt_backup(static_cast<int>(node_id));
  }
  stats_.rejoins_served++;
  peer.rejoins_served++;
  metrics::counter("repl.primary.rejoins_served").add(1);
  const RejoinDecision decision = decide_rejoin(backup_seq, state_epoch);
  if (decision == RejoinDecision::kFullImage) {
    // Genuine last resort: neither the history nor a checkpoint could repair
    // the gap.
    stats_.full_syncs_served++;
    metrics::counter("repl.primary.full_syncs_served").add(1);
    return sync_peer(peer);
  }
  std::uint64_t replay_from = backup_seq;
  if (decision == RejoinDecision::kCheckpointDelta) {
    if (!serve_checkpoint_delta(peer, backup_seq)) return false;
    replay_from = ckpt_.seq;
    stats_.checkpoint_deltas_served++;
    metrics::counter("repl.primary.checkpoint_deltas_served").add(1);
  } else {
    stats_.deltas_served++;
    metrics::counter("repl.primary.deltas_served").add(1);
  }
  const std::uint64_t committed = source_.committed_seq();
  VREP_CHECK(committed >= replay_from);  // decide_rejoin clamped claimed-future
  std::uint8_t delta[16];
  const std::uint64_t count = committed - replay_from;
  std::memcpy(delta, &replay_from, 8);
  std::memcpy(delta + 8, &count, 8);
  if (!link_send(peer, FrameKind::kRejoinDelta, delta, sizeof delta)) {
    peer.alive = false;
    return false;
  }
  for (const auto& entry : history_) {
    if (entry.seq <= replay_from) continue;
    if (!link_send(peer, FrameKind::kRedoBatch, entry.batch.data(), entry.batch.size())) {
      peer.alive = false;
      return false;
    }
  }
  peer.alive = true;
  return true;
}

bool RedoPipeline::handle_rejoin(std::size_t peer, int timeout_ms) {
  PeerSlot& p = peers_[peer];
  if (p.link == nullptr || !p.link->connected()) return false;
  while (true) {
    auto frame = p.link->recv(timeout_ms);
    if (!frame.has_value()) {
      if (p.link->last_error() == LinkError::kCorrupt && p.link->connected()) {
        continue;  // aligned corrupt frame: the peer will re-request
      }
      p.alive = false;
      return false;
    }
    if (frame->kind != FrameKind::kRejoinRequest || frame->payload.size() != 24) continue;
    if (membership_ != nullptr && frame->epoch > epoch()) {
      // The requester has seen a newer epoch than ours: we are the stale
      // node here. Step aside instead of serving.
      fence(frame->epoch);
      return false;
    }
    std::uint64_t seq, node, state_epoch;
    std::memcpy(&seq, frame->payload.data(), 8);
    std::memcpy(&node, frame->payload.data() + 8, 8);
    std::memcpy(&state_epoch, frame->payload.data() + 16, 8);
    return serve_rejoin(p, seq, node, state_epoch);
  }
}

bool RedoPipeline::send_heartbeat() {
  const std::uint64_t seq = shipped_watermark();
  for (PeerSlot& p : peers_) {
    if (p.alive && !fenced_ && !link_send(p, FrameKind::kHeartbeat, &seq, 8)) {
      p.alive = false;
    }
    if (p.alive) drain(p);
  }
  return connection_alive();
}

// ---------------------------------------------------------------------------
// RedoApplier
// ---------------------------------------------------------------------------

bool RedoApplier::request_rejoin(ReplicationLink& link) {
  // A (re)request supersedes any half-received install: the buffered chunks
  // belong to a serve that is no longer coming back.
  clear_checkpoint_install();
  std::uint8_t req[24];
  // An incomplete image cannot be repaired by a sequence delta: ask from 0,
  // which the primary always answers with a full image sync.
  const std::uint64_t from = image_complete() ? applied_seq_ : 0;
  std::memcpy(req, &from, 8);
  std::memcpy(req + 8, &node_id_, 8);
  std::memcpy(req + 16, &state_epoch_, 8);
  return link.send(FrameKind::kRejoinRequest, epoch(), req, sizeof req);
}

void RedoApplier::adopt_image(std::size_t size, std::uint64_t applied_seq,
                              std::uint64_t state_epoch) {
  VREP_CHECK(size <= target_.capacity());
  clear_checkpoint_install();
  db_size_ = size;
  image_next_off_ = size;
  applied_seq_ = applied_seq;
  state_epoch_ = state_epoch;
  awaiting_resync_ = false;
}

void RedoApplier::seed(const std::uint8_t* db, std::size_t size, std::uint64_t applied_seq,
                       std::uint64_t state_epoch) {
  VREP_CHECK(size <= target_.capacity());
  target_.write(0, db, size);
  adopt_image(size, applied_seq, state_epoch);
}

void RedoApplier::maybe_request_resync(ReplicationLink& link) {
  if (awaiting_resync_) return;
  if (request_rejoin(link)) awaiting_resync_ = true;
}

void RedoApplier::note_corrupt_skipped(ReplicationLink& link) {
  stats_.corrupt_skipped++;
  metrics::counter("repl.backup.corrupt_skipped").add(1);
  maybe_request_resync(link);
}

RedoApplier::ReadResult RedoApplier::read_at_watermark(std::uint64_t off, std::uint32_t len,
                                                       std::uint64_t min_seq,
                                                       std::uint8_t* out) const {
  ReadResult result;
  result.at_seq = applied_seq_;
  if (applied_seq_ < min_seq) {
    // Read-your-writes bounce: this replica has not yet applied the
    // client's own commit. at_seq tells the caller how far behind it is.
    result.status = ReadStatus::kLagging;
    metrics::counter("repl.backup.reads_bounced").add(1);
    return result;
  }
  if (!image_complete() || off > db_size_ || len > db_size_ - off) {
    result.status = ReadStatus::kOutOfBounds;
    metrics::counter("repl.backup.reads_oob").add(1);
    return result;
  }
  if (len != 0) std::memcpy(out, target_.data() + off, len);
  result.status = ReadStatus::kOk;
  metrics::counter("repl.backup.reads_served").add(1);
  return result;
}

void RedoApplier::clear_checkpoint_install() {
  ckpt_installing_ = false;
  ckpt_chunks_.clear();
}

void RedoApplier::abort_checkpoint_install(ReplicationLink& link) {
  clear_checkpoint_install();
  stats_.checkpoint_aborts++;
  metrics::counter("repl.backup.checkpoint_aborts").add(1);
  // The replica image was never touched (chunks only buffer until the End
  // CRC verifies), so re-requesting from our real sequence is always safe.
  awaiting_resync_ = false;
  maybe_request_resync(link);
}

void RedoApplier::on_ckpt_begin(const Frame& frame, ReplicationLink& link) {
  if (frame.payload.size() != 24) {
    note_corrupt_skipped(link);
    return;
  }
  std::uint64_t seq, size;
  std::uint32_t crc, count;
  std::memcpy(&seq, frame.payload.data(), 8);
  std::memcpy(&size, frame.payload.data() + 8, 8);
  std::memcpy(&crc, frame.payload.data() + 16, 4);
  std::memcpy(&count, frame.payload.data() + 20, 4);
  if (seq <= applied_seq_) {
    // A replayed install start for state we already hold (duplicate fault).
    stats_.duplicates_ignored++;
    metrics::counter("repl.backup.duplicates_ignored").add(1);
    return;
  }
  if (!image_complete() || size != db_size_) {
    // A checkpoint delta patches an intact base image; without one (or with
    // mismatched geometry) only a full sync can help.
    clear_checkpoint_install();
    awaiting_resync_ = false;
    maybe_request_resync(link);
    return;
  }
  // A fresh Begin supersedes any half-buffered install (the primary decided
  // to re-serve, e.g. after our re-request).
  ckpt_installing_ = true;
  ckpt_install_seq_ = seq;
  ckpt_install_crc_ = crc;
  ckpt_chunks_expected_ = count;
  ckpt_chunks_.clear();
}

void RedoApplier::on_ckpt_chunk(const Frame& frame, ReplicationLink& link) {
  if (!ckpt_installing_) {
    // Begin lost (or install already aborted): the chunk is unanchored.
    // The End — or the next heartbeat — drives the re-request.
    stats_.duplicates_ignored++;
    metrics::counter("repl.backup.duplicates_ignored").add(1);
    return;
  }
  if (frame.payload.size() < 8) {
    abort_checkpoint_install(link);
    return;
  }
  std::uint64_t off;
  std::memcpy(&off, frame.payload.data(), 8);
  const std::size_t len = frame.payload.size() - 8;
  if (off + len > db_size_) {
    abort_checkpoint_install(link);
    return;
  }
  // Buffer only — the replica image stays untouched until the End CRC proves
  // the combined result, so a torn install is never adoptable.
  PendingChunk chunk;
  chunk.off = off;
  chunk.bytes.assign(frame.payload.begin() + 8, frame.payload.end());
  ckpt_chunks_.push_back(std::move(chunk));
}

void RedoApplier::on_ckpt_end(const Frame& frame, ReplicationLink& link) {
  if (frame.payload.size() != 12) {
    note_corrupt_skipped(link);
    return;
  }
  std::uint64_t seq;
  std::uint32_t crc;
  std::memcpy(&seq, frame.payload.data(), 8);
  std::memcpy(&crc, frame.payload.data() + 8, 4);
  if (!ckpt_installing_) {
    if (seq <= applied_seq_) {
      // Duplicate End after a completed install.
      stats_.duplicates_ignored++;
      metrics::counter("repl.backup.duplicates_ignored").add(1);
      return;
    }
    // The Begin never arrived: nothing buffered, re-request cleanly.
    awaiting_resync_ = false;
    maybe_request_resync(link);
    return;
  }
  if (seq != ckpt_install_seq_ || crc != ckpt_install_crc_) {
    abort_checkpoint_install(link);
    return;
  }
  // Sort + dedupe the buffered chunks (duplicate faults re-deliver a run
  // verbatim), then demand exactly the announced disjoint ascending set —
  // anything else is a torn transfer.
  std::sort(ckpt_chunks_.begin(), ckpt_chunks_.end(),
            [](const PendingChunk& a, const PendingChunk& b) { return a.off < b.off; });
  ckpt_chunks_.erase(std::unique(ckpt_chunks_.begin(), ckpt_chunks_.end(),
                                 [](const PendingChunk& a, const PendingChunk& b) {
                                   return a.off == b.off && a.bytes == b.bytes;
                                 }),
                     ckpt_chunks_.end());
  bool shape_ok = ckpt_chunks_.size() == ckpt_chunks_expected_;
  std::uint64_t prev_end = 0;
  for (const PendingChunk& c : ckpt_chunks_) {
    if (c.off < prev_end) shape_ok = false;
    prev_end = c.off + c.bytes.size();
  }
  if (!shape_ok) {
    abort_checkpoint_install(link);
    return;
  }
  // Verify BEFORE applying: CRC of the merged view (current image where no
  // chunk covers, buffered chunk bytes where one does) must equal the
  // watermark's full-image CRC. Only then do the chunks touch the replica.
  Crc32 merged;
  const std::uint8_t* base = target_.data();
  std::size_t at = 0;
  for (const PendingChunk& c : ckpt_chunks_) {
    if (at < c.off) merged.update(base + at, c.off - at);
    merged.update(c.bytes.data(), c.bytes.size());
    at = c.off + c.bytes.size();
  }
  if (at < db_size_) merged.update(base + at, db_size_ - at);
  if (merged.value() != ckpt_install_crc_) {
    // Transfer faults fail the shape check above, so a merged-CRC mismatch
    // means our base image diverges from what the watermark promises.
    // Distrust it entirely — re-request as imageless (full sync) rather than
    // loop on checkpoint deltas that can never verify.
    image_next_off_ = 0;
    abort_checkpoint_install(link);
    return;
  }
  for (const PendingChunk& c : ckpt_chunks_) {
    target_.write(c.off, c.bytes.data(), c.bytes.size());
  }
  applied_seq_ = ckpt_install_seq_;
  state_epoch_ = frame.epoch;
  clear_checkpoint_install();
  awaiting_resync_ = false;
  stats_.checkpoint_installs++;
  metrics::counter("repl.backup.checkpoint_installs").add(1);
  link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
}

void RedoApplier::apply_validated(const std::uint8_t* payload, std::size_t size) {
  BatchReader reader(payload, size);
  RedoChunk chunk;
  while (reader.next(&chunk)) target_.write(chunk.db_off, chunk.data, chunk.len);
  applied_seq_ = batch_seq(payload);
}

bool RedoApplier::apply_batch(const Frame& frame) {
  // Validate the whole batch before touching the image so a malformed frame
  // is never applied partially (the backup's image must only ever hold
  // whole transactions).
  if (!batch_valid(frame.payload.data(), frame.payload.size(), db_size_)) return false;
  apply_validated(frame.payload.data(), frame.payload.size());
  return true;
}

bool RedoApplier::apply_decoded(std::uint64_t first_seq, std::uint64_t last_seq,
                                const RedoChunk* chunks, std::size_t count,
                                std::uint64_t epoch) {
  VREP_CHECK(first_seq <= last_seq);
  if (last_seq <= applied_seq_) {
    stats_.duplicates_ignored++;  // duplicate, replay, or stale ring lap
    metrics::counter("repl.backup.duplicates_ignored").add(1);
    return false;
  }
  if (first_seq != applied_seq_ + 1) {
    stats_.gaps_detected++;
    metrics::counter("repl.backup.gaps_detected").add(1);
    return false;
  }
  // The carrier guaranteed the group arrived whole (ring group checksum /
  // frame CRC), so the [first_seq, last_seq] range applies atomically.
  for (std::size_t i = 0; i < count; ++i) {
    VREP_CHECK(chunks[i].db_off + std::uint64_t{chunks[i].len} <= db_size_);
    target_.write(chunks[i].db_off, chunks[i].data, chunks[i].len);
  }
  applied_seq_ = last_seq;
  state_epoch_ = epoch;
  const std::uint64_t applied = last_seq - first_seq + 1;
  stats_.batches_applied += applied;
  metrics::counter("repl.backup.batches_applied").add(applied);
  return true;
}

void RedoApplier::on_group_frame(const Frame& frame, ReplicationLink& link) {
  if (!image_complete()) {
    maybe_request_resync(link);
    return;
  }
  // Validate the whole group — structure, every sub-batch, and the
  // contiguity of their sequences — before touching the image: a group is
  // applied in full or not at all, never partially.
  if (!group_valid(frame.payload.data(), frame.payload.size(), db_size_)) {
    note_corrupt_skipped(link);
    return;
  }
  GroupReader group(frame.payload.data(), frame.payload.size());
  const std::uint8_t* sub;
  std::size_t sub_len;
  VREP_CHECK(group.next(&sub, &sub_len));
  const std::uint64_t first = batch_seq(sub);
  const std::uint64_t last = first + group.count() - 1;
  if (last <= applied_seq_) {
    stats_.duplicates_ignored++;  // whole group replayed (duplicate fault)
    metrics::counter("repl.backup.duplicates_ignored").add(1);
    return;
  }
  if (first > applied_seq_ + 1) {
    // A frame before this group went missing: resync from the last good
    // sequence instead of applying on top of a hole.
    stats_.gaps_detected++;
    metrics::counter("repl.backup.gaps_detected").add(1);
    maybe_request_resync(link);
    return;
  }
  // Sub-batches at or below applied_seq_ are delta-replay overlap; the rest
  // apply in sequence order. Everything is pre-validated, so from here the
  // group cannot fail partway.
  std::uint64_t applied = 0;
  do {
    if (batch_seq(sub) > applied_seq_) {
      apply_validated(sub, sub_len);
      applied++;
    }
  } while (group.next(&sub, &sub_len));
  state_epoch_ = frame.epoch;
  stats_.batches_applied += applied;
  metrics::counter("repl.backup.batches_applied").add(applied);
  // One ack per group frame: the primary's in-flight window drains at group
  // granularity, so per-group acks are what keep it moving.
  link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
}

void RedoApplier::on_prepare_frame(const Frame& frame, ReplicationLink& link) {
  if (!image_complete()) {
    maybe_request_resync(link);
    return;
  }
  if (frame.payload.size() < 16) {
    note_corrupt_skipped(link);
    return;
  }
  std::uint64_t xid;
  std::memcpy(&xid, frame.payload.data(), 8);
  const std::uint8_t* batch = frame.payload.data() + 8;
  const std::size_t batch_len = frame.payload.size() - 8;
  // Validate NOW, while the primary still holds the bytes: a decision frame
  // carries only the xid, so a corrupt buffered batch could not be repaired
  // later.
  if (!batch_valid(batch, batch_len, db_size_)) {
    note_corrupt_skipped(link);
    return;
  }
  const std::uint64_t seq = batch_seq(batch);
  if (seq <= applied_seq_) {
    stats_.duplicates_ignored++;  // prepare replay (duplicate fault)
    metrics::counter("repl.backup.duplicates_ignored").add(1);
    // Still ack: the coordinator blocks on coverage of this sequence.
    link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
    return;
  }
  if (seq != applied_seq_ + 1) {
    stats_.gaps_detected++;
    metrics::counter("repl.backup.gaps_detected").add(1);
    maybe_request_resync(link);
    return;
  }
  in_doubt_[xid].assign(batch, batch + batch_len);
  // The prepare consumes its sequence — the bytes stay out of the image
  // until the decision — so the redo stream continues past it and 2-safe
  // coverage extends to the prepare.
  applied_seq_ = seq;
  state_epoch_ = frame.epoch;
  stats_.prepares_buffered++;
  metrics::counter("repl.backup.prepares_buffered").add(1);
  // Ack every prepare immediately: the coordinator's phase-1 durability wait
  // rides on it, and prepares are rare enough that batching buys nothing.
  link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
}

void RedoApplier::on_decide_frame(const Frame& frame) {
  if (frame.payload.size() != 9) {
    stats_.corrupt_skipped++;
    metrics::counter("repl.backup.corrupt_skipped").add(1);
    return;
  }
  std::uint64_t xid;
  std::memcpy(&xid, frame.payload.data(), 8);
  if (!resolve_in_doubt(xid, frame.payload[8] != 0)) {
    stats_.duplicates_ignored++;  // decision replay after resolution
    metrics::counter("repl.backup.duplicates_ignored").add(1);
  }
}

std::vector<std::uint64_t> RedoApplier::in_doubt_xids() const {
  std::vector<std::uint64_t> xids;
  xids.reserve(in_doubt_.size());
  for (const auto& [xid, batch] : in_doubt_) xids.push_back(xid);
  return xids;
}

bool RedoApplier::resolve_in_doubt(std::uint64_t xid, bool commit) {
  auto it = in_doubt_.find(xid);
  if (it == in_doubt_.end()) return false;
  if (commit) {
    // The batch was validated at prepare; applied_seq_ already advanced past
    // it when the prepare consumed its sequence, so only the writes land.
    BatchReader reader(it->second.data(), it->second.size());
    RedoChunk chunk;
    while (reader.next(&chunk)) target_.write(chunk.db_off, chunk.data, chunk.len);
    stats_.decides_committed++;
    metrics::counter("repl.backup.decides_committed").add(1);
  } else {
    stats_.decides_aborted++;
    metrics::counter("repl.backup.decides_aborted").add(1);
  }
  in_doubt_.erase(it);
  return true;
}

RedoApplier::FrameResult RedoApplier::on_frame(const Frame& frame, ReplicationLink& link) {
  if (membership_ != nullptr) {
    const std::uint64_t cur = membership_->view().epoch;
    if (frame.epoch < cur) {
      // Stale-epoch traffic — a fenced old primary still shipping. Drop it
      // and tell the sender which epoch rules now.
      stats_.stale_fenced++;
      metrics::counter("repl.backup.stale_fenced").add(1);
      link.send(FrameKind::kEpochFence, cur, &cur, 8);
      return FrameResult::kOk;
    }
    if (frame.epoch > cur) {
      // A newer primary only introduces itself through a sync start (a
      // checkpoint install begin is one: it anchors the resync it leads).
      if (frame.kind == FrameKind::kHello || frame.kind == FrameKind::kRejoinDelta ||
          frame.kind == FrameKind::kEpochFence || frame.kind == FrameKind::kCkptBegin) {
        membership_->join_epoch(frame.epoch);
      } else {
        return FrameResult::kOk;
      }
    }
  }

  switch (frame.kind) {
    case FrameKind::kHello: {
      if (frame.payload.size() != 16) return FrameResult::kCorrupt;
      std::uint64_t size;
      std::memcpy(&size, frame.payload.data(), 8);
      std::memcpy(&applied_seq_, frame.payload.data() + 8, 8);
      if (size > target_.capacity()) return FrameResult::kCorrupt;
      clear_checkpoint_install();  // a full sync supersedes any install
      db_size_ = size;
      image_next_off_ = 0;  // image transfer restarts
      state_epoch_ = frame.epoch;
      break;
    }
    case FrameKind::kDbChunk: {
      if (frame.payload.size() < 8) {
        note_corrupt_skipped(link);
        break;
      }
      std::uint64_t off;
      std::memcpy(&off, frame.payload.data(), 8);
      const std::size_t len = frame.payload.size() - 8;
      if (off < image_next_off_) {
        stats_.duplicates_ignored++;  // replayed chunk (duplicate fault)
        metrics::counter("repl.backup.duplicates_ignored").add(1);
        break;
      }
      if (off > image_next_off_) {
        // A chunk went missing: the image has a hole only a fresh full
        // sync can fill.
        stats_.gaps_detected++;
        metrics::counter("repl.backup.gaps_detected").add(1);
        maybe_request_resync(link);
        break;
      }
      if (off + len > db_size_) return FrameResult::kCorrupt;
      target_.write(off, frame.payload.data() + 8, len);
      image_next_off_ = off + len;
      if (image_complete() && awaiting_resync_) {
        awaiting_resync_ = false;
        stats_.resyncs++;
        metrics::counter("repl.backup.resyncs").add(1);
      }
      break;
    }
    case FrameKind::kRedoBatch: {
      if (!image_complete()) {
        // No image yet (or a holed one): batches are unusable until a full
        // sync lands.
        maybe_request_resync(link);
        break;
      }
      if (frame.payload.size() < 8) {
        note_corrupt_skipped(link);
        break;
      }
      const std::uint64_t seq = batch_seq(frame.payload.data());
      if (seq <= applied_seq_) {
        stats_.duplicates_ignored++;  // duplicate fault or delta overlap
        metrics::counter("repl.backup.duplicates_ignored").add(1);
        break;
      }
      if (seq == applied_seq_ + 1) {
        if (!apply_batch(frame)) {
          note_corrupt_skipped(link);
          break;
        }
        stats_.batches_applied++;
        metrics::counter("repl.backup.batches_applied").add(1);
        state_epoch_ = frame.epoch;
        // Acknowledge periodically (flow control / monitoring); per-batch
        // acks would just pressure the primary's receive buffer.
        if (applied_seq_ % 32 == 0) {
          link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
        }
        break;
      }
      // Sequence gap: a batch was dropped or skipped as corrupt. Resync
      // from the last good sequence instead of giving up.
      stats_.gaps_detected++;
      metrics::counter("repl.backup.gaps_detected").add(1);
      maybe_request_resync(link);
      break;
    }
    case FrameKind::kRedoGroup:
      on_group_frame(frame, link);
      break;
    case FrameKind::kRejoinDelta: {
      if (frame.payload.size() != 16) break;
      std::uint64_t from, count;
      std::memcpy(&from, frame.payload.data(), 8);
      std::memcpy(&count, frame.payload.data() + 8, 8);
      if (from <= applied_seq_ && image_complete()) {
        // The replay that follows is contiguous from `from`; batches we
        // already hold are ignored as duplicates.
        awaiting_resync_ = false;
        stats_.resyncs++;
        metrics::counter("repl.backup.resyncs").add(1);
      } else {
        // Unusable delta (should not happen): re-request from where we
        // actually are. A half-buffered install died with the serve that
        // fed it.
        if (ckpt_installing_) {
          abort_checkpoint_install(link);
          break;
        }
        awaiting_resync_ = false;
        maybe_request_resync(link);
      }
      break;
    }
    case FrameKind::kCkptBegin:
      on_ckpt_begin(frame, link);
      break;
    case FrameKind::kCkptChunk:
      on_ckpt_chunk(frame, link);
      break;
    case FrameKind::kCkptEnd:
      on_ckpt_end(frame, link);
      break;
    case FrameKind::kHeartbeat: {
      // Liveness — but the heartbeat also carries the primary's committed
      // sequence, which closes the trailing-drop window: a gap with no
      // batch behind it would otherwise go unnoticed until the next commit.
      if (frame.payload.size() == 8 && image_complete()) {
        std::uint64_t committed;
        std::memcpy(&committed, frame.payload.data(), 8);
        if (committed > applied_seq_) {
          if (ckpt_installing_) {
            // The End (or the serve's whole tail) was lost: drop the
            // buffered install and re-request — heartbeats double as the
            // install retry timer exactly as they do for lost deltas.
            abort_checkpoint_install(link);
            break;
          }
          stats_.gaps_detected++;
          metrics::counter("repl.backup.gaps_detected").add(1);
          // Heartbeats double as the resync retry timer: if a previous
          // request (or the delta answering it) was itself lost, re-arm
          // instead of waiting forever on a reply that will never come.
          awaiting_resync_ = false;
          maybe_request_resync(link);
        } else {
          // All caught up: acknowledge so the primary's acked watermark
          // converges even between the periodic batch acks (and so 2-safe
          // commit probes resolve immediately).
          link.send(FrameKind::kConsumerAck, epoch(), &applied_seq_, 8);
        }
      }
      break;
    }
    case FrameKind::kXPrepare:
      on_prepare_frame(frame, link);
      break;
    case FrameKind::kXDecide:
      on_decide_frame(frame);
      break;
    case FrameKind::kEpochFence:
      break;  // epoch already adopted above (if newer)
    default:
      // Unknown frame type with valid CRCs: version skew. Skip it.
      stats_.corrupt_skipped++;
      metrics::counter("repl.backup.corrupt_skipped").add(1);
      break;
  }
  return FrameResult::kOk;
}

}  // namespace vrep::repl
