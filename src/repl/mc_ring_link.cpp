#include "repl/mc_ring_link.hpp"

#include <algorithm>
#include <cstring>

#include "repl/active.hpp"
#include "repl/pipeline.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

using sim::TrafficClass;

namespace {
// Reply path for co-simulated control frames: the backup's applier answers
// (fences) straight into the primary link's inbound queue.
class QueueLink final : public ReplicationLink {
 public:
  explicit QueueLink(std::deque<Frame>* queue) : queue_(queue) {}
  bool send(FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    const auto* p = static_cast<const std::uint8_t*>(payload);
    queue_->push_back(Frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)});
    return true;
  }
  std::optional<Frame> recv(int) override { return std::nullopt; }
  LinkError last_error() const override { return LinkError::kTimeout; }
  bool connected() const override { return true; }

 private:
  std::deque<Frame>* queue_;
};
}  // namespace

McRingLink::McRingLink(sim::MemBus& bus, std::uint8_t* ring_data, std::size_t ring_capacity,
                       ActiveBackup* backup)
    : bus_(&bus), ring_data_(ring_data), ring_capacity_(ring_capacity), backup_(backup) {}

bool McRingLink::send(FrameKind kind, std::uint64_t epoch, const void* payload,
                      std::size_t len) {
  if (backup_->applier().epoch() > epoch) {
    // Stale-epoch traffic after a takeover: the backup's applier fences it
    // (counting repl.backup.stale_fenced) and its kEpochFence reply lands in
    // our inbound queue for the engine's next drain.
    const auto* p = static_cast<const std::uint8_t*>(payload);
    const Frame frame{kind, epoch, std::vector<std::uint8_t>(p, p + len)};
    QueueLink reply(&inbound_);
    backup_->applier().on_frame(frame, reply);
    return true;
  }
  switch (kind) {
    case FrameKind::kRedoBatch:
      encode_batch(static_cast<const std::uint8_t*>(payload), len);
      return true;
    case FrameKind::kRedoGroup:
      encode_group(static_cast<const std::uint8_t*>(payload), len);
      return true;
    default:
      // Heartbeats are meaningless between co-simulated nodes (the backup is
      // polled synchronously at exact virtual times), and image transfer /
      // rejoin happen out-of-band (the harness seeds replica arenas by
      // direct copy). Accept and drop.
      return true;
  }
}

std::optional<Frame> McRingLink::recv(int timeout_ms) {
  if (!inbound_.empty()) {
    Frame frame = std::move(inbound_.front());
    inbound_.pop_front();
    error_ = LinkError::kNone;
    return frame;
  }
  const sim::SimTime now = bus_->clock()->now();
  std::uint64_t visible = backup_->applied_visible(now);
  if (visible <= last_reported_ack_ && timeout_ms != 0) {
    // Block until the backup's next cursor write-back arrives — this is the
    // 2-safe commit's round-trip wait, paid in virtual time.
    const sim::SimTime resume = backup_->next_visibility_after(now);
    VREP_CHECK(resume != ActiveBackup::kNever && "backup never acknowledged");
    static metrics::Counter& wait_ns = metrics::counter("repl.link.two_safe_wait_ns");
    wait_ns.add(static_cast<std::uint64_t>(resume - now));
    two_safe_wait_ns_ += resume - now;
    bus_->clock()->advance_to(resume);
    visible = backup_->applied_visible(resume);
  }
  if (visible > last_reported_ack_) {
    last_reported_ack_ = visible;
    Frame frame{FrameKind::kConsumerAck, backup_->applier().epoch(), std::vector<std::uint8_t>(8)};
    std::memcpy(frame.payload.data(), &visible, 8);
    error_ = LinkError::kNone;
    return frame;
  }
  error_ = LinkError::kTimeout;
  return std::nullopt;
}

void McRingLink::flush() {
  bus_->mc()->flush();
  backup_->poll(bus_->mc()->fabric()->link().free_at +
                bus_->mc()->fabric()->model().propagation_ns);
}

void McRingLink::reserve_ring_space(std::uint64_t bytes) {
  VREP_CHECK(bytes <= ring_capacity_);
  bool flushed = false;
  while (true) {
    const sim::SimTime now = bus_->clock()->now();
    if (producer_ + bytes <= backup_->consumer_visible(now) + ring_capacity_) return;
    // Ring full as far as the primary can see: block ("the primary processor
    // must block", Section 6.1) until a newer cursor write-back arrives.
    const sim::SimTime resume = backup_->next_visibility_after(now);
    if (resume == ActiveBackup::kNever) {
      // Unapplied commits may still sit in the write buffers; push them out
      // and let the backup catch up once.
      VREP_CHECK(!flushed && "redo ring smaller than one transaction");
      flushed = true;
      bus_->mc()->flush();
      backup_->poll(bus_->mc()->fabric()->link().free_at +
                    bus_->mc()->fabric()->model().propagation_ns);
      continue;
    }
    static metrics::Counter& stalls = metrics::counter("repl.link.flow_stalls");
    static metrics::Counter& stall_ns = metrics::counter("repl.link.flow_stall_ns");
    stalls.add(1);
    stall_ns.add(static_cast<std::uint64_t>(resume - now));
    flow_stall_ns_ += resume - now;
    bus_->clock()->advance_to(resume);
  }
}

void McRingLink::ring_write(const void* src, std::size_t len, TrafficClass cls) {
  const std::uint64_t phys = producer_ % ring_capacity_;
  VREP_CHECK(phys + len <= ring_capacity_);
  bus_->write(ring_data_ + phys, src, len, cls);
  producer_ += len;
}

void McRingLink::emit_entry(const RedoEntryHeader& hdr, const void* payload,
                            std::size_t payload_len) {
  const std::uint64_t need = sizeof hdr + ((payload_len + 1u) & ~std::size_t{1});
  const std::uint64_t phys = producer_ % ring_capacity_;
  const std::uint64_t remaining = ring_capacity_ - phys;
  if (remaining < need) {
    reserve_ring_space(remaining + need);
    if (remaining >= sizeof hdr) {
      const RedoEntryHeader pad{RedoEntryHeader::kPadMarker, 0};
      bus_->write(ring_data_ + phys, &pad, sizeof pad, TrafficClass::kMeta);
    }
    producer_ += remaining;  // < 6 bytes: both sides treat it as implicit pad
  } else {
    reserve_ring_space(need);
  }
  ring_write(&hdr, sizeof hdr, TrafficClass::kMeta);
  if (payload_len > 0) {
    const bool is_data = hdr.db_off < RedoEntryHeader::kCommitMarker;
    ring_write(payload, payload_len, is_data ? TrafficClass::kModified : TrafficClass::kMeta);
    const std::uint64_t slack = need - sizeof hdr - payload_len;
    if (slack > 0) {
      static const std::uint8_t kZero[8] = {};
      ring_write(kZero, slack, TrafficClass::kMeta);
    }
  }
}

void McRingLink::encode_chunks(const std::uint8_t* payload, std::size_t len) {
  BatchReader reader(payload, len);
  RedoChunk chunk;
  while (reader.next(&chunk)) {
    std::uint64_t off = chunk.db_off;
    const std::uint8_t* p = chunk.data;
    std::size_t remaining = chunk.len;
    while (remaining > 0) {  // chunks exceeding the u16 length field are split
      const std::size_t piece = remaining < kMaxRedoChunk ? remaining : kMaxRedoChunk;
      emit_entry(
          RedoEntryHeader{static_cast<std::uint32_t>(off), static_cast<std::uint16_t>(piece)},
          p, piece);
      off += piece;
      p += piece;
      remaining -= piece;
    }
  }
}

// Pre-pad if the marker would wrap, so the checksummed range ends exactly
// at the marker header on both sides.
void McRingLink::pre_pad_for_marker(std::uint64_t marker_bytes) {
  const std::uint64_t phys = producer_ % ring_capacity_;
  const std::uint64_t remaining = ring_capacity_ - phys;
  if (remaining < marker_bytes) {
    reserve_ring_space(remaining + marker_bytes);
    if (remaining >= sizeof(RedoEntryHeader)) {
      const RedoEntryHeader pad{RedoEntryHeader::kPadMarker, 0};
      bus_->write(ring_data_ + phys, &pad, sizeof pad, TrafficClass::kMeta);
    }
    producer_ += remaining;
  }
}

// Checksum the unit's ring bytes from txn_start up to the current producer
// cursor (see redo_ring.hpp for why).
std::uint32_t McRingLink::seal_crc(std::uint64_t txn_start) {
  Crc32 crc;
  std::uint64_t pos = txn_start;
  while (pos < producer_) {
    const std::uint64_t phys = pos % ring_capacity_;
    const std::uint64_t chunk_len = std::min(producer_ - pos, ring_capacity_ - phys);
    crc.update(ring_data_ + phys, chunk_len);
    pos += chunk_len;
  }
  bus_->charge(static_cast<sim::SimTime>(
      static_cast<double>(producer_ - txn_start) * bus_->cost().checksum_byte_ns));
  return crc.value();
}

void McRingLink::finish_unit() {
  // No barrier, no pointer write: the sequential stream self-describes, so
  // the write buffers emit full 32-byte packets. Poll the (busy-waiting)
  // backup at the time the traffic generated so far lands.
  backup_->poll(bus_->mc()->fabric()->link().free_at +
                bus_->mc()->fabric()->model().propagation_ns);

  static metrics::Gauge& occupancy = metrics::gauge("repl.link.ring_occupancy_peak");
  occupancy.update_max(static_cast<std::int64_t>(
      producer_ - backup_->consumer_visible(bus_->clock()->now())));
}

void McRingLink::encode_batch(const std::uint8_t* payload, std::size_t len) {
  const std::uint64_t txn_start = producer_;
  encode_chunks(payload, len);
  pre_pad_for_marker(kCommitMarkerBytes);
  struct {
    std::uint32_t seq;
    std::uint32_t crc;
  } marker{static_cast<std::uint32_t>(batch_seq(payload)), 0};
  marker.crc = seal_crc(txn_start);
  emit_entry(RedoEntryHeader{RedoEntryHeader::kCommitMarker, 8}, &marker, 8);
  finish_unit();
}

void McRingLink::encode_group(const std::uint8_t* payload, std::size_t len) {
  const std::uint64_t txn_start = producer_;
  GroupReader reader(payload, len);
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  const std::uint8_t* sub = nullptr;
  std::size_t sub_len = 0;
  while (reader.next(&sub, &sub_len)) {
    const std::uint64_t seq = batch_seq(sub);
    if (first_seq == 0) first_seq = seq;
    last_seq = seq;
    encode_chunks(sub, sub_len);
  }
  VREP_CHECK(first_seq != 0 && "empty redo group");
  pre_pad_for_marker(kGroupMarkerBytes);
  struct {
    std::uint32_t first;
    std::uint32_t last;
    std::uint32_t crc;
  } marker{static_cast<std::uint32_t>(first_seq), static_cast<std::uint32_t>(last_seq), 0};
  marker.crc = seal_crc(txn_start);
  emit_entry(RedoEntryHeader{RedoEntryHeader::kGroupMarker, 12}, &marker, 12);
  finish_unit();
}

}  // namespace vrep::repl
