// The transport-agnostic redo replication engine (paper Section 6, grown
// into a protocol).
//
// Exactly one implementation of the active scheme's protocol logic lives
// here, shared by every backend (simulated Memory Channel ring, TCP,
// in-process loopback — see repl/link.hpp):
//
//   * RedoPipeline — the primary side. Owns redo staging and batch
//     encoding, sequence assignment, the bounded redo history, the
//     delta-vs-full-image rejoin decision (including the state-epoch
//     lineage rule), epoch fencing, 1-safe/2-safe commit modes with
//     quorum-based acknowledgment over N backups, and the canonical
//     metrics. Each backup occupies one slot in a per-peer table (link,
//     acked sequence, liveness, rejoin accounting); commit() fans the
//     encoded batch out to every live peer.
//   * RedoApplier — the backup side. Owns image transfer bookkeeping,
//     atomic batch application, duplicate/gap/corrupt-frame accounting,
//     in-band resync requests, and the replica's state epoch.
//
// Batch wire format (the payload of a kRedoBatch frame):
//
//   [u64 seq | { u32 db_off, u32 len, len payload bytes }* ]
//
// The offset and length fields are 32-bit on the wire: a single chunk must
// start below 4 GiB and end at or below it. stage() CHECKs this bound —
// databases at or beyond 4 GiB need a wider wire format (a versioned frame
// bump), not a silent wrap.
//
// Backends that carry whole frames (TCP, loopback) ship this payload
// verbatim; the simulated ring re-packs it into 6-byte ring entries (its
// own wire format — see repl/redo_ring.hpp) and hands the backup decoded
// chunks through RedoApplier::apply_decoded, so the protocol state machine
// is identical on all carriers.
//
// Rejoin safety across failovers: a sequence number alone cannot tell a
// shared prefix from a divergent one (a fenced primary may have committed
// transactions past the takeover point that the promoted node never saw).
// Rejoin requests therefore carry the *state epoch* — the epoch under which
// the requester's last applied state was produced. A delta replay is served
// only when the state epoch matches the primary's current epoch (same
// lineage), or matches the epoch fenced at the last takeover AND the
// requester's sequence is at or below the takeover floor (the shared prefix
// boundary). Anything else gets the full image — including a rejoiner
// claiming a sequence beyond anything this lineage committed (a
// claimed-future sequence can never be repaired by a delta).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"
#include "repl/link.hpp"
#include "rio/arena.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

// ---------------------------------------------------------------------------
// Batch codec helpers (shared by every backend and the tests)
// ---------------------------------------------------------------------------

// One decoded redo chunk; `data` points into the carrier's buffer.
struct RedoChunk {
  std::uint64_t db_off;
  std::uint32_t len;
  const std::uint8_t* data;
};

// Structural validation of a kRedoBatch payload against a database size.
bool batch_valid(const std::uint8_t* payload, std::size_t size, std::size_t db_size);
// The batch's sequence number (payload must hold at least 8 bytes).
std::uint64_t batch_seq(const std::uint8_t* payload);

// Group frame payload (kRedoGroup): [u32 count | { u32 len, batch payload }*]
// where every sub-payload is a kRedoBatch payload and the sub-batch
// sequences are contiguous and ascending. Structural validation (including
// per-sub-batch batch_valid and the contiguity rule).
bool group_valid(const std::uint8_t* payload, std::size_t size, std::size_t db_size);

// Zero-copy iteration over a *validated* kRedoGroup payload's sub-batches.
class GroupReader {
 public:
  GroupReader(const std::uint8_t* payload, std::size_t size);
  std::uint32_t count() const { return count_; }
  bool next(const std::uint8_t** batch, std::size_t* len);

 private:
  const std::uint8_t* payload_;
  std::size_t size_;
  std::size_t at_ = 4;
  std::uint32_t count_ = 0;
};

// Zero-copy iteration over a *validated* batch payload's chunks.
class BatchReader {
 public:
  BatchReader(const std::uint8_t* payload, std::size_t size) : payload_(payload), size_(size) {}
  bool next(RedoChunk* out);

 private:
  const std::uint8_t* payload_;
  std::size_t size_;
  std::size_t at_ = 8;
};

// ---------------------------------------------------------------------------
// RedoPipeline — primary-side protocol engine
// ---------------------------------------------------------------------------

class RedoPipeline {
 public:
  // Bytes of committed redo batches retained for rejoin catch-up. Gaps
  // larger than what fits fall back to a full image sync.
  static constexpr std::size_t kDefaultRedoHistoryBytes = 4u << 20;

  // Where this primary's lineage came from. A node promoted from backup
  // passes the epoch its replica state was produced under and the applied
  // sequence at takeover (the shared-prefix boundary with any fenced
  // straggler); a from-scratch primary leaves the default.
  struct Lineage {
    std::uint64_t prev_epoch = 0;
    std::uint64_t takeover_floor = 0;
  };

  // The committed state the pipeline replicates; implemented by the owning
  // store wrapper (ActivePrimary, WirePrimary).
  struct Source {
    virtual const std::uint8_t* db() const = 0;
    virtual std::size_t db_size() const = 0;
    virtual std::uint64_t committed_seq() const = 0;

   protected:
    ~Source() = default;
  };

  struct Stats {
    std::uint64_t txns_shipped = 0;
    std::uint64_t rejoins_served = 0;
    std::uint64_t deltas_served = 0;      // incremental catch-up from history
    std::uint64_t full_syncs_served = 0;  // no delta nor checkpoint could repair
    std::uint64_t two_safe_degraded = 0;  // 2-safe commits that fell back to 1-safe
    std::uint64_t checkpoints_completed = 0;     // fuzzy checkpoints finished
    std::uint64_t redo_truncated_bytes = 0;      // history dropped at watermarks
    std::uint64_t checkpoint_deltas_served = 0;  // checkpoint+delta rejoins
    std::uint64_t prepares_shipped = 0;          // 2PC phase-1 frames shipped
    std::uint64_t decides_shipped = 0;           // 2PC phase-2 frames shipped
  };

  // What a commit() actually guaranteed when it returned. 1-safe commits are
  // always kLocalDurable; a 2-safe commit is kQuorumDurable when the
  // configured quorum of backup acknowledgments covered the sequence, and
  // kTwoSafeDegraded when the wait exhausted its probes (peers dead or
  // silent) and the commit is durable locally only — the caller can tell a
  // quorum-durable commit from a degraded one instead of being lied to.
  // kPending is only ever returned by commit_async(): the sequence sits
  // inside the open in-flight window (or an unshipped group) and will be
  // resolved by later acks, wait(), or sync().
  enum class CommitOutcome : std::uint8_t {
    kLocalDurable,
    kQuorumDurable,
    kTwoSafeDegraded,
    kPending,
  };

  // Monotonically-numbered handle returned by commit_async(); the number is
  // the transaction's replication sequence, so tickets resolve strictly in
  // sequence order.
  struct CommitTicket {
    std::uint64_t seq = 0;
  };

  // Resolution state of a ticket, derived from the ack/degrade/fence
  // watermarks in O(1). States only ever move forward, with one honest
  // exception: a degraded ticket can later refine to durable if the covering
  // acks eventually arrive (degraded means "not proven", not "proven lost").
  enum class TicketState : std::uint8_t {
    kPending,   // inside the open window: not yet proven either way
    kDurable,   // 1-safe: locally durable; 2-safe: quorum-covered
    kDegraded,  // 2-safe guarantee not met (peers dead/silent); local only
    kLost,      // committed past the fence point of a lost primary lineage
  };

  // With a `membership`, outgoing frames carry its epoch and stale inbound
  // traffic fences us; without one, everything runs in a fixed epoch 1.
  // `link` (may be null) becomes peer slot 0; add_peer() grows the table.
  RedoPipeline(Source& source, ReplicationLink* link,
               cluster::Membership* membership = nullptr, Lineage lineage = Lineage{0, 0},
               std::size_t redo_history_bytes = kDefaultRedoHistoryBytes);

  // ---- peer table ---------------------------------------------------------
  // Add another backup slot; returns its index. Slot 0 is the constructor's
  // link.
  std::size_t add_peer(ReplicationLink* link);
  // Point a slot at a new link after a reconnect (same or different object).
  void attach_link(std::size_t peer, ReplicationLink* link);
  void attach_link(ReplicationLink* link) { attach_link(0, link); }

  // Tombstone a slot: the link is detached, the peer is dead, and its
  // acknowledgments no longer count toward the quorum. Indices of the other
  // slots are stable (the table never compacts).
  void remove_peer(std::size_t peer);

  std::size_t peer_count() const { return peers_.size(); }
  bool peer_alive(std::size_t peer) const { return peers_[peer].alive; }
  std::uint64_t peer_acked_seq(std::size_t peer) const { return peers_[peer].acked_seq; }
  std::size_t live_peers() const;

  // ---- staging + commit -------------------------------------------------
  void begin();
  // CHECKs that the chunk fits the u32 wire format (see the batch-format
  // comment above): off + len must not exceed 4 GiB.
  void stage(std::uint64_t off, const void* src, std::size_t len);
  void discard();
  // Encode the staged chunks as sequence `seq`, retain them in the bounded
  // history, fan the batch out to every live peer (1-safe: a send failure
  // marks that peer down but never fails the commit), and in 2-safe mode
  // block until a quorum of acknowledgments covers `seq`. The returned
  // outcome (also held in last_commit_outcome()) says what was guaranteed.
  // Equivalent to commit_async(seq) followed by wait() on its ticket.
  CommitOutcome commit(std::uint64_t seq);

  // Asynchronous group commit: stage the batch into the pending group
  // (shipped once group_size() transactions have accumulated) and return a
  // ticket immediately. 2-safe backpressure is the bounded in-flight window:
  // the call blocks only while more than commit_window()-1 shipped sequences
  // are unacked — with W=1, G=1 this is byte-identical to commit(). The
  // commit's provisional outcome is in last_commit_outcome() (kPending while
  // the window is open).
  CommitTicket commit_async(std::uint64_t seq);

  // Resolution state of `ticket` right now, O(1) (no link traffic).
  TicketState ticket_state(CommitTicket ticket) const;
  // Non-blocking ack pump: drain whatever control frames (acks, rejoin
  // requests, fences) every live peer has already sent, advancing the
  // watermarks ticket_state derives from — the async front end's way of
  // resolving commit_async tickets without ever blocking in wait(). Also
  // refreshes peer_acked_seq so read routing can skip stale backups.
  void poll_acks();
  // Block until `ticket` resolves: ship its group if still buffered, then
  // (2-safe) wait for the covering quorum. Returns immediately — without
  // touching any link — when the ticket is already resolved.
  CommitOutcome wait(CommitTicket ticket);
  // Ship any buffered group and (2-safe) wait until every shipped sequence
  // is quorum-covered or provably never will be. A no-op when nothing is
  // pending and nothing is unacked.
  CommitOutcome sync();

  // Planned-handoff drain: ship everything and wait until EVERY live peer
  // has acknowledged the full shipped watermark — stronger than sync(),
  // which stops at quorum coverage. Peers that stay silent through the
  // probe budget are marked down, exactly as in a 2-safe wait. Returns true
  // when at least one peer is alive and fully caught up and we were not
  // fenced; a handoff may then promote any backup without replaying a tail.
  bool drain_peers();

  CommitOutcome last_commit_outcome() const { return last_commit_outcome_; }

  // ---- cross-shard 2PC hooks ---------------------------------------------
  // Phase 1 of cross-shard two-phase commit (shard::CrossShardCoordinator).
  // Encodes the staged chunks as sequence `seq` and ships them to every live
  // peer as one kXPrepare frame ([u64 xid | batch payload]); backups buffer
  // the batch in-doubt — the sequence is consumed (applied_seq advances,
  // acks cover it, so 2-safe coverage extends to prepares) but the bytes do
  // NOT touch the replica image until the decision arrives. The batch is
  // retained here, OUTSIDE the replay history, until decide_cross() resolves
  // it; drivers must resolve every in-doubt transaction before serving a
  // rejoin, or the replayed history would have a hole at `seq`. Any pending
  // group is shipped first so frames stay in sequence order. In 2-safe mode
  // this blocks under the same bounded-window backpressure as commit_async.
  // Fuzzy checkpoints do not compose with prepares yet (the staged bytes are
  // not in the source image at prepare time); enabling both is refused.
  CommitTicket prepare_cross(std::uint64_t seq, std::uint64_t xid);
  // Phase 2: resolve a prepared transaction and fan the kXDecide frame
  // ([u64 xid | u8 commit]) out to every live peer. Commit moves the held
  // batch into the replay history at its sequence; abort replaces it with an
  // empty batch (sequence consumed, zero chunks) so the history stays
  // contiguous and rejoin replays advance a laggard's sequence past the
  // aborted slot without writing anything. Returns false when `xid` is
  // unknown (already resolved).
  bool decide_cross(std::uint64_t xid, bool commit);
  // Prepared-but-undecided transactions currently held.
  std::size_t in_doubt() const { return in_doubt_.size(); }

  // Transactions coalesced per wire frame (default 1: one frame per commit,
  // the classic stream). Groups of 2+ ship as one kRedoGroup frame / one
  // checksummed ring unit, applied atomically by the backup.
  void set_group_size(unsigned g);
  unsigned group_size() const { return group_size_; }
  // Max shipped-but-unacked sequences before a 2-safe commit_async blocks
  // (default 1: block until the commit's own sequence is covered).
  void set_commit_window(unsigned w);
  unsigned commit_window() const { return window_; }

  // Highest sequence actually handed to the carriers (trailing transactions
  // of an unshipped group sit above this).
  std::uint64_t shipped_seq() const { return shipped_seq_; }
  // Sequence of the most recent commit_async/commit (0 before the first).
  std::uint64_t last_ticket_seq() const { return last_ticket_seq_; }

  // 2-safe commit (extension beyond the paper's 1-safe design): commit does
  // not return until `quorum` backups have durably applied the transaction
  // and their acknowledgments have reached the primary.
  void set_two_safe(bool enabled) { two_safe_ = enabled; }
  bool two_safe() const { return two_safe_; }
  // Acks required for a 2-safe commit to count as quorum-durable (default 1,
  // the classic hot-standby behavior). Clamped against the peer table at
  // wait time, not here, so it can be set before peers join.
  void set_quorum(unsigned k);
  unsigned quorum() const { return quorum_; }

  // ---- sync + rejoin ----------------------------------------------------
  // Ship the current database image + sequence to every attached peer so
  // (fresh) backups can join. True if at least one peer was synced.
  bool sync_backup();
  // Await a backup's kRejoinRequest on `peer`'s link after a (re)connect and
  // serve it. Returns false on timeout/disconnect or if this primary has
  // been fenced.
  bool handle_rejoin(std::size_t peer, int timeout_ms);
  bool handle_rejoin(int timeout_ms) { return handle_rejoin(0, timeout_ms); }
  bool send_heartbeat();

  // The rejoin policy, exposed so backends with out-of-band image transfer
  // (the simulated ring seeds images by direct copy) can consult the exact
  // same rule the in-band path applies. Three-way: replay from the redo
  // history when it covers the gap; otherwise patch the completed checkpoint
  // image (only the pages dirtied after the rejoiner's sequence) and replay
  // from the watermark; full image only as last resort.
  enum class RejoinDecision { kDelta, kCheckpointDelta, kFullImage };
  RejoinDecision decide_rejoin(std::uint64_t backup_seq, std::uint64_t state_epoch) const;

  // ---- fuzzy checkpoints -------------------------------------------------
  // A completed fuzzy checkpoint: the commit sequence at which the retained
  // image is transactionally consistent, the lineage epoch it was produced
  // under, and the CRC of the full image (installs verify against it).
  struct Checkpoint {
    std::uint64_t seq = 0;
    std::uint64_t state_epoch = 0;
    std::uint32_t crc = 0;
    bool valid = false;
  };

  // Granularity of dirty-page tracking; a checkpoint+delta rejoin ships only
  // the pages dirtied after the rejoiner's sequence, making its cost
  // O(delta) instead of O(database).
  static constexpr std::size_t kCkptPageBytes = 4096;

  // Turn on incremental fuzzy checkpointing (strictly opt-in: disabled, the
  // pipeline behaves byte-identically to the pre-checkpoint engine). Every
  // `interval_txns` commits a new checkpoint build starts; each commit then
  // advances a background copy of the source database by
  // `copy_bytes_per_commit` while patching that commit's redo into the
  // already-copied prefix, so the finished image is consistent at its
  // completion sequence without ever pausing the commit path. Completion
  // durably records the watermark {seq, epoch, crc} and truncates redo
  // history at it — the bounded history stays bounded without pushing
  // laggards off a full-image cliff.
  void enable_checkpoints(std::uint64_t interval_txns,
                          std::size_t copy_bytes_per_commit = 256 * 1024);
  bool checkpoints_enabled() const { return ckpt_enabled_; }
  const Checkpoint& checkpoint() const { return ckpt_; }
  const std::vector<std::uint8_t>& checkpoint_image() const { return ckpt_image_; }
  // Maximal {offset, length} page runs of the completed checkpoint dirtied
  // after `backup_seq` (what a checkpoint+delta rejoin ships), capped at the
  // image-chunk frame size. Out-of-band backends use this to seed by direct
  // copy under the same O(delta) rule.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> checkpoint_delta_runs(
      std::uint64_t backup_seq) const;

  // ---- state ------------------------------------------------------------
  // True while at least one peer link is usable.
  bool connection_alive() const;
  // A newer epoch fenced us: stop acting as primary (demote + rejoin).
  bool fenced() const { return fenced_; }
  // The epoch that fenced us (valid when fenced() is true); feed it to
  // cluster::Membership::demote_to_backup.
  std::uint64_t fenced_by_epoch() const { return fenced_by_epoch_; }
  std::uint64_t epoch() const { return membership_ != nullptr ? membership_->view().epoch : 1; }
  // Highest applied sequence any backup has acknowledged (drained on
  // commit); with one backup this is that backup's watermark.
  std::uint64_t backup_acked_seq() const;
  // Highest sequence acknowledged by at least `quorum()` peers — everything
  // at or below it is quorum-durable. O(1): the value is cached and
  // recomputed only when an ack advances or the peer table / quorum changes
  // (each recomputation counts repl.primary.quorum_scans).
  std::uint64_t quorum_acked_seq() const { return quorum_acked_cache_; }
  const Stats& stats() const { return stats_; }

 private:
  struct PeerSlot {
    ReplicationLink* link = nullptr;
    std::uint64_t acked_seq = 0;
    std::uint64_t rejoins_served = 0;
    bool alive = false;
    int silent = 0;  // consecutive 2-safe probe timeouts (reset on traffic)
    metrics::Counter* shipped = nullptr;  // repl.primary.peer<i>.txns_shipped
    metrics::Gauge* acked = nullptr;      // repl.primary.peer<i>.acked_seq
  };

  struct HistoryEntry {
    std::uint64_t seq;
    std::vector<std::uint8_t> batch;  // kRedoBatch payload (seq-prefixed)
  };

  struct PendingTxn {
    std::uint64_t seq;
    std::vector<std::uint8_t> batch;  // kRedoBatch payload (seq-prefixed)
  };

  struct InDoubtTxn {
    std::uint64_t seq;
    std::vector<std::uint8_t> batch;  // kRedoBatch payload (seq-prefixed)
  };

  bool link_send(PeerSlot& peer, FrameKind kind, const void* payload, std::size_t len);
  void fence(std::uint64_t newer_epoch);
  void drain(PeerSlot& peer);
  // Flush + probe + receive until acks cover `target` or no live peer can
  // still provide them (the latter resolves the whole open window degraded).
  void wait_covered(std::uint64_t target);
  // Encode the pending group as one frame (kRedoBatch for a single
  // transaction, kRedoGroup for 2+) and fan it out to every live peer.
  void ship_group();
  void note_degraded();
  void recompute_quorum_acked();
  CommitOutcome outcome_of(std::uint64_t seq) const;
  std::uint64_t window_target() const;
  std::uint64_t shipped_watermark() const;
  void push_history(std::uint64_t seq);
  // Insert a decided cross-shard batch at its sequence position (later
  // sequences may already be in the history when the decision lands).
  void insert_history(std::uint64_t seq, std::vector<std::uint8_t> batch);
  bool sync_peer(PeerSlot& peer);
  bool serve_rejoin(PeerSlot& peer, std::uint64_t backup_seq, std::uint64_t node_id,
                    std::uint64_t state_epoch);
  bool history_covers(std::uint64_t from_seq) const;
  // Per-commit checkpoint work: dirty-page accounting, the background image
  // copy + prefix patching, and completion (watermark + history truncation).
  void step_checkpoint(std::uint64_t seq);
  void complete_checkpoint(std::uint64_t seq);
  bool serve_checkpoint_delta(PeerSlot& peer, std::uint64_t backup_seq);
  bool shared_lineage(std::uint64_t backup_seq, std::uint64_t state_epoch) const;
  // Ack / fence / in-band rejoin handling shared by drain() and the waits.
  void on_control_frame(PeerSlot& peer, const Frame& frame);

  Source& source_;
  cluster::Membership* membership_;
  Lineage lineage_;
  std::vector<PeerSlot> peers_;
  std::vector<std::uint8_t> batch_;  // staged redo payload for this txn
  std::vector<PendingTxn> pending_group_;  // committed but not yet shipped
  std::map<std::uint64_t, InDoubtTxn> in_doubt_;  // xid -> prepared, undecided
  std::deque<HistoryEntry> history_;
  std::size_t history_bytes_ = 0;
  std::size_t history_capacity_;
  std::uint64_t fenced_by_epoch_ = 0;
  Stats stats_;
  bool fenced_ = false;
  bool two_safe_ = false;
  unsigned quorum_ = 1;
  unsigned group_size_ = 1;
  unsigned window_ = 1;
  std::uint64_t shipped_seq_ = 0;      // highest sequence handed to a carrier
  std::uint64_t last_ticket_seq_ = 0;  // highest sequence committed (ticketed)
  // Ticket-resolution watermarks (see ticket_state). quorum_acked_cache_ is
  // the cached quorum_acked_seq(); local_resolved_upto_ covers sequences
  // committed while 1-safe (resolved durable at commit); degraded_upto_
  // covers sequences resolved degraded when a 2-safe wait gave up.
  std::uint64_t quorum_acked_cache_ = 0;
  std::uint64_t local_resolved_upto_ = 0;
  std::uint64_t degraded_upto_ = 0;
  CommitOutcome last_commit_outcome_ = CommitOutcome::kLocalDurable;
  // Fuzzy checkpoint state (entirely inert unless ckpt_enabled_).
  bool ckpt_enabled_ = false;
  bool ckpt_building_ = false;
  std::uint64_t ckpt_interval_ = 0;   // commits between checkpoint starts
  std::size_t ckpt_copy_bytes_ = 0;   // background copy advance per commit
  std::uint64_t ckpt_anchor_ = 0;     // last completion (or enable) sequence
  std::uint64_t dirty_floor_ = 0;     // page dirtiness tracked above this seq
  rio::SnapshotCursor ckpt_snap_;     // background copy progress (build)
  std::vector<std::uint8_t> ckpt_build_;  // image under construction
  std::vector<std::uint8_t> ckpt_image_;  // last completed image
  Checkpoint ckpt_;
  std::vector<std::uint64_t> page_seq_;       // last commit seq dirtying each page
  std::vector<std::uint64_t> ckpt_page_seq_;  // page_seq_ snapshot at completion
  std::vector<std::pair<std::uint64_t, std::uint32_t>> staged_spans_;  // this txn
};

// ---------------------------------------------------------------------------
// RedoApplier — backup-side protocol engine
// ---------------------------------------------------------------------------

class RedoApplier {
 public:
  // Where replica bytes land. The TCP/loopback backends memcpy into an
  // arena; the simulated backend routes through the instrumented bus so
  // cache-model costs are charged exactly as before.
  struct Target {
    virtual void write(std::uint64_t off, const void* src, std::size_t len) = 0;
    virtual std::size_t capacity() const = 0;
    // Read view of the replica image. Checkpoint installs verify the
    // combined (current image + buffered chunks) CRC against the watermark
    // BEFORE any chunk is written, so a torn install never reaches the
    // replica bytes.
    virtual const std::uint8_t* data() const = 0;

   protected:
    ~Target() = default;
  };

  struct Stats {
    std::uint64_t batches_applied = 0;
    std::uint64_t duplicates_ignored = 0;  // seq <= applied (dups, replays)
    std::uint64_t gaps_detected = 0;       // seq > applied+1 (dropped/corrupt)
    std::uint64_t corrupt_skipped = 0;     // payload-corrupt frames skipped
    std::uint64_t stale_fenced = 0;        // stale-epoch frames rejected
    std::uint64_t resyncs = 0;             // completed kRejoinDelta / kHello resyncs
    std::uint64_t checkpoint_installs = 0;  // CRC-verified checkpoint adoptions
    std::uint64_t checkpoint_aborts = 0;    // torn/stale installs discarded
    std::uint64_t prepares_buffered = 0;    // kXPrepare batches held in-doubt
    std::uint64_t decides_committed = 0;    // in-doubt resolved by applying
    std::uint64_t decides_aborted = 0;      // in-doubt resolved by discarding
  };

  // With a `membership`, stale-epoch frames are fenced and the epoch follows
  // the primary's hello/delta frames; `node_id` identifies this node in
  // rejoin requests so the primary can adopt it into the view.
  explicit RedoApplier(Target& target, cluster::Membership* membership = nullptr,
                       std::uint64_t node_id = 1)
      : target_(target), membership_(membership), node_id_(node_id) {}

  enum class FrameResult {
    kOk,       // handled (applied, ignored, or answered in-band)
    kCorrupt,  // unrecoverable protocol violation (should not happen)
  };

  // Feed one received frame through the protocol state machine; responses
  // (acks, resync requests, fences) go out through `link`.
  FrameResult on_frame(const Frame& frame, ReplicationLink& link);

  // Announce our applied sequence after a (re)connect; the primary answers
  // with a delta replay or a full image sync. A fresh backup (nothing
  // applied, no image) asks from sequence 0, which always yields the image.
  bool request_rejoin(ReplicationLink& link);

  // Seed the replica from an existing database image (e.g. a demoted
  // primary rejoining with its own last state). `state_epoch` is the epoch
  // under which that state was produced.
  void seed(const std::uint8_t* db, std::size_t size, std::uint64_t applied_seq,
            std::uint64_t state_epoch);
  // Adopt an image installed out-of-band (the simulated backend copies the
  // initial image directly; the paper seeds backups before enabling them).
  void adopt_image(std::size_t size, std::uint64_t applied_seq, std::uint64_t state_epoch);

  // Direct data-plane entry for backends that decode their own wire format
  // (the simulated ring): same sequencing/duplicate/gap rules as a
  // kRedoBatch frame. Returns true if the batch was applied.
  bool apply_decoded(std::uint64_t seq, const RedoChunk* chunks, std::size_t count,
                     std::uint64_t epoch) {
    return apply_decoded(seq, seq, chunks, count, epoch);
  }
  // Group variant: `chunks` holds the concatenated redo of the contiguous
  // sequences [first_seq, last_seq], applied atomically (the ring's group
  // marker guarantees the bytes arrived whole). Duplicate/gap rules apply to
  // the group as a unit.
  bool apply_decoded(std::uint64_t first_seq, std::uint64_t last_seq, const RedoChunk* chunks,
                     std::size_t count, std::uint64_t epoch);

  std::uint64_t applied_seq() const { return applied_seq_; }
  std::uint64_t next_expected_seq() const { return applied_seq_ + 1; }

  // ---- snapshot reads at the applied watermark ----------------------------
  // A backup serves reads from its replica image at applied_seq(). Batches
  // apply atomically with respect to the caller's serialization (the wire
  // backends lock per frame), so a read observes a prefix-consistent state:
  // every commit <= at_seq, nothing after. Read-your-writes: a client holding
  // CommitTicket seq S passes min_seq = S and is bounced (kLagging) until
  // this replica has applied S — it can then retry here or pick a replica
  // whose advertised watermark (RedoPipeline::peer_acked_seq) already covers S.
  enum class ReadStatus : std::uint8_t {
    kOk = 0,           // `len` bytes copied from the state as of at_seq
    kLagging = 1,      // applied_seq() < min_seq: retry or pick another replica
    kOutOfBounds = 2,  // range outside the image, or no complete image yet
  };
  struct ReadResult {
    ReadStatus status = ReadStatus::kOutOfBounds;
    std::uint64_t at_seq = 0;  // watermark the answer was produced at
  };
  ReadResult read_at_watermark(std::uint64_t off, std::uint32_t len,
                               std::uint64_t min_seq, std::uint8_t* out) const;
  // Epoch under which the last applied state (image or batch) was produced.
  std::uint64_t state_epoch() const { return state_epoch_; }
  std::size_t db_size() const { return db_size_; }
  // The image transfer ships chunks sequentially from offset 0; a replica
  // is only usable once a contiguous prefix covers the whole database.
  bool image_complete() const { return db_size_ > 0 && image_next_off_ >= db_size_; }
  const Stats& stats() const { return stats_; }
  std::uint64_t epoch() const { return membership_ != nullptr ? membership_->view().epoch : 1; }

  // A payload-corrupt frame was skipped by the carrier (the applier never
  // saw it): account it and repair the gap in-band.
  void note_corrupt_skipped(ReplicationLink& link);

  // True while a checkpoint install is buffering chunks (between kCkptBegin
  // and the verified kCkptEnd). The replica image is untouched until the
  // End's CRC proves the combined result, so a mid-install takeover still
  // promotes the clean pre-install state.
  bool checkpoint_installing() const { return ckpt_installing_; }

  // ---- cross-shard 2PC (backup side) -------------------------------------
  // Prepared-but-undecided transactions buffered by kXPrepare frames: their
  // sequences are consumed (applied_seq covers them) but the bytes have not
  // touched the replica image. A promoted backup resolves them against the
  // coordinator's home-shard decision log before serving traffic.
  std::size_t in_doubt() const { return in_doubt_.size(); }
  std::vector<std::uint64_t> in_doubt_xids() const;
  // Resolve one buffered in-doubt transaction: commit applies its chunks to
  // the image, abort discards them. Used both by the kXDecide frame handler
  // and by the takeover driver. Returns false when `xid` is not held.
  bool resolve_in_doubt(std::uint64_t xid, bool commit);

 private:
  bool apply_batch(const Frame& frame);
  void apply_validated(const std::uint8_t* payload, std::size_t size);
  void on_group_frame(const Frame& frame, ReplicationLink& link);
  void on_prepare_frame(const Frame& frame, ReplicationLink& link);
  void on_decide_frame(const Frame& frame);
  void maybe_request_resync(ReplicationLink& link);
  void on_ckpt_begin(const Frame& frame, ReplicationLink& link);
  void on_ckpt_chunk(const Frame& frame, ReplicationLink& link);
  void on_ckpt_end(const Frame& frame, ReplicationLink& link);
  void clear_checkpoint_install();
  // Drop a torn/unverifiable install and re-request from our real sequence.
  void abort_checkpoint_install(ReplicationLink& link);

  Target& target_;
  cluster::Membership* membership_;
  std::uint64_t node_id_;
  std::size_t db_size_ = 0;
  std::size_t image_next_off_ = 0;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t state_epoch_ = 0;
  bool awaiting_resync_ = false;
  Stats stats_;
  // Checkpoint install buffer (see checkpoint_installing()).
  struct PendingChunk {
    std::uint64_t off;
    std::vector<std::uint8_t> bytes;
  };
  bool ckpt_installing_ = false;
  std::uint64_t ckpt_install_seq_ = 0;
  std::uint32_t ckpt_install_crc_ = 0;
  std::uint32_t ckpt_chunks_expected_ = 0;
  std::vector<PendingChunk> ckpt_chunks_;
  // In-doubt 2PC batches: xid -> validated kRedoBatch payload, buffered at
  // prepare and applied/discarded at decide (or takeover resolution).
  std::map<std::uint64_t, std::vector<std::uint8_t>> in_doubt_;
};

}  // namespace vrep::repl
