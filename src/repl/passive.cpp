#include "repl/passive.hpp"

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

void setup_passive_replication(core::TransactionStore& store, rio::Arena& primary_arena,
                               rio::Arena& backup_arena, bool ship_everything) {
  VREP_CHECK(backup_arena.size() >= primary_arena.size());
  for (const core::StoreRegion& region : store.regions()) {
    if (!region.replicate_passive && !ship_everything) continue;
    metrics::counter("repl.passive.regions_replicated").add(1);
    store.bus().replicate_region(primary_arena.data() + region.offset,
                                 backup_arena.data() + region.offset);
  }
}

std::unique_ptr<core::TransactionStore> passive_takeover(core::VersionKind kind,
                                                         const core::StoreConfig& config,
                                                         sim::MemBus& backup_bus,
                                                         rio::Arena& backup_arena) {
  metrics::counter("repl.passive.takeovers").add(1);
  auto store = core::make_store(kind, backup_bus, backup_arena, config, /*format=*/false);
  store->takeover();
  return store;
}

}  // namespace vrep::repl
