// Redo-log circular buffer shared by the active primary and backup
// (paper Section 6.1).
//
// The ring is a region of Memory-Channel-mapped memory on the *backup*; the
// primary streams committed modifications into it through the SAN and the
// backup CPU busy-waits for new data and applies it to its database copy.
//
// Entries are packed back-to-back, 8-byte aligned:
//
//   data entry    [u32 db_off | u32 len]  + len payload bytes (padded to 8)
//   pad marker    [kPadMarker | 0]        skip to the ring's physical start
//   commit marker [kCommitMarker | 8]     + u64 committed sequence number
//
// A transaction's entries are followed by its commit marker; because the
// entry stream is written strictly sequentially, the write buffers emit it
// as consecutive full 32-byte Memory Channel packets (the paper: "The Active
// logging version sends 32-byte packets, and thus takes advantage of the
// full 80 Mbytes/sec bandwidth"), and in-order delivery means a commit
// marker is trustworthy evidence that every byte before it has arrived.
// The backup recognises commit N+1's marker by its sequence number (stale
// bytes from a previous lap carry older sequences), applies the batch, and
// advances its consumer cursor — 1-safe: a crash loses at most the trailing
// commits whose markers were still in flight, and never applies a torn
// transaction.
//
// Cursors are monotonically increasing byte counts (physical offset =
// cursor % capacity).
#pragma once

#include <cstdint>

namespace vrep::repl {

// Headers are 6 bytes ({u32 db_off, u16 len}, 2-byte aligned): redo chunks
// are small scattered stores, so header overhead directly determines how
// many CPUs one SAN can carry (Section 8) — the paper's active scheme ships
// only ~29 bytes of meta-data per transaction.
#pragma pack(push, 1)
struct RedoEntryHeader {
  static constexpr std::uint32_t kPadMarker = 0xffffffffu;
  static constexpr std::uint32_t kCommitMarker = 0xfffffffeu;
  static constexpr std::uint32_t kGroupMarker = 0xfffffffdu;
  std::uint32_t db_off;
  std::uint16_t len;
};
#pragma pack(pop)
static_assert(sizeof(RedoEntryHeader) == 6);

// A data chunk larger than this is split by the capture layer.
constexpr std::uint32_t kMaxRedoChunk = 60'000;

// Entries are 2-byte aligned; an entry (or marker) never starts within 6
// bytes of the physical end of the ring — both sides treat that sliver as
// an implicit pad.
inline std::uint64_t redo_entry_bytes(std::uint32_t payload_len) {
  return sizeof(RedoEntryHeader) + ((payload_len + 1u) & ~1u);
}

// Commit marker payload: {u32 seq, u32 crc}.
//
// The checksum covers every ring byte of the transaction (from the cursor
// position where its first entry starts up to the marker). It exists because
// write buffers do NOT drain in program order: a transaction's first bytes
// can sit in a lingering partially-filled buffer while later blocks — marker
// included — flush and arrive first. Without the checksum the backup could
// mistake stale previous-lap bytes under the undelivered window for entries
// (the classic torn-log problem; the same reason production write-ahead logs
// checksum their records). With it, a transaction is applied only when the
// bytes on the backup are exactly the bytes the primary wrote.
constexpr std::uint64_t kCommitMarkerBytes = sizeof(RedoEntryHeader) + 8;

// Group marker payload: {u32 first_seq, u32 last_seq, u32 crc}.
//
// Group commit coalesces G transactions into one checksummed ring unit: the
// sub-batches' data entries are packed back-to-back and sealed by a single
// group marker instead of G per-transaction commit markers. The checksum
// covers every ring byte of the whole group, so the backup applies either
// all of the group's transactions or none of them — a crash mid-group never
// leaves a partially-shipped group applied. A single-transaction group
// (G=1) uses the classic commit marker above, byte-identical to the
// ungrouped stream. A whole group must fit the ring (same rule as one
// transaction: the producer cannot overrun the consumer inside an unsealed
// unit), so size the ring for at least one full group.
constexpr std::uint64_t kGroupMarkerBytes = sizeof(RedoEntryHeader) + 12;

}  // namespace vrep::repl
