#include "repl/active.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

using sim::TrafficClass;

ActiveBackupLayout ActiveBackupLayout::make(std::size_t db_size, std::size_t ring_capacity) {
  VREP_CHECK(ring_capacity % 64 == 0);
  ActiveBackupLayout layout;
  layout.ring_offset = 0;
  layout.ring_capacity = ring_capacity;
  layout.db_offset = ring_capacity;
  layout.db_size = db_size;
  return layout;
}

// ---------------------------------------------------------------------------
// ActiveBackup
// ---------------------------------------------------------------------------

ActiveBackup::ActiveBackup(sim::Cpu& cpu, rio::Arena& arena, const ActiveBackupLayout& layout,
                           sim::McFabric& fabric, cluster::Membership* membership,
                           std::uint64_t node_id)
    : cpu_(&cpu), arena_(&arena), layout_(layout), fabric_(&fabric),
      applier_(*this, membership, node_id) {
  VREP_CHECK(arena.size() >= layout.arena_bytes());
  data_ = arena.data() + layout.ring_offset;
  cpu_->bus().register_region(data_, layout.ring_capacity);
  cpu_->bus().register_region(db(), layout.db_size);
  // The replica image is installed out-of-band (the harness formats both
  // arenas identically before enabling replication).
  applier_.adopt_image(layout.db_size, 0, applier_.epoch());
}

void ActiveBackup::write(std::uint64_t off, const void* src, std::size_t len) {
  // The busy-wait parse + apply is the backup CPU's only job (Section 6.1:
  // "it can easily keep up"). Entry-header parse cost, then the copy from
  // the ring replica into the database copy through the cache model.
  sim::MemBus& bus = cpu_->bus();
  bus.charge(bus.cost().access_base_ns * 4);
  bus.copy(db() + off, static_cast<const std::uint8_t*>(src), len, TrafficClass::kModified);
}

std::uint32_t ActiveBackup::ring_crc(std::uint64_t from, std::uint64_t to) const {
  // Checksum the raw ring bytes of [from, to) in cursor space (may wrap).
  Crc32 crc;
  const std::uint64_t cap = layout_.ring_capacity;
  std::uint64_t pos = from;
  while (pos < to) {
    const std::uint64_t phys = pos % cap;
    const std::uint64_t chunk = std::min(to - pos, cap - phys);
    crc.update(data_ + phys, chunk);
    pos += chunk;
  }
  cpu_->bus().charge(static_cast<sim::SimTime>(
      static_cast<double>(to - from) * cpu_->cost().checksum_byte_ns));
  return crc.value();
}

bool ActiveBackup::try_apply_one() {
  sim::MemBus& bus = cpu_->bus();
  const std::uint64_t cap = layout_.ring_capacity;

  // First pass: decode the ring wire format, walking the entry stream up to
  // this transaction's commit marker. Nothing is applied unless the marker
  // has arrived (1-safety: all-or-nothing per transaction). The sequencing
  // rule itself belongs to the applier — the expected-seq check here is the
  // decoder's stale-lap early-out, identical to the rule apply_decoded
  // re-checks.
  std::vector<RedoChunk> chunks;
  std::uint64_t pos = consumer_;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  bool found = false;
  while (pos - consumer_ < cap) {
    const std::uint64_t phys = pos % cap;
    if (cap - phys < sizeof(RedoEntryHeader)) {  // implicit pad sliver
      pos += cap - phys;
      continue;
    }
    RedoEntryHeader hdr;
    bus.read(data_ + phys, sizeof hdr);
    std::memcpy(&hdr, data_ + phys, sizeof hdr);
    if (hdr.db_off == RedoEntryHeader::kPadMarker) {
      pos += cap - phys;
      continue;
    }
    if (hdr.db_off == RedoEntryHeader::kCommitMarker) {
      if (hdr.len != 8 || kCommitMarkerBytes > cap - phys) break;  // torn / stale
      std::uint32_t seq;
      std::memcpy(&seq, data_ + phys + sizeof hdr, 4);
      if (seq != static_cast<std::uint32_t>(applier_.next_expected_seq())) break;  // stale lap
      std::uint32_t crc;
      std::memcpy(&crc, data_ + phys + sizeof hdr + 4, 4);
      if (crc != ring_crc(consumer_, pos)) break;  // torn: bytes still in flight
      pos += kCommitMarkerBytes;
      first_seq = last_seq = applier_.next_expected_seq();
      found = true;
      break;
    }
    if (hdr.db_off == RedoEntryHeader::kGroupMarker) {
      // Group unit {first, last, crc}: apply all of the group's transactions
      // or none of them (the checksum covers every byte back to consumer_).
      if (hdr.len != 12 || kGroupMarkerBytes > cap - phys) break;  // torn / stale
      std::uint32_t first32;
      std::uint32_t last32;
      std::uint32_t crc;
      std::memcpy(&first32, data_ + phys + sizeof hdr, 4);
      std::memcpy(&last32, data_ + phys + sizeof hdr + 4, 4);
      std::memcpy(&crc, data_ + phys + sizeof hdr + 8, 4);
      if (first32 != static_cast<std::uint32_t>(applier_.next_expected_seq())) break;  // stale lap
      if (last32 < first32) break;  // stale garbage
      if (crc != ring_crc(consumer_, pos)) break;  // torn: bytes still in flight
      pos += kGroupMarkerBytes;
      first_seq = applier_.next_expected_seq();
      last_seq = first_seq + (last32 - first32);
      found = true;
      break;
    }
    if (hdr.db_off + std::uint64_t{hdr.len} > layout_.db_size || hdr.len == 0) break;
    if (redo_entry_bytes(hdr.len) > cap - phys) break;  // would straddle: stale bytes
    chunks.push_back(RedoChunk{hdr.db_off, hdr.len, data_ + phys + sizeof hdr});
    pos += redo_entry_bytes(hdr.len);
  }
  if (!found) return false;

  // Second pass: hand the decoded unit (one transaction, or a whole group)
  // to the shared protocol engine, which applies it through our Target
  // (charging the cache model).
  if (!applier_.apply_decoded(first_seq, last_seq, chunks.data(), chunks.size(),
                              applier_.epoch())) {
    return false;
  }
  consumer_ = pos;
  return true;
}

void ActiveBackup::poll(sim::SimTime t) {
  cpu_->clock().advance_to(t);
  fabric_->deliver_until(cpu_->clock().now());
  bool applied = false;
  while (try_apply_one()) applied = true;
  if (applied) {
    // The cursor write-back reaches the primary one propagation delay after
    // the apply finishes.
    visibility_.push_back(Visibility{cpu_->clock().now() + cpu_->cost().link.propagation_ns,
                                     consumer_, applier_.applied_seq()});
  }
}

std::uint64_t ActiveBackup::consumer_visible(sim::SimTime t) const {
  while (!visibility_.empty() && visibility_.front().at <= t) {
    last_visible_ = visibility_.front().cursor;
    last_visible_seq_ = visibility_.front().seq;
    visibility_.pop_front();
  }
  return last_visible_;
}

std::uint64_t ActiveBackup::applied_visible(sim::SimTime t) const {
  consumer_visible(t);
  return last_visible_seq_;
}

sim::SimTime ActiveBackup::next_visibility_after(sim::SimTime t) const {
  for (const auto& v : visibility_) {
    if (v.at > t) return v.at;
  }
  return kNever;
}

std::uint64_t ActiveBackup::takeover(sim::SimTime crash_time) {
  metrics::counter("repl.backup.takeovers").add(1);
  fabric_->crash_at(crash_time);
  cpu_->clock().advance_to(crash_time);
  while (try_apply_one()) {
  }
  return applier_.applied_seq();
}

// ---------------------------------------------------------------------------
// ActivePrimary
// ---------------------------------------------------------------------------

namespace {
std::uint8_t* ring_shadow(rio::Arena& primary_arena, const core::StoreConfig& config) {
  // The local V3 store occupies the front of the primary arena; the shadow
  // copy of the ring (local halves of the doubled writes) sits behind it.
  const std::size_t local_bytes = core::InlineLogStore::arena_bytes(config);
  return primary_arena.data() + ((local_bytes + 63) & ~std::size_t{63});
}
}  // namespace

std::size_t ActivePrimary::primary_arena_bytes(const core::StoreConfig& config,
                                               const ActiveBackupLayout& layout,
                                               std::size_t backups) {
  // One ring shadow per backup, all behind the local store (64-byte aligned).
  return core::InlineLogStore::arena_bytes(config) + backups * layout.ring_capacity + 128;
}

ActivePrimary::ActivePrimary(sim::MemBus& bus, rio::Arena& primary_arena,
                             rio::Arena& backup_arena, const core::StoreConfig& config,
                             const ActiveBackupLayout& layout, ActiveBackup* backup, bool format,
                             cluster::Membership* membership, RedoPipeline::Lineage lineage)
    : bus_(&bus), primary_arena_(&primary_arena), layout_(layout),
      local_(std::make_unique<core::InlineLogStore>(bus, primary_arena, config, format)),
      link_(bus, ring_shadow(primary_arena, config), layout.ring_capacity, backup),
      pipeline_(static_cast<RedoPipeline::Source&>(*this), &link_, membership, lineage) {
  VREP_CHECK(primary_arena.size() >= primary_arena_bytes(config, layout));
  std::uint8_t* ring_data = ring_shadow(primary_arena, config);
  bus.register_region(ring_data, layout.ring_capacity);
  bus.replicate_region(ring_data, backup_arena.data() + layout.ring_offset);
  bus.set_capture(local_->db(), local_->db_size(), this);
}

std::size_t ActivePrimary::add_backup(rio::Arena& backup_arena, ActiveBackup* backup) {
  // Further backups get their own ring shadow behind the first one; every
  // ring is the same size (shared layout), so the shadows stay 64-aligned.
  const std::size_t ring_index = 1 + extra_links_.size();
  std::uint8_t* base = link_.ring_data() + ring_index * layout_.ring_capacity;
  VREP_CHECK(base + layout_.ring_capacity <= primary_arena_->data() + primary_arena_->size());
  bus_->register_region(base, layout_.ring_capacity);
  bus_->replicate_region(base, backup_arena.data() + layout_.ring_offset);
  extra_links_.push_back(
      std::make_unique<McRingLink>(*bus_, base, layout_.ring_capacity, backup));
  return pipeline_.add_peer(extra_links_.back().get());
}

void ActivePrimary::seed_from(const std::uint8_t* db, std::size_t size, std::uint64_t seq) {
  VREP_CHECK(size == local_->db_size());
  std::memcpy(local_->db(), db, size);
  local_->seed_committed_seq(seq);
}

sim::SimTime ActivePrimary::flow_stall_ns() const {
  sim::SimTime total = link_.flow_stall_ns();
  for (const auto& link : extra_links_) total += link->flow_stall_ns();
  return total;
}

sim::SimTime ActivePrimary::two_safe_wait_ns() const {
  sim::SimTime total = link_.two_safe_wait_ns();
  for (const auto& link : extra_links_) total += link->two_safe_wait_ns();
  return total;
}

void ActivePrimary::on_captured_store(std::uint64_t off, const void* src, std::size_t len) {
  // Local doubling into the volatile staging buffer (redo data only becomes
  // durable in the ring at commit).
  bus_->charge(bus_->cost().io_store_base_ns +
               static_cast<sim::SimTime>(static_cast<double>(len) *
                                         bus_->cost().io_store_byte_ns));
  pipeline_.stage(off, src, len);
}

void ActivePrimary::begin_transaction() {
  pipeline_.begin();
  local_->begin_transaction();
}

void ActivePrimary::set_range(void* base, std::size_t len) { local_->set_range(base, len); }

void ActivePrimary::abort_transaction() {
  local_->abort_transaction();
  pipeline_.discard();
}

void ActivePrimary::commit_transaction() {
  local_->commit_transaction();
  // Asynchronous group commit: with the default window (W=1) and group size
  // (G=1) this ships and waits exactly like the old blocking commit; wider
  // settings return once the in-flight window has room (wait()/sync() give
  // back the blocking semantics per ticket).
  pipeline_.commit_async(local_->committed_seq());
}

int ActivePrimary::recover() {
  pipeline_.discard();
  return local_->recover();
}

}  // namespace vrep::repl
