#include "repl/active.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::repl {

using sim::TrafficClass;

ActiveBackupLayout ActiveBackupLayout::make(std::size_t db_size, std::size_t ring_capacity) {
  VREP_CHECK(ring_capacity % 64 == 0);
  ActiveBackupLayout layout;
  layout.ring_offset = 0;
  layout.ring_capacity = ring_capacity;
  layout.db_offset = ring_capacity;
  layout.db_size = db_size;
  return layout;
}

// ---------------------------------------------------------------------------
// ActiveBackup
// ---------------------------------------------------------------------------

ActiveBackup::ActiveBackup(sim::Cpu& cpu, rio::Arena& arena, const ActiveBackupLayout& layout,
                           sim::McFabric& fabric)
    : cpu_(&cpu), arena_(&arena), layout_(layout), fabric_(&fabric) {
  VREP_CHECK(arena.size() >= layout.arena_bytes());
  data_ = arena.data() + layout.ring_offset;
  cpu_->bus().register_region(data_, layout.ring_capacity);
  cpu_->bus().register_region(db(), layout.db_size);
}

std::uint32_t ActiveBackup::ring_crc(std::uint64_t from, std::uint64_t to) const {
  // Checksum the raw ring bytes of [from, to) in cursor space (may wrap).
  Crc32 crc;
  const std::uint64_t cap = layout_.ring_capacity;
  std::uint64_t pos = from;
  while (pos < to) {
    const std::uint64_t phys = pos % cap;
    const std::uint64_t chunk = std::min(to - pos, cap - phys);
    crc.update(data_ + phys, chunk);
    pos += chunk;
  }
  cpu_->bus().charge(static_cast<sim::SimTime>(
      static_cast<double>(to - from) * cpu_->cost().checksum_byte_ns));
  return crc.value();
}

bool ActiveBackup::try_apply_one() {
  sim::MemBus& bus = cpu_->bus();
  const std::uint64_t cap = layout_.ring_capacity;

  // First pass: walk the entry stream looking for this transaction's commit
  // marker. Nothing is applied unless the marker has arrived (1-safety:
  // all-or-nothing per transaction).
  std::vector<std::uint64_t> entries;  // cursor positions of data entries
  std::uint64_t pos = consumer_;
  bool found = false;
  while (pos - consumer_ < cap) {
    const std::uint64_t phys = pos % cap;
    if (cap - phys < sizeof(RedoEntryHeader)) {  // implicit pad sliver
      pos += cap - phys;
      continue;
    }
    RedoEntryHeader hdr;
    bus.read(data_ + phys, sizeof hdr);
    std::memcpy(&hdr, data_ + phys, sizeof hdr);
    if (hdr.db_off == RedoEntryHeader::kPadMarker) {
      pos += cap - phys;
      continue;
    }
    if (hdr.db_off == RedoEntryHeader::kCommitMarker) {
      if (hdr.len != 8 || kCommitMarkerBytes > cap - phys) break;  // torn / stale
      std::uint32_t seq;
      std::memcpy(&seq, data_ + phys + sizeof hdr, 4);
      if (seq != static_cast<std::uint32_t>(applied_seq_ + 1)) break;  // stale lap
      std::uint32_t crc;
      std::memcpy(&crc, data_ + phys + sizeof hdr + 4, 4);
      if (crc != ring_crc(consumer_, pos)) break;  // torn: bytes still in flight
      pos += kCommitMarkerBytes;
      found = true;
      break;
    }
    if (hdr.db_off + std::uint64_t{hdr.len} > layout_.db_size || hdr.len == 0) break;
    if (redo_entry_bytes(hdr.len) > cap - phys) break;  // would straddle: stale bytes
    entries.push_back(pos);
    pos += redo_entry_bytes(hdr.len);
  }
  if (!found) return false;

  // Second pass: apply. The busy-wait parse + apply is the backup CPU's only
  // job (Section 6.1: "it can easily keep up").
  for (const std::uint64_t entry : entries) {
    const std::uint64_t phys = entry % cap;
    RedoEntryHeader hdr;
    std::memcpy(&hdr, data_ + phys, sizeof hdr);
    bus.charge(bus.cost().access_base_ns * 4);
    bus.copy(db() + hdr.db_off, data_ + phys + sizeof hdr, hdr.len, TrafficClass::kModified);
  }
  consumer_ = pos;
  applied_seq_ += 1;
  return true;
}

void ActiveBackup::poll(sim::SimTime t) {
  cpu_->clock().advance_to(t);
  fabric_->deliver_until(cpu_->clock().now());
  bool applied = false;
  while (try_apply_one()) applied = true;
  if (applied) {
    // The cursor write-back reaches the primary one propagation delay after
    // the apply finishes.
    visibility_.emplace_back(cpu_->clock().now() + cpu_->cost().link.propagation_ns, consumer_);
  }
}

std::uint64_t ActiveBackup::consumer_visible(sim::SimTime t) const {
  while (!visibility_.empty() && visibility_.front().first <= t) {
    last_visible_ = visibility_.front().second;
    visibility_.pop_front();
  }
  return last_visible_;
}

sim::SimTime ActiveBackup::next_visibility_after(sim::SimTime t) const {
  for (const auto& [at, value] : visibility_) {
    if (at > t) return at;
  }
  return kNever;
}

std::uint64_t ActiveBackup::takeover(sim::SimTime crash_time) {
  metrics::counter("repl.active.takeovers").add(1);
  fabric_->crash_at(crash_time);
  cpu_->clock().advance_to(crash_time);
  while (try_apply_one()) {
  }
  return applied_seq_;
}

// ---------------------------------------------------------------------------
// ActivePrimary
// ---------------------------------------------------------------------------

std::size_t ActivePrimary::primary_arena_bytes(const core::StoreConfig& config,
                                               const ActiveBackupLayout& layout) {
  return core::InlineLogStore::arena_bytes(config) + layout.ring_capacity + 128;
}

ActivePrimary::ActivePrimary(sim::MemBus& bus, rio::Arena& primary_arena,
                             rio::Arena& backup_arena, const core::StoreConfig& config,
                             const ActiveBackupLayout& layout, ActiveBackup* backup, bool format)
    : bus_(&bus), layout_(layout), backup_(backup) {
  // The local V3 store occupies the front of the primary arena; the shadow
  // copy of the ring (local halves of the doubled writes) sits behind it.
  const std::size_t local_bytes = core::InlineLogStore::arena_bytes(config);
  VREP_CHECK(primary_arena.size() >= primary_arena_bytes(config, layout));
  local_ = std::make_unique<core::InlineLogStore>(bus, primary_arena, config, format);

  ring_data_ = primary_arena.data() + ((local_bytes + 63) & ~std::size_t{63});
  bus.register_region(ring_data_, layout.ring_capacity);
  bus.replicate_region(ring_data_, backup_arena.data() + layout.ring_offset);
  bus.set_capture(local_->db(), local_->db_size(), this);
}

void ActivePrimary::on_captured_store(std::uint64_t off, const void* src, std::size_t len) {
  // Local doubling into the volatile staging buffer (redo data only becomes
  // durable in the ring at commit).
  bus_->charge(bus_->cost().io_store_base_ns +
               static_cast<sim::SimTime>(static_cast<double>(len) *
                                         bus_->cost().io_store_byte_ns));
  const auto* p = static_cast<const std::uint8_t*>(src);
  while (len > 0) {  // chunks exceeding the u16 length field are split
    const std::size_t piece = len < kMaxRedoChunk ? len : kMaxRedoChunk;
    Staged s;
    s.off = off;
    s.len = static_cast<std::uint32_t>(piece);
    s.data_pos = static_cast<std::uint32_t>(staging_bytes_.size());
    staging_bytes_.insert(staging_bytes_.end(), p, p + piece);
    staged_.push_back(s);
    off += piece;
    p += piece;
    len -= piece;
  }
}

void ActivePrimary::begin_transaction() {
  staged_.clear();
  staging_bytes_.clear();
  local_->begin_transaction();
}

void ActivePrimary::set_range(void* base, std::size_t len) { local_->set_range(base, len); }

void ActivePrimary::abort_transaction() {
  local_->abort_transaction();
  staged_.clear();
  staging_bytes_.clear();
}

void ActivePrimary::reserve_ring_space(std::uint64_t bytes) {
  VREP_CHECK(bytes <= layout_.ring_capacity);
  bool flushed = false;
  while (true) {
    const sim::SimTime now = bus_->clock()->now();
    if (producer_ + bytes <= backup_->consumer_visible(now) + layout_.ring_capacity) return;
    // Ring full as far as the primary can see: block ("the primary processor
    // must block", Section 6.1) until a newer cursor write-back arrives.
    const sim::SimTime resume = backup_->next_visibility_after(now);
    if (resume == ActiveBackup::kNever) {
      // Unapplied commits may still sit in the write buffers; push them out
      // and let the backup catch up once.
      VREP_CHECK(!flushed && "redo ring smaller than one transaction");
      flushed = true;
      bus_->mc()->flush();
      backup_->poll(bus_->mc()->fabric()->link().free_at +
                    bus_->mc()->fabric()->model().propagation_ns);
      continue;
    }
    static metrics::Counter& stalls = metrics::counter("repl.active.flow_stalls");
    static metrics::Counter& stall_ns = metrics::counter("repl.active.flow_stall_ns");
    stalls.add(1);
    stall_ns.add(static_cast<std::uint64_t>(resume - now));
    flow_stall_ns_ += resume - now;
    bus_->clock()->advance_to(resume);
  }
}

void ActivePrimary::ring_write(const void* src, std::size_t len, TrafficClass cls) {
  const std::uint64_t phys = producer_ % layout_.ring_capacity;
  VREP_CHECK(phys + len <= layout_.ring_capacity);
  bus_->write(ring_data_ + phys, src, len, cls);
  producer_ += len;
}

void ActivePrimary::ship_redo() {
  auto emit = [this](const RedoEntryHeader& hdr, const void* payload, std::size_t payload_len) {
    const std::uint64_t need = sizeof hdr + ((payload_len + 1u) & ~std::size_t{1});
    const std::uint64_t phys = producer_ % layout_.ring_capacity;
    const std::uint64_t remaining = layout_.ring_capacity - phys;
    if (remaining < need) {
      reserve_ring_space(remaining + need);
      if (remaining >= sizeof hdr) {
        const RedoEntryHeader pad{RedoEntryHeader::kPadMarker, 0};
        bus_->write(ring_data_ + phys, &pad, sizeof pad, TrafficClass::kMeta);
      }
      producer_ += remaining;  // < 6 bytes: both sides treat it as implicit pad
    } else {
      reserve_ring_space(need);
    }
    ring_write(&hdr, sizeof hdr, TrafficClass::kMeta);
    if (payload_len > 0) {
      const bool is_data = hdr.db_off < RedoEntryHeader::kCommitMarker;
      ring_write(payload, payload_len, is_data ? TrafficClass::kModified : TrafficClass::kMeta);
      const std::uint64_t slack = need - sizeof hdr - payload_len;
      if (slack > 0) {
        static const std::uint8_t kZero[8] = {};
        ring_write(kZero, slack, TrafficClass::kMeta);
      }
    }
  };

  const std::uint64_t txn_start = producer_;
  for (const Staged& s : staged_) {
    emit(RedoEntryHeader{static_cast<std::uint32_t>(s.off), static_cast<std::uint16_t>(s.len)},
         staging_bytes_.data() + s.data_pos, s.len);
  }
  // Pre-pad if the marker would wrap, so the checksummed range ends exactly
  // at the marker header on both sides.
  {
    const std::uint64_t phys = producer_ % layout_.ring_capacity;
    const std::uint64_t remaining = layout_.ring_capacity - phys;
    if (remaining < kCommitMarkerBytes) {
      reserve_ring_space(remaining + kCommitMarkerBytes);
      if (remaining >= sizeof(RedoEntryHeader)) {
        const RedoEntryHeader pad{RedoEntryHeader::kPadMarker, 0};
        bus_->write(ring_data_ + phys, &pad, sizeof pad, TrafficClass::kMeta);
      }
      producer_ += remaining;
    }
  }
  // Checksum the transaction's ring bytes (see redo_ring.hpp for why).
  Crc32 crc;
  {
    const std::uint64_t cap = layout_.ring_capacity;
    std::uint64_t pos = txn_start;
    while (pos < producer_) {
      const std::uint64_t phys = pos % cap;
      const std::uint64_t chunk = std::min(producer_ - pos, cap - phys);
      crc.update(ring_data_ + phys, chunk);
      pos += chunk;
    }
    bus_->charge(static_cast<sim::SimTime>(
        static_cast<double>(producer_ - txn_start) * bus_->cost().checksum_byte_ns));
  }
  struct {
    std::uint32_t seq;
    std::uint32_t crc;
  } marker{static_cast<std::uint32_t>(local_->committed_seq()), crc.value()};
  emit(RedoEntryHeader{RedoEntryHeader::kCommitMarker, 8}, &marker, 8);

  // No barrier, no pointer write: the sequential stream self-describes, so
  // the write buffers emit full 32-byte packets. Poll the (busy-waiting)
  // backup at the time the traffic generated so far lands.
  backup_->poll(bus_->mc()->fabric()->link().free_at +
                bus_->mc()->fabric()->model().propagation_ns);

  static metrics::Counter& shipped = metrics::counter("repl.active.txns_shipped");
  static metrics::Gauge& occupancy = metrics::gauge("repl.active.ring_occupancy_peak");
  shipped.add(1);
  occupancy.update_max(static_cast<std::int64_t>(
      producer_ - backup_->consumer_visible(bus_->clock()->now())));

  staged_.clear();
  staging_bytes_.clear();
}

void ActivePrimary::commit_transaction() {
  local_->commit_transaction();
  ship_redo();
  if (two_safe_) {
    // Push the trailing partial packet out, let the backup apply, and block
    // until its cursor write-back (covering everything shipped) arrives.
    bus_->mc()->flush();
    backup_->poll(bus_->mc()->fabric()->link().free_at +
                  bus_->mc()->fabric()->model().propagation_ns);
    while (true) {
      const sim::SimTime now = bus_->clock()->now();
      if (backup_->consumer_visible(now) >= producer_) break;
      const sim::SimTime resume = backup_->next_visibility_after(now);
      VREP_CHECK(resume != ActiveBackup::kNever && "backup never acknowledged");
      static metrics::Counter& wait_ns = metrics::counter("repl.active.two_safe_wait_ns");
      wait_ns.add(static_cast<std::uint64_t>(resume - now));
      two_safe_wait_ns_ += resume - now;
      bus_->clock()->advance_to(resume);
    }
  }
}

int ActivePrimary::recover() {
  staged_.clear();
  staging_bytes_.clear();
  return local_->recover();
}

}  // namespace vrep::repl
