// ReplicationLink backend over the simulated Memory Channel redo ring.
//
// This is the paper's actual carrier (Section 6): a circular buffer in
// write-through SAN memory. send(kRedoBatch) re-packs the engine's batch
// payload into 6-byte ring entries (redo_ring.hpp wire format: headers and
// padding as kMeta, redo data as kModified), charges every byte through the
// instrumented bus, appends the checksummed commit marker, and polls the
// co-simulated backup at the virtual time the traffic lands. Flow control is
// the ring itself: when the producer would overrun the consumer cursor the
// primary CPU blocks ("the primary processor must block", Section 6.1)
// until a newer cursor write-back becomes visible.
//
// recv() synthesizes kConsumerAck frames from the backup's cursor
// write-backs: non-blocking (timeout 0) reports whatever is visible now;
// blocking advances the virtual clock to the next write-back (this is the
// 2-safe commit wait, accounted in repl.link.two_safe_wait_ns).
//
// Epoch fencing is co-simulated at the send boundary: in the real system
// the backup's network interface would reject stale-epoch traffic, but both
// nodes live in one process here, so a send stamped with an older epoch
// than the backup's membership view is routed through the backup's
// RedoApplier (which fences it and answers kEpochFence into our inbound
// queue) instead of being written to the ring.
#pragma once

#include <cstdint>
#include <deque>

#include "repl/link.hpp"
#include "repl/redo_ring.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::repl {

class ActiveBackup;

class McRingLink final : public ReplicationLink {
 public:
  McRingLink(sim::MemBus& bus, std::uint8_t* ring_data, std::size_t ring_capacity,
             ActiveBackup* backup);

  bool send(FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override;
  std::optional<Frame> recv(int timeout_ms) override;
  LinkError last_error() const override { return error_; }
  bool connected() const override { return true; }
  // Push the trailing partial packet out of the write buffers and let the
  // backup apply; the 2-safe commit wait starts here.
  void flush() override;
  std::optional<std::uint64_t> blocked_wait_ns() const override {
    return static_cast<std::uint64_t>(two_safe_wait_ns_);
  }

  std::uint64_t producer() const { return producer_; }
  // Base of this link's local ring shadow (multi-backup primaries place the
  // next backup's shadow right behind it).
  std::uint8_t* ring_data() const { return ring_data_; }
  sim::SimTime flow_stall_ns() const { return flow_stall_ns_; }
  sim::SimTime two_safe_wait_ns() const { return two_safe_wait_ns_; }

 private:
  void encode_batch(const std::uint8_t* payload, std::size_t len);
  // Group commit: all sub-batches' entries followed by ONE checksummed group
  // marker {first_seq, last_seq, crc} — the backup applies the whole group
  // or nothing (see redo_ring.hpp).
  void encode_group(const std::uint8_t* payload, std::size_t len);
  void encode_chunks(const std::uint8_t* payload, std::size_t len);
  void pre_pad_for_marker(std::uint64_t marker_bytes);
  std::uint32_t seal_crc(std::uint64_t txn_start);
  void finish_unit();
  void emit_entry(const RedoEntryHeader& hdr, const void* payload, std::size_t payload_len);
  void reserve_ring_space(std::uint64_t bytes);
  void ring_write(const void* src, std::size_t len, sim::TrafficClass cls);

  sim::MemBus* bus_;
  std::uint8_t* ring_data_;  // local (shadow) half of the doubled writes
  std::size_t ring_capacity_;
  ActiveBackup* backup_;
  std::deque<Frame> inbound_;  // co-simulated control frames (fences)
  std::uint64_t producer_ = 0;
  std::uint64_t last_reported_ack_ = 0;
  LinkError error_ = LinkError::kNone;
  sim::SimTime flow_stall_ns_ = 0;
  sim::SimTime two_safe_wait_ns_ = 0;
};

}  // namespace vrep::repl
