// Passive primary-backup (paper Section 5).
//
// The backup CPU is idle; every replicated structure of the primary is
// "write doubled" onto the Memory Channel, so the backup's arena holds a
// near-real-time byte-level replica. Which structures are replicated is the
// per-version policy encoded in TransactionStore::regions():
//   V0: root + heap + db            (everything — the straightforward port)
//   V1/V2: root + db + mirror       (the range array stays local; recovery
//                                    on the backup copies whole databases)
//   V3: root + undo log + db
//
// On primary failure the backup attaches a store to its replica and runs
// takeover(), rolling back the in-flight transaction. 1-safety: packets in
// flight at the instant of the crash are lost, so the backup may miss the
// last commit (and, for the mirror versions, may hold a partially-propagated
// last transaction inside the mirror — the paper's microseconds-wide window
// of vulnerability).
//
// Checkpointing note: the passive replica is a continuously-maintained
// physical image, i.e. an implicit checkpoint at every instant — rejoin cost
// never grows with history because there is no history. The active scheme
// reaches the same bounded-time rejoin property explicitly, via the fuzzy
// checkpoints + redo-history truncation in repl/pipeline.hpp
// (RedoPipeline::enable_checkpoints).
#pragma once

#include <memory>

#include "core/api.hpp"
#include "rio/arena.hpp"
#include "sim/node.hpp"

namespace vrep::repl {

// Wire up write-through for every replicate_passive region of `store`,
// mapping arena offsets 1:1 onto the backup arena. The store's bus must
// already have its Memory Channel interface attached. `ship_everything`
// additionally replicates the regions the per-version policy would keep
// local (undoing the Section 5.1 optimisation — used by the ablation bench).
void setup_passive_replication(core::TransactionStore& store, rio::Arena& primary_arena,
                               rio::Arena& backup_arena, bool ship_everything = false);

// Backup-side takeover: attach a store of the same kind/config to the
// backup's replica and repair it. Returns the recovered store (ready to
// serve transactions through `backup_bus`).
std::unique_ptr<core::TransactionStore> passive_takeover(core::VersionKind kind,
                                                         const core::StoreConfig& config,
                                                         sim::MemBus& backup_bus,
                                                         rio::Arena& backup_arena);

}  // namespace vrep::repl
