// Heartbeat failure detection and a minimal membership view.
//
// The paper explicitly delegates crash detection and group view management
// to the cluster layer ("well-known solutions are available" [12]); this is
// the small working equivalent our failover example and tests use. Pure
// logic over caller-provided timestamps, so tests control time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/check.hpp"

namespace vrep::cluster {

class HeartbeatDetector {
 public:
  // `timeout_ms`: silence after which the peer is suspected. Must be
  // positive — it divides the observed silence into missed intervals.
  // `suspicion_threshold`: consecutive missed intervals before declaring
  // failure (debounces a single late heartbeat).
  explicit HeartbeatDetector(std::int64_t timeout_ms, int suspicion_threshold = 1)
      : timeout_ms_(timeout_ms), threshold_(suspicion_threshold) {
    VREP_CHECK(timeout_ms > 0);
    VREP_CHECK(suspicion_threshold > 0);
  }

  void heartbeat(std::int64_t now_ms) {
    // A timestamp behind the newest one we have seen (clock skew between
    // reporting threads, or a delayed frame carrying a stale receive time)
    // must not rewind the detector and resurrect an already-silent peer.
    if (seen_any_ && now_ms < last_heartbeat_ms_) return;
    last_heartbeat_ms_ = now_ms;
    seen_any_ = true;
  }

  bool suspects(std::int64_t now_ms) const {
    if (!seen_any_) return false;  // nothing to suspect before contact
    return missed_intervals(now_ms) >= threshold_;
  }

  int missed_intervals(std::int64_t now_ms) const {
    if (!seen_any_ || now_ms <= last_heartbeat_ms_) return 0;
    return static_cast<int>((now_ms - last_heartbeat_ms_) / timeout_ms_);
  }

  std::int64_t last_heartbeat_ms() const { return last_heartbeat_ms_; }

 private:
  std::int64_t timeout_ms_;
  int threshold_;
  std::int64_t last_heartbeat_ms_ = 0;
  bool seen_any_ = false;
};

// Per-peer heartbeat bookkeeping for a node watching several peers at once
// (a primary shipping redo to N backups, pruning the dead ones from the
// view). One HeartbeatDetector per peer, all sharing a timeout/threshold;
// peers are tracked from their first heartbeat.
class PeerDetectorSet {
 public:
  explicit PeerDetectorSet(std::int64_t timeout_ms, int suspicion_threshold = 1)
      : timeout_ms_(timeout_ms), threshold_(suspicion_threshold) {
    VREP_CHECK(timeout_ms > 0);
    VREP_CHECK(suspicion_threshold > 0);
  }

  void heartbeat(int node, std::int64_t now_ms) {
    peers_.try_emplace(node, timeout_ms_, threshold_).first->second.heartbeat(now_ms);
  }

  // A never-heard-from peer is not suspected (same no-contact rule as the
  // single-peer detector).
  bool suspects(int node, std::int64_t now_ms) const {
    const auto it = peers_.find(node);
    return it != peers_.end() && it->second.suspects(now_ms);
  }

  // Every tracked peer currently past the suspicion threshold, in node order.
  std::vector<int> suspected(std::int64_t now_ms) const {
    std::vector<int> out;
    for (const auto& [node, detector] : peers_) {
      if (detector.suspects(now_ms)) out.push_back(node);
    }
    return out;
  }

  void forget(int node) { peers_.erase(node); }
  std::size_t tracked() const { return peers_.size(); }

 private:
  std::int64_t timeout_ms_;
  int threshold_;
  std::map<int, HeartbeatDetector> peers_;
};

}  // namespace vrep::cluster
