// Primary-backup membership with epochs.
//
// A takeover bumps the epoch; any node still acting on an older epoch is
// fenced (its messages carry a stale epoch and are ignored). This prevents
// the classic split-brain where a paused-but-alive primary resumes after
// the backup has taken over.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace vrep::cluster {

enum class Role : std::uint8_t { kPrimary, kBackup, kFailed };

struct View {
  std::uint64_t epoch = 1;
  int primary = 0;
  int backup = 1;
};

class Membership {
 public:
  Membership(int self, Role role) : self_(self), role_(role) {}

  const View& view() const { return view_; }
  Role role() const { return role_; }
  int self() const { return self_; }
  bool is_primary() const { return role_ == Role::kPrimary; }

  // The backup observed the primary's failure: it becomes primary in a new
  // epoch.
  void take_over() {
    VREP_CHECK(role_ == Role::kBackup);
    view_.epoch += 1;
    view_.primary = self_;
    view_.backup = -1;  // no backup until a new one joins
    role_ = Role::kPrimary;
  }

  // A replacement backup joined the (new) primary.
  void adopt_backup(int node) {
    VREP_CHECK(role_ == Role::kPrimary);
    view_.backup = node;
    view_.epoch += 1;
  }

  // Message admission: stale-epoch traffic is fenced.
  bool admits(std::uint64_t msg_epoch) const { return msg_epoch == view_.epoch; }

 private:
  int self_;
  Role role_;
  View view_{};
};

}  // namespace vrep::cluster
