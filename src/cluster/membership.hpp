// Primary-backup membership with epochs and an ordered backup list.
//
// A takeover bumps the epoch; any node still acting on an older epoch is
// fenced (its messages carry a stale epoch and are ignored). This prevents
// the classic split-brain where a paused-but-alive primary resumes after
// the backup has taken over.
//
// The view holds an *ordered* list of backups (join order = failover
// preference order among equally-caught-up survivors). On a primary
// failure the drivers promote the most-caught-up survivor — ties broken by
// view order — and every other node, including any fenced straggler, is
// forced through the rejoin protocol by the epoch bump.
//
// The epoch travels in every wire frame (net/transport.hpp), so fencing is
// end-to-end: a promoted node drops stale-epoch redo and answers with a
// kEpochFence frame, and the fenced old primary demotes itself
// (demote_to_backup) and re-enters via the rejoin protocol instead of
// corrupting state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace vrep::cluster {

enum class Role : std::uint8_t { kPrimary, kBackup, kFailed };

struct View {
  std::uint64_t epoch = 1;
  int primary = 0;
  // Ordered backup list: position is the failover preference among
  // equally-caught-up survivors. Empty until backups join.
  std::vector<int> backups;
};

class Membership {
 public:
  Membership(int self, Role role) : self_(self), role_(role) {
    if (role == Role::kBackup) {
      view_.primary = -1;  // learned from the primary's hello/delta
      view_.backups = {self};
    } else {
      view_.primary = self;  // no backups until they join
    }
  }

  const View& view() const { return view_; }
  Role role() const { return role_; }
  int self() const { return self_; }
  bool is_primary() const { return role_ == Role::kPrimary; }

  // The backup observed the primary's failure: it becomes primary in a new
  // epoch. Any peers it knew about must rejoin (they re-enter the view via
  // adopt_backup when their rejoin is served).
  void take_over() {
    VREP_CHECK(role_ == Role::kBackup);
    view_.epoch += 1;
    view_.primary = self_;
    view_.backups.clear();
    role_ = Role::kPrimary;
  }

  // A backup joined (or re-joined after being dropped from) the view: view
  // change, new epoch, appended at the end of the failover order. A mere
  // reconnection of a backup already in the view is NOT a view change and
  // must not bump the epoch (has_backup(node) distinguishes the two).
  void adopt_backup(int node) {
    VREP_CHECK(role_ == Role::kPrimary);
    if (has_backup(node)) return;
    view_.backups.push_back(node);
    view_.epoch += 1;
  }

  // A backup was declared failed: drop it from the view in a new epoch so
  // any frame it later sends is fenced.
  void remove_backup(int node) {
    VREP_CHECK(role_ == Role::kPrimary);
    auto it = std::find(view_.backups.begin(), view_.backups.end(), node);
    if (it == view_.backups.end()) return;
    view_.backups.erase(it);
    view_.epoch += 1;
  }

  bool has_backup() const { return !view_.backups.empty(); }
  bool has_backup(int node) const {
    return std::find(view_.backups.begin(), view_.backups.end(), node) !=
           view_.backups.end();
  }
  std::size_t backup_count() const { return view_.backups.size(); }

  // Backup side: learned the primary's current epoch from a kHello /
  // kRejoinDelta frame. Epochs only move forward: a stale epoch (a delayed
  // hello from a fenced old primary) is dropped and counted, NOT adopted —
  // and must not crash the backup, since a fenced straggler can always
  // resend arbitrarily late. Returns true iff the epoch was adopted.
  bool join_epoch(std::uint64_t epoch) {
    VREP_CHECK(role_ == Role::kBackup);
    if (epoch < view_.epoch) {
      stale_joins_ += 1;
      return false;
    }
    view_.epoch = epoch;
    return true;
  }

  // Stale-epoch joins dropped by join_epoch() (fenced-straggler hellos).
  std::uint64_t stale_joins() const { return stale_joins_; }

  // A fenced primary (someone took over in a newer epoch) steps down so it
  // can rejoin as backup. Adopts the fencing epoch; join_epoch() will move
  // it further forward when the new primary syncs us.
  void demote_to_backup(std::uint64_t fenced_by_epoch) {
    VREP_CHECK(role_ == Role::kPrimary);
    VREP_CHECK(fenced_by_epoch > view_.epoch);
    view_.epoch = fenced_by_epoch;
    view_.primary = -1;
    view_.backups = {self_};
    role_ = Role::kBackup;
  }

  // Message admission: stale-epoch traffic is fenced.
  bool admits(std::uint64_t msg_epoch) const { return msg_epoch == view_.epoch; }

 private:
  int self_;
  Role role_;
  View view_{};
  std::uint64_t stale_joins_ = 0;
};

}  // namespace vrep::cluster
