// Primary-backup membership with epochs.
//
// A takeover bumps the epoch; any node still acting on an older epoch is
// fenced (its messages carry a stale epoch and are ignored). This prevents
// the classic split-brain where a paused-but-alive primary resumes after
// the backup has taken over.
//
// The epoch travels in every wire frame (net/transport.hpp), so fencing is
// end-to-end: a promoted node drops stale-epoch redo and answers with a
// kEpochFence frame, and the fenced old primary demotes itself
// (demote_to_backup) and re-enters via the rejoin protocol instead of
// corrupting state.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace vrep::cluster {

enum class Role : std::uint8_t { kPrimary, kBackup, kFailed };

struct View {
  std::uint64_t epoch = 1;
  int primary = 0;
  int backup = 1;
};

class Membership {
 public:
  Membership(int self, Role role) : self_(self), role_(role) {
    if (role == Role::kBackup) {
      view_.primary = -1;  // learned from the primary's hello/delta
      view_.backup = self;
    } else {
      view_.primary = self;
      view_.backup = -1;  // no backup until one joins
    }
  }

  const View& view() const { return view_; }
  Role role() const { return role_; }
  int self() const { return self_; }
  bool is_primary() const { return role_ == Role::kPrimary; }

  // The backup observed the primary's failure: it becomes primary in a new
  // epoch.
  void take_over() {
    VREP_CHECK(role_ == Role::kBackup);
    view_.epoch += 1;
    view_.primary = self_;
    view_.backup = -1;  // no backup until a new one joins
    role_ = Role::kPrimary;
  }

  // A replacement backup joined the (new) primary: view change, new epoch.
  // A mere reconnection of the current backup is NOT a view change and must
  // not bump the epoch (has_backup() distinguishes the two).
  void adopt_backup(int node) {
    VREP_CHECK(role_ == Role::kPrimary);
    view_.backup = node;
    view_.epoch += 1;
  }

  bool has_backup() const { return view_.backup >= 0; }

  // Backup side: learned the primary's current epoch from a kHello /
  // kRejoinDelta frame. Epochs only move forward.
  void join_epoch(std::uint64_t epoch) {
    VREP_CHECK(role_ == Role::kBackup);
    VREP_CHECK(epoch >= view_.epoch);
    view_.epoch = epoch;
  }

  // A fenced primary (someone took over in a newer epoch) steps down so it
  // can rejoin as backup. Adopts the fencing epoch; join_epoch() will move
  // it further forward when the new primary syncs us.
  void demote_to_backup(std::uint64_t fenced_by_epoch) {
    VREP_CHECK(role_ == Role::kPrimary);
    VREP_CHECK(fenced_by_epoch > view_.epoch);
    view_.epoch = fenced_by_epoch;
    view_.primary = -1;
    view_.backup = self_;
    role_ = Role::kBackup;
  }

  // Message admission: stale-epoch traffic is fenced.
  bool admits(std::uint64_t msg_epoch) const { return msg_epoch == view_.epoch; }

 private:
  int self_;
  Role role_;
  View view_{};
};

}  // namespace vrep::cluster
