// Crash simulation.
//
// Rio's guarantee is that memory contents survive a crash; what a crash
// destroys is the execution in progress. We simulate that by throwing
// SimulatedCrash out of the transaction engine at a chosen store boundary:
// every store performed before the crash point is persistent, everything
// after it never happened. Tests arm the injector at write N for every N in
// a run, proving recovery works from *every* intermediate persistent state.
#pragma once

#include <cstdint>

#include "sim/mem_bus.hpp"

namespace vrep::rio {

struct SimulatedCrash {
  std::uint64_t at_write;
};

class CrashInjector final : public sim::WriteHook {
 public:
  // Throw on the `nth` write observed from now (0 = the very next write).
  void arm(std::uint64_t nth) {
    target_ = seen_ + nth;
    armed_ = true;
  }
  void disarm() { armed_ = false; }
  std::uint64_t writes_seen() const { return seen_; }

  void on_write() override {
    const std::uint64_t n = seen_++;
    if (armed_ && n >= target_) {
      armed_ = false;
      throw SimulatedCrash{n};
    }
  }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t target_ = 0;
  bool armed_ = false;
};

}  // namespace vrep::rio
