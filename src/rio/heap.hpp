// Persistent size-segregated heap, as used by Version 0 (Vista).
//
// Vista allocates every undo log record and every before-image area from a
// heap living in recoverable memory; the allocator's own metadata writes are
// therefore part of the data that a straightforward write-through
// primary-backup configuration ships to the backup — which is exactly why
// the paper's Table 2 shows Version 0 drowning in meta-data traffic.
//
// Design: segregated LIFO free lists over power-of-two size classes, growing
// by bumping a watermark. Freed blocks keep their size-class forever (no
// split/merge), which makes the heap trivially recoverable: after crash
// recovery has released every live object, reset() restores a pristine heap
// in O(1). All intra-heap references are offsets, so the same bytes are
// valid in the backup's replica at a different virtual address.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/mem_bus.hpp"

namespace vrep::rio {

class PersistentHeap {
 public:
  static constexpr std::size_t kNumBins = 16;
  static constexpr std::size_t kMinClassLog2 = 5;  // 32-byte minimum block

  // Attach to (format=false) or initialise (format=true) a heap over
  // [base, base+len). All metadata writes go through `bus` as kMeta traffic.
  PersistentHeap(sim::MemBus* bus, std::uint8_t* base, std::size_t len, bool format);

  // Allocate at least n bytes; returns the payload offset from base, or 0 if
  // the heap is exhausted.
  std::uint64_t alloc(std::size_t n);
  void free(std::uint64_t payload_off);

  void* ptr(std::uint64_t payload_off) { return base_ + payload_off; }
  const void* ptr(std::uint64_t payload_off) const { return base_ + payload_off; }

  // O(1) reset to a pristine heap (every object must already be dead).
  void reset();

  // Scan all block headers for structural consistency.
  bool validate() const;

  std::uint64_t bytes_in_use() const;
  std::uint64_t high_watermark() const;

 private:
  struct Header {  // persistent, 16 bytes, precedes every payload
    std::uint64_t size;    // block size including header
    std::uint32_t bin;
    std::uint32_t status;  // kUsed / kFree
  };
  struct HeapRoot {  // persistent, at base_
    std::uint64_t magic;
    std::uint64_t watermark;  // offset of first never-allocated byte
    std::uint64_t in_use;
    std::uint64_t bin_head[kNumBins];  // offset of first free block (0 = none)
  };

  static constexpr std::uint64_t kMagic = 0x52696f4865617030ull;  // "RioHeap0"
  static constexpr std::uint32_t kUsed = 0xA110C8EDu;
  static constexpr std::uint32_t kFree = 0xF7EEF7EEu;

  static std::size_t bin_of(std::size_t n);
  Header* header_at(std::uint64_t block_off) {
    return reinterpret_cast<Header*>(base_ + block_off);
  }
  const Header* header_at(std::uint64_t block_off) const {
    return reinterpret_cast<const Header*>(base_ + block_off);
  }

  sim::MemBus* bus_;
  std::uint8_t* base_;
  std::size_t len_;
  HeapRoot* root_;
};

}  // namespace vrep::rio
