#include "rio/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.hpp"

namespace vrep::rio {

Arena Arena::create(std::size_t len) {
  Arena a;
  a.data_ = new std::uint8_t[len]();
  a.size_ = len;
  a.mapped_ = false;
  return a;
}

Arena Arena::map_file(const std::string& path, std::size_t len) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  VREP_CHECK(fd >= 0);
  VREP_CHECK(::ftruncate(fd, static_cast<off_t>(len)) == 0);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  VREP_CHECK(p != MAP_FAILED);
  Arena a;
  a.data_ = static_cast<std::uint8_t*>(p);
  a.size_ = len;
  a.mapped_ = true;
  return a;
}

Arena::Arena(Arena&& o) noexcept : data_(o.data_), size_(o.size_), mapped_(o.mapped_) {
  o.data_ = nullptr;
  o.size_ = 0;
}

Arena& Arena::operator=(Arena&& o) noexcept {
  if (this != &o) {
    this->~Arena();
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
    mapped_ = o.mapped_;
  }
  return *this;
}

Arena::~Arena() {
  if (data_ == nullptr) return;
  if (mapped_) {
    ::munmap(data_, size_);
  } else {
    delete[] data_;
  }
  data_ = nullptr;
}

void Arena::sync() {
  if (mapped_ && data_ != nullptr) ::msync(data_, size_, MS_SYNC);
}

void SnapshotCursor::reset(const std::uint8_t* base, std::size_t len) {
  base_ = base;
  len_ = len;
  off_ = 0;
}

std::size_t SnapshotCursor::step(std::uint8_t* shadow_base, std::size_t max_bytes) {
  if (off_ >= len_) return 0;
  const std::size_t n = std::min(max_bytes, len_ - off_);
  std::memcpy(shadow_base + off_, base_ + off_, n);
  off_ += n;
  return n;
}

std::uint8_t* Layout::carve(std::size_t len, std::size_t align) {
  std::size_t off = (off_ + align - 1) & ~(align - 1);
  VREP_CHECK(off + len <= len_);
  off_ = off + len;
  return base_ + off;
}

}  // namespace vrep::rio
