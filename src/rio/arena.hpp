// Rio-style recoverable memory arenas.
//
// Rio (Chen et al., ASPLOS'96) makes ordinary main memory survive operating
// system crashes and power failures; Vista builds transactions directly on
// top of it, with no disk I/O on the critical path. We reproduce the
// *guarantee* rather than the kernel mechanism: an Arena is a contiguous
// region whose contents survive a simulated crash.
//
//  * In-memory arenas are used by tests and benchmarks. A "crash" is
//    simulated by abandoning all volatile execution state (the engine object)
//    while the arena bytes remain, then running recovery against them —
//    exactly the state a Rio machine reboots with.
//  * File-backed arenas (mmap, MAP_SHARED) are used by the two-process
//    failover example: the contents survive a real process kill.
//
// Layout within an arena is computed deterministically by the engine from
// its configuration, so recovery code finds every structure again without
// any volatile state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace vrep::rio {

class Arena {
 public:
  // Anonymous arena (zero-initialised).
  static Arena create(std::size_t len);
  // File-backed arena; creates or opens `path` and maps it shared. Existing
  // contents are preserved (that is the point).
  static Arena map_file(const std::string& path, std::size_t len);

  Arena() = default;
  Arena(Arena&&) noexcept;
  Arena& operator=(Arena&&) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  // Flush a file-backed arena to stable storage (no-op for anonymous).
  void sync();

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // true => munmap, false => delete[]
};

// Incremental chunked iteration over a memory region — the building block
// for fuzzy (write-while-serving) snapshots of an arena: each step() copies
// one bounded chunk into the same offset of a shadow region, so a caller can
// spread a full-image copy across many short slices of work (e.g. one per
// commit) while the source keeps being written. Writes that land *behind*
// the cursor are the caller's to patch (see RedoPipeline::step_checkpoint);
// writes ahead of it are picked up when the cursor passes them.
class SnapshotCursor {
 public:
  SnapshotCursor() = default;
  SnapshotCursor(const std::uint8_t* base, std::size_t len) : base_(base), len_(len) {}

  // Restart the iteration over a (possibly different) source region.
  void reset(const std::uint8_t* base, std::size_t len);

  // Copy up to `max_bytes` from the source at the cursor into the same
  // offset of `shadow_base` (a region of at least the source's length) and
  // advance. Returns the bytes copied (0 when done).
  std::size_t step(std::uint8_t* shadow_base, std::size_t max_bytes);

  bool done() const { return off_ >= len_; }
  std::size_t offset() const { return off_; }
  std::size_t length() const { return len_; }

 private:
  const std::uint8_t* base_ = nullptr;
  std::size_t len_ = 0;
  std::size_t off_ = 0;
};

// Deterministic sequential carving of an arena into sub-regions.
class Layout {
 public:
  explicit Layout(Arena& arena) : base_(arena.data()), len_(arena.size()) {}
  Layout(std::uint8_t* base, std::size_t len) : base_(base), len_(len) {}

  // Carve `len` bytes aligned to `align` (power of two).
  std::uint8_t* carve(std::size_t len, std::size_t align = 64);

  template <typename T>
  T* carve_as(std::size_t count = 1) {
    return reinterpret_cast<T*>(carve(sizeof(T) * count, alignof(T) < 8 ? 8 : alignof(T)));
  }

  std::size_t used() const { return off_; }
  std::size_t remaining() const { return len_ - off_; }

 private:
  std::uint8_t* base_;
  std::size_t len_;
  std::size_t off_ = 0;
};

}  // namespace vrep::rio
