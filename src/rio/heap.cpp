#include "rio/heap.hpp"

#include <bit>

#include "sim/traffic.hpp"
#include "util/check.hpp"

namespace vrep::rio {

using sim::TrafficClass;

PersistentHeap::PersistentHeap(sim::MemBus* bus, std::uint8_t* base, std::size_t len, bool format)
    : bus_(bus), base_(base), len_(len) {
  VREP_CHECK(len > sizeof(HeapRoot) + 64);
  root_ = reinterpret_cast<HeapRoot*>(base_);
  if (format) {
    HeapRoot fresh{};
    fresh.magic = kMagic;
    fresh.watermark = (sizeof(HeapRoot) + 63) & ~std::uint64_t{63};
    bus_->write(root_, &fresh, sizeof fresh, TrafficClass::kMeta);
  } else {
    VREP_CHECK(root_->magic == kMagic);
  }
}

std::size_t PersistentHeap::bin_of(std::size_t n) {
  const std::size_t total = n + sizeof(Header);
  std::size_t log2 = static_cast<std::size_t>(
      std::bit_width(std::max(total, std::size_t{1} << kMinClassLog2) - 1));
  VREP_CHECK(log2 - kMinClassLog2 < kNumBins);
  return log2 - kMinClassLog2;
}

std::uint64_t PersistentHeap::alloc(std::size_t n) {
  bus_->charge(bus_->cost().malloc_ns);
  const std::size_t bin = bin_of(n);
  const std::uint64_t block_size = std::uint64_t{1} << (bin + kMinClassLog2);

  std::uint64_t block;
  bus_->read(&root_->bin_head[bin], 8);
  if (root_->bin_head[bin] != 0) {
    // Pop the LIFO free list: the freed block's first payload word holds the
    // offset of the next free block.
    block = root_->bin_head[bin];
    Header* h = header_at(block);
    VREP_DCHECK(h->status == kFree && h->bin == bin);
    const std::uint64_t next = *reinterpret_cast<std::uint64_t*>(base_ + block + sizeof(Header));
    bus_->read(base_ + block, sizeof(Header) + 8);
    bus_->write_pod(&root_->bin_head[bin], next, TrafficClass::kMeta);
    bus_->write_pod(&h->status, kUsed, TrafficClass::kMeta);
  } else {
    // Grow: carve a fresh block at the watermark.
    block = root_->watermark;
    if (block + block_size > len_) return 0;  // exhausted
    bus_->write_pod(&root_->watermark, block + block_size, TrafficClass::kMeta);
    Header h{block_size, static_cast<std::uint32_t>(bin), kUsed};
    bus_->write(header_at(block), &h, sizeof h, TrafficClass::kMeta);
  }
  bus_->write_pod(&root_->in_use, root_->in_use + block_size, TrafficClass::kMeta);
  return block + sizeof(Header);
}

void PersistentHeap::free(std::uint64_t payload_off) {
  bus_->charge(bus_->cost().free_ns);
  const std::uint64_t block = payload_off - sizeof(Header);
  Header* h = header_at(block);
  VREP_CHECK(h->status == kUsed);
  const std::size_t bin = h->bin;
  bus_->write_pod(&h->status, kFree, TrafficClass::kMeta);
  // Push onto the LIFO free list.
  bus_->write_pod(reinterpret_cast<std::uint64_t*>(base_ + payload_off), root_->bin_head[bin],
                  TrafficClass::kMeta);
  bus_->write_pod(&root_->bin_head[bin], block, TrafficClass::kMeta);
  bus_->write_pod(&root_->in_use, root_->in_use - h->size, TrafficClass::kMeta);
}

void PersistentHeap::reset() {
  HeapRoot fresh{};
  fresh.magic = kMagic;
  fresh.watermark = (sizeof(HeapRoot) + 63) & ~std::uint64_t{63};
  bus_->write(root_, &fresh, sizeof fresh, TrafficClass::kMeta);
}

bool PersistentHeap::validate() const {
  if (root_->magic != kMagic) return false;
  std::uint64_t off = (sizeof(HeapRoot) + 63) & ~std::uint64_t{63};
  std::uint64_t in_use = 0;
  while (off < root_->watermark) {
    const Header* h = header_at(off);
    if (h->status != kUsed && h->status != kFree) return false;
    if (h->bin >= kNumBins) return false;
    if (h->size != std::uint64_t{1} << (h->bin + kMinClassLog2)) return false;
    if (h->status == kUsed) in_use += h->size;
    off += h->size;
  }
  return off == root_->watermark && in_use == root_->in_use;
}

std::uint64_t PersistentHeap::bytes_in_use() const { return root_->in_use; }
std::uint64_t PersistentHeap::high_watermark() const { return root_->watermark; }

}  // namespace vrep::rio
