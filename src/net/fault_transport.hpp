// Fault-injecting decorator over any Transport (TCP or in-process loopback).
//
// Wraps the sender side of a connection and perturbs outgoing frames on a
// deterministic seeded schedule: drop, delay, duplicate, bit-flip, truncate
// (torn frame + forced disconnect) and spontaneous disconnects. The fault
// *choice* sequence depends only on the seed and the frame count, so a
// chaos run is reproducible; wall-clock delays merely shift timing.
//
// Faults map onto the recovery machinery they are meant to exercise:
//   drop       -> backup sees a sequence gap, resyncs in-band (kRejoinRequest)
//   duplicate  -> backup ignores already-applied sequences
//   bit-flip   -> payload CRC skip + in-band resync, or header CRC + reconnect
//   truncate   -> torn frame: receiver reports kClosed, never applies a
//                 partial batch; sender reconnects with backoff and rejoins
//   disconnect -> reconnect with backoff + rejoin
#pragma once

#include "net/transport.hpp"
#include "util/rng.hpp"

namespace vrep::net {

struct FaultPlan {
  std::uint64_t seed = 1;
  // Per-frame probabilities; at most one fault fires per frame.
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  double bitflip = 0.0;
  double truncate = 0.0;
  double disconnect = 0.0;
  int max_delay_us = 2000;  // delay fault sleeps uniformly in [0, max_delay_us]
  // Let this many frames through untouched first (handshake grace period).
  int start_after_frames = 0;
};

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport& inner, const FaultPlan& plan)
      : inner_(&inner), plan_(plan), rng_(plan.seed) {}

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t bitflips = 0;
    std::uint64_t truncations = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t faults() const {
      return drops + delays + duplicates + bitflips + truncations + disconnects;
    }
  };

  bool send(MsgType type, std::uint64_t epoch, const void* payload,
            std::size_t len) override;
  std::optional<Message> recv(int timeout_ms) override { return inner_->recv(timeout_ms); }
  TransportError last_error() const override { return inner_->last_error(); }
  bool connected() const override { return inner_->connected(); }
  void close_peer() override { inner_->close_peer(); }
  bool send_bytes(const void* bytes, std::size_t len) override {
    return inner_->send_bytes(bytes, len);
  }

  const Stats& stats() const { return stats_; }
  Transport& inner() { return *inner_; }

 private:
  enum class Fault { kNone, kDrop, kDelay, kDuplicate, kBitflip, kTruncate, kDisconnect };
  Fault roll();

  Transport* inner_;
  FaultPlan plan_;
  Rng rng_;
  Stats stats_;
};

}  // namespace vrep::net
