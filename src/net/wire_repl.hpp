// Active replication over the TCP transport: the same redo-shipping design
// as repl/active.hpp, but between two real processes on wall-clock time.
// Used by the bank_failover example, the chaos soak and the integration
// tests.
//
// All protocol logic — sequencing, batching, the bounded redo history,
// rejoin/delta-vs-full-image decisions, epoch fencing, 1-safe/2-safe commit
// modes — lives in repl::RedoPipeline / repl::RedoApplier (repl/pipeline.hpp).
// This file is pure composition: it binds the engine to a local Version 3
// store (primary) or a replica arena (backup) and to a net::Transport via
// net::TransportLink.
//
// Frame payloads (all frames CRC-protected and epoch-stamped by the
// transport; kinds in repl/link.hpp):
//   kHello         u64 db_size | u64 committed_seq     (primary -> backup)
//   kDbChunk       u64 offset  | bytes                 full image transfer
//   kRedoBatch     u64 seq | { u32 db_off, u32 len, bytes }*  one transaction
//   kRedoGroup     u32 count | { u32 len, kRedoBatch payload }*  group commit
//   kHeartbeat     u64 committed_seq
//   kConsumerAck   u64 applied_seq                     (backup -> primary)
//   kRejoinRequest u64 last_applied_seq | u64 node_id | u64 state_epoch
//                                                      (backup -> primary)
//   kRejoinDelta   u64 from_seq | u64 batch_count      (primary -> backup)
//   kEpochFence    u64 current_epoch                   (either -> stale peer)
//   kCkptBegin     u64 watermark_seq | u64 db_size | u32 image_crc | u32 chunks
//                                                      (primary -> backup)
//   kCkptChunk     u64 offset | bytes                  checkpoint page run
//   kCkptEnd       u64 watermark_seq | u32 image_crc   install commit point
//
// 1-safety: commit returns after the local commit; the batch send is not
// awaited. A primary crash can lose the trailing transactions, but a batch
// frame is applied atomically (framing + CRC), so the backup never holds a
// torn transaction. set_two_safe(true) upgrades commits to wait for the
// backup's covering acknowledgment.
//
// Fault tolerance on top of the 1-safe stream: epoch fencing (split-brain
// defense), in-band resync of dropped/corrupt batches from the redo
// history, and reconnect + rejoin (delta or full image) — see
// repl/pipeline.hpp for the rules, README "Failover, fencing, and chaos
// testing" for the story.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"
#include "core/api.hpp"
#include "core/v3_inline_log.hpp"
#include "net/transport.hpp"
#include "net/transport_link.hpp"
#include "repl/pipeline.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::net {

class WirePrimary final : public core::TransactionStore,
                          private sim::MemBus::CaptureSink,
                          private repl::RedoPipeline::Source {
 public:
  static constexpr std::size_t kDefaultRedoHistoryBytes =
      repl::RedoPipeline::kDefaultRedoHistoryBytes;
  using Lineage = repl::RedoPipeline::Lineage;
  using Stats = repl::RedoPipeline::Stats;

  // The local store runs Version 3 on a pass-through bus over `arena`.
  // `format=false` attaches to existing state (e.g. an arena a promoted
  // backup built via WireBackup::promote) — call recover() afterwards.
  // With a `membership`, outgoing frames carry its epoch and stale inbound
  // traffic is fenced; without one, everything runs in a fixed epoch 1.
  WirePrimary(rio::Arena& arena, const core::StoreConfig& config, Transport* transport,
              bool format, cluster::Membership* membership = nullptr,
              Lineage lineage = Lineage{0, 0},
              std::size_t redo_history_bytes = kDefaultRedoHistoryBytes);

  // Ship the current database image + sequence so (fresh) backups can join.
  bool sync_backup() { return pipeline_.sync_backup(); }

  // Attach another backup over its own transport; returns the pipeline peer
  // index (the constructor's transport is peer 0).
  std::size_t add_backup(Transport* transport);

  // Await a backup's kRejoinRequest after a (re)connect and serve it:
  // a kRejoinDelta replay from the redo history when the gap is servable,
  // a full image sync otherwise. Returns false on timeout/disconnect or if
  // this primary has been fenced.
  bool handle_rejoin(int timeout_ms) { return pipeline_.handle_rejoin(timeout_ms); }
  bool handle_rejoin(std::size_t peer, int timeout_ms) {
    return pipeline_.handle_rejoin(peer, timeout_ms);
  }

  // Point a peer at a new transport after a reconnect (same or different
  // object).
  void attach_transport(Transport* transport) { attach_transport(0, transport); }
  void attach_transport(std::size_t peer, Transport* transport);

  // 2-safe commits (off by default, matching the paper's 1-safe design).
  void set_two_safe(bool enabled) { pipeline_.set_two_safe(enabled); }
  bool two_safe() const { return pipeline_.two_safe(); }
  // Acks required for a 2-safe commit to count as quorum-durable (default 1).
  void set_quorum(unsigned k) { pipeline_.set_quorum(k); }
  unsigned quorum() const { return pipeline_.quorum(); }
  repl::RedoPipeline::CommitOutcome last_commit_outcome() const {
    return pipeline_.last_commit_outcome();
  }

  // Incremental fuzzy checkpointing (strictly opt-in; see repl/pipeline.hpp):
  // truncates redo history at each watermark and lets laggards past the
  // history window rejoin via checkpoint+delta instead of a full image.
  void enable_checkpoints(std::uint64_t interval_txns,
                          std::size_t copy_bytes_per_commit = 256 * 1024) {
    pipeline_.enable_checkpoints(interval_txns, copy_bytes_per_commit);
  }
  bool checkpoints_enabled() const { return pipeline_.checkpoints_enabled(); }

  // Group commit with a bounded in-flight window (see repl/pipeline.hpp).
  // Defaults (W=1, G=1) reproduce the classic per-commit behavior exactly.
  void set_commit_window(unsigned w) { pipeline_.set_commit_window(w); }
  unsigned commit_window() const { return pipeline_.commit_window(); }
  void set_group_size(unsigned g) { pipeline_.set_group_size(g); }
  unsigned group_size() const { return pipeline_.group_size(); }
  // Flush any buffered group and resolve every outstanding ticket.
  repl::RedoPipeline::CommitOutcome sync() { return pipeline_.sync(); }
  repl::RedoPipeline::CommitOutcome wait(repl::RedoPipeline::CommitTicket t) {
    return pipeline_.wait(t);
  }

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override { return local_->validate(); }
  void flush_initial_state() override { local_->flush_initial_state(); }
  core::VersionKind kind() const override { return core::VersionKind::kV3InlineLog; }
  std::uint8_t* db() override { return local_->db(); }
  const std::uint8_t* db() const override { return local_->db(); }
  std::size_t db_size() const override { return local_->db_size(); }
  std::uint64_t committed_seq() const override { return local_->committed_seq(); }
  std::vector<core::StoreRegion> regions() const override { return local_->regions(); }
  sim::MemBus& bus() override { return bus_; }

  const Stats& stats() const { return pipeline_.stats(); }

  bool send_heartbeat() { return pipeline_.send_heartbeat(); }
  bool connection_alive() const { return pipeline_.connection_alive(); }
  // A newer epoch fenced us: stop acting as primary (demote + rejoin).
  bool fenced() const { return pipeline_.fenced(); }
  // The epoch that fenced us (valid when fenced() is true); feed it to
  // cluster::Membership::demote_to_backup.
  std::uint64_t fenced_by_epoch() const { return pipeline_.fenced_by_epoch(); }
  std::uint64_t epoch() const { return pipeline_.epoch(); }
  // Highest applied sequence any backup has acknowledged (drained on
  // commit); per-peer watermarks via peer_acked_seq().
  std::uint64_t backup_acked_seq() const { return pipeline_.backup_acked_seq(); }
  std::uint64_t quorum_acked_seq() const { return pipeline_.quorum_acked_seq(); }
  std::size_t peer_count() const { return pipeline_.peer_count(); }
  bool peer_alive(std::size_t peer) const { return pipeline_.peer_alive(peer); }
  std::uint64_t peer_acked_seq(std::size_t peer) const { return pipeline_.peer_acked_seq(peer); }

  // Protocol engine (shared with the simulated backend) — direct access for
  // tests and drivers.
  repl::RedoPipeline& pipeline() { return pipeline_; }

 private:
  void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;

  sim::MemBus bus_;  // pass-through (wall-clock deployment)
  std::unique_ptr<core::InlineLogStore> local_;
  TransportLink link_;
  std::vector<std::unique_ptr<TransportLink>> extra_links_;
  repl::RedoPipeline pipeline_;
};

// Backup-side replica state: a database image plus the applied sequence.
// The protocol state machine is repl::RedoApplier; this class supplies the
// arena as the apply target and runs the receive loop.
class WireBackup : private repl::RedoApplier::Target {
 public:
  using Stats = repl::RedoApplier::Stats;

  // `arena` must hold at least the hello'd db_size bytes (file-backed in the
  // failover example so the image survives the process). With a
  // `membership`, stale-epoch frames are fenced and the epoch follows the
  // primary's hello/delta frames; `node_id` identifies this node in rejoin
  // requests so the primary can adopt it into the view.
  explicit WireBackup(rio::Arena& arena, cluster::Membership* membership = nullptr,
                      std::uint64_t node_id = 1)
      : arena_(&arena), applier_(*this, membership, node_id) {}

  enum class ServeResult {
    kPrimaryFailed,   // sustained silence: declare the primary dead, take over
    kConnectionLost,  // socket closed or framing lost: reconnect + rejoin
    kCorrupt,         // unrecoverable protocol violation (should not happen)
  };

  struct ServeOptions {
    // recv granularity; without a detector, also the silence budget after
    // which the primary is declared failed.
    int idle_timeout_ms = 500;
    // Optional debounce: silence only fails the primary once the detector's
    // missed-interval threshold trips (fed from every received frame).
    cluster::HeartbeatDetector* detector = nullptr;
  };

  // Receive and apply until the primary fails, the connection drops, or the
  // stream is irrecoverably violated.
  ServeResult serve(Transport& transport, const ServeOptions& options);
  // Legacy spelling: idle timeout only, no detector.
  ServeResult serve(Transport& transport, int timeout_ms) {
    ServeOptions options;
    options.idle_timeout_ms = timeout_ms;
    return serve(transport, options);
  }

  // Announce our applied sequence after a (re)connect; the primary answers
  // with a delta replay or a full image sync. A fresh backup (nothing
  // applied, no image) asks from sequence 0, which always yields the image.
  bool request_rejoin(Transport& transport) {
    TransportLink link(&transport);
    return applier_.request_rejoin(link);
  }

  // Seed the replica from an existing database image (e.g. a demoted
  // primary rejoining with its own last state), so rejoin can catch up
  // incrementally instead of re-shipping the whole database. `state_epoch`
  // is the epoch under which that state was produced — the primary uses it
  // to decide whether a delta is safe.
  void seed(const std::uint8_t* db, std::size_t size, std::uint64_t applied_seq,
            std::uint64_t state_epoch) {
    applier_.seed(db, size, applied_seq, state_epoch);
  }

  // Protocol engine (shared with the simulated backend) — direct access for
  // tests, drivers and in-doubt resolution at takeover.
  repl::RedoApplier& applier() { return applier_; }

  // ---- thread-safe snapshot reads ----------------------------------------
  // serve() applies each frame under the same lock these take, so a read
  // observes whole batches only: a prefix-consistent snapshot at the
  // returned at_seq (see RedoApplier::read_at_watermark for the
  // read-your-writes min_seq contract). The unlocked accessors below remain
  // quiesced-only (serve() stopped or same thread).
  repl::RedoApplier::ReadResult read(std::uint64_t off, std::uint32_t len,
                                     std::uint64_t min_seq, std::uint8_t* out) const {
    std::lock_guard<std::mutex> lock(apply_mu_);
    return applier_.read_at_watermark(off, len, min_seq, out);
  }
  // The applied watermark as the reading side sees it (lock-synchronised
  // with serve()'s applies).
  std::uint64_t watermark() const {
    std::lock_guard<std::mutex> lock(apply_mu_);
    return applier_.applied_seq();
  }

  std::uint64_t applied_seq() const { return applier_.applied_seq(); }
  // Epoch under which the last applied state (image or batch) was produced.
  std::uint64_t state_epoch() const { return applier_.state_epoch(); }
  std::size_t db_size() const { return applier_.db_size(); }
  const std::uint8_t* db() const { return arena_->data(); }
  const Stats& stats() const { return applier_.stats(); }

  // Promote to a standalone primary: build a fresh Version 3 store in
  // `new_arena` seeded with the replica's database image. The store
  // continues the primary's sequence numbering (so a later rejoin of the
  // old primary can be served incrementally).
  std::unique_ptr<core::TransactionStore> promote(sim::MemBus& bus, rio::Arena& new_arena,
                                                  const core::StoreConfig& config);

 private:
  // RedoApplier::Target: replica bytes land straight in the arena.
  void write(std::uint64_t off, const void* src, std::size_t len) override;
  std::size_t capacity() const override { return arena_->size(); }
  const std::uint8_t* data() const override { return arena_->data(); }

  rio::Arena* arena_;
  repl::RedoApplier applier_;
  // Serializes serve()'s per-frame applies against read()/watermark().
  mutable std::mutex apply_mu_;
};

}  // namespace vrep::net
