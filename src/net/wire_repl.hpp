// Active replication over the TCP transport: the same redo-shipping design
// as repl/active.hpp, but between two real processes on wall-clock time.
// Used by the bank_failover example and the integration tests.
//
// Protocol (all frames CRC-protected by the transport):
//   kHello      u64 db_size | u64 committed_seq       (primary -> backup)
//   kDbChunk    u64 offset  | bytes                    initial image
//   kRedoBatch  u64 seq | { u32 db_off, u32 len, bytes }*   one transaction
//   kHeartbeat  u64 committed_seq
//   kConsumerAck u64 applied_seq                       (backup -> primary)
//
// 1-safety: commit returns after the local commit; the batch send is not
// awaited. A primary crash can lose the trailing transactions, but a batch
// frame is applied atomically (framing + CRC), so the backup never holds a
// torn transaction.
#pragma once

#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/v3_inline_log.hpp"
#include "net/transport.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::net {

class WirePrimary final : public core::TransactionStore, private sim::MemBus::CaptureSink {
 public:
  // The local store runs Version 3 on a pass-through bus over `arena`.
  WirePrimary(rio::Arena& arena, const core::StoreConfig& config, TcpTransport* transport,
              bool format);

  // Ship the current database image + sequence so a (fresh) backup can join.
  bool sync_backup();

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override { return local_->validate(); }
  core::VersionKind kind() const override { return core::VersionKind::kV3InlineLog; }
  std::uint8_t* db() override { return local_->db(); }
  const std::uint8_t* db() const override { return local_->db(); }
  std::size_t db_size() const override { return local_->db_size(); }
  std::uint64_t committed_seq() const override { return local_->committed_seq(); }
  std::vector<core::StoreRegion> regions() const override { return local_->regions(); }
  sim::MemBus& bus() override { return bus_; }

  bool send_heartbeat();
  bool connection_alive() const { return alive_; }
  // Highest applied sequence the backup has acknowledged (drained on commit).
  std::uint64_t backup_acked_seq() const { return acked_seq_; }

 private:
  void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;

  sim::MemBus bus_;  // pass-through (wall-clock deployment)
  std::unique_ptr<core::InlineLogStore> local_;
  void drain_acks();

  TcpTransport* transport_;
  std::vector<std::uint8_t> batch_;  // staged redo payload for this txn
  std::uint64_t acked_seq_ = 0;
  bool alive_ = true;
};

// Backup-side replica state: a database image plus the applied sequence.
class WireBackup {
 public:
  // `arena` must hold at least the hello'd db_size bytes (file-backed in the
  // failover example so the image survives the process).
  explicit WireBackup(rio::Arena& arena) : arena_(&arena) {}

  enum class ServeResult {
    kPrimaryFailed,   // connection lost or heartbeats stopped: take over!
    kCorrupt,         // stream corruption (should not happen)
  };

  // Receive and apply until the primary goes silent for `timeout_ms`.
  ServeResult serve(TcpTransport& transport, int timeout_ms);

  std::uint64_t applied_seq() const { return applied_seq_; }
  std::size_t db_size() const { return db_size_; }
  const std::uint8_t* db() const { return arena_->data(); }

  // Promote to a standalone primary: build a fresh Version 3 store in
  // `new_arena` seeded with the replica's database image.
  std::unique_ptr<core::TransactionStore> promote(sim::MemBus& bus, rio::Arena& new_arena,
                                                  const core::StoreConfig& config);

 private:
  bool apply_batch(const Message& msg);

  rio::Arena* arena_;
  std::size_t db_size_ = 0;
  std::uint64_t applied_seq_ = 0;
};

}  // namespace vrep::net
