// Active replication over the TCP transport: the same redo-shipping design
// as repl/active.hpp, but between two real processes on wall-clock time.
// Used by the bank_failover example, the chaos soak and the integration
// tests.
//
// Protocol (all frames CRC-protected and epoch-stamped by the transport):
//   kHello         u64 db_size | u64 committed_seq     (primary -> backup)
//   kDbChunk       u64 offset  | bytes                 full image transfer
//   kRedoBatch     u64 seq | { u32 db_off, u32 len, bytes }*  one transaction
//   kHeartbeat     u64 committed_seq
//   kConsumerAck   u64 applied_seq                     (backup -> primary)
//   kRejoinRequest u64 last_applied_seq | u64 node_id | u64 state_epoch
//                                                      (backup -> primary)
//   kRejoinDelta   u64 from_seq | u64 batch_count      (primary -> backup)
//   kEpochFence    u64 current_epoch                   (either -> stale peer)
//
// 1-safety: commit returns after the local commit; the batch send is not
// awaited. A primary crash can lose the trailing transactions, but a batch
// frame is applied atomically (framing + CRC), so the backup never holds a
// torn transaction.
//
// Fault tolerance on top of the 1-safe stream:
//   * Epoch fencing. When constructed with a cluster::Membership, every
//     frame carries the sender's epoch; the receiver drops stale-epoch
//     frames and answers kEpochFence, and a fenced primary stops shipping
//     (fenced()) so the caller can demote it. This closes the split-brain
//     window where a paused-then-resumed primary keeps writing after the
//     backup promoted.
//   * In-band resync. A dropped or payload-corrupt batch shows up as a
//     sequence gap; the backup requests a rejoin on the same connection and
//     the primary replays the missing batches from its bounded redo
//     history (kRejoinDelta) without restarting the image transfer.
//   * Reconnect + rejoin. After a disconnect (torn frame, socket loss) the
//     primary redials with util/backoff and the backup re-enters at its
//     last applied sequence; only when the gap is unservable from history
//     does the primary fall back to a full kHello + kDbChunk image.
//
// Rejoin safety across failovers: a sequence number alone cannot tell a
// shared prefix from a divergent one (a fenced primary may have committed
// transactions past the takeover point that the promoted node never saw).
// Rejoin requests therefore carry the *state epoch* — the epoch under which
// the requester's last applied state was produced. A delta replay is served
// only when the state epoch matches the primary's current epoch (same
// lineage), or matches the epoch fenced at the last takeover AND the
// requester's sequence is at or below the takeover floor (the shared prefix
// boundary). Anything else gets the full image.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/failure_detector.hpp"
#include "cluster/membership.hpp"
#include "core/api.hpp"
#include "core/v3_inline_log.hpp"
#include "net/transport.hpp"
#include "rio/arena.hpp"
#include "sim/mem_bus.hpp"

namespace vrep::net {

class WirePrimary final : public core::TransactionStore, private sim::MemBus::CaptureSink {
 public:
  // Bytes of committed redo batches retained for rejoin catch-up. Gaps
  // larger than what fits fall back to a full image sync.
  static constexpr std::size_t kDefaultRedoHistoryBytes = 4u << 20;

  // Where this primary's lineage came from. A node promoted from backup
  // passes the epoch its replica state was produced under and the applied
  // sequence at takeover (the shared-prefix boundary with any fenced
  // straggler); a from-scratch primary leaves the default (no pre-takeover
  // lineage, so only same-epoch rejoiners get deltas).
  struct Lineage {
    std::uint64_t prev_epoch = 0;
    std::uint64_t takeover_floor = 0;
  };

  // The local store runs Version 3 on a pass-through bus over `arena`.
  // `format=false` attaches to existing state (e.g. an arena a promoted
  // backup built via WireBackup::promote) — call recover() afterwards.
  // With a `membership`, outgoing frames carry its epoch and stale inbound
  // traffic is fenced; without one, everything runs in a fixed epoch 1.
  WirePrimary(rio::Arena& arena, const core::StoreConfig& config, Transport* transport,
              bool format, cluster::Membership* membership = nullptr,
              Lineage lineage = Lineage{0, 0},
              std::size_t redo_history_bytes = kDefaultRedoHistoryBytes);

  // Ship the current database image + sequence so a (fresh) backup can join.
  bool sync_backup();

  // Await the backup's kRejoinRequest after a (re)connect and serve it:
  // a kRejoinDelta replay from the redo history when the gap is servable,
  // a full image sync otherwise. Returns false on timeout/disconnect or if
  // this primary has been fenced.
  bool handle_rejoin(int timeout_ms);

  // Point at a new transport after a reconnect (same or different object).
  void attach_transport(Transport* transport) {
    transport_ = transport;
    alive_ = transport != nullptr && transport->connected();
  }

  void begin_transaction() override;
  void set_range(void* base, std::size_t len) override;
  void commit_transaction() override;
  void abort_transaction() override;
  int recover() override;
  bool validate() const override { return local_->validate(); }
  void flush_initial_state() override { local_->flush_initial_state(); }
  core::VersionKind kind() const override { return core::VersionKind::kV3InlineLog; }
  std::uint8_t* db() override { return local_->db(); }
  const std::uint8_t* db() const override { return local_->db(); }
  std::size_t db_size() const override { return local_->db_size(); }
  std::uint64_t committed_seq() const override { return local_->committed_seq(); }
  std::vector<core::StoreRegion> regions() const override { return local_->regions(); }
  sim::MemBus& bus() override { return bus_; }

  struct Stats {
    std::uint64_t rejoins_served = 0;
    std::uint64_t deltas_served = 0;      // incremental catch-up from history
    std::uint64_t full_syncs_served = 0;  // gap unservable: whole image shipped
  };
  const Stats& stats() const { return stats_; }

  bool send_heartbeat();
  bool connection_alive() const { return alive_; }
  // A newer epoch fenced us: stop acting as primary (demote + rejoin).
  bool fenced() const { return fenced_; }
  // The epoch that fenced us (valid when fenced() is true); feed it to
  // cluster::Membership::demote_to_backup.
  std::uint64_t fenced_by_epoch() const { return fenced_by_epoch_; }
  std::uint64_t epoch() const { return membership_ != nullptr ? membership_->view().epoch : 1; }
  // Highest applied sequence the backup has acknowledged (drained on commit).
  std::uint64_t backup_acked_seq() const { return acked_seq_; }

 private:
  struct HistoryEntry {
    std::uint64_t seq;
    std::vector<std::uint8_t> batch;  // kRedoBatch payload (seq-prefixed)
  };

  void on_captured_store(std::uint64_t off, const void* src, std::size_t len) override;
  void drain_acks();
  void push_history(std::uint64_t seq);
  bool serve_rejoin(std::uint64_t backup_seq, std::uint64_t node_id,
                    std::uint64_t state_epoch);
  bool history_covers(std::uint64_t from_seq) const;
  bool shared_lineage(std::uint64_t backup_seq, std::uint64_t state_epoch) const;

  sim::MemBus bus_;  // pass-through (wall-clock deployment)
  std::unique_ptr<core::InlineLogStore> local_;

  Transport* transport_;
  cluster::Membership* membership_;
  Lineage lineage_;
  std::vector<std::uint8_t> batch_;  // staged redo payload for this txn
  std::deque<HistoryEntry> history_;
  std::size_t history_bytes_ = 0;
  std::size_t history_capacity_;
  std::uint64_t acked_seq_ = 0;
  std::uint64_t fenced_by_epoch_ = 0;
  Stats stats_;
  bool alive_ = true;
  bool fenced_ = false;
};

// Backup-side replica state: a database image plus the applied sequence.
class WireBackup {
 public:
  // `arena` must hold at least the hello'd db_size bytes (file-backed in the
  // failover example so the image survives the process). With a
  // `membership`, stale-epoch frames are fenced and the epoch follows the
  // primary's hello/delta frames; `node_id` identifies this node in rejoin
  // requests so the primary can adopt it into the view.
  explicit WireBackup(rio::Arena& arena, cluster::Membership* membership = nullptr,
                      std::uint64_t node_id = 1)
      : arena_(&arena), membership_(membership), node_id_(node_id) {}

  enum class ServeResult {
    kPrimaryFailed,    // sustained silence: declare the primary dead, take over
    kConnectionLost,   // socket closed or framing lost: reconnect + rejoin
    kCorrupt,          // unrecoverable protocol violation (should not happen)
  };

  struct ServeOptions {
    // recv granularity; without a detector, also the silence budget after
    // which the primary is declared failed.
    int idle_timeout_ms = 500;
    // Optional debounce: silence only fails the primary once the detector's
    // missed-interval threshold trips (fed from every received frame).
    cluster::HeartbeatDetector* detector = nullptr;
  };

  struct Stats {
    std::uint64_t batches_applied = 0;
    std::uint64_t duplicates_ignored = 0;  // seq <= applied (fault-injected dups, replays)
    std::uint64_t gaps_detected = 0;       // seq > applied+1 (dropped/corrupt batch)
    std::uint64_t corrupt_skipped = 0;     // payload-CRC frames skipped in-stream
    std::uint64_t stale_fenced = 0;        // stale-epoch frames rejected
    std::uint64_t resyncs = 0;             // completed kRejoinDelta / kHello resyncs
  };

  // Receive and apply until the primary fails, the connection drops, or the
  // stream is irrecoverably violated.
  ServeResult serve(Transport& transport, const ServeOptions& options);
  // Legacy spelling: idle timeout only, no detector.
  ServeResult serve(Transport& transport, int timeout_ms) {
    ServeOptions options;
    options.idle_timeout_ms = timeout_ms;
    return serve(transport, options);
  }

  // Announce our applied sequence after a (re)connect; the primary answers
  // with a delta replay or a full image sync. A fresh backup (nothing
  // applied, no image) asks from sequence 0, which always yields the image.
  bool request_rejoin(Transport& transport);

  // Seed the replica from an existing database image (e.g. a demoted
  // primary rejoining with its own last state), so rejoin can catch up
  // incrementally instead of re-shipping the whole database. `state_epoch`
  // is the epoch under which that state was produced — the primary uses it
  // to decide whether a delta is safe.
  void seed(const std::uint8_t* db, std::size_t size, std::uint64_t applied_seq,
            std::uint64_t state_epoch);

  std::uint64_t applied_seq() const { return applied_seq_; }
  // Epoch under which the last applied state (image or batch) was produced.
  std::uint64_t state_epoch() const { return state_epoch_; }
  std::size_t db_size() const { return db_size_; }
  const std::uint8_t* db() const { return arena_->data(); }
  const Stats& stats() const { return stats_; }

  // Promote to a standalone primary: build a fresh Version 3 store in
  // `new_arena` seeded with the replica's database image. The store
  // continues the primary's sequence numbering (so a later rejoin of the
  // old primary can be served incrementally).
  std::unique_ptr<core::TransactionStore> promote(sim::MemBus& bus, rio::Arena& new_arena,
                                                  const core::StoreConfig& config);

 private:
  bool apply_batch(const Message& msg, std::uint64_t* out_seq);
  void maybe_request_resync(Transport& transport);
  // The image transfer ships chunks sequentially from offset 0; a replica
  // is only usable once a contiguous prefix covers the whole database.
  bool image_complete() const { return db_size_ > 0 && image_next_off_ >= db_size_; }
  std::uint64_t epoch() const {
    return membership_ != nullptr ? membership_->view().epoch : 1;
  }

  rio::Arena* arena_;
  cluster::Membership* membership_;
  std::uint64_t node_id_;
  std::size_t db_size_ = 0;
  std::size_t image_next_off_ = 0;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t state_epoch_ = 0;
  bool awaiting_resync_ = false;
  Stats stats_;
};

}  // namespace vrep::net
