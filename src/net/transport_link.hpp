// Adapts a net::Transport (framed TCP, fault-injecting decorator, or the
// in-process loopback) to the protocol engine's repl::ReplicationLink seam.
// repl::FrameKind values match net::MsgType and repl::LinkError values match
// net::TransportError by construction, so the adaptation is casts, not
// tables.
#pragma once

#include <utility>

#include "net/transport.hpp"
#include "repl/link.hpp"

namespace vrep::net {

static_assert(static_cast<int>(repl::FrameKind::kRedoBatch) == static_cast<int>(MsgType::kRedoBatch) &&
              static_cast<int>(repl::FrameKind::kEpochFence) == static_cast<int>(MsgType::kEpochFence) &&
              static_cast<int>(repl::FrameKind::kRedoGroup) == static_cast<int>(MsgType::kRedoGroup) &&
              static_cast<int>(repl::FrameKind::kCkptBegin) == static_cast<int>(MsgType::kCkptBegin) &&
              static_cast<int>(repl::FrameKind::kCkptChunk) == static_cast<int>(MsgType::kCkptChunk) &&
              static_cast<int>(repl::FrameKind::kCkptEnd) == static_cast<int>(MsgType::kCkptEnd) &&
              static_cast<int>(repl::FrameKind::kXPrepare) == static_cast<int>(MsgType::kXPrepare) &&
              static_cast<int>(repl::FrameKind::kXDecide) == static_cast<int>(MsgType::kXDecide));
static_assert(static_cast<int>(repl::LinkError::kTimeout) == static_cast<int>(TransportError::kTimeout) &&
              static_cast<int>(repl::LinkError::kCorrupt) == static_cast<int>(TransportError::kCorrupt));

class TransportLink final : public repl::ReplicationLink {
 public:
  explicit TransportLink(Transport* transport = nullptr) : transport_(transport) {}

  // Point at a new transport after a reconnect (same or different object).
  void attach(Transport* transport) { transport_ = transport; }
  Transport* transport() const { return transport_; }

  bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
            std::size_t len) override {
    if (transport_ == nullptr) return false;
    return transport_->send(static_cast<MsgType>(kind), epoch, payload, len);
  }

  std::optional<repl::Frame> recv(int timeout_ms) override {
    if (transport_ == nullptr) return std::nullopt;
    auto msg = transport_->recv(timeout_ms);
    if (!msg.has_value()) return std::nullopt;
    return repl::Frame{static_cast<repl::FrameKind>(msg->type), msg->epoch,
                       std::move(msg->payload)};
  }

  repl::LinkError last_error() const override {
    if (transport_ == nullptr) return repl::LinkError::kClosed;
    return static_cast<repl::LinkError>(transport_->last_error());
  }

  bool connected() const override { return transport_ != nullptr && transport_->connected(); }

  // Transport sends are synchronous writes; there is nothing buffered to
  // push, so the default no-op flush() stands.

 private:
  Transport* transport_;
};

}  // namespace vrep::net
