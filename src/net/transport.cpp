#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "net/frame.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

TcpTransport::~TcpTransport() {
  close_peer();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpTransport::close_peer() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpTransport::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) return false;
  if (::listen(listen_fd_, 1) != 0) return false;
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return false;
  port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpTransport::accept_peer(int timeout_ms) {
  close_peer();  // drop any previous peer before accepting a replacement
  // One absolute deadline for the whole accept (the same pattern read_fully
  // uses): an EINTR — poll() or accept() interrupted by a signal — retries
  // against the remaining budget instead of being misreported as a timeout.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (timeout_ms >= 0) {
    deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  for (;;) {
    int wait_ms = -1;
    if (deadline.has_value()) {
      const auto left = std::chrono::ceil<std::chrono::milliseconds>(
                            *deadline - std::chrono::steady_clock::now())
                            .count();
      wait_ms = static_cast<int>(
          std::clamp<long long>(left, 0, std::numeric_limits<int>::max()));
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      error_ = Error::kTimeout;  // only a genuinely silent socket is a timeout
      return false;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;  // real poll failure, distinct from kTimeout
      return false;
    }
    fd_ = ::accept(listen_fd_, nullptr, nullptr);
    if (fd_ >= 0) break;
    // The pending connection may have been aborted between poll and accept,
    // or the accept itself interrupted; both leave the listener healthy.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) continue;
    error_ = Error::kClosed;
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  error_ = Error::kNone;
  metrics::counter("net.transport.accepts").add(1);
  return true;
}

bool TcpTransport::connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  close_peer();
  // Budget by wall clock, not attempt count: the old timeout_ms / 50 + 1
  // attempt loop assumed every failure was an instant ECONNREFUSED, so one
  // slow SYN (a blackholed peer sitting in the kernel's retry backoff) could
  // overshoot the caller's budget by orders of magnitude. Each attempt is a
  // NON-BLOCKING connect polled against the remaining budget — a blocking
  // ::connect() would sit in the kernel's SYN retransmit schedule for
  // minutes regardless of any deadline around the loop.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(std::max(timeout_ms, 0));
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    bool connected = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
    if (!connected && (errno == EINPROGRESS || errno == EINTR)) {
      // Handshake in flight: wait for writability within the budget, then
      // read the outcome from SO_ERROR.
      for (;;) {
        const auto left = std::chrono::ceil<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
        if (left <= 0) {
          close_peer();
          error_ = Error::kTimeout;
          return false;
        }
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(std::clamp<long long>(
                                              left, 0, std::numeric_limits<int>::max())));
        if (ready < 0) {
          if (errno == EINTR) continue;
          close_peer();
          error_ = Error::kClosed;
          return false;
        }
        if (ready == 0) {  // budget spent mid-handshake (blackholed peer)
          close_peer();
          error_ = Error::kTimeout;
          return false;
        }
        int so_error = 0;
        socklen_t optlen = sizeof so_error;
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &optlen);
        connected = so_error == 0;
        break;
      }
    }
    if (connected) {
      // Back to blocking mode: send()/recv() bound themselves with poll()
      // and treat EAGAIN from the socket as a broken peer.
      const int flags = ::fcntl(fd_, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      error_ = Error::kNone;
      metrics::counter("net.transport.connects").add(1);
      return true;
    }
    ::close(fd_);
    fd_ = -1;
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left <= std::chrono::milliseconds::zero()) break;
    // The server may not be listening yet; retry until the deadline, never
    // sleeping past it.
    const auto nap = std::min<std::chrono::microseconds>(
        std::chrono::duration_cast<std::chrono::microseconds>(left),
        std::chrono::microseconds(50'000));
    ::usleep(static_cast<unsigned>(nap.count()));
  }
  error_ = Error::kTimeout;
  return false;
}

std::vector<std::uint8_t> TcpTransport::encode_frame(MsgType type, std::uint64_t epoch,
                                                     const void* payload, std::size_t len) {
  return vrep::net::encode_frame(type, epoch, payload, len);
}

bool TcpTransport::send_bytes(const void* bytes, std::size_t len) {
  if (fd_ < 0) return false;
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t wrote = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    if (wrote == 0) {
      // Peer closed. errno is stale here and must not be consulted — a
      // leftover EINTR from an earlier call would spin this loop forever.
      error_ = Error::kClosed;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool TcpTransport::send(MsgType type, std::uint64_t epoch, const void* payload,
                        std::size_t len) {
  // Mirror the receive-side frame bound: hdr.len is u32, so a larger payload
  // would silently truncate and corrupt framing at the receiver. Checked
  // before any socket state so callers hit it deterministically.
  VREP_CHECK(len <= kMaxFramePayload);
  if (fd_ < 0) return false;
  FrameHeader hdr{};
  hdr.epoch = epoch;
  hdr.len = static_cast<std::uint32_t>(len);
  hdr.type = static_cast<std::uint8_t>(type);
  hdr.payload_crc = Crc32::of(payload, len);
  hdr.header_crc = frame_header_crc(hdr);
  iovec iov[2] = {{&hdr, sizeof hdr}, {const_cast<void*>(payload), len}};
  std::size_t total = sizeof hdr + len;
  std::size_t sent = 0;
  while (sent < total) {
    msghdr msg{};
    // Advance the iovec past what has been sent.
    iovec cur[2];
    int n = 0;
    std::size_t skip = sent;
    for (auto& part : iov) {
      if (skip >= part.iov_len) {
        skip -= part.iov_len;
        continue;
      }
      cur[n].iov_base = static_cast<std::uint8_t*>(part.iov_base) + skip;
      cur[n].iov_len = part.iov_len - skip;
      skip = 0;
      ++n;
    }
    msg.msg_iov = cur;
    msg.msg_iovlen = static_cast<std::size_t>(n);
    const ssize_t wrote = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    if (wrote == 0) {
      // Peer closed; errno is stale for a zero return (see send_bytes).
      error_ = Error::kClosed;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  static metrics::Counter& frames = metrics::counter("net.transport.frames_sent");
  static metrics::Counter& bytes = metrics::counter("net.transport.bytes_sent");
  frames.add(1);
  bytes.add(total);
  return true;
}

bool TcpTransport::read_fully(void* buf, std::size_t len,
                              const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    // Budget against one absolute deadline shared by every poll of this
    // recv(): a peer trickling one byte per window can no longer restart
    // the timeout with each byte and stall the receiver forever.
    int wait_ms = -1;
    if (deadline.has_value()) {
      const auto left = std::chrono::ceil<std::chrono::milliseconds>(
                            *deadline - std::chrono::steady_clock::now())
                            .count();
      // An expired budget still polls once at zero: recv(timeout_ms=0) is
      // the non-blocking ack-drain idiom and must deliver data that has
      // already arrived. Only an actually-unready socket is a timeout.
      wait_ms = static_cast<int>(
          std::clamp<long long>(left, 0, std::numeric_limits<int>::max()));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      error_ = Error::kTimeout;
      return false;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    const ssize_t n = ::read(fd_, p + got, len - got);
    if (n == 0) {
      error_ = Error::kClosed;
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Message> TcpTransport::recv(int timeout_ms) {
  error_ = Error::kNone;
  // One overall deadline for the whole frame (header + payload); -1 waits
  // forever, as before.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (timeout_ms >= 0) {
    deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  FrameHeader hdr;
  if (!read_fully(&hdr, sizeof hdr, deadline)) return std::nullopt;
  if (frame_header_crc(hdr) != hdr.header_crc || hdr.len > kMaxFramePayload) {
    // The length field cannot be trusted: framing is lost for good. Close so
    // the peer reconnects and the protocol layer resyncs via rejoin.
    error_ = Error::kCorrupt;
    metrics::counter("net.transport.corrupt_headers").add(1);
    close_peer();
    return std::nullopt;
  }
  Message msg;
  msg.type = static_cast<MsgType>(hdr.type);
  msg.epoch = hdr.epoch;
  msg.payload.resize(hdr.len);
  if (!read_fully(msg.payload.data(), hdr.len, deadline)) return std::nullopt;
  if (Crc32::of(msg.payload.data(), msg.payload.size()) != hdr.payload_crc) {
    // Payload bytes were consumed in full, so the stream stays aligned; the
    // receiver may skip this frame and resynchronise in-band.
    error_ = Error::kCorrupt;
    metrics::counter("net.transport.corrupt_payloads").add(1);
    return std::nullopt;
  }
  static metrics::Counter& frames = metrics::counter("net.transport.frames_received");
  static metrics::Counter& bytes = metrics::counter("net.transport.bytes_received");
  frames.add(1);
  bytes.add(sizeof hdr + msg.payload.size());
  return msg;
}

}  // namespace vrep::net
