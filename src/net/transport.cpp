#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.hpp"

namespace vrep::net {

namespace {
struct FrameHeader {
  std::uint32_t len;
  std::uint8_t type;
  std::uint8_t pad[3];
  std::uint32_t crc;
};
}  // namespace

TcpTransport::~TcpTransport() {
  close_peer();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpTransport::close_peer() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpTransport::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) return false;
  if (::listen(listen_fd_, 1) != 0) return false;
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return false;
  port_ = ntohs(addr.sin_port);
  return true;
}

bool TcpTransport::accept_peer(int timeout_ms) {
  pollfd pfd{listen_fd_, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) {
    error_ = Error::kTimeout;
    return false;
  }
  fd_ = ::accept(listen_fd_, nullptr, nullptr);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool TcpTransport::connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  const int deadline_steps = timeout_ms / 50 + 1;
  for (int attempt = 0; attempt < deadline_steps; ++attempt) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return true;
    }
    ::close(fd_);
    fd_ = -1;
    ::usleep(50'000);  // the server may not be listening yet
  }
  error_ = Error::kTimeout;
  return false;
}

bool TcpTransport::send(MsgType type, const void* payload, std::size_t len) {
  if (fd_ < 0) return false;
  FrameHeader hdr{};
  hdr.len = static_cast<std::uint32_t>(len);
  hdr.type = static_cast<std::uint8_t>(type);
  hdr.crc = Crc32::of(payload, len);
  iovec iov[2] = {{&hdr, sizeof hdr}, {const_cast<void*>(payload), len}};
  std::size_t total = sizeof hdr + len;
  std::size_t sent = 0;
  while (sent < total) {
    msghdr msg{};
    // Advance the iovec past what has been sent.
    iovec cur[2];
    int n = 0;
    std::size_t skip = sent;
    for (auto& part : iov) {
      if (skip >= part.iov_len) {
        skip -= part.iov_len;
        continue;
      }
      cur[n].iov_base = static_cast<std::uint8_t*>(part.iov_base) + skip;
      cur[n].iov_len = part.iov_len - skip;
      skip = 0;
      ++n;
    }
    msg.msg_iov = cur;
    msg.msg_iovlen = static_cast<std::size_t>(n);
    const ssize_t wrote = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (wrote <= 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool TcpTransport::read_fully(void* buf, std::size_t len, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      error_ = Error::kTimeout;
      return false;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    const ssize_t n = ::read(fd_, p + got, len - got);
    if (n == 0) {
      error_ = Error::kClosed;
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = Error::kClosed;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Message> TcpTransport::recv(int timeout_ms) {
  error_ = Error::kNone;
  FrameHeader hdr;
  if (!read_fully(&hdr, sizeof hdr, timeout_ms)) return std::nullopt;
  if (hdr.len > (64u << 20)) {  // sanity bound
    error_ = Error::kCorrupt;
    return std::nullopt;
  }
  Message msg;
  msg.type = static_cast<MsgType>(hdr.type);
  msg.payload.resize(hdr.len);
  if (!read_fully(msg.payload.data(), hdr.len, timeout_ms)) return std::nullopt;
  if (Crc32::of(msg.payload.data(), msg.payload.size()) != hdr.crc) {
    error_ = Error::kCorrupt;
    return std::nullopt;
  }
  return msg;
}

}  // namespace vrep::net
