#include "net/wire_repl.hpp"

#include <chrono>
#include <cstring>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

namespace {
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WirePrimary::WirePrimary(rio::Arena& arena, const core::StoreConfig& config,
                         Transport* transport, bool format, cluster::Membership* membership,
                         Lineage lineage, std::size_t redo_history_bytes)
    : local_(std::make_unique<core::InlineLogStore>(bus_, arena, config, format)),
      link_(transport),
      pipeline_(static_cast<repl::RedoPipeline::Source&>(*this), &link_, membership, lineage,
                redo_history_bytes) {
  bus_.set_capture(local_->db(), local_->db_size(), this);
}

std::size_t WirePrimary::add_backup(Transport* transport) {
  extra_links_.push_back(std::make_unique<TransportLink>(transport));
  return pipeline_.add_peer(extra_links_.back().get());
}

void WirePrimary::attach_transport(std::size_t peer, Transport* transport) {
  if (peer == 0) {
    link_.attach(transport);
    pipeline_.attach_link(0, &link_);
    return;
  }
  TransportLink* link = extra_links_.at(peer - 1).get();
  link->attach(transport);
  pipeline_.attach_link(peer, link);
}

void WirePrimary::on_captured_store(std::uint64_t off, const void* src, std::size_t len) {
  pipeline_.stage(off, src, len);
}

void WirePrimary::begin_transaction() {
  pipeline_.begin();
  local_->begin_transaction();
}

void WirePrimary::set_range(void* base, std::size_t len) { local_->set_range(base, len); }

void WirePrimary::abort_transaction() {
  local_->abort_transaction();
  pipeline_.discard();
}

void WirePrimary::commit_transaction() {
  local_->commit_transaction();
  // Asynchronous group commit: defaults (W=1, G=1) ship and wait exactly
  // like the old blocking commit; wider settings return once the in-flight
  // window has room (wait()/sync() restore blocking semantics per ticket).
  pipeline_.commit_async(local_->committed_seq());
}

int WirePrimary::recover() {
  pipeline_.discard();
  return local_->recover();
}

// ---------------------------------------------------------------------------

void WireBackup::write(std::uint64_t off, const void* src, std::size_t len) {
  std::memcpy(arena_->data() + off, src, len);
}

WireBackup::ServeResult WireBackup::serve(Transport& transport, const ServeOptions& options) {
  TransportLink link(&transport);
  while (true) {
    auto frame = link.recv(options.idle_timeout_ms);
    const std::int64_t now = now_ms();
    if (!frame.has_value()) {
      switch (link.last_error()) {
        case repl::LinkError::kTimeout:
          // Silence. Without a detector the idle timeout *is* the failure
          // budget (legacy behaviour); with one, only a tripped
          // missed-interval threshold fails the primary.
          if (options.detector == nullptr || options.detector->suspects(now)) {
            return ServeResult::kPrimaryFailed;
          }
          continue;
        case repl::LinkError::kClosed:
          return ServeResult::kConnectionLost;
        case repl::LinkError::kCorrupt:
          if (!link.connected()) {
            // Header corruption: framing is lost, the transport closed the
            // stream. Recovery is reconnect + rejoin.
            return ServeResult::kConnectionLost;
          }
          // Payload corruption: the frame was consumed whole, the stream is
          // aligned. Skip it; if it was a batch, the sequence gap triggers
          // an in-band resync from the last good sequence.
          {
            std::lock_guard<std::mutex> lock(apply_mu_);
            applier_.note_corrupt_skipped(link);
          }
          continue;
        default:
          return ServeResult::kCorrupt;
      }
    }
    if (options.detector != nullptr) options.detector->heartbeat(now);
    repl::RedoApplier::FrameResult applied;
    {
      // Atomic with respect to read()/watermark(): a concurrent reader sees
      // whole batches only, never a half-applied group.
      std::lock_guard<std::mutex> lock(apply_mu_);
      applied = applier_.on_frame(*frame, link);
    }
    if (applied == repl::RedoApplier::FrameResult::kCorrupt) {
      return ServeResult::kCorrupt;
    }
  }
}

std::unique_ptr<core::TransactionStore> WireBackup::promote(sim::MemBus& bus,
                                                            rio::Arena& new_arena,
                                                            const core::StoreConfig& config) {
  VREP_CHECK(config.db_size == applier_.db_size());
  metrics::counter("repl.backup.takeovers").add(1);
  auto store = std::make_unique<core::InlineLogStore>(bus, new_arena, config, /*format=*/true);
  std::memcpy(store->db(), arena_->data(), applier_.db_size());
  // Continue the replicated sequence numbering: rejoin deltas, and any
  // workload state derived from committed_seq (e.g. the Debit-Credit
  // history ring cursor), depend on it.
  store->seed_committed_seq(applier_.applied_seq());
  return store;
}

}  // namespace vrep::net
