#include "net/wire_repl.hpp"

#include <cstring>

#include "util/check.hpp"

namespace vrep::net {

namespace {
constexpr std::size_t kDbChunkBytes = 256 * 1024;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
}  // namespace

WirePrimary::WirePrimary(rio::Arena& arena, const core::StoreConfig& config,
                         TcpTransport* transport, bool format)
    : transport_(transport) {
  local_ = std::make_unique<core::InlineLogStore>(bus_, arena, config, format);
  bus_.set_capture(local_->db(), local_->db_size(), this);
}

bool WirePrimary::sync_backup() {
  std::uint8_t hello[16];
  const std::uint64_t size = local_->db_size();
  const std::uint64_t seq = local_->committed_seq();
  std::memcpy(hello, &size, 8);
  std::memcpy(hello + 8, &seq, 8);
  if (!transport_->send(MsgType::kHello, hello, sizeof hello)) return false;
  std::vector<std::uint8_t> chunk;
  for (std::size_t off = 0; off < local_->db_size(); off += kDbChunkBytes) {
    const std::size_t len = std::min(kDbChunkBytes, local_->db_size() - off);
    chunk.clear();
    append_u64(chunk, off);
    chunk.insert(chunk.end(), local_->db() + off, local_->db() + off + len);
    if (!transport_->send(MsgType::kDbChunk, chunk.data(), chunk.size())) return false;
  }
  return true;
}

void WirePrimary::on_captured_store(std::uint64_t off, const void* src, std::size_t len) {
  append_u32(batch_, static_cast<std::uint32_t>(off));
  append_u32(batch_, static_cast<std::uint32_t>(len));
  const std::size_t at = batch_.size();
  batch_.resize(at + len);
  std::memcpy(batch_.data() + at, src, len);
}

void WirePrimary::begin_transaction() {
  batch_.clear();
  batch_.resize(8);  // sequence filled in at commit
  local_->begin_transaction();
}

void WirePrimary::set_range(void* base, std::size_t len) { local_->set_range(base, len); }

void WirePrimary::abort_transaction() {
  local_->abort_transaction();
  batch_.clear();
}

void WirePrimary::drain_acks() {
  // Consume whatever the backup sent back (acks); leaving them unread would
  // eventually fill the socket buffers and, on close, make the kernel RST
  // the connection under the backup's feet.
  while (alive_) {
    auto msg = transport_->recv(0);
    if (!msg.has_value()) break;
    if (msg->type == MsgType::kConsumerAck && msg->payload.size() == 8) {
      std::memcpy(&acked_seq_, msg->payload.data(), 8);
    }
  }
}

void WirePrimary::commit_transaction() {
  local_->commit_transaction();
  const std::uint64_t seq = local_->committed_seq();
  std::memcpy(batch_.data(), &seq, 8);
  // 1-safe: fire and forget; a send failure marks the backup link down but
  // never blocks or fails the local commit.
  if (alive_ && !transport_->send(MsgType::kRedoBatch, batch_.data(), batch_.size())) {
    alive_ = false;
  }
  drain_acks();
  batch_.clear();
}

int WirePrimary::recover() {
  batch_.clear();
  return local_->recover();
}

bool WirePrimary::send_heartbeat() {
  const std::uint64_t seq = local_->committed_seq();
  if (alive_ && !transport_->send(MsgType::kHeartbeat, &seq, 8)) alive_ = false;
  return alive_;
}

// ---------------------------------------------------------------------------

bool WireBackup::apply_batch(const Message& msg) {
  if (msg.payload.size() < 8) return false;
  std::uint64_t seq;
  std::memcpy(&seq, msg.payload.data(), 8);
  std::size_t at = 8;
  while (at < msg.payload.size()) {
    if (at + 8 > msg.payload.size()) return false;
    std::uint32_t off, len;
    std::memcpy(&off, msg.payload.data() + at, 4);
    std::memcpy(&len, msg.payload.data() + at + 4, 4);
    at += 8;
    if (at + len > msg.payload.size() || off + std::uint64_t{len} > db_size_) return false;
    std::memcpy(arena_->data() + off, msg.payload.data() + at, len);
    at += len;
  }
  applied_seq_ = seq;
  return true;
}

WireBackup::ServeResult WireBackup::serve(TcpTransport& transport, int timeout_ms) {
  while (true) {
    auto msg = transport.recv(timeout_ms);
    if (!msg.has_value()) {
      // Timeout or closed connection: either way the primary is gone as far
      // as this backup can tell. (The paper defers failure detection to the
      // cluster layer [12]; this is the minimal equivalent.)
      return transport.last_error() == TcpTransport::Error::kCorrupt
                 ? ServeResult::kCorrupt
                 : ServeResult::kPrimaryFailed;
    }
    switch (msg->type) {
      case MsgType::kHello: {
        if (msg->payload.size() != 16) return ServeResult::kCorrupt;
        std::uint64_t size;
        std::memcpy(&size, msg->payload.data(), 8);
        std::memcpy(&applied_seq_, msg->payload.data() + 8, 8);
        if (size > arena_->size()) return ServeResult::kCorrupt;
        db_size_ = size;
        break;
      }
      case MsgType::kDbChunk: {
        if (msg->payload.size() < 8) return ServeResult::kCorrupt;
        std::uint64_t off;
        std::memcpy(&off, msg->payload.data(), 8);
        const std::size_t len = msg->payload.size() - 8;
        if (off + len > db_size_) return ServeResult::kCorrupt;
        std::memcpy(arena_->data() + off, msg->payload.data() + 8, len);
        break;
      }
      case MsgType::kRedoBatch:
        if (!apply_batch(*msg)) return ServeResult::kCorrupt;
        // Acknowledge periodically (flow control / monitoring); per-batch
        // acks would just pressure the primary's receive buffer.
        if (applied_seq_ % 32 == 0) {
          transport.send(MsgType::kConsumerAck, &applied_seq_, 8);
        }
        break;
      case MsgType::kHeartbeat:
        break;  // liveness only; recv timeout is the detector
      default:
        return ServeResult::kCorrupt;
    }
  }
}

std::unique_ptr<core::TransactionStore> WireBackup::promote(sim::MemBus& bus,
                                                            rio::Arena& new_arena,
                                                            const core::StoreConfig& config) {
  VREP_CHECK(config.db_size == db_size_);
  auto store = std::make_unique<core::InlineLogStore>(bus, new_arena, config, /*format=*/true);
  std::memcpy(store->db(), arena_->data(), db_size_);
  return store;
}

}  // namespace vrep::net
