#include "net/wire_repl.hpp"

#include <chrono>
#include <cstring>

#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

namespace {
constexpr std::size_t kDbChunkBytes = 256 * 1024;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WirePrimary::WirePrimary(rio::Arena& arena, const core::StoreConfig& config,
                         Transport* transport, bool format, cluster::Membership* membership,
                         Lineage lineage, std::size_t redo_history_bytes)
    : transport_(transport), membership_(membership), lineage_(lineage),
      history_capacity_(redo_history_bytes) {
  local_ = std::make_unique<core::InlineLogStore>(bus_, arena, config, format);
  bus_.set_capture(local_->db(), local_->db_size(), this);
  alive_ = transport_ != nullptr && transport_->connected();
}

bool WirePrimary::sync_backup() {
  if (fenced_ || transport_ == nullptr) return false;
  std::uint8_t hello[16];
  const std::uint64_t size = local_->db_size();
  const std::uint64_t seq = local_->committed_seq();
  std::memcpy(hello, &size, 8);
  std::memcpy(hello + 8, &seq, 8);
  if (!transport_->send(MsgType::kHello, epoch(), hello, sizeof hello)) {
    alive_ = false;
    return false;
  }
  std::vector<std::uint8_t> chunk;
  for (std::size_t off = 0; off < local_->db_size(); off += kDbChunkBytes) {
    const std::size_t len = std::min(kDbChunkBytes, local_->db_size() - off);
    chunk.clear();
    chunk.resize(8);
    const std::uint64_t off64 = off;
    std::memcpy(chunk.data(), &off64, 8);
    chunk.insert(chunk.end(), local_->db() + off, local_->db() + off + len);
    if (!transport_->send(MsgType::kDbChunk, epoch(), chunk.data(), chunk.size())) {
      alive_ = false;
      return false;
    }
  }
  alive_ = true;
  return true;
}

bool WirePrimary::history_covers(std::uint64_t from_seq) const {
  const std::uint64_t committed = local_->committed_seq();
  if (from_seq == committed) return true;  // nothing to replay
  return !history_.empty() && history_.front().seq <= from_seq + 1 &&
         history_.back().seq == committed;
}

bool WirePrimary::shared_lineage(std::uint64_t backup_seq, std::uint64_t state_epoch) const {
  // Same epoch: the requester has been following this primary, its state is
  // a prefix of ours. Pre-takeover epoch: only the prefix up to the
  // takeover floor is shared — a fenced straggler may have committed past
  // it into a lineage we never saw. Anything older is unverifiable.
  if (state_epoch == epoch()) return true;
  return lineage_.prev_epoch != 0 && state_epoch == lineage_.prev_epoch &&
         backup_seq <= lineage_.takeover_floor;
}

bool WirePrimary::serve_rejoin(std::uint64_t backup_seq, std::uint64_t node_id,
                               std::uint64_t state_epoch) {
  if (fenced_) return false;
  // A *new* backup joining the view is a membership change (epoch bump); a
  // reconnect of the current backup is not.
  if (membership_ != nullptr && membership_->is_primary() && !membership_->has_backup()) {
    membership_->adopt_backup(static_cast<int>(node_id));
  }
  stats_.rejoins_served++;
  metrics::counter("net.wire.primary.rejoins_served").add(1);
  const std::uint64_t committed = local_->committed_seq();
  if (backup_seq > 0 && backup_seq <= committed && shared_lineage(backup_seq, state_epoch) &&
      history_covers(backup_seq)) {
    std::uint8_t delta[16];
    const std::uint64_t count = committed - backup_seq;
    std::memcpy(delta, &backup_seq, 8);
    std::memcpy(delta + 8, &count, 8);
    if (!transport_->send(MsgType::kRejoinDelta, epoch(), delta, sizeof delta)) {
      alive_ = false;
      return false;
    }
    for (const auto& entry : history_) {
      if (entry.seq <= backup_seq) continue;
      if (!transport_->send(MsgType::kRedoBatch, epoch(), entry.batch.data(),
                            entry.batch.size())) {
        alive_ = false;
        return false;
      }
    }
    alive_ = true;
    stats_.deltas_served++;
    metrics::counter("net.wire.primary.deltas_served").add(1);
    return true;
  }
  // Gap unservable from history (fresh backup, evicted batches, or a
  // rejoiner claiming a future our lineage never had): full image.
  stats_.full_syncs_served++;
  metrics::counter("net.wire.primary.full_syncs_served").add(1);
  return sync_backup();
}

bool WirePrimary::handle_rejoin(int timeout_ms) {
  if (transport_ == nullptr || !transport_->connected()) return false;
  while (true) {
    auto msg = transport_->recv(timeout_ms);
    if (!msg.has_value()) {
      if (transport_->last_error() == TransportError::kCorrupt && transport_->connected()) {
        continue;  // aligned corrupt frame: the peer will re-request
      }
      alive_ = false;
      return false;
    }
    if (msg->type != MsgType::kRejoinRequest || msg->payload.size() != 24) continue;
    if (membership_ != nullptr && msg->epoch > epoch()) {
      // The requester has seen a newer epoch than ours: we are the stale
      // node here. Step aside instead of serving.
      fenced_ = true;
      fenced_by_epoch_ = msg->epoch;
      alive_ = false;
      return false;
    }
    std::uint64_t seq, node, state_epoch;
    std::memcpy(&seq, msg->payload.data(), 8);
    std::memcpy(&node, msg->payload.data() + 8, 8);
    std::memcpy(&state_epoch, msg->payload.data() + 16, 8);
    return serve_rejoin(seq, node, state_epoch);
  }
}

void WirePrimary::on_captured_store(std::uint64_t off, const void* src, std::size_t len) {
  append_u32(batch_, static_cast<std::uint32_t>(off));
  append_u32(batch_, static_cast<std::uint32_t>(len));
  const std::size_t at = batch_.size();
  batch_.resize(at + len);
  std::memcpy(batch_.data() + at, src, len);
}

void WirePrimary::begin_transaction() {
  batch_.clear();
  batch_.resize(8);  // sequence filled in at commit
  local_->begin_transaction();
}

void WirePrimary::set_range(void* base, std::size_t len) { local_->set_range(base, len); }

void WirePrimary::abort_transaction() {
  local_->abort_transaction();
  batch_.clear();
}

void WirePrimary::push_history(std::uint64_t seq) {
  history_.push_back({seq, batch_});
  history_bytes_ += batch_.size();
  while (history_bytes_ > history_capacity_ && !history_.empty()) {
    history_bytes_ -= history_.front().batch.size();
    history_.pop_front();
  }
}

void WirePrimary::drain_acks() {
  // Consume whatever the backup sent back: acks (flow control), in-band
  // rejoin requests (sequence-gap resync), and epoch fences. Leaving them
  // unread would eventually fill the socket buffers and, on close, make the
  // kernel RST the connection under the backup's feet.
  while (alive_) {
    auto msg = transport_->recv(0);
    if (!msg.has_value()) {
      if (transport_->last_error() == TransportError::kCorrupt && transport_->connected()) {
        continue;  // skip an aligned corrupt inbound frame
      }
      if (transport_->last_error() == TransportError::kClosed) alive_ = false;
      break;
    }
    switch (msg->type) {
      case MsgType::kConsumerAck:
        if (msg->payload.size() == 8 && (membership_ == nullptr || msg->epoch == epoch())) {
          std::uint64_t v;
          std::memcpy(&v, msg->payload.data(), 8);
          if (v > acked_seq_) acked_seq_ = v;
        }
        break;
      case MsgType::kEpochFence: {
        if (msg->payload.size() != 8) break;
        std::uint64_t e;
        std::memcpy(&e, msg->payload.data(), 8);
        if (e > epoch()) {
          // Someone took over in a newer epoch while we were out: stop
          // shipping immediately; the caller demotes us and rejoins.
          fenced_ = true;
          fenced_by_epoch_ = e;
          alive_ = false;
        }
        break;
      }
      case MsgType::kRejoinRequest: {
        if (msg->payload.size() != 24) break;
        if (membership_ != nullptr && msg->epoch > epoch()) {
          fenced_ = true;
          fenced_by_epoch_ = msg->epoch;
          alive_ = false;
          break;
        }
        std::uint64_t seq, node, state_epoch;
        std::memcpy(&seq, msg->payload.data(), 8);
        std::memcpy(&node, msg->payload.data() + 8, 8);
        std::memcpy(&state_epoch, msg->payload.data() + 16, 8);
        serve_rejoin(seq, node, state_epoch);
        break;
      }
      default:
        break;
    }
  }
}

void WirePrimary::commit_transaction() {
  local_->commit_transaction();
  const std::uint64_t seq = local_->committed_seq();
  std::memcpy(batch_.data(), &seq, 8);
  // Retain the batch even while the link is down or we are fenced: a later
  // rejoin (ours or the backup's) replays from this history.
  push_history(seq);
  // 1-safe: fire and forget; a send failure marks the backup link down but
  // never blocks or fails the local commit.
  if (alive_ && !fenced_ &&
      !transport_->send(MsgType::kRedoBatch, epoch(), batch_.data(), batch_.size())) {
    alive_ = false;
  }
  if (alive_) drain_acks();
  batch_.clear();
}

int WirePrimary::recover() {
  batch_.clear();
  return local_->recover();
}

bool WirePrimary::send_heartbeat() {
  const std::uint64_t seq = local_->committed_seq();
  if (alive_ && !fenced_ && !transport_->send(MsgType::kHeartbeat, epoch(), &seq, 8)) {
    alive_ = false;
  }
  if (alive_) drain_acks();
  return alive_;
}

// ---------------------------------------------------------------------------

bool WireBackup::request_rejoin(Transport& transport) {
  std::uint8_t req[24];
  // An incomplete image cannot be repaired by a sequence delta: ask from 0,
  // which the primary always answers with a full image sync.
  const std::uint64_t from = image_complete() ? applied_seq_ : 0;
  std::memcpy(req, &from, 8);
  std::memcpy(req + 8, &node_id_, 8);
  std::memcpy(req + 16, &state_epoch_, 8);
  return transport.send(MsgType::kRejoinRequest, epoch(), req, sizeof req);
}

void WireBackup::seed(const std::uint8_t* db, std::size_t size, std::uint64_t applied_seq,
                      std::uint64_t state_epoch) {
  VREP_CHECK(size <= arena_->size());
  std::memcpy(arena_->data(), db, size);
  db_size_ = size;
  image_next_off_ = size;
  applied_seq_ = applied_seq;
  state_epoch_ = state_epoch;
  awaiting_resync_ = false;
}

void WireBackup::maybe_request_resync(Transport& transport) {
  if (awaiting_resync_) return;
  if (request_rejoin(transport)) awaiting_resync_ = true;
}

bool WireBackup::apply_batch(const Message& msg, std::uint64_t* out_seq) {
  if (msg.payload.size() < 8) return false;
  // First pass: validate the whole batch so a malformed frame is never
  // applied partially (the backup's image must only ever hold whole
  // transactions).
  std::size_t at = 8;
  while (at < msg.payload.size()) {
    if (at + 8 > msg.payload.size()) return false;
    std::uint32_t off, len;
    std::memcpy(&off, msg.payload.data() + at, 4);
    std::memcpy(&len, msg.payload.data() + at + 4, 4);
    at += 8;
    if (at + len > msg.payload.size() || off + std::uint64_t{len} > db_size_) return false;
    at += len;
  }
  // Second pass: apply.
  at = 8;
  while (at < msg.payload.size()) {
    std::uint32_t off, len;
    std::memcpy(&off, msg.payload.data() + at, 4);
    std::memcpy(&len, msg.payload.data() + at + 4, 4);
    at += 8;
    std::memcpy(arena_->data() + off, msg.payload.data() + at, len);
    at += len;
  }
  std::memcpy(out_seq, msg.payload.data(), 8);
  return true;
}

WireBackup::ServeResult WireBackup::serve(Transport& transport, const ServeOptions& options) {
  while (true) {
    auto msg = transport.recv(options.idle_timeout_ms);
    const std::int64_t now = now_ms();
    if (!msg.has_value()) {
      switch (transport.last_error()) {
        case TransportError::kTimeout:
          // Silence. Without a detector the idle timeout *is* the failure
          // budget (legacy behaviour); with one, only a tripped
          // missed-interval threshold fails the primary.
          if (options.detector == nullptr || options.detector->suspects(now)) {
            return ServeResult::kPrimaryFailed;
          }
          continue;
        case TransportError::kClosed:
          return ServeResult::kConnectionLost;
        case TransportError::kCorrupt:
          if (!transport.connected()) {
            // Header corruption: framing is lost, the transport closed the
            // stream. Recovery is reconnect + rejoin.
            return ServeResult::kConnectionLost;
          }
          // Payload corruption: the frame was consumed whole, the stream is
          // aligned. Skip it; if it was a batch, the sequence gap triggers
          // an in-band resync from the last good sequence.
          stats_.corrupt_skipped++;
          metrics::counter("net.wire.backup.corrupt_skipped").add(1);
          maybe_request_resync(transport);
          continue;
        default:
          return ServeResult::kCorrupt;
      }
    }
    if (options.detector != nullptr) options.detector->heartbeat(now);

    if (membership_ != nullptr) {
      const std::uint64_t cur = membership_->view().epoch;
      if (msg->epoch < cur) {
        // Stale-epoch traffic — a fenced old primary still shipping. Drop
        // it and tell the sender which epoch rules now.
        stats_.stale_fenced++;
        metrics::counter("net.wire.backup.stale_fenced").add(1);
        transport.send(MsgType::kEpochFence, cur, &cur, 8);
        continue;
      }
      if (msg->epoch > cur) {
        // A newer primary only introduces itself through a sync start.
        if (msg->type == MsgType::kHello || msg->type == MsgType::kRejoinDelta ||
            msg->type == MsgType::kEpochFence) {
          membership_->join_epoch(msg->epoch);
        } else {
          continue;
        }
      }
    }

    switch (msg->type) {
      case MsgType::kHello: {
        if (msg->payload.size() != 16) return ServeResult::kCorrupt;
        std::uint64_t size;
        std::memcpy(&size, msg->payload.data(), 8);
        std::memcpy(&applied_seq_, msg->payload.data() + 8, 8);
        if (size > arena_->size()) return ServeResult::kCorrupt;
        db_size_ = size;
        image_next_off_ = 0;  // image transfer restarts
        state_epoch_ = msg->epoch;
        break;
      }
      case MsgType::kDbChunk: {
        if (msg->payload.size() < 8) {
          stats_.corrupt_skipped++;
          metrics::counter("net.wire.backup.corrupt_skipped").add(1);
          maybe_request_resync(transport);
          break;
        }
        std::uint64_t off;
        std::memcpy(&off, msg->payload.data(), 8);
        const std::size_t len = msg->payload.size() - 8;
        if (off < image_next_off_) {
          stats_.duplicates_ignored++;  // replayed chunk (duplicate fault)
          metrics::counter("net.wire.backup.duplicates_ignored").add(1);
          break;
        }
        if (off > image_next_off_) {
          // A chunk went missing: the image has a hole only a fresh full
          // sync can fill.
          stats_.gaps_detected++;
          metrics::counter("net.wire.backup.gaps_detected").add(1);
          maybe_request_resync(transport);
          break;
        }
        if (off + len > db_size_) return ServeResult::kCorrupt;
        std::memcpy(arena_->data() + off, msg->payload.data() + 8, len);
        image_next_off_ = off + len;
        if (image_complete() && awaiting_resync_) {
          awaiting_resync_ = false;
          stats_.resyncs++;
          metrics::counter("net.wire.backup.resyncs").add(1);
        }
        break;
      }
      case MsgType::kRedoBatch: {
        if (!image_complete()) {
          // No image yet (or a holed one): batches are unusable until a
          // full sync lands.
          maybe_request_resync(transport);
          break;
        }
        if (msg->payload.size() < 8) {
          stats_.corrupt_skipped++;
          metrics::counter("net.wire.backup.corrupt_skipped").add(1);
          maybe_request_resync(transport);
          break;
        }
        std::uint64_t seq;
        std::memcpy(&seq, msg->payload.data(), 8);
        if (seq <= applied_seq_) {
          stats_.duplicates_ignored++;  // duplicate fault or delta overlap
          metrics::counter("net.wire.backup.duplicates_ignored").add(1);
          break;
        }
        if (seq == applied_seq_ + 1) {
          if (!apply_batch(*msg, &applied_seq_)) {
            stats_.corrupt_skipped++;
            metrics::counter("net.wire.backup.corrupt_skipped").add(1);
            maybe_request_resync(transport);
            break;
          }
          stats_.batches_applied++;
          metrics::counter("net.wire.backup.batches_applied").add(1);
          state_epoch_ = msg->epoch;
          // Acknowledge periodically (flow control / monitoring); per-batch
          // acks would just pressure the primary's receive buffer.
          if (applied_seq_ % 32 == 0) {
            transport.send(MsgType::kConsumerAck, epoch(), &applied_seq_, 8);
          }
          break;
        }
        // Sequence gap: a batch was dropped or skipped as corrupt. Resync
        // from the last good sequence instead of giving up.
        stats_.gaps_detected++;
        metrics::counter("net.wire.backup.gaps_detected").add(1);
        maybe_request_resync(transport);
        break;
      }
      case MsgType::kRejoinDelta: {
        if (msg->payload.size() != 16) break;
        std::uint64_t from, count;
        std::memcpy(&from, msg->payload.data(), 8);
        std::memcpy(&count, msg->payload.data() + 8, 8);
        if (from <= applied_seq_ && image_complete()) {
          // The replay that follows is contiguous from `from`; batches we
          // already hold are ignored as duplicates.
          awaiting_resync_ = false;
          stats_.resyncs++;
          metrics::counter("net.wire.backup.resyncs").add(1);
        } else {
          // Unusable delta (should not happen): re-request from where we
          // actually are.
          awaiting_resync_ = false;
          maybe_request_resync(transport);
        }
        break;
      }
      case MsgType::kHeartbeat: {
        // Liveness (the detector was fed above) — but the heartbeat also
        // carries the primary's committed sequence, which closes the
        // trailing-drop window: a gap with no batch behind it would
        // otherwise go unnoticed until the next commit.
        if (msg->payload.size() == 8 && image_complete()) {
          std::uint64_t committed;
          std::memcpy(&committed, msg->payload.data(), 8);
          if (committed > applied_seq_) {
            stats_.gaps_detected++;
            metrics::counter("net.wire.backup.gaps_detected").add(1);
            // Heartbeats double as the resync retry timer: if a previous
            // request (or the delta answering it) was itself lost, re-arm
            // instead of waiting forever on a reply that will never come.
            awaiting_resync_ = false;
            maybe_request_resync(transport);
          } else {
            // All caught up: acknowledge so the primary's acked watermark
            // converges even between the periodic batch acks.
            transport.send(MsgType::kConsumerAck, epoch(), &applied_seq_, 8);
          }
        }
        break;
      }
      case MsgType::kEpochFence:
        break;  // epoch already adopted above (if newer)
      default:
        // Unknown frame type with valid CRCs: version skew. Skip it.
        stats_.corrupt_skipped++;
        metrics::counter("net.wire.backup.corrupt_skipped").add(1);
        break;
    }
  }
}

std::unique_ptr<core::TransactionStore> WireBackup::promote(sim::MemBus& bus,
                                                            rio::Arena& new_arena,
                                                            const core::StoreConfig& config) {
  VREP_CHECK(config.db_size == db_size_);
  auto store = std::make_unique<core::InlineLogStore>(bus, new_arena, config, /*format=*/true);
  std::memcpy(store->db(), arena_->data(), db_size_);
  // Continue the replicated sequence numbering: rejoin deltas, and any
  // workload state derived from committed_seq (e.g. the Debit-Credit
  // history ring cursor), depend on it.
  store->seed_committed_seq(applied_seq_);
  return store;
}

}  // namespace vrep::net
