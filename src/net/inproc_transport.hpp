// In-process loopback transport: the third ReplicationLink backend.
//
// Two InprocTransport endpoints are cross-wired by pair(); each direction is
// a mutex/condvar-protected byte stream carrying the exact encoded frame
// bytes of net/frame.hpp. Shipping *bytes* rather than decoded messages is
// deliberate: the receiving endpoint re-parses the stream with the same
// header-CRC / payload-CRC rules as TcpTransport, so fault injection
// (bit-flips, torn frames via send_bytes) and the corrupt/closed error
// semantics compose identically — only the copy through a socket is elided.
//
// Semantics mirror TcpTransport:
//   * close_peer() closes both directions; the peer drains buffered bytes,
//     then sees kClosed (like TCP delivering queued data before EOF).
//   * a header-CRC failure closes the connection (framing lost for good);
//     a payload-CRC failure skips the frame and stays connected.
//
// Useful for single-process failover tests and the cross-backend conformance
// suite, where spawning real sockets adds latency and flakiness for no
// coverage.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/transport.hpp"

namespace vrep::net {

class InprocTransport final : public Transport {
 public:
  InprocTransport() = default;
  ~InprocTransport() override { close_peer(); }
  InprocTransport(const InprocTransport&) = delete;
  InprocTransport& operator=(const InprocTransport&) = delete;

  // Cross-wire two endpoints (a's sends become b's receives and vice versa).
  // Re-pairing closed endpoints models a reconnect.
  static void pair(InprocTransport& a, InprocTransport& b);

  bool send(MsgType type, std::uint64_t epoch, const void* payload,
            std::size_t len) override;
  bool send_bytes(const void* bytes, std::size_t len) override;
  std::optional<Message> recv(int timeout_ms) override;
  TransportError last_error() const override { return error_; }
  bool connected() const override;
  void close_peer() override;

 private:
  struct Stream {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::uint8_t> bytes;
    bool closed = false;
  };

  // Blocking read of exactly `len` bytes from in_; false on timeout or when
  // the stream is closed and drained (kClosed — a torn frame looks the same
  // as a killed TCP sender).
  bool read_fully(void* buf, std::size_t len, int timeout_ms);

  std::shared_ptr<Stream> in_;   // peer writes, we read
  std::shared_ptr<Stream> out_;  // we write, peer reads
  TransportError error_ = TransportError::kNone;
};

}  // namespace vrep::net
