// Byte-stream transport with message framing, used to emulate the SAN's
// write-through channel over TCP (per DESIGN.md: we have no Memory Channel
// hardware, so the two-process deployment ships the same redo packet stream
// over a socket).
//
// Frame format: [u32 payload_len | u8 type | u32 crc32c(payload)] payload.
// CRC verification makes torn frames (killed sender) detectable, mirroring
// the simulated ring's checksummed commit markers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vrep::net {

enum class MsgType : std::uint8_t {
  kRedoBatch = 1,   // one committed transaction's redo entries
  kHeartbeat = 2,   // primary liveness
  kConsumerAck = 3, // backup's applied sequence (flow control / monitoring)
  kHello = 4,       // initial handshake: db size, starting state
  kDbChunk = 5,     // initial database image transfer
};

struct Message {
  MsgType type;
  std::vector<std::uint8_t> payload;
};

// Blocking, single-peer TCP transport. Deliberately minimal: the examples
// and integration tests run primary and backup as two local processes.
class TcpTransport {
 public:
  TcpTransport() = default;
  ~TcpTransport();
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Server side: bind/listen on 127.0.0.1:port (port 0 = ephemeral; see
  // bound_port()), then accept exactly one peer.
  bool listen(std::uint16_t port);
  std::uint16_t bound_port() const { return port_; }
  bool accept_peer(int timeout_ms = 10'000);

  // Client side.
  bool connect_to(const std::string& host, std::uint16_t port, int timeout_ms = 10'000);

  bool connected() const { return fd_ >= 0; }
  void close_peer();

  // Send one framed message. Returns false on a broken connection.
  bool send(MsgType type, const void* payload, std::size_t len);

  // Receive the next message, waiting up to timeout_ms (-1 = forever).
  // nullopt on timeout or a broken/corrupt stream (distinguish with
  // last_error()).
  std::optional<Message> recv(int timeout_ms);

  enum class Error { kNone, kTimeout, kClosed, kCorrupt };
  Error last_error() const { return error_; }

 private:
  bool read_fully(void* buf, std::size_t len, int timeout_ms);
  int listen_fd_ = -1;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  Error error_ = Error::kNone;
};

}  // namespace vrep::net
