// Byte-stream transport with message framing, used to emulate the SAN's
// write-through channel over TCP (per DESIGN.md: we have no Memory Channel
// hardware, so the two-process deployment ships the same redo packet stream
// over a socket).
//
// Frame format (24-byte header, then payload):
//   [u64 epoch | u32 payload_len | u32 payload_crc | u32 header_crc |
//    u8 type | u8 pad[3]] payload
//
// Every frame carries the sender's membership epoch so the protocol layer
// can fence stale-epoch traffic (split-brain defense; see
// cluster/membership.hpp). Two CRCs split corruption into recoverable and
// fatal classes:
//   * header_crc (over epoch, payload_len, type): if it fails, payload_len
//     cannot be trusted and stream framing is lost — the transport closes
//     the connection (Error::kCorrupt, then disconnected). Recovery is a
//     reconnect + rejoin.
//   * payload_crc: if it fails the frame was read in full, so the stream
//     stays aligned — the receiver can skip the frame and resynchronise
//     in-band (Error::kCorrupt, still connected).
// CRC verification also makes torn frames (killed sender) detectable,
// mirroring the simulated ring's checksummed commit markers.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vrep::net {

enum class MsgType : std::uint8_t {
  kRedoBatch = 1,      // one committed transaction's redo entries
  kHeartbeat = 2,      // primary liveness
  kConsumerAck = 3,    // backup's applied sequence (flow control / monitoring)
  kHello = 4,          // full-sync handshake: db size, starting state
  kDbChunk = 5,        // initial database image transfer
  kRejoinRequest = 6,  // backup -> primary: u64 last applied sequence
  kRejoinDelta = 7,    // primary -> backup: u64 from_seq | u64 batch count
  kEpochFence = 8,     // receiver -> stale sender: u64 current epoch
  kRedoGroup = 9,      // group commit: several contiguous kRedoBatch payloads
  kCkptBegin = 10,     // checkpoint install start: watermark + image geometry
  kCkptChunk = 11,     // checkpoint page run: u64 offset | bytes
  kCkptEnd = 12,       // checkpoint install end: watermark seq + full-image crc
  kXPrepare = 13,      // 2PC phase 1: u64 xid | staged redo batch (in-doubt)
  kXDecide = 14,       // 2PC phase 2: u64 xid | u8 commit (1) / abort (0)
  // Client <-> AsyncServer frames (net-only: these never traverse a
  // repl::ReplicationLink, so they have no repl::FrameKind counterpart).
  kClientCommit = 15,  // client -> server: u64 op_id | u64 key | op bytes
  kCommitReply = 16,   // server -> client: u64 op_id | u64 seq | u8 outcome
  kReadRequest = 17,   // client -> server: u64 op_id | u64 key | u64 off |
                       //                   u32 len | u64 min_seq
  kReadReply = 18,     // server -> client: u64 op_id | u64 at_seq | u8 status
                       //                   | data bytes (kOk only)
};

struct Message {
  MsgType type;
  std::uint64_t epoch;
  std::vector<std::uint8_t> payload;
};

enum class TransportError : std::uint8_t { kNone, kTimeout, kClosed, kCorrupt };

// Abstract single-peer message transport. TcpTransport is the real thing;
// FaultInjectingTransport decorates one with a seeded fault schedule.
class Transport {
 public:
  virtual ~Transport() = default;

  // Send one framed message stamped with `epoch`. Returns false on a broken
  // connection.
  virtual bool send(MsgType type, std::uint64_t epoch, const void* payload,
                    std::size_t len) = 0;

  // Receive the next message, waiting up to timeout_ms (-1 = forever).
  // nullopt on timeout or a broken/corrupt stream; distinguish with
  // last_error(), and for kCorrupt check connected(): a payload CRC failure
  // leaves the stream aligned and the connection open, a header CRC failure
  // closes it.
  virtual std::optional<Message> recv(int timeout_ms) = 0;

  virtual TransportError last_error() const = 0;
  virtual bool connected() const = 0;
  virtual void close_peer() = 0;

  // Raw bytes, no framing. For fault injection and torn-frame tests only:
  // lets a decorator ship a deliberately corrupted or truncated encoded
  // frame (see net/frame.hpp) through any backend.
  virtual bool send_bytes(const void* bytes, std::size_t len) = 0;
};

// Blocking, single-peer TCP transport. Deliberately minimal: the examples
// and integration tests run primary and backup as two local processes.
class TcpTransport final : public Transport {
 public:
  using Error = TransportError;  // legacy spelling (TcpTransport::Error)

  TcpTransport() = default;
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Server side: bind/listen on 127.0.0.1:port (port 0 = ephemeral; see
  // bound_port()), then accept exactly one peer. accept_peer() may be called
  // again after the peer connection is lost to accept a replacement.
  bool listen(std::uint16_t port);
  std::uint16_t bound_port() const { return port_; }
  bool accept_peer(int timeout_ms = 10'000);

  // Client side.
  bool connect_to(const std::string& host, std::uint16_t port, int timeout_ms = 10'000);

  bool connected() const override { return fd_ >= 0; }
  void close_peer() override;

  bool send(MsgType type, std::uint64_t epoch, const void* payload,
            std::size_t len) override;
  std::optional<Message> recv(int timeout_ms) override;
  Error last_error() const override { return error_; }

  // Encode one frame exactly as send() would put it on the wire (legacy
  // spelling; the canonical encoder is net::encode_frame in frame.hpp).
  static std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t epoch,
                                                const void* payload, std::size_t len);
  bool send_bytes(const void* bytes, std::size_t len) override;

 private:
  // Read exactly `len` bytes, honoring one absolute deadline (nullopt =
  // wait forever). recv() shares the same deadline between its header and
  // payload reads so the whole frame is bounded by a single budget.
  bool read_fully(void* buf, std::size_t len,
                  const std::optional<std::chrono::steady_clock::time_point>& deadline);
  int listen_fd_ = -1;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  Error error_ = Error::kNone;
};

}  // namespace vrep::net
