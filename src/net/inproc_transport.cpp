#include "net/inproc_transport.hpp"

#include <chrono>
#include <cstring>

#include "net/frame.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

void InprocTransport::pair(InprocTransport& a, InprocTransport& b) {
  a.close_peer();
  b.close_peer();
  auto a_to_b = std::make_shared<Stream>();
  auto b_to_a = std::make_shared<Stream>();
  a.out_ = a_to_b;
  a.in_ = b_to_a;
  b.out_ = b_to_a;
  b.in_ = a_to_b;
  a.error_ = TransportError::kNone;
  b.error_ = TransportError::kNone;
  metrics::counter("net.transport.inproc_pairs").add(1);
}

bool InprocTransport::connected() const {
  if (!in_ || !out_) return false;
  std::lock_guard<std::mutex> lock(out_->mu);
  return !out_->closed;
}

void InprocTransport::close_peer() {
  // Close both directions, like ::close on a socket: our sends start failing
  // immediately, the peer drains what already arrived and then sees kClosed.
  for (const auto& stream : {out_, in_}) {
    if (!stream) continue;
    std::lock_guard<std::mutex> lock(stream->mu);
    stream->closed = true;
    stream->cv.notify_all();
  }
}

bool InprocTransport::send_bytes(const void* bytes, std::size_t len) {
  if (!out_) return false;
  std::lock_guard<std::mutex> lock(out_->mu);
  if (out_->closed) {
    error_ = TransportError::kClosed;
    return false;
  }
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  out_->bytes.insert(out_->bytes.end(), p, p + len);
  out_->cv.notify_all();
  return true;
}

bool InprocTransport::send(MsgType type, std::uint64_t epoch, const void* payload,
                           std::size_t len) {
  const auto frame = encode_frame(type, epoch, payload, len);
  if (!send_bytes(frame.data(), frame.size())) return false;
  static metrics::Counter& frames = metrics::counter("net.transport.frames_sent");
  static metrics::Counter& bytes = metrics::counter("net.transport.bytes_sent");
  frames.add(1);
  bytes.add(frame.size());
  return true;
}

bool InprocTransport::read_fully(void* buf, std::size_t len, int timeout_ms) {
  if (!in_) {
    error_ = TransportError::kClosed;
    return false;
  }
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  std::unique_lock<std::mutex> lock(in_->mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  while (got < len) {
    if (!in_->bytes.empty()) {
      const std::size_t take = std::min(len - got, in_->bytes.size());
      std::memcpy(p + got, in_->bytes.data(), take);
      in_->bytes.erase(in_->bytes.begin(),
                       in_->bytes.begin() + static_cast<std::ptrdiff_t>(take));
      got += take;
      continue;
    }
    if (in_->closed) {
      // Stream drained and the peer is gone: a partial frame is torn, a
      // clean boundary is EOF — both map to kClosed, as with TCP.
      error_ = TransportError::kClosed;
      return false;
    }
    if (timeout_ms < 0) {
      in_->cv.wait(lock);
    } else if (in_->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
               in_->bytes.empty() && !in_->closed) {
      error_ = TransportError::kTimeout;
      return false;
    }
  }
  return true;
}

std::optional<Message> InprocTransport::recv(int timeout_ms) {
  error_ = TransportError::kNone;
  FrameHeader hdr;
  if (!read_fully(&hdr, sizeof hdr, timeout_ms)) return std::nullopt;
  if (frame_header_crc(hdr) != hdr.header_crc || hdr.len > kMaxFramePayload) {
    // Same rule as TcpTransport: the length field cannot be trusted, framing
    // is lost for good. Close so the protocol layer resyncs via rejoin.
    error_ = TransportError::kCorrupt;
    metrics::counter("net.transport.corrupt_headers").add(1);
    close_peer();
    return std::nullopt;
  }
  Message msg;
  msg.type = static_cast<MsgType>(hdr.type);
  msg.epoch = hdr.epoch;
  msg.payload.resize(hdr.len);
  if (!read_fully(msg.payload.data(), hdr.len, timeout_ms)) return std::nullopt;
  if (Crc32::of(msg.payload.data(), msg.payload.size()) != hdr.payload_crc) {
    // Payload consumed in full: the stream stays aligned, skip in-band.
    error_ = TransportError::kCorrupt;
    metrics::counter("net.transport.corrupt_payloads").add(1);
    return std::nullopt;
  }
  static metrics::Counter& frames = metrics::counter("net.transport.frames_received");
  static metrics::Counter& bytes = metrics::counter("net.transport.bytes_received");
  frames.add(1);
  bytes.add(sizeof hdr + msg.payload.size());
  return msg;
}

}  // namespace vrep::net
