#include "net/fault_transport.hpp"

#include <unistd.h>

#include "net/frame.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

namespace {
// Mirror of Stats in the process-wide registry so chaos runs show up in
// --json snapshots alongside the transport/wire counters.
void count_fault(const char* which) {
  metrics::counter(std::string("net.fault.") + which).add(1);
}
}  // namespace

FaultInjectingTransport::Fault FaultInjectingTransport::roll() {
  // One uniform draw per frame, carved into cumulative bands so the schedule
  // is a pure function of (seed, frame index) and at most one fault fires.
  const double r = rng_.next_double();
  double acc = plan_.drop;
  if (r < acc) return Fault::kDrop;
  acc += plan_.delay;
  if (r < acc) return Fault::kDelay;
  acc += plan_.duplicate;
  if (r < acc) return Fault::kDuplicate;
  acc += plan_.bitflip;
  if (r < acc) return Fault::kBitflip;
  acc += plan_.truncate;
  if (r < acc) return Fault::kTruncate;
  acc += plan_.disconnect;
  if (r < acc) return Fault::kDisconnect;
  return Fault::kNone;
}

bool FaultInjectingTransport::send(MsgType type, std::uint64_t epoch, const void* payload,
                                   std::size_t len) {
  stats_.frames++;
  // Draw even during the grace period so the schedule downstream of it does
  // not depend on how many handshake frames preceded it... it does anyway
  // (frame counts shift), but every frame consuming exactly one draw keeps
  // the mapping easy to reason about when replaying a seed.
  const Fault fault = roll();
  if (stats_.frames <= static_cast<std::uint64_t>(plan_.start_after_frames) ||
      fault == Fault::kNone) {
    return inner_->send(type, epoch, payload, len);
  }
  switch (fault) {
    case Fault::kDrop:
      stats_.drops++;
      count_fault("drops");
      return true;  // swallowed: the sender believes it went out
    case Fault::kDelay: {
      stats_.delays++;
      count_fault("delays");
      const auto us = static_cast<useconds_t>(
          rng_.below(static_cast<std::uint64_t>(plan_.max_delay_us) + 1));
      ::usleep(us);
      return inner_->send(type, epoch, payload, len);
    }
    case Fault::kDuplicate:
      stats_.duplicates++;
      count_fault("duplicates");
      if (!inner_->send(type, epoch, payload, len)) return false;
      return inner_->send(type, epoch, payload, len);
    case Fault::kBitflip: {
      stats_.bitflips++;
      count_fault("bitflips");
      auto frame = encode_frame(type, epoch, payload, len);
      const std::uint64_t bit = rng_.below(frame.size() * 8);
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      return inner_->send_bytes(frame.data(), frame.size());
    }
    case Fault::kTruncate: {
      // Torn frame: ship a strict prefix, then die mid-stream. The receiver
      // must report kClosed (or kCorrupt) without applying the partial batch.
      stats_.truncations++;
      count_fault("truncations");
      const auto frame = encode_frame(type, epoch, payload, len);
      const std::size_t cut = 1 + rng_.below(frame.size() - 1);
      inner_->send_bytes(frame.data(), cut);
      inner_->close_peer();
      return false;
    }
    case Fault::kDisconnect:
      stats_.disconnects++;
      count_fault("disconnects");
      inner_->close_peer();
      return false;
    case Fault::kNone:
      break;
  }
  return inner_->send(type, epoch, payload, len);
}

}  // namespace vrep::net
