#include "net/async_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/frame.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

namespace {

template <typename T>
T read_le(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

AsyncServer::~AsyncServer() { stop(); }

bool AsyncServer::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) return false;
  if (::listen(listen_fd_, 512) != 0) return false;
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return false;
  port_ = ntohs(addr.sin_port);
  return true;
}

bool AsyncServer::start() {
  VREP_CHECK(listen_fd_ >= 0);
  VREP_CHECK(!shards_.empty());
  VREP_CHECK(static_cast<bool>(router_));
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return false;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) return false;
  listen_armed_ = true;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) return false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void AsyncServer::stop() {
  if (thread_.joinable()) {
    running_.store(false, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
    thread_.join();
  }
  for (auto& [id, conn] : conns_) {
    if (conn.fd < 0) continue;  // closed mid-iteration, not yet reaped
    ::close(conn.fd);
    // Same accounting as close_conn: the gauge must come back to zero even
    // for connections that were still open when the server shut down.
    stats_.conns_open.fetch_sub(1, std::memory_order_relaxed);
    metrics::gauge("net.async.conns_open").add(-1);
  }
  conns_.clear();
  by_fd_.clear();
  dead_conns_.clear();
  pending_commits_.clear();
  parked_reads_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_), wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_), listen_fd_ = -1;
}

void AsyncServer::run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, std::max(options_.tick_ms, 1));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      // The connection may have been closed by an earlier event in this
      // same batch; look it up fresh.
      auto it = by_fd_.find(fd);
      if (it == by_fd_.end()) continue;
      Conn& conn = conns_.at(it->second);
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) conn_writable(conn);
      // conn_writable never closes on its own unless the socket died.
      if (by_fd_.find(fd) == by_fd_.end()) continue;
      if (events[i].events & EPOLLIN) conn_readable(conns_.at(by_fd_.at(fd)));
    }
    tick();
    reap_dead();
  }
}

void AsyncServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds. The listen socket is level-triggered, so returning
        // with the backlog still pending would make epoll_wait re-fire
        // immediately and busy-spin the loop at 100% CPU. Disarm accept
        // interest; tick() re-arms it after accept_backoff_ms.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listen_armed_ = false;
        listen_rearm_at_ = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(options_.accept_backoff_ms);
        stats_.accept_overloads.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("net.async.accept_overloads").add(1);
        return;
      }
      return;  // EAGAIN: drained
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    by_fd_[fd] = id;
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.conns_open.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("net.async.accepts").add(1);
    metrics::gauge("net.async.conns_open").add(1);
  }
}

void AsyncServer::conn_readable(Conn& conn) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      if (n < static_cast<ssize_t>(sizeof chunk)) break;
      continue;
    }
    if (n == 0) {  // peer closed
      close_conn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(conn);
    return;
  }
  if (!parse_frames(conn)) close_conn(conn);
}

bool AsyncServer::parse_frames(Conn& conn) {
  std::size_t consumed = 0;
  while (conn.in.size() - consumed >= sizeof(FrameHeader)) {
    FrameHeader hdr;
    std::memcpy(&hdr, conn.in.data() + consumed, sizeof hdr);
    if (frame_header_crc(hdr) != hdr.header_crc || hdr.len > kMaxFramePayload) {
      // Same rule as TcpTransport::recv: the length field cannot be
      // trusted, framing is lost for good — close the connection.
      stats_.conns_corrupt.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("net.async.corrupt_headers").add(1);
      return false;
    }
    if (conn.in.size() - consumed < sizeof hdr + hdr.len) break;  // partial frame
    const std::uint8_t* payload = conn.in.data() + consumed + sizeof hdr;
    if (Crc32::of(payload, hdr.len) != hdr.payload_crc) {
      // Payload corruption: the frame is whole, the stream stays aligned —
      // skip it (the client times out on the missing reply and retries).
      stats_.frames_skipped.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("net.async.corrupt_payloads").add(1);
    } else {
      dispatch(conn, hdr.type, hdr.epoch, payload, hdr.len);
      if (conn.fd < 0) return true;  // dispatch closed the connection
    }
    consumed += sizeof hdr + hdr.len;
  }
  if (consumed > 0) {
    conn.in.erase(conn.in.begin(), conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

void AsyncServer::dispatch(Conn& conn, std::uint8_t type, std::uint64_t epoch,
                           const std::uint8_t* payload, std::size_t len) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kClientCommit:
      handle_commit(conn, epoch, payload, len);
      return;
    case MsgType::kReadRequest:
      handle_read(conn, epoch, payload, len);
      return;
    default:
      // Not part of the client protocol: a confused peer. Close.
      close_conn(conn);
      return;
  }
}

void AsyncServer::handle_commit(Conn& conn, std::uint64_t epoch, const std::uint8_t* payload,
                                std::size_t len) {
  if (len < 16) {
    close_conn(conn);
    return;
  }
  const std::uint64_t op_id = read_le<std::uint64_t>(payload);
  const std::uint64_t key = read_le<std::uint64_t>(payload + 8);
  const std::uint32_t shard = router_(key);
  if (shard >= shards_.size()) {
    close_conn(conn);
    return;
  }
  const std::uint64_t seq = shards_[shard].submit(key, payload + 16, len - 16);
  if (seq == 0) {
    stats_.commits_rejected.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("net.async.commits_rejected").add(1);
    send_commit_reply(conn.id, op_id, epoch, 0, kRejectedOutcome);
    return;
  }
  stats_.commits_submitted.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("net.async.commits_submitted").add(1);
  // 1-safe (or an already-covered window) resolves immediately; otherwise
  // the ticket parks until poll_acks advances the watermarks.
  const repl::RedoPipeline::TicketState state = shards_[shard].ticket_state(seq);
  if (state != repl::RedoPipeline::TicketState::kPending) {
    send_commit_reply(conn.id, op_id, epoch, seq, static_cast<std::uint8_t>(state));
    return;
  }
  pending_commits_.push_back(PendingCommit{conn.id, op_id, epoch, seq, shard});
}

void AsyncServer::handle_read(Conn& conn, std::uint64_t epoch, const std::uint8_t* payload,
                              std::size_t len) {
  if (len < 36) {
    close_conn(conn);
    return;
  }
  const std::uint64_t op_id = read_le<std::uint64_t>(payload);
  const std::uint64_t key = read_le<std::uint64_t>(payload + 8);
  const std::uint64_t off = read_le<std::uint64_t>(payload + 16);
  const std::uint32_t rlen = read_le<std::uint32_t>(payload + 24);
  const std::uint64_t min_seq = read_le<std::uint64_t>(payload + 28);
  const std::uint32_t shard = router_(key);
  if (shard >= shards_.size() || shards_[shard].replicas.empty() ||
      rlen > kMaxFramePayload - 17) {
    close_conn(conn);
    return;
  }
  if (try_read(conn.id, op_id, epoch, shard, off, rlen, min_seq)) return;
  // Every replica lags min_seq: park and retry each tick until the
  // watermark catches up (read-your-writes) or patience runs out (bounce).
  stats_.reads_parked.fetch_add(1, std::memory_order_relaxed);
  metrics::counter("net.async.reads_parked").add(1);
  parked_reads_.push_back(
      ParkedRead{conn.id, op_id, epoch, shard, off, rlen, min_seq,
                 std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(options_.read_park_ms)});
}

bool AsyncServer::try_read(std::uint64_t conn_id, std::uint64_t op_id, std::uint64_t epoch,
                           std::uint32_t shard, std::uint64_t off, std::uint32_t len,
                           std::uint64_t min_seq) {
  for (Replica& replica : shards_[shard].replicas) {
    // Skip stale replicas by their advertised watermark without touching
    // them. The advertisement only under-promises (acked <= applied), so a
    // skipped replica truly might lag; a consulted one may still bounce if
    // the advertisement ran ahead of this exact moment — fall through.
    if (replica.watermark() < min_seq) continue;
    read_buf_.resize(len);
    const repl::RedoApplier::ReadResult r =
        replica.read(off, len, min_seq, read_buf_.data());
    switch (r.status) {
      case repl::RedoApplier::ReadStatus::kOk:
        stats_.reads_served.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("net.async.reads_served").add(1);
        send_read_reply(conn_id, op_id, epoch, r.at_seq,
                        static_cast<std::uint8_t>(r.status), read_buf_.data(), len);
        return true;
      case repl::RedoApplier::ReadStatus::kOutOfBounds:
        // The range itself is bad; no replica will ever serve it.
        send_read_reply(conn_id, op_id, epoch, r.at_seq,
                        static_cast<std::uint8_t>(r.status), nullptr, 0);
        return true;
      case repl::RedoApplier::ReadStatus::kLagging:
        continue;
    }
  }
  return false;
}

void AsyncServer::tick() {
  // Re-arm accept interest once the EMFILE backoff has elapsed (some fds
  // have likely been released by then; if not, accept_ready disarms again).
  if (!listen_armed_ && std::chrono::steady_clock::now() >= listen_rearm_at_) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) listen_armed_ = true;
  }

  for (ShardEndpoint& shard : shards_) shard.poll();

  // Resolve parked commit tickets against the freshly pumped watermarks.
  std::size_t kept = 0;
  for (PendingCommit& pc : pending_commits_) {
    const repl::RedoPipeline::TicketState state = shards_[pc.shard].ticket_state(pc.seq);
    if (state == repl::RedoPipeline::TicketState::kPending) {
      pending_commits_[kept++] = pc;
      continue;
    }
    send_commit_reply(pc.conn_id, pc.op_id, pc.epoch, pc.seq,
                      static_cast<std::uint8_t>(state));
  }
  pending_commits_.resize(kept);

  // Retry parked reads; bounce the ones whose patience expired.
  const auto now = std::chrono::steady_clock::now();
  kept = 0;
  for (ParkedRead& pr : parked_reads_) {
    if (find_conn(pr.conn_id) == nullptr) continue;  // client went away
    if (try_read(pr.conn_id, pr.op_id, pr.epoch, pr.shard, pr.off, pr.len, pr.min_seq)) {
      continue;
    }
    if (now < pr.deadline) {
      parked_reads_[kept++] = pr;
      continue;
    }
    // Bounce: tell the client how far the freshest replica had got so it
    // can retry here or route the read to its own primary.
    std::uint64_t best = 0;
    for (Replica& replica : shards_[pr.shard].replicas) {
      best = std::max(best, replica.watermark());
    }
    stats_.reads_bounced.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("net.async.reads_bounced").add(1);
    send_read_reply(pr.conn_id, pr.op_id, pr.epoch, best,
                    static_cast<std::uint8_t>(repl::RedoApplier::ReadStatus::kLagging),
                    nullptr, 0);
  }
  parked_reads_.resize(kept);
}

void AsyncServer::send_commit_reply(std::uint64_t conn_id, std::uint64_t op_id,
                                    std::uint64_t epoch, std::uint64_t seq,
                                    std::uint8_t outcome) {
  Conn* conn = find_conn(conn_id);
  if (conn == nullptr) return;
  std::uint8_t payload[17];
  std::memcpy(payload, &op_id, 8);
  std::memcpy(payload + 8, &seq, 8);
  payload[16] = outcome;
  enqueue(*conn, encode_frame(MsgType::kCommitReply, epoch, payload, sizeof payload));
}

void AsyncServer::send_read_reply(std::uint64_t conn_id, std::uint64_t op_id,
                                  std::uint64_t epoch, std::uint64_t at_seq,
                                  std::uint8_t status, const std::uint8_t* data,
                                  std::size_t len) {
  Conn* conn = find_conn(conn_id);
  if (conn == nullptr) return;
  std::vector<std::uint8_t> payload(17 + len);
  std::memcpy(payload.data(), &op_id, 8);
  std::memcpy(payload.data() + 8, &at_seq, 8);
  payload[16] = status;
  if (len != 0) std::memcpy(payload.data() + 17, data, len);
  enqueue(*conn, encode_frame(MsgType::kReadReply, epoch, payload.data(), payload.size()));
}

void AsyncServer::enqueue(Conn& conn, std::vector<std::uint8_t> frame) {
  conn.out.push_back(std::move(frame));
  flush_out(conn);
}

void AsyncServer::flush_out(Conn& conn) {
  while (!conn.out.empty()) {
    const std::vector<std::uint8_t>& front = conn.out.front();
    const ssize_t n = ::send(conn.fd, front.data() + conn.out_off,
                             front.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
    if (conn.out_off == front.size()) {
      conn.out.pop_front();
      conn.out_off = 0;
    }
  }
  const bool want = !conn.out.empty();
  if (want != conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.want_write = want;
  }
}

void AsyncServer::conn_writable(Conn& conn) { flush_out(conn); }

void AsyncServer::close_conn(Conn& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  by_fd_.erase(conn.fd);
  conn.fd = -1;
  stats_.conns_open.fetch_sub(1, std::memory_order_relaxed);
  metrics::gauge("net.async.conns_open").add(-1);
  // Do NOT conns_.erase here: dispatch/handle_commit/handle_read close mid
  // parse while parse_frames and conn_readable still hold the Conn& — the
  // object must outlive the whole call stack. Reaped in reap_dead().
  dead_conns_.push_back(conn.id);
}

void AsyncServer::reap_dead() {
  for (const std::uint64_t id : dead_conns_) conns_.erase(id);
  dead_conns_.clear();
}

AsyncServer::Conn* AsyncServer::find_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.fd < 0) return nullptr;
  return &it->second;
}

}  // namespace vrep::net
