// Epoll front end: many client connections multiplexed onto the replication
// engine's asynchronous primitives — commit_async() tickets for writes and
// backup watermark reads for reads. This replaces the one-blocking-loop
// model for client traffic; replication between primary and backups keeps
// its own (blocking, single-peer) transports.
//
// Client protocol (frames behind the same net/frame.hpp codec the
// replication stream uses — 24-byte CRC'd header, identical corruption
// rules: header-CRC failure closes the connection, payload-CRC failure
// skips the frame):
//
//   kClientCommit  u64 op_id | u64 key | op bytes      (client -> server)
//   kCommitReply   u64 op_id | u64 seq | u8 outcome    (server -> client)
//   kReadRequest   u64 op_id | u64 key | u64 off | u32 len | u64 min_seq
//   kReadReply     u64 op_id | u64 at_seq | u8 status | data (kOk only)
//
// `op_id` is an opaque client cookie echoed on the reply (replies can
// interleave across ops on one connection). `key` picks the shard via the
// router hook; `off`/`len` address the shard's replica image. The commit
// outcome byte is repl::RedoPipeline::TicketState (kDurable/kDegraded/
// kLost), or kRejectedOutcome when the shard refused the op. The read
// status byte is repl::RedoApplier::ReadStatus — kLagging is the
// read-your-writes bounce: no replica had applied `min_seq` within
// read_park_ms, retry (the reply's at_seq says how far the freshest
// consulted replica had got).
//
// Consistency: writes go to the shard's primary (commit_async ticket; the
// reply carries the commit's sequence, which becomes the client's
// read-your-writes min_seq). Reads go to the shard's replicas at their
// applied watermark; replicas whose advertised watermark (the primary's
// per-peer acked sequence) lags min_seq are skipped without being touched.
// A read that no replica can serve yet parks and is retried each tick
// until the watermark catches up or read_park_ms expires.
//
// Threading: one epoll thread owns every connection AND every shard
// endpoint hook — submit/ticket_state/poll run only on that thread, so a
// single-threaded RedoPipeline needs no locking. Replica read/watermark
// hooks must be thread-safe against the backup's own apply thread
// (WireBackup::read/watermark lock internally, see wire_repl.hpp).
//
// Dependency note: net/ must not link shard/ — shard routing arrives as a
// std::function hook the composition layer (bench, tests) binds to
// shard::Router.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <vector>

#include "repl/pipeline.hpp"

namespace vrep::net {

class AsyncServer {
 public:
  // Commit outcome byte for an op the shard refused outright (fenced
  // primary / closed window): distinct from every TicketState value.
  static constexpr std::uint8_t kRejectedOutcome = 0xff;

  // One readable replica of a shard (typically a WireBackup, but the
  // primary itself can serve as a replica of last resort).
  struct Replica {
    // Serve `len` bytes at `off` iff the replica has applied `min_seq`
    // (see RedoApplier::read_at_watermark). Must be thread-safe vs the
    // replica's apply thread.
    std::function<repl::RedoApplier::ReadResult(
        std::uint64_t off, std::uint32_t len, std::uint64_t min_seq, std::uint8_t* out)>
        read;
    // Advertised watermark used to SKIP the replica without touching it —
    // e.g. the primary's peer_acked_seq for this backup. May lag the
    // replica's true applied_seq (it only ever under-promises).
    std::function<std::uint64_t()> watermark;
  };

  // One shard's write/read surface. All hooks except the replicas' are
  // called only from the epoll thread.
  struct ShardEndpoint {
    // Apply + commit one client op; returns the commit's sequence (the
    // ticket), or 0 to reject. May block briefly for window backpressure.
    std::function<std::uint64_t(std::uint64_t key, const std::uint8_t* op, std::size_t len)>
        submit;
    // Resolution state of ticket `seq` right now (no blocking).
    std::function<repl::RedoPipeline::TicketState(std::uint64_t seq)> ticket_state;
    // Non-blocking ack pump (RedoPipeline::poll_acks); called every tick so
    // parked tickets resolve and advertised watermarks advance.
    std::function<void()> poll;
    std::vector<Replica> replicas;
  };

  struct Options {
    int read_park_ms = 200;       // lagging-read patience before the bounce
    int tick_ms = 1;              // parked-work retry cadence
    int accept_backoff_ms = 100;  // listen re-arm delay after fd exhaustion
  };

  struct Stats {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> conns_open{0};
    std::atomic<std::uint64_t> accept_overloads{0};  // EMFILE/ENFILE backoffs
    std::atomic<std::uint64_t> commits_submitted{0};
    std::atomic<std::uint64_t> commits_rejected{0};
    std::atomic<std::uint64_t> reads_served{0};
    std::atomic<std::uint64_t> reads_parked{0};
    std::atomic<std::uint64_t> reads_bounced{0};
    std::atomic<std::uint64_t> frames_skipped{0};  // payload-CRC failures
    std::atomic<std::uint64_t> conns_corrupt{0};   // header-CRC closes
  };

  AsyncServer() = default;
  explicit AsyncServer(const Options& options) : options_(options) {}
  ~AsyncServer();
  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Shard id is the index of the add_shard call; the router must return
  // ids < shard_count(). Configure before start().
  void add_shard(ShardEndpoint endpoint) { shards_.push_back(std::move(endpoint)); }
  std::size_t shard_count() const { return shards_.size(); }
  void set_router(std::function<std::uint32_t(std::uint64_t key)> router) {
    router_ = std::move(router);
  }

  // Bind/listen on 127.0.0.1:port (0 = ephemeral), then run the epoll loop
  // on its own thread. stop() joins it and closes every connection.
  bool listen(std::uint16_t port);
  std::uint16_t bound_port() const { return port_; }
  bool start();
  void stop();

  const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> in;      // unparsed inbound bytes
    std::deque<std::vector<std::uint8_t>> out;  // queued frames
    std::size_t out_off = 0;           // sent prefix of out.front()
    bool want_write = false;           // EPOLLOUT currently armed
  };

  struct PendingCommit {
    std::uint64_t conn_id;
    std::uint64_t op_id;
    std::uint64_t epoch;  // echoed on the reply
    std::uint64_t seq;
    std::uint32_t shard;
  };

  struct ParkedRead {
    std::uint64_t conn_id;
    std::uint64_t op_id;
    std::uint64_t epoch;
    std::uint32_t shard;
    std::uint64_t off;
    std::uint32_t len;
    std::uint64_t min_seq;
    std::chrono::steady_clock::time_point deadline;
  };

  void run();
  void accept_ready();
  void conn_readable(Conn& conn);
  void conn_writable(Conn& conn);
  // Parse every complete frame in conn.in; returns false when the
  // connection must close (header corruption / protocol violation).
  bool parse_frames(Conn& conn);
  void dispatch(Conn& conn, std::uint8_t type, std::uint64_t epoch,
                const std::uint8_t* payload, std::size_t len);
  void handle_commit(Conn& conn, std::uint64_t epoch, const std::uint8_t* payload,
                     std::size_t len);
  void handle_read(Conn& conn, std::uint64_t epoch, const std::uint8_t* payload,
                   std::size_t len);
  // One attempt: consult replicas (advertised watermark first), reply on
  // success. Returns false if every replica lags min_seq.
  bool try_read(std::uint64_t conn_id, std::uint64_t op_id, std::uint64_t epoch,
                std::uint32_t shard, std::uint64_t off, std::uint32_t len,
                std::uint64_t min_seq);
  void tick();
  void send_commit_reply(std::uint64_t conn_id, std::uint64_t op_id, std::uint64_t epoch,
                         std::uint64_t seq, std::uint8_t outcome);
  void send_read_reply(std::uint64_t conn_id, std::uint64_t op_id, std::uint64_t epoch,
                       std::uint64_t at_seq, std::uint8_t status, const std::uint8_t* data,
                       std::size_t len);
  void enqueue(Conn& conn, std::vector<std::uint8_t> frame);
  void flush_out(Conn& conn);
  // Tears the connection down (fd, epoll, by_fd_, gauges) but does NOT
  // destroy the Conn: callers up the stack (parse_frames, conn_readable)
  // may still hold a reference. The id parks on dead_conns_ and the object
  // is reaped by reap_dead() once the event-loop iteration unwinds.
  void close_conn(Conn& conn);
  void reap_dead();
  // nullptr for unknown ids AND for closed conns awaiting reap_dead().
  Conn* find_conn(std::uint64_t conn_id);

  Options options_;
  std::vector<ShardEndpoint> shards_;
  std::function<std::uint32_t(std::uint64_t)> router_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: kicks the loop out of epoll_wait on stop
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;   // id -> connection (stable refs)
  std::map<int, std::uint64_t> by_fd_;    // fd -> id (epoll event lookup)
  std::vector<std::uint64_t> dead_conns_;  // closed, awaiting reap_dead()
  bool listen_armed_ = true;  // EPOLLIN interest on listen_fd_ (EMFILE backoff)
  std::chrono::steady_clock::time_point listen_rearm_at_{};
  std::vector<PendingCommit> pending_commits_;
  std::vector<ParkedRead> parked_reads_;
  std::vector<std::uint8_t> read_buf_;  // scratch for replica reads
  Stats stats_;
};

}  // namespace vrep::net
