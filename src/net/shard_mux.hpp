// Shard-id frame routing: many per-shard replication streams multiplexed
// over ONE carrier link (one TCP connection / transport between a pair of
// nodes, however many shards they exchange).
//
// Envelope: every frame's payload is prefixed with the owning shard id —
//
//   [u32 shard_id | inner payload]
//
// while the frame kind and epoch stay the inner stream's own (each shard
// keeps its private epoch, so fencing stays per-shard — exactly the
// property the shard layer exists for). No new frame kinds: a kRedoBatch is
// a kRedoBatch whichever shard it belongs to.
//
// ShardChannel wraps the carrier and demultiplexes inbound frames into
// per-shard queues; ShardChannel::lane(shard) is a repl::ReplicationLink a
// per-shard RedoPipeline/RedoApplier can use directly. A lane's recv()
// pumps the carrier until a frame for ITS shard arrives, parking frames for
// other shards in their queues along the way — so interleaved multi-shard
// traffic never drops or reorders within a shard.
//
// Single-owner: lanes are not thread-safe against each other; the caller
// (e.g. one sequencer thread per shard group, or a test) serializes access
// the same way the rest of the repl layer expects.
//
// Inbox bound: a lane whose owner never (or rarely) drains it cannot grow
// without limit under skewed traffic — parked frames are capped at
// inbox_capacity() per lane. Overflow drops the NEWEST frame for that lane
// (counted in inbox_dropped() and net.shard_mux.inbox_dropped); the lane's
// protocol engine sees an ordinary sequence gap and repairs it with an
// in-band resync, exactly as it would after a lossy carrier. The per-lane
// high-water mark is published as net.shard_mux.inbox_highwater.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "repl/link.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"

namespace vrep::net {

class ShardChannel {
 public:
  static constexpr std::size_t kEnvelopeBytes = sizeof(std::uint32_t);
  // Default parked-frame cap per lane. Generous for interleaved multi-shard
  // streams (a lane parks at most what arrives between two of its own
  // recvs), tight enough that a stalled lane stays O(capacity), not O(run).
  static constexpr std::size_t kDefaultInboxCapacity = 1024;

  explicit ShardChannel(repl::ReplicationLink* carrier) : carrier_(carrier) {
    VREP_CHECK(carrier_ != nullptr);
  }
  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  // Cap on frames parked per lane (>= 1). Applies to frames parked from now
  // on; an already-longer inbox drains normally.
  void set_inbox_capacity(std::size_t frames) {
    VREP_CHECK(frames >= 1);
    inbox_capacity_ = frames;
  }
  std::size_t inbox_capacity() const { return inbox_capacity_; }
  // Frames dropped because their lane's inbox was full.
  std::uint64_t inbox_dropped() const { return inbox_dropped_; }
  // Highest parked-frame count any lane ever reached.
  std::size_t inbox_highwater() const { return inbox_highwater_; }

  // The per-shard replication endpoint (created on first use; stable
  // addresses thereafter).
  repl::ReplicationLink& lane(std::uint32_t shard_id) {
    auto it = lanes_.find(shard_id);
    if (it == lanes_.end()) {
      it = lanes_.emplace(shard_id, std::make_unique<Lane>(this, shard_id)).first;
    }
    return *it->second;
  }

  std::size_t lanes_open() const { return lanes_.size(); }
  // Frames received for shards nobody opened a lane for (a routing bug or a
  // stale sender); they are counted and dropped rather than crashing the
  // receive loop.
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  class Lane final : public repl::ReplicationLink {
   public:
    Lane(ShardChannel* channel, std::uint32_t shard_id)
        : channel_(channel), shard_id_(shard_id) {}

    bool send(repl::FrameKind kind, std::uint64_t epoch, const void* payload,
              std::size_t len) override {
      std::vector<std::uint8_t> wrapped(kEnvelopeBytes + len);
      std::memcpy(wrapped.data(), &shard_id_, kEnvelopeBytes);
      if (len != 0) std::memcpy(wrapped.data() + kEnvelopeBytes, payload, len);
      return channel_->carrier_->send(kind, epoch, wrapped.data(), wrapped.size());
    }

    std::optional<repl::Frame> recv(int timeout_ms) override {
      return channel_->recv_for(shard_id_, timeout_ms);
    }

    repl::LinkError last_error() const override {
      return queued_ ? repl::LinkError::kNone : channel_->carrier_->last_error();
    }
    bool connected() const override { return channel_->carrier_->connected(); }

   private:
    friend class ShardChannel;
    ShardChannel* channel_;
    std::uint32_t shard_id_;
    std::deque<repl::Frame> inbox_;
    bool queued_ = false;  // last recv was served from the inbox
  };

  std::optional<repl::Frame> recv_for(std::uint32_t shard_id, int timeout_ms) {
    Lane& self = *lanes_.at(shard_id);
    for (;;) {
      if (!self.inbox_.empty()) {
        repl::Frame frame = std::move(self.inbox_.front());
        self.inbox_.pop_front();
        self.queued_ = true;
        return frame;
      }
      self.queued_ = false;
      std::optional<repl::Frame> raw = carrier_->recv(timeout_ms);
      if (!raw) return std::nullopt;  // the lane reports the carrier's error
      if (raw->payload.size() < kEnvelopeBytes) {
        unroutable_ += 1;
        continue;
      }
      std::uint32_t target = 0;
      std::memcpy(&target, raw->payload.data(), kEnvelopeBytes);
      raw->payload.erase(raw->payload.begin(),
                         raw->payload.begin() + static_cast<std::ptrdiff_t>(kEnvelopeBytes));
      auto it = lanes_.find(target);
      if (it == lanes_.end()) {
        unroutable_ += 1;
        continue;
      }
      Lane& other = *it->second;
      if (other.inbox_.size() >= inbox_capacity_) {
        // The target lane is stalled (nobody drains it); dropping keeps the
        // carrier's memory O(lanes * capacity). The lane's stream repairs
        // the gap in-band, same as after a corrupt payload.
        inbox_dropped_ += 1;
        metrics::counter("net.shard_mux.inbox_dropped").add(1);
        continue;
      }
      other.inbox_.push_back(std::move(*raw));
      if (other.inbox_.size() > inbox_highwater_) {
        inbox_highwater_ = other.inbox_.size();
        metrics::gauge("net.shard_mux.inbox_highwater")
            .update_max(static_cast<std::int64_t>(inbox_highwater_));
      }
    }
  }

  repl::ReplicationLink* carrier_;
  std::map<std::uint32_t, std::unique_ptr<Lane>> lanes_;
  std::uint64_t unroutable_ = 0;
  std::size_t inbox_capacity_ = kDefaultInboxCapacity;
  std::uint64_t inbox_dropped_ = 0;
  std::size_t inbox_highwater_ = 0;
};

}  // namespace vrep::net
