// Wire-frame layout shared by every framed byte-stream transport (TCP,
// in-process loopback, and the fault injector that perturbs encoded frames).
//
// Frame format (24-byte header, then payload):
//   [u64 epoch | u32 payload_len | u32 payload_crc | u32 header_crc |
//    u8 type | u8 pad[3]] payload
//
// The two CRCs split corruption into recoverable and fatal classes (see
// transport.hpp); every transport that parses this layout must apply the
// same rules so the protocol layer sees identical error semantics on all
// backends.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/transport.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace vrep::net {

// Largest payload a framed transport carries. Enforced symmetrically: the
// receive side rejects any header claiming more (the length field cannot be
// trusted, framing is lost), and the send side CHECKs the bound before
// framing — the u32 length field must never silently truncate a larger
// payload into a frame the receiver will misparse.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

struct FrameHeader {
  std::uint64_t epoch;
  std::uint32_t len;
  std::uint32_t payload_crc;
  std::uint32_t header_crc;  // over epoch, len, type
  std::uint8_t type;
  std::uint8_t pad[3];
};
static_assert(sizeof(FrameHeader) == 24);

inline std::uint32_t frame_header_crc(const FrameHeader& hdr) {
  Crc32 c;
  c.update(&hdr.epoch, sizeof hdr.epoch);
  c.update(&hdr.len, sizeof hdr.len);
  c.update(&hdr.type, sizeof hdr.type);
  return c.value();
}

// Encode one frame exactly as a transport's send() would put it on the wire.
inline std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t epoch,
                                              const void* payload, std::size_t len) {
  VREP_CHECK(len <= kMaxFramePayload);
  FrameHeader hdr{};
  hdr.epoch = epoch;
  hdr.len = static_cast<std::uint32_t>(len);
  hdr.type = static_cast<std::uint8_t>(type);
  hdr.payload_crc = Crc32::of(payload, len);
  hdr.header_crc = frame_header_crc(hdr);
  std::vector<std::uint8_t> frame(sizeof hdr + len);
  std::memcpy(frame.data(), &hdr, sizeof hdr);
  if (len > 0) std::memcpy(frame.data() + sizeof hdr, payload, len);
  return frame;
}

}  // namespace vrep::net
