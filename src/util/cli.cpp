#include "util/cli.hpp"

#include <cstdlib>

namespace vrep {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

std::string CliArgs::get_string(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace vrep
