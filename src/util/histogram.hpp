// Power-of-two bucketed histogram for latency / packet-size distributions.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace vrep {

// Bucket 0 holds values <= 1; bucket i (i >= 1) holds [2^i, 2^(i+1)).
class Histogram {
 public:
  // total_sum_ saturates at UINT64_MAX instead of wrapping.
  void add(std::uint64_t value, std::uint64_t count = 1);
  std::uint64_t total_count() const { return total_count_; }
  std::uint64_t total_sum() const { return total_sum_; }
  double mean() const;
  // Value at rank floor(fraction * total_count), linearly interpolated within
  // its bucket; bucket upper bounds are clamped to max_seen(). fraction >= 1
  // returns max_seen() exactly.
  std::uint64_t percentile(double fraction) const;
  std::uint64_t max_seen() const { return max_seen_; }
  std::string to_string(const char* unit = "") const;
  void merge(const Histogram& other);
  void reset();

 private:
  static int bucket_of(std::uint64_t v);
  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t total_count_ = 0;
  std::uint64_t total_sum_ = 0;
  std::uint64_t max_seen_ = 0;
};

}  // namespace vrep
