#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace vrep {

void AsciiChart::add_series(std::string name, std::vector<double> ys) {
  VREP_CHECK(ys.size() == xs_.size());
  series_.emplace_back(std::move(name), std::move(ys));
}

std::string AsciiChart::render(int width, int height) const {
  static const char kMarks[] = {'*', 'o', '+', 'x', '#', '@'};
  double ymax = 0;
  for (const auto& [name, ys] : series_)
    for (double y : ys) ymax = std::max(ymax, y);
  if (ymax <= 0) ymax = 1;
  double xmin = xs_.empty() ? 0 : xs_.front();
  double xmax = xs_.empty() ? 1 : xs_.back();
  if (xmax <= xmin) xmax = xmin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char mark = kMarks[s % sizeof kMarks];
    const auto& ys = series_[s].second;
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      int col = static_cast<int>(std::lround((xs_[i] - xmin) / (xmax - xmin) * (width - 1)));
      int row = static_cast<int>(std::lround(ys[i] / ymax * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      col = std::clamp(col, 0, width - 1);
      grid[static_cast<std::size_t>(height - 1 - row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  std::string out = title_ + "\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s (max %.0f)\n", y_label_.c_str(), ymax);
  out += buf;
  for (auto& line : grid) out += "  |" + line + "\n";
  out += "  +" + std::string(static_cast<std::size_t>(width), '-') + "> " + x_label_ + "\n";
  out += "  legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out += " ";
    out += kMarks[s % sizeof kMarks];
    out += "=" + series_[s].first;
  }
  out += "\n";
  return out;
}

void AsciiChart::print(int width, int height) const {
  std::fputs(render(width, height).c_str(), stdout);
}

}  // namespace vrep
