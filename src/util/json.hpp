// Minimal JSON value: build, serialize, parse. Exists so the bench binaries
// can emit machine-readable trajectories (BENCH_*.json) and the tests can
// round-trip them without an external dependency. Deliberately small: the
// subset the emitter produces (null/bool/number/string/object/array, UTF-8
// passed through verbatim, \uXXXX decoded for the full BMP; surrogate
// halves are rejected explicitly).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vrep {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_kind_(NumKind::kDouble), dbl_(d) {}
  Json(std::uint64_t u) : type_(Type::kNumber), num_kind_(NumKind::kU64), u64_(u) {}
  Json(std::int64_t i) : type_(Type::kNumber), num_kind_(NumKind::kI64), i64_(i) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // ---- building -----------------------------------------------------------
  // Object insertion preserves order (stable dumps, stable diffs).
  Json& set(const std::string& key, Json value);
  Json& push(Json value);

  // ---- access -------------------------------------------------------------
  const Json* find(const std::string& key) const;  // objects; nullptr if absent
  const Json& at(std::size_t i) const { return arr_[i]; }
  std::size_t size() const { return type_ == Type::kObject ? obj_.size() : arr_.size(); }
  const std::vector<std::pair<std::string, Json>>& items() const { return obj_; }

  bool boolean() const { return bool_; }
  double number() const;           // any numeric representation, as double
  std::uint64_t u64() const;       // truncates doubles; clamps negatives to 0
  const std::string& str() const { return str_; }

  // ---- serialize / parse --------------------------------------------------
  // indent == 0: single line; indent > 0: pretty-printed with that step.
  std::string dump(int indent = 0) const;
  static std::optional<Json> parse(std::string_view text);

 private:
  enum class NumKind : std::uint8_t { kDouble, kU64, kI64 };
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  NumKind num_kind_ = NumKind::kDouble;
  double dbl_ = 0;
  std::uint64_t u64_ = 0;
  std::int64_t i64_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> obj_;
  std::vector<Json> arr_;
};

}  // namespace vrep
