#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace vrep {

Json& Json::set(const std::string& key, Json value) {
  VREP_CHECK(type_ == Type::kObject);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  VREP_CHECK(type_ == Type::kArray);
  arr_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::number() const {
  switch (num_kind_) {
    case NumKind::kDouble:
      return dbl_;
    case NumKind::kU64:
      return static_cast<double>(u64_);
    case NumKind::kI64:
      return static_cast<double>(i64_);
  }
  return 0;
}

std::uint64_t Json::u64() const {
  switch (num_kind_) {
    case NumKind::kDouble:
      return dbl_ <= 0 ? 0 : static_cast<std::uint64_t>(dbl_);
    case NumKind::kU64:
      return u64_;
    case NumKind::kI64:
      return i64_ <= 0 ? 0 : static_cast<std::uint64_t>(i64_);
  }
  return 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buf[40];
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      switch (num_kind_) {
        case NumKind::kU64:
          std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(u64_));
          break;
        case NumKind::kI64:
          std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(i64_));
          break;
        case NumKind::kDouble:
          if (std::isfinite(dbl_)) {
            // %.17g round-trips doubles but litters dumps with digits; %.10g
            // is plenty for throughput/latency figures and diffs cleanly.
            std::snprintf(buf, sizeof buf, "%.10g", dbl_);
          } else {
            std::snprintf(buf, sizeof buf, "null");  // JSON has no inf/nan
          }
          break;
      }
      out += buf;
      return;
    case Type::kString:
      append_escaped(out, str_);
      return;
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  Json value();
  Json string_value();
  Json number_value();
};

Json Parser::string_value() {
  std::string out;
  ++pos;  // opening quote
  while (pos < text.size()) {
    const char c = text[pos++];
    if (c == '"') return Json(std::move(out));
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos >= text.size()) break;
    const char esc = text[pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (pos + 4 > text.size()) {
          ok = false;
          return Json();
        }
        const unsigned long cp = std::strtoul(std::string(text.substr(pos, 4)).c_str(),
                                              nullptr, 16);
        pos += 4;
        // Full BMP decode to UTF-8. Surrogate halves (U+D800..U+DFFF) would
        // need pairing logic we don't carry — reject them explicitly rather
        // than emitting mojibake.
        if (cp >= 0xD800 && cp <= 0xDFFF) {
          ok = false;
          return Json();
        }
        if (cp <= 0x7F) {
          out += static_cast<char>(cp);
        } else if (cp <= 0x7FF) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        ok = false;
        return Json();
    }
  }
  ok = false;
  return Json();
}

Json Parser::number_value() {
  const std::size_t start = pos;
  bool integral = true;
  if (pos < text.size() && text[pos] == '-') ++pos;
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++pos;
    } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
      integral = false;
      ++pos;
    } else {
      break;
    }
  }
  const std::string tok(text.substr(start, pos - start));
  if (tok.empty() || tok == "-") {
    ok = false;
    return Json();
  }
  if (integral) {
    errno = 0;
    if (tok[0] == '-') {
      const long long v = std::strtoll(tok.c_str(), nullptr, 10);
      if (errno == 0) return Json(static_cast<std::int64_t>(v));
    } else {
      const unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
      if (errno == 0) return Json(static_cast<std::uint64_t>(v));
    }
  }
  return Json(std::strtod(tok.c_str(), nullptr));
}

Json Parser::value() {
  skip_ws();
  if (pos >= text.size()) {
    ok = false;
    return Json();
  }
  const char c = text[pos];
  if (c == '{') {
    ++pos;
    Json obj = Json::object();
    if (consume('}')) return obj;
    while (ok) {
      skip_ws();
      if (peek() != '"') {
        ok = false;
        break;
      }
      Json key = string_value();
      if (!ok || !consume(':')) {
        ok = false;
        break;
      }
      obj.set(key.str(), value());
      if (consume('}')) return obj;
      if (!consume(',')) {
        ok = false;
        break;
      }
    }
    return Json();
  }
  if (c == '[') {
    ++pos;
    Json arr = Json::array();
    if (consume(']')) return arr;
    while (ok) {
      arr.push(value());
      if (consume(']')) return arr;
      if (!consume(',')) {
        ok = false;
        break;
      }
    }
    return Json();
  }
  if (c == '"') return string_value();
  if (text.compare(pos, 4, "true") == 0) {
    pos += 4;
    return Json(true);
  }
  if (text.compare(pos, 5, "false") == 0) {
    pos += 5;
    return Json(false);
  }
  if (text.compare(pos, 4, "null") == 0) {
    pos += 4;
    return Json();
  }
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number_value();
  ok = false;
  return Json();
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.value();
  p.skip_ws();
  if (!p.ok || p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace vrep
