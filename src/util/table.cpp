#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace vrep {

void Table::set_header(std::vector<std::string> cells) { header_ = std::move(cells); }

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };

  std::string sep = "+";
  for (auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = title_.empty() ? std::string() : title_ + "\n";
  out += sep;
  if (!header_.empty()) {
    out += render_row(header_);
    out += sep;
  }
  for (const auto& r : rows_) out += render_row(r);
  out += sep;
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace vrep
