// Deterministic pseudo-random number generation for workloads and tests.
//
// We use xoshiro256** rather than std::mt19937 because workload generation is
// on the measured path of every benchmark: the generator must be fast, small,
// and produce an identical stream on every platform for reproducibility.
#pragma once

#include <cstdint>

namespace vrep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double next_double() {  // in [0, 1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace vrep
