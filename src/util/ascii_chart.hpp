// Minimal ASCII line chart, used by the figure-reproduction benches so a
// terminal shows the same series the paper plots.
#pragma once

#include <string>
#include <vector>

namespace vrep {

class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

  // All series must share the same x values.
  void set_x(std::vector<double> xs) { xs_ = std::move(xs); }
  void add_series(std::string name, std::vector<double> ys);
  std::string render(int width = 64, int height = 20) const;
  void print(int width = 64, int height = 20) const;

 private:
  std::string title_, x_label_, y_label_;
  std::vector<double> xs_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace vrep
