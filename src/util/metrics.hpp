// Process-wide named metrics: counters, gauges, and Histogram-backed timers.
//
// Every hot layer (sim bus, Memory Channel interface, replication schemes,
// TCP transport, harness) records into the global Registry so any binary —
// bench, example, or test — can snapshot one coherent picture of what the
// run did and serialize it (see Snapshot::to_json and bench_common.hpp's
// JsonReport).
//
// Cost model: instruments are created once (first use of a name) and then
// updated lock-free — a Counter/Gauge update is one relaxed atomic RMW, so
// sprinkling them on per-store paths is safe. Timers take a mutex per
// record (they update a full Histogram); keep them on per-transaction /
// per-frame paths, not per-byte ones. The recommended call-site pattern is
// a function-local static reference:
//
//   static metrics::Counter& c = metrics::counter("net.transport.frames_sent");
//   c.add(1);
//
// which resolves the name exactly once per process. References stay valid
// forever: Registry::reset() zeroes values but never destroys instruments.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace vrep {

class Json;

namespace metrics {

// Monotonically increasing event/byte count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written (or running) signed level, plus a monotone-max helper for
// high-watermarks like peak ring occupancy.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Distribution of u64 samples (latency in ns, sizes in bytes) behind a
// mutex; snapshot() returns a consistent copy.
class Timer {
 public:
  void record(std::uint64_t value, std::uint64_t count = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.add(value, count);
  }
  // Fold a locally-accumulated histogram in with one lock acquisition —
  // cheaper than per-sample record() on hot loops.
  void merge(const Histogram& h) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.merge(h);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    h_.reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
};

// Point-in-time copy of every instrument, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram>> timers;

  bool empty() const { return counters.empty() && gauges.empty() && timers.empty(); }
  // {"counters": {...}, "gauges": {...}, "timers": {name: {count, mean,
  //  p50, p90, p99, max}}} — zero-valued counters/gauges are kept so a field
  // that legitimately stayed at 0 is distinguishable from one never touched.
  Json to_json() const;
};

class Registry {
 public:
  // The process-wide registry every convenience accessor below resolves in.
  static Registry& global();

  // Get-or-create by name; the returned reference is valid for the process
  // lifetime (instruments are never destroyed, reset() only zeroes them).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

inline Counter& counter(const std::string& name) { return Registry::global().counter(name); }
inline Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
inline Timer& timer(const std::string& name) { return Registry::global().timer(name); }

}  // namespace metrics
}  // namespace vrep
