// CRC32 (Castagnoli polynomial, table-driven) used to checksum database
// state in tests and in the wire protocol of the TCP transport.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vrep {

// Incremental CRC32C. Start from 0, feed buffers, read value().
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  std::uint32_t value() const { return ~state_; }

  static std::uint32_t of(const void* data, std::size_t len) {
    Crc32 c;
    c.update(data, len);
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace vrep
