// Tiny command-line flag parser shared by examples and benches.
//
// Usage:
//   CliArgs args(argc, argv);
//   auto n = args.get_int("txns", 100000);
//   auto role = args.get_string("role", "demo");
//   if (args.has("help")) ...
// Flags are written --name=value or --name value; bare --name is a boolean.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vrep {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const { return values_.count(name) != 0; }
  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vrep
