// Bounded exponential backoff with jitter, used by the primary's reconnect
// loop. Pure logic over an injected RNG — callers do the sleeping — so tests
// can verify the schedule without waiting on wall-clock time.
//
// Delay for attempt k is uniform in
//   [d_k * (1 - jitter), d_k],  d_k = min(base * multiplier^k, max)
// Full-range jitter (rather than +/- a few percent) is what prevents a herd
// of reconnecting nodes from hammering a just-recovered peer in lockstep.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrep {

class Backoff {
 public:
  struct Config {
    std::int64_t base_ms = 10;
    std::int64_t max_ms = 2'000;
    double multiplier = 2.0;
    double jitter = 0.5;    // fraction of the delay that may be shaved off
    int max_attempts = 0;   // 0 = unbounded
  };

  explicit Backoff(const Config& config, std::uint64_t seed = 1)
      : config_(config), rng_(seed) {
    VREP_CHECK(config.base_ms > 0);
    VREP_CHECK(config.max_ms >= config.base_ms);
    VREP_CHECK(config.multiplier >= 1.0);
    VREP_CHECK(config.jitter >= 0.0 && config.jitter <= 1.0);
  }

  // Delay to sleep before the next attempt; nullopt once attempts are
  // exhausted (give up).
  std::optional<std::int64_t> next_delay_ms() {
    if (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) return std::nullopt;
    double d = static_cast<double>(config_.base_ms);
    for (int i = 0; i < attempts_ && d < static_cast<double>(config_.max_ms); ++i) {
      d *= config_.multiplier;
    }
    d = std::min(d, static_cast<double>(config_.max_ms));
    const double shave = d * config_.jitter * rng_.next_double();
    ++attempts_;
    return static_cast<std::int64_t>(d - shave);
  }

  // Call after a successful attempt so the next failure starts cheap again.
  void reset() { attempts_ = 0; }

  int attempts() const { return attempts_; }

 private:
  Config config_;
  Rng rng_;
  int attempts_ = 0;
};

}  // namespace vrep
