#include "util/crc32.hpp"

namespace vrep {
namespace {

struct Table {
  std::uint32_t t[256];
  constexpr Table() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};

constexpr Table kTable{};

}  // namespace

void Crc32::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i) c = kTable.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  state_ = c;
}

}  // namespace vrep
