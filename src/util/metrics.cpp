#include "util/metrics.hpp"

#include "util/json.hpp"

namespace vrep {
namespace metrics {

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static-destruction order
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) snap.timers.emplace_back(name, t->snapshot());
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

Json Snapshot::to_json() const {
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [name, v] : counters) jc.set(name, Json(v));
  root.set("counters", std::move(jc));
  Json jg = Json::object();
  for (const auto& [name, v] : gauges) jg.set(name, Json(v));
  root.set("gauges", std::move(jg));
  Json jt = Json::object();
  for (const auto& [name, h] : timers) {
    Json jh = Json::object();
    jh.set("count", Json(h.total_count()));
    jh.set("mean", Json(h.mean()));
    jh.set("p50", Json(h.percentile(0.50)));
    jh.set("p90", Json(h.percentile(0.90)));
    jh.set("p99", Json(h.percentile(0.99)));
    jh.set("max", Json(h.max_seen()));
    jt.set(name, std::move(jh));
  }
  root.set("timers", std::move(jt));
  return root;
}

}  // namespace metrics
}  // namespace vrep
