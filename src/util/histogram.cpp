#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace vrep {

namespace {

// Inclusive bounds of bucket i. Bucket 0 holds values <= 1 (see bucket_of);
// bucket 63's upper bound is UINT64_MAX — computing it as (1 << 64) - 1 would
// be undefined, so it is special-cased rather than shifted.
std::uint64_t bucket_lo(std::size_t i) { return i == 0 ? 0 : 1ull << i; }

std::uint64_t bucket_hi(std::size_t i) {
  if (i >= 63) return std::numeric_limits<std::uint64_t>::max();
  return (1ull << (i + 1)) - 1;
}

std::uint64_t saturating_add_u64(std::uint64_t a, unsigned __int128 b) {
  const unsigned __int128 sum = static_cast<unsigned __int128>(a) + b;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  return sum > kMax ? kMax : static_cast<std::uint64_t>(sum);
}

}  // namespace

int Histogram::bucket_of(std::uint64_t v) {
  if (v <= 1) return 0;
  return 64 - std::countl_zero(v) - 1;
}

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  buckets_[static_cast<std::size_t>(bucket_of(value))] += count;
  total_count_ += count;
  // ns-scale sums overflow u64 in long runs; saturate instead of wrapping so
  // mean() degrades to an underestimate rather than garbage.
  total_sum_ =
      saturating_add_u64(total_sum_, static_cast<unsigned __int128>(value) * count);
  max_seen_ = std::max(max_seen_, value);
}

double Histogram::mean() const {
  return total_count_ == 0 ? 0.0
                           : static_cast<double>(total_sum_) / static_cast<double>(total_count_);
}

std::uint64_t Histogram::percentile(double fraction) const {
  if (total_count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(fraction * static_cast<double>(total_count_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen <= target) continue;
    // The sample with rank `target` lands in this bucket. Interpolate
    // linearly between the bucket's bounds, clamping the upper bound to the
    // largest value actually recorded — a non-empty bucket guarantees
    // max_seen_ >= lo, so the clamp never inverts the range.
    const std::uint64_t lo = bucket_lo(i);
    const std::uint64_t hi = std::min(bucket_hi(i), max_seen_);
    const std::uint64_t rank_in_bucket = target - (seen - buckets_[i]);
    const double frac_in_bucket =
        static_cast<double>(rank_in_bucket) / static_cast<double>(buckets_[i]);
    return lo + static_cast<std::uint64_t>(static_cast<double>(hi - lo) * frac_in_bucket);
  }
  return max_seen_;  // fraction >= 1.0
}

std::string Histogram::to_string(const char* unit) const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof line, "count=%llu mean=%.1f%s p50=%llu p99=%llu max=%llu\n",
                static_cast<unsigned long long>(total_count_), mean(), unit,
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(max_seen_));
  out += line;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof line, "  [%llu, %llu]: %llu\n",
                  static_cast<unsigned long long>(bucket_lo(i)),
                  static_cast<unsigned long long>(std::min(bucket_hi(i), max_seen_)),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_count_ += other.total_count_;
  total_sum_ = saturating_add_u64(total_sum_, other.total_sum_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void Histogram::reset() { *this = Histogram{}; }

}  // namespace vrep
