#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace vrep {

int Histogram::bucket_of(std::uint64_t v) {
  if (v <= 1) return 0;
  return 64 - std::countl_zero(v) - 1;
}

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  buckets_[static_cast<std::size_t>(bucket_of(value))] += count;
  total_count_ += count;
  total_sum_ += value * count;
  max_seen_ = std::max(max_seen_, value);
}

double Histogram::mean() const {
  return total_count_ == 0 ? 0.0
                           : static_cast<double>(total_sum_) / static_cast<double>(total_count_);
}

std::uint64_t Histogram::percentile(double fraction) const {
  if (total_count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(fraction * static_cast<double>(total_count_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return 1ull << (i + 1);
  }
  return max_seen_;
}

std::string Histogram::to_string(const char* unit) const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof line, "count=%llu mean=%.1f%s p50=%llu p99=%llu max=%llu\n",
                static_cast<unsigned long long>(total_count_), mean(), unit,
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(max_seen_));
  out += line;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof line, "  [%llu, %llu): %llu\n",
                  static_cast<unsigned long long>(i == 0 ? 0 : (1ull << i)),
                  static_cast<unsigned long long>(1ull << (i + 1)),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_count_ += other.total_count_;
  total_sum_ += other.total_sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void Histogram::reset() { *this = Histogram{}; }

}  // namespace vrep
