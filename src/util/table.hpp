// ASCII table rendering used by every benchmark binary so that our output
// lines up with the tables in the paper.
#pragma once

#include <string>
#include <vector>

namespace vrep {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string num(std::uint64_t v);
  std::string render() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vrep
