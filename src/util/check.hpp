// Lightweight invariant checking used throughout the library.
//
// VREP_CHECK is always on (it guards data integrity invariants whose failure
// would silently corrupt a database); VREP_DCHECK compiles away in release
// builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vrep {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace vrep

#define VREP_CHECK(expr)                                   \
  do {                                                     \
    if (!(expr)) ::vrep::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define VREP_DCHECK(expr) ((void)0)
#else
#define VREP_DCHECK(expr) VREP_CHECK(expr)
#endif
